//! # Backpressure Flow Control (BFC)
//!
//! A from-scratch Rust reproduction of *Backpressure Flow Control* (Goyal,
//! Shah, Sharma, Alizadeh, Anderson — NSDI 2022): per-hop, per-flow flow
//! control for RDMA data-center networks, together with the packet-level
//! simulator, baseline congestion-control schemes, workload generators and
//! evaluation harness needed to regenerate every table and figure of the
//! paper.
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! | Module | Crate | What it contains |
//! |---|---|---|
//! | [`sim`] | `bfc-sim` | deterministic discrete-event engine (clock, event queue, PRNG) |
//! | [`net`] | `bfc-net` | packets, links, switches, shared buffers, PFC, topologies, routing |
//! | [`core`] | `bfc-core` | **the paper's contribution**: the BFC switch policy (flow table, dynamic queue assignment, bloom-filter pauses, thresholds, high-priority queue) |
//! | [`transport`] | `bfc-transport` | host / NIC models: Go-Back-N, DCQCN, HPCC, window caps |
//! | [`workloads`] | `bfc-workloads` | Google / FB_Hadoop / WebSearch traces, incast, cross-DC mixes, CSV trace import/export |
//! | [`metrics`] | `bfc-metrics` | FCT slowdown, percentiles, occupancy, utilization, pause time |
//! | [`experiments`] | `bfc-experiments` | scheme registry, simulation driver, one module + binary per figure |
//!
//! ## Quick start
//!
//! ```
//! use backpressure_flow_control::experiments::{run_experiment, ExperimentConfig, Scheme};
//! use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams};
//! use backpressure_flow_control::sim::SimDuration;
//! use backpressure_flow_control::workloads::{synthesize, TraceParams, Workload};
//!
//! // A small leaf-spine fabric and a short Google-like trace at 30% load.
//! let topo = fat_tree(FatTreeParams::tiny());
//! let trace = synthesize(
//!     &topo.hosts(),
//!     &TraceParams::background_only(Workload::Google, 0.3, SimDuration::from_micros(200), 42),
//! );
//!
//! // Run it under BFC and look at the tail latency.
//! let config = ExperimentConfig::new(Scheme::bfc(), SimDuration::from_micros(200));
//! let result = run_experiment(&topo, &trace, &config);
//! assert_eq!(result.completed_flows, result.total_flows);
//! println!("{}", result.fct.table("BFC quickstart"));
//! ```
//!
//! The runnable examples in `examples/` show the same flow end to end
//! (`quickstart`, `incast_collapse`, `cross_datacenter`, `scheme_comparison`,
//! `trace_replay`), `cargo run --release -p bfc-experiments --bin
//! fig05_main_fct` (plus the other `figNN_*` binaries) regenerates the
//! paper's figures, and `cargo run --release -p bfc-experiments --bin
//! trace-tool` synthesizes, summarizes and replays CSV traces (see the
//! README's "Trace I/O and replay" section).

pub use bfc_core as core;
pub use bfc_experiments as experiments;
pub use bfc_metrics as metrics;
pub use bfc_net as net;
pub use bfc_sim as sim;
pub use bfc_transport as transport;
pub use bfc_workloads as workloads;
