#!/usr/bin/env bash
# Standing pre-commit check for this repository:
#   1. tier-1: release build + the root test suites (end-to-end, properties, doctest)
#   2. the bfc-testkit harness's own unit tests
#   3. a quick benchmark smoke run (also refreshes BENCH.json if missing)
#
# Usage: scripts/verify.sh [--workspace]
#   --workspace  additionally run every crate's unit tests

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== testkit: cargo test -q -p bfc-testkit"
cargo test -q -p bfc-testkit

if [[ "${1:-}" == "--workspace" ]]; then
    echo "== workspace: cargo test -q --workspace"
    cargo test -q --workspace
fi

echo "== bench smoke: cargo run --release -p bfc-bench -- --quick"
out="BENCH.json"
if [[ -f "$out" ]]; then
    # Don't clobber the committed baseline during routine verification.
    out="$(mktemp -t bfc-bench-XXXXXX.json)"
    trap 'rm -f "$out"' EXIT
fi
cargo run --release -q -p bfc-bench -- --quick --out "$out" >/dev/null

echo "verify: OK"
