#!/usr/bin/env bash
# Standing pre-commit check for this repository (see also README "Tests"):
#   1. tier-1: release build + the root test suites (end-to-end, properties,
#      trace round-trip/replay, doctest)
#   2. the bfc-testkit harness's own unit tests
#   3. a trace-tool smoke: synth -> stats -> replay on a tiny CSV trace,
#      plus a `scenario` run (link down/up + flap fault injection)
#   4. a quick benchmark run diffed against the committed BENCH.json —
#      any benchmark whose median regresses more than 25% fails the check
#      (benchmarks without a committed baseline entry are skipped)
#
# Usage: scripts/verify.sh [--workspace]
#   --workspace  additionally run every crate's unit tests
#
# Refresh the committed baseline after an intentional perf change with:
#   cargo run --release -p bfc-bench            # full-fidelity run, writes BENCH.json

set -euo pipefail
cd "$(dirname "$0")/.."

tmpdir="$(mktemp -d -t bfc-verify-XXXXXX)"
trap 'rm -rf "$tmpdir"' EXIT

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== testkit: cargo test -q -p bfc-testkit"
cargo test -q -p bfc-testkit

if [[ "${1:-}" == "--workspace" ]]; then
    echo "== workspace: cargo test -q --workspace"
    cargo test -q --workspace
fi

echo "== trace-tool: synth -> stats -> replay round-trip"
trace_csv="$tmpdir/trace.csv"
cargo run --release -q -p bfc-experiments --bin trace-tool -- \
    synth --out "$trace_csv" --duration-us 120 --seed 7
cargo run --release -q -p bfc-experiments --bin trace-tool -- stats "$trace_csv"
cargo run --release -q -p bfc-experiments --bin trace-tool -- replay "$trace_csv" --scheme bfc

echo "== sharded engine: quickstart at BFC_SHARDS=2 diffed against serial"
# The sharded engine must be bit-identical to the serial one; the quickstart
# example prints FCT tables and scalar metrics, so a byte-level diff of its
# output is a cheap end-to-end witness.
serial_out="$tmpdir/quickstart-serial.txt"
sharded_out="$tmpdir/quickstart-sharded.txt"
cargo run --release -q --example quickstart > "$serial_out"
BFC_SHARDS=2 cargo run --release -q --example quickstart > "$sharded_out"
if ! diff -u "$serial_out" "$sharded_out"; then
    echo "verify: FAILED — sharded (BFC_SHARDS=2) output differs from serial" >&2
    exit 1
fi

echo "== trace-tool: sharded replay smoke (--shards 2)"
cargo run --release -q -p bfc-experiments --bin trace-tool -- \
    replay "$trace_csv" --scheme bfc --shards 2

echo "== trace-tool: scenario (fault injection) smoke"
scenario_txt="$tmpdir/scenario.txt"
cat > "$scenario_txt" <<'EOF'
# verify.sh smoke scenario: one failure with repair, plus a flap
at 40us down tor0 spine0
at 90us up   tor0 spine0
flap tor1 spine1 from 30us every 20us until 100us
EOF
cargo run --release -q -p bfc-experiments --bin trace-tool -- \
    scenario "$scenario_txt" --scheme bfc --duration-us 120 --seed 7
cargo run --release -q -p bfc-experiments --bin trace-tool -- \
    scenario "$scenario_txt" --trace "$trace_csv" --scheme dcqcn-win --seed 7

echo "== bench: cargo run --release -p bfc-bench -- --quick"
# The committed baseline records absolute ns on the machine that wrote it at
# full fidelity, while this check runs in quick mode — noise and machine
# differences eat into the margin. 25% is the standing tolerance on the
# baseline machine; on different hardware raise it via
#   BFC_BENCH_MAX_REGRESS=60 scripts/verify.sh
# or refresh the baseline (see above) from that machine instead.
max_regress="${BFC_BENCH_MAX_REGRESS:-25}"
baseline="BENCH.json"
if [[ -f "$baseline" ]]; then
    # Don't clobber the committed baseline during routine verification;
    # write to a temp file and diff the medians against the baseline.
    out="$tmpdir/bench.json"
    cargo run --release -q -p bfc-bench -- --quick --out "$out" --compare "$baseline" --max-regress "$max_regress"
else
    # First run on a fresh checkout: establish the baseline.
    cargo run --release -q -p bfc-bench -- --quick --out "$baseline" >/dev/null
    echo "wrote initial $baseline (no baseline to compare against)"
fi

echo "verify: OK"
