#!/usr/bin/env bash
# Standing pre-commit check for this repository (see also README "Tests"):
#   1. tier-1: release build + the root test suites (end-to-end, properties,
#      trace round-trip/replay, doctest)
#   2. the bfc-testkit harness's own unit tests
#   3. a trace-tool smoke: synth -> stats -> replay on a tiny CSV trace,
#      plus a `scenario` run (link down/up + flap fault injection)
#   4. fuzz + safety: a fixed-seed `trace-tool fuzz` run must be
#      deterministic (same bytes out twice, second run sharded) and its
#      reproducer must replay; a lineup scenario run must print one
#      violation-free safety line per scheme
#   5. malformed-CSV rejection: every trace-consuming subcommand must exit
#      nonzero and name the offending line
#   6. service mode: run -> snapshot -> resume must reproduce the
#      uninterrupted replay byte-for-byte, and `serve --tail` must complete
#   7. a quick benchmark run diffed against the committed BENCH.json —
#      any benchmark whose median regresses more than 25% fails the check
#      (benchmarks without a committed baseline entry are reported, not
#      compared)
#   8. configuration cross-checks: the fifo-rank feature build's quickstart
#      and a batched 2-shard replay must be byte-identical to their default
#      serial counterparts
#   9. observability: the flight recorder's record -> inspect -> filter ->
#      top pipeline works on a recorded run, a safety-violating scenario
#      auto-dumps a non-empty readable trace, and a `serve --metrics`
#      scrape returns well-formed Prometheus-style exposition text with a
#      native histogram; the persistent-connection protocol serves two
#      scrapes over one socket
#  10. divergence profiler: `trace diff` on two same-config recordings is
#      silent and exits 0 at 1/2/4 shards, and `scenario --diff-schemes
#      bfc,dcqcn` on the committed deadlock reproducer exits nonzero naming
#      the first diverging record
#
# Usage: scripts/verify.sh [--workspace]
#   --workspace  additionally run every crate's unit tests
#
# Refresh the committed baseline after an intentional perf change with:
#   cargo run --release -p bfc-bench            # full-fidelity run, writes BENCH.json

set -euo pipefail
cd "$(dirname "$0")/.."

tmpdir="$(mktemp -d -t bfc-verify-XXXXXX)"
trap 'rm -rf "$tmpdir"' EXIT

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== testkit: cargo test -q -p bfc-testkit"
cargo test -q -p bfc-testkit

if [[ "${1:-}" == "--workspace" ]]; then
    echo "== workspace: cargo test -q --workspace"
    cargo test -q --workspace
fi

echo "== trace-tool: synth -> stats -> replay round-trip"
trace_csv="$tmpdir/trace.csv"
cargo run --release -q -p bfc-experiments --bin trace-tool -- \
    synth --out "$trace_csv" --duration-us 120 --seed 7
cargo run --release -q -p bfc-experiments --bin trace-tool -- stats "$trace_csv"
cargo run --release -q -p bfc-experiments --bin trace-tool -- replay "$trace_csv" --scheme bfc

echo "== sharded engine: quickstart at BFC_SHARDS=2 diffed against serial"
# The sharded engine must be bit-identical to the serial one; the quickstart
# example prints FCT tables and scalar metrics, so a byte-level diff of its
# output is a cheap end-to-end witness.
serial_out="$tmpdir/quickstart-serial.txt"
sharded_out="$tmpdir/quickstart-sharded.txt"
cargo run --release -q --example quickstart > "$serial_out"
BFC_SHARDS=2 cargo run --release -q --example quickstart > "$sharded_out"
if ! diff -u "$serial_out" "$sharded_out"; then
    echo "verify: FAILED — sharded (BFC_SHARDS=2) output differs from serial" >&2
    exit 1
fi

echo "== fifo-rank build: quickstart diffed against the default build"
# The fifo-rank feature drops canonical event ranks on the serial engine;
# results must stay byte-identical, only per-event work changes.
fifo_out="$tmpdir/quickstart-fifo.txt"
cargo run --release -q --features fifo-rank --example quickstart > "$fifo_out"
if ! diff -u "$serial_out" "$fifo_out"; then
    echo "verify: FAILED — fifo-rank quickstart output differs from default build" >&2
    exit 1
fi

echo "== epoch batching: sharded replay (--shards 2) diffed against serial"
# Adaptive epoch batching is on by default, so the sharded replay exercises
# the batched driver; its stdout must match the serial replay byte-for-byte
# (the epoch counters go to stderr for exactly this reason).
replay_serial="$tmpdir/replay-serial.txt"
replay_batched="$tmpdir/replay-batched.txt"
cargo run --release -q -p bfc-experiments --bin trace-tool -- \
    replay "$trace_csv" --scheme bfc > "$replay_serial"
cargo run --release -q -p bfc-experiments --bin trace-tool -- \
    replay "$trace_csv" --scheme bfc --shards 2 > "$replay_batched"
if ! diff -u "$replay_serial" "$replay_batched"; then
    echo "verify: FAILED — batched sharded replay differs from serial replay" >&2
    exit 1
fi

echo "== trace-tool: scenario (fault injection) smoke"
scenario_txt="$tmpdir/scenario.txt"
cat > "$scenario_txt" <<'EOF'
# verify.sh smoke scenario: one failure with repair, plus a flap
at 40us down tor0 spine0
at 90us up   tor0 spine0
flap tor1 spine1 from 30us every 20us until 100us
EOF
cargo run --release -q -p bfc-experiments --bin trace-tool -- \
    scenario "$scenario_txt" --scheme bfc --duration-us 120 --seed 7
cargo run --release -q -p bfc-experiments --bin trace-tool -- \
    scenario "$scenario_txt" --trace "$trace_csv" --scheme dcqcn-win --seed 7

echo "== fuzz: fixed-seed search is deterministic and emits a replayable reproducer"
# Same seed/budget twice must write byte-identical reproducers, and the
# written artifact (re-read from disk) must replay; --shards 2 on the second
# run doubles as a sharded-evaluation witness since results are bit-identical.
fuzz_a="$tmpdir/fuzz-a.scn"
fuzz_b="$tmpdir/fuzz-b.scn"
cargo run --release -q -p bfc-experiments --bin trace-tool -- \
    fuzz --out "$fuzz_a" --seed 3 --budget 6 --shrink-evals 8 --objective dip --replay
cargo run --release -q -p bfc-experiments --bin trace-tool -- \
    fuzz --out "$fuzz_b" --seed 3 --budget 6 --shrink-evals 8 --objective dip --shards 2
if ! cmp -s "$fuzz_a" "$fuzz_b"; then
    echo "verify: FAILED — same-seed fuzz runs wrote different reproducers" >&2
    diff -u "$fuzz_a" "$fuzz_b" >&2 || true
    exit 1
fi

echo "== safety: paper lineup stays violation-free under fault injection"
# The scenario table now carries one safety line per scheme; all six must be
# present and none may be a violation (the constructed-positive direction is
# covered by bfc-metrics' unit tests).
safety_out="$tmpdir/safety.txt"
cargo run --release -q -p bfc-experiments --bin trace-tool -- \
    scenario "$scenario_txt" --scheme lineup --duration-us 120 --seed 7 > "$safety_out"
if [[ "$(grep -c '^safety\[' "$safety_out")" -ne 6 ]]; then
    echo "verify: FAILED — expected 6 safety lines in the lineup scenario run:" >&2
    cat "$safety_out" >&2
    exit 1
fi
if grep -q 'VIOLATION' "$safety_out"; then
    echo "verify: FAILED — safety violation reported for a paper-lineup scheme:" >&2
    grep '^safety\[' "$safety_out" >&2
    exit 1
fi

echo "== trace-tool: malformed CSV exits nonzero with a line number"
# Line 3 holds a bare-trailing-dot start_ns — every subcommand that consumes
# a trace must refuse it with a nonzero exit and name the line.
bad_csv="$tmpdir/bad.csv"
printf 'src,dst,size_bytes,start_ns,is_incast\n0,1,100,2,0\n1,2,300,5.,0\n' > "$bad_csv"
for sub in "stats $bad_csv" \
           "replay $bad_csv --scheme bfc" \
           "snapshot $bad_csv --at-us 10 --out $tmpdir/bad.snap" \
           "resume $bad_csv --snapshot $tmpdir/nonexistent.snap" \
           "scenario $scenario_txt --trace $bad_csv --scheme bfc"; do
    err="$tmpdir/bad.err"
    if cargo run --release -q -p bfc-experiments --bin trace-tool -- $sub 2> "$err"; then
        echo "verify: FAILED — trace-tool $sub accepted a malformed trace" >&2
        exit 1
    fi
    if ! grep -q "line 3" "$err"; then
        echo "verify: FAILED — trace-tool $sub did not name the bad line:" >&2
        cat "$err" >&2
        exit 1
    fi
done

echo "== service mode: snapshot -> resume diffed against uninterrupted replay"
# A resumed run must be bit-identical to the uninterrupted one; the results
# table (FCT percentiles, utilization, drops) is the end-to-end witness.
# Exercise both engines: a serial snapshot and a 2-shard snapshot.
replay_out="$tmpdir/replay.txt"
cargo run --release -q -p bfc-experiments --bin trace-tool -- \
    replay "$trace_csv" --scheme bfc > "$replay_out"
for snap_shards in 1 2; do
    snap="$tmpdir/run-$snap_shards.snap"
    resume_out="$tmpdir/resume-$snap_shards.txt"
    cargo run --release -q -p bfc-experiments --bin trace-tool -- \
        snapshot "$trace_csv" --at-us 60 --out "$snap" --shards "$snap_shards"
    cargo run --release -q -p bfc-experiments --bin trace-tool -- \
        resume "$trace_csv" --snapshot "$snap" > "$resume_out"
    # First line is the banner (replayed... vs resumed...); the table below
    # it must match byte-for-byte.
    if ! diff -u <(tail -n +2 "$replay_out") <(tail -n +2 "$resume_out"); then
        echo "verify: FAILED — resume ($snap_shards-shard snapshot) differs from uninterrupted replay" >&2
        exit 1
    fi
done

echo "== service mode: serve --tail streaming smoke"
cargo run --release -q -p bfc-experiments --bin trace-tool -- \
    serve --tail "$trace_csv" --cap 16 --horizon-us 120 --seed 7

echo "== flight recorder: record -> inspect -> filter -> top smoke"
trace_tool="$PWD/target/release/trace-tool"
flight="$tmpdir/run.flight"
"$trace_tool" trace record "$trace_csv" --out "$flight" --last 500000 --scheme bfc
"$trace_tool" trace inspect "$flight" --limit 5 > "$tmpdir/inspect.txt"
if ! grep -q '^records:' "$tmpdir/inspect.txt" || ! grep -q '  enqueue' "$tmpdir/inspect.txt"; then
    echo "verify: FAILED — trace inspect did not summarize the recording:" >&2
    cat "$tmpdir/inspect.txt" >&2
    exit 1
fi
"$trace_tool" trace inspect "$flight" --stats > "$tmpdir/stats.txt"
if ! grep -q '  enqueue' "$tmpdir/stats.txt" || grep -q 'records (' "$tmpdir/stats.txt"; then
    echo "verify: FAILED — trace inspect --stats must print kind counts only:" >&2
    cat "$tmpdir/stats.txt" >&2
    exit 1
fi
"$trace_tool" trace filter "$flight" --kind dequeue --limit 3 > "$tmpdir/filter.txt"
if ! grep -q 'records match' "$tmpdir/filter.txt"; then
    echo "verify: FAILED — trace filter did not report matches" >&2
    exit 1
fi
"$trace_tool" trace top "$flight" --n 5 > /dev/null
"$trace_tool" trace top "$flight" --tree > /dev/null

echo "== divergence profiler: identical runs diff empty at 1/2/4 shards"
# Ring capacity is per shard, so cross-shard-count trace identity needs
# rings sized so nothing is shed: halve --last as the shard count doubles.
diff_base="$tmpdir/diff-base.flight"
"$trace_tool" trace record "$trace_csv" --out "$diff_base" --last 300000 --scheme bfc
for shards in 1 2 4; do
    other="$tmpdir/diff-$shards.flight"
    "$trace_tool" trace record "$trace_csv" --out "$other" \
        --last $((300000 / shards)) --scheme bfc --shards "$shards"
    diff_out="$tmpdir/diff-$shards.txt"
    if ! "$trace_tool" trace diff "$diff_base" "$other" > "$diff_out"; then
        echo "verify: FAILED — same-run traces diverged at $shards shard(s):" >&2
        cat "$diff_out" >&2
        exit 1
    fi
    if [[ -s "$diff_out" ]]; then
        echo "verify: FAILED — self-diff at $shards shard(s) was not silent:" >&2
        cat "$diff_out" >&2
        exit 1
    fi
done

echo "== divergence profiler: deadlock reproducer diverges before it deadlocks"
# bfc-vs-dcqcn on the committed reproducer must exit nonzero and name the
# first diverging record; run inside tmpdir because the DCQCN violation
# auto-dumps its flight trace into the working directory.
schemes_out="$tmpdir/diff-schemes.txt"
if ( cd "$tmpdir" && "$trace_tool" scenario "$OLDPWD/tests/scenarios/pfc_deadlock_dcqcn_t1.scn" \
        --diff-schemes bfc,dcqcn --trace-cap 4000000 > "$schemes_out" ); then
    echo "verify: FAILED — bfc-vs-dcqcn diff on the deadlock reproducer exited 0:" >&2
    cat "$schemes_out" >&2
    exit 1
fi
if ! grep -q 'first divergence at canonical record' "$schemes_out"; then
    echo "verify: FAILED — diff report does not name the first diverging record:" >&2
    cat "$schemes_out" >&2
    exit 1
fi

echo "== flight recorder: safety violation auto-dumps a readable trace"
# The committed livelock reproducer carries its own topology/scheme/workload;
# the scenario run must convict it and auto-dump the flight trace into the
# working directory, and the dump must hold the PFC pause deliveries the
# wait-for analysis was built from.
dump_dir="$tmpdir/dump"
mkdir -p "$dump_dir"
( cd "$dump_dir" && "$trace_tool" scenario "$OLDPWD/tests/scenarios/pfc_livelock_dcqcn_tiny.scn" \
    --trace-cap 500000 > scenario.out 2> scenario.err )
if ! grep -q 'VIOLATION' "$dump_dir/scenario.out"; then
    echo "verify: FAILED — committed livelock scenario no longer convicts:" >&2
    cat "$dump_dir/scenario.out" >&2
    exit 1
fi
flight_dump="$dump_dir/pfc_livelock_dcqcn_tiny-dcqcn.flight"
if [[ ! -s "$flight_dump" ]]; then
    echo "verify: FAILED — safety violation did not auto-dump a flight trace" >&2
    cat "$dump_dir/scenario.err" >&2
    exit 1
fi
"$trace_tool" trace inspect "$flight_dump" --limit 0 > "$tmpdir/dump-inspect.txt"
if ! grep -q '  pfc-delivered' "$tmpdir/dump-inspect.txt"; then
    echo "verify: FAILED — auto-dumped trace holds no PFC pause deliveries:" >&2
    cat "$tmpdir/dump-inspect.txt" >&2
    exit 1
fi

echo "== live metrics: persistent scrapes return exposition with histograms"
# A long-enough ingest run that scrapes land while the server is alive;
# port 0 lets the OS pick, and the bound address is announced on stderr.
# `--cap 4` keeps the inflight window far below the flow count so the sim
# advances between admissions and the live render carries real series.
long_csv="$tmpdir/long.csv"
"$trace_tool" synth --out "$long_csv" --duration-us 3000 --seed 7 > /dev/null
serve_err="$tmpdir/serve.err"
"$trace_tool" serve --tail "$long_csv" --cap 4 --horizon-us 3000 --seed 7 \
    --metrics 127.0.0.1:0 > "$tmpdir/serve.out" 2> "$serve_err" &
serve_pid=$!
metrics_addr=""
for _ in $(seq 1 100); do
    metrics_addr="$(sed -n 's/^metrics listening on //p' "$serve_err" | head -n1)"
    [[ -n "$metrics_addr" ]] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then break; fi
    sleep 0.1
done
if [[ -z "$metrics_addr" ]]; then
    echo "verify: FAILED — serve --metrics never announced its listener:" >&2
    cat "$serve_err" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
# Each connection streams one `# EOF`-terminated render immediately; a
# newline on the same socket requests a fresh one (continuous scraping).
read_scrape() {
    : > "$1"
    local line
    while IFS= read -r -t 5 line <&3; do
        [[ "$line" == "# EOF" ]] && return 0
        printf '%s\n' "$line" >> "$1"
    done
    return 1
}
scrape="$tmpdir/scrape.txt"
rescrape="$tmpdir/rescrape.txt"
scraped=0
for _ in $(seq 1 100); do
    if exec 3<>"/dev/tcp/${metrics_addr%:*}/${metrics_addr##*:}" 2>/dev/null; then
        if read_scrape "$scrape" && grep -q '_bucket{' "$scrape"; then
            # Double-scrape over the same connection.
            if printf '\n' >&3 && read_scrape "$rescrape"; then
                scraped=1
            fi
            exec 3<&- 3>&-
            [[ "$scraped" -eq 1 ]] && break
        else
            exec 3<&- 3>&-
        fi
    fi
    if ! kill -0 "$serve_pid" 2>/dev/null; then break; fi
    sleep 0.1
done
if [[ "$scraped" -ne 1 ]]; then
    echo "verify: FAILED — no double scrape with histogram data from $metrics_addr while serve was running" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
wait "$serve_pid"
if ! grep -q '^# TYPE bfc_' "$scrape" || ! grep -Eq '^bfc_[a-z_]+({[^}]*})? [0-9]' "$scrape"; then
    echo "verify: FAILED — scrape is not well-formed exposition text:" >&2
    cat "$scrape" >&2
    exit 1
fi
if ! grep -q '^# TYPE bfc_switch_queue_depth_bytes histogram' "$scrape" \
    || ! grep -q 'le="+Inf"' "$scrape" \
    || ! grep -q '^bfc_switch_queue_depth_bytes_count{' "$scrape"; then
    echo "verify: FAILED — live scrape is missing the native histogram series:" >&2
    grep 'queue_depth' "$scrape" >&2 || true
    exit 1
fi
if ! grep -q '^# TYPE bfc_' "$rescrape"; then
    echo "verify: FAILED — second scrape over the same connection is not exposition text:" >&2
    cat "$rescrape" >&2
    exit 1
fi

echo "== bench: cargo run --release -p bfc-bench -- --quick"
# The committed baseline records absolute ns on the machine that wrote it at
# full fidelity, while this check runs in quick mode — noise and machine
# differences eat into the margin. 25% is the standing tolerance on the
# baseline machine; on different hardware raise it via
#   BFC_BENCH_MAX_REGRESS=60 scripts/verify.sh
# or refresh the baseline (see above) from that machine instead.
max_regress="${BFC_BENCH_MAX_REGRESS:-25}"
baseline="BENCH.json"
if [[ -f "$baseline" ]]; then
    # Don't clobber the committed baseline during routine verification;
    # write to a temp file and diff the medians against the baseline.
    out="$tmpdir/bench.json"
    cargo run --release -q -p bfc-bench -- --quick --out "$out" --compare "$baseline" --max-regress "$max_regress"
else
    # First run on a fresh checkout: establish the baseline.
    cargo run --release -q -p bfc-bench -- --quick --out "$baseline" >/dev/null
    echo "wrote initial $baseline (no baseline to compare against)"
fi

echo "verify: OK"
