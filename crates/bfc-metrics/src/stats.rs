//! Percentiles, means and CDFs.

/// The `p`-th percentile (0–100) of `values` using nearest-rank on a sorted
/// copy. Returns `None` for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric values must not be NaN"));
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

/// Arithmetic mean, `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Builds an empirical CDF: `points` evenly spaced quantiles as
/// `(value, cumulative_fraction)` pairs. Useful for the buffer-occupancy and
/// collision CDF figures.
pub fn build_cdf(values: &[f64], points: usize) -> Vec<(f64, f64)> {
    if values.is_empty() || points == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric values must not be NaN"));
    (1..=points)
        .map(|i| {
            let frac = i as f64 / points as f64;
            let idx = ((frac * sorted.len() as f64).ceil() as usize)
                .saturating_sub(1)
                .min(sorted.len() - 1);
            (sorted[idx], frac)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 50.0), Some(50.0));
        assert_eq!(percentile(&v, 99.0), Some(99.0));
        assert_eq!(percentile(&v, 100.0), Some(100.0));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn percentile_empty_slice_is_none() {
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(percentile(&[], p), None);
        }
    }

    #[test]
    fn percentile_single_element_is_that_element_at_any_p() {
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[42.5], p), Some(42.5));
        }
    }

    #[test]
    fn percentile_p0_and_p100_are_the_extremes() {
        let v = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(9.0));
    }

    #[test]
    fn percentile_out_of_range_p_is_clamped() {
        let v = [2.0, 4.0, 6.0];
        assert_eq!(percentile(&v, -10.0), percentile(&v, 0.0));
        assert_eq!(percentile(&v, 250.0), percentile(&v, 100.0));
    }

    #[test]
    fn percentile_is_order_independent() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        for p in [0.0, 25.0, 50.0, 75.0, 100.0] {
            assert_eq!(percentile(&sorted, p), percentile(&shuffled, p));
        }
    }

    #[test]
    fn mean_simple() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn cdf_is_monotone_and_covers_range() {
        let v: Vec<f64> = (0..1000).map(|x| (x % 97) as f64).collect();
        let cdf = build_cdf(&v, 20);
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert_eq!(cdf.last().unwrap().0, 96.0);
    }

    #[test]
    fn cdf_empty_inputs() {
        assert!(build_cdf(&[], 10).is_empty());
        assert!(build_cdf(&[1.0], 0).is_empty());
    }
}
