//! Time-series metrics: buffer occupancy samples, link utilization and PFC
//! pause-time fractions.

use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};
use bfc_sim::{SimDuration, SimTime};

use crate::stats::{build_cdf, percentile};

/// Periodic samples of switch buffer occupancy (one series covering every
/// switch of the fabric, as in the paper's shared-buffer CDFs).
#[derive(Debug, Clone, Default)]
pub struct OccupancySeries {
    samples_bytes: Vec<f64>,
}

impl OccupancySeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        OccupancySeries::default()
    }

    /// Records one occupancy sample (bytes).
    pub fn record(&mut self, bytes: u64) {
        self.samples_bytes.push(bytes as f64);
    }

    /// The raw samples, in recording order.
    pub fn samples(&self) -> &[f64] {
        &self.samples_bytes
    }

    /// Reassembles per-shard occupancy series into the series one collector
    /// covering every switch would have recorded.
    ///
    /// Each part records its own switches — in global node order — at every
    /// tick, so part `p` contributes `parts[p].len() / ticks` consecutive
    /// values per tick. `owner` gives, for each global recording slot within
    /// one tick (i.e. for each switch in global node order), the index of
    /// the part that owns it. The merge walks every tick and pulls each
    /// slot's value from its owner's cursor: a pure reordering, bit-exact.
    pub fn merge_interleaved(parts: &[&OccupancySeries], owner: &[usize], ticks: usize) -> Self {
        let mut cursors = vec![0usize; parts.len()];
        let mut widths = vec![0usize; parts.len()];
        for &p in owner {
            widths[p] += 1;
        }
        for (p, part) in parts.iter().enumerate() {
            assert_eq!(
                part.len(),
                widths[p] * ticks,
                "part {p} must hold exactly its owned slots for every tick"
            );
        }
        let mut merged = OccupancySeries {
            samples_bytes: Vec::with_capacity(owner.len() * ticks),
        };
        for tick in 0..ticks {
            for &p in owner {
                // Owners record their slots in the same global order within
                // each tick, so per-part cursors advance monotonically.
                let base = tick * widths[p];
                let offset = cursors[p] - base;
                debug_assert!(offset < widths[p]);
                merged
                    .samples_bytes
                    .push(parts[p].samples_bytes[base + offset]);
                cursors[p] += 1;
            }
        }
        merged
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_bytes.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_bytes.is_empty()
    }

    /// CDF of occupancy in megabytes, for Figs. 2 and 6a.
    pub fn cdf_mb(&self, points: usize) -> Vec<(f64, f64)> {
        build_cdf(&self.samples_bytes, points)
            .into_iter()
            .map(|(bytes, frac)| (bytes / 1e6, frac))
            .collect()
    }

    /// A percentile of occupancy in bytes (Fig. 8b uses the 99th).
    pub fn percentile_bytes(&self, p: f64) -> f64 {
        percentile(&self.samples_bytes, p).unwrap_or(0.0)
    }

    /// Maximum observed occupancy in bytes.
    pub fn max_bytes(&self) -> f64 {
        self.samples_bytes.iter().copied().fold(0.0, f64::max)
    }

    /// Serializes the sample series (floats by bits) for snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.samples_bytes.len());
        for &v in &self.samples_bytes {
            w.put_f64(v);
        }
    }

    /// Rebuilds a series from [`OccupancySeries::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_count(8)?;
        let mut samples_bytes = Vec::with_capacity(n);
        for _ in 0..n {
            samples_bytes.push(r.get_f64()?);
        }
        Ok(OccupancySeries { samples_bytes })
    }
}

/// Aggregates goodput and pause time into the paper's utilization and
/// "% of time paused" metrics.
#[derive(Debug, Clone)]
pub struct UtilizationTracker {
    host_gbps: f64,
    num_hosts: usize,
    duration: SimDuration,
    delivered_bytes: u64,
    pfc_paused: SimDuration,
    pfc_links: usize,
}

impl UtilizationTracker {
    /// Creates a tracker for a fabric of `num_hosts` hosts with `host_gbps`
    /// access links, over an experiment of length `duration`.
    pub fn new(num_hosts: usize, host_gbps: f64, duration: SimDuration) -> Self {
        UtilizationTracker {
            host_gbps,
            num_hosts,
            duration,
            delivered_bytes: 0,
            pfc_paused: SimDuration::ZERO,
            pfc_links: 0,
        }
    }

    /// Adds goodput delivered to some receiver.
    pub fn add_delivered_bytes(&mut self, bytes: u64) {
        self.delivered_bytes += bytes;
    }

    /// Adds one link's cumulative PFC pause time.
    pub fn add_pfc_paused(&mut self, paused: SimDuration) {
        self.pfc_paused += paused;
        self.pfc_links += 1;
    }

    /// Total delivered bytes.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Goodput divided by aggregate host capacity — the paper's network
    /// utilization metric (Fig. 8a).
    pub fn utilization(&self) -> f64 {
        let capacity_bytes = self.num_hosts as f64 * self.host_gbps * 1e9 / 8.0
            * self.duration.as_secs_f64();
        if capacity_bytes <= 0.0 {
            0.0
        } else {
            self.delivered_bytes as f64 / capacity_bytes
        }
    }

    /// Average fraction of time a link spent paused by PFC (Fig. 6b).
    pub fn pfc_pause_fraction(&self) -> f64 {
        if self.pfc_links == 0 || self.duration.is_zero() {
            0.0
        } else {
            self.pfc_paused.as_secs_f64() / (self.pfc_links as f64 * self.duration.as_secs_f64())
        }
    }

    /// Experiment duration.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// Convenience: utilization achieved between two instants given delivered
    /// bytes (used by tests).
    pub fn utilization_of(bytes: u64, num_hosts: usize, host_gbps: f64, span: SimDuration) -> f64 {
        let mut t = UtilizationTracker::new(num_hosts, host_gbps, span);
        t.add_delivered_bytes(bytes);
        t.utilization()
    }
}

/// Helper for measuring how long a boolean condition has been true, given
/// edge-triggered updates (used by tests mirroring the switch's PFC pause
/// accounting).
#[derive(Debug, Clone, Default)]
pub struct PausedTimeAccumulator {
    total: SimDuration,
    since: Option<SimTime>,
}

impl PausedTimeAccumulator {
    /// Creates an accumulator in the "not paused" state.
    pub fn new() -> Self {
        PausedTimeAccumulator::default()
    }

    /// Records a transition at `now`.
    pub fn set(&mut self, paused: bool, now: SimTime) {
        match (paused, self.since) {
            (true, None) => self.since = Some(now),
            (false, Some(start)) => {
                self.total += now.saturating_since(start);
                self.since = None;
            }
            _ => {}
        }
    }

    /// Total paused time up to `now`.
    pub fn total(&self, now: SimTime) -> SimDuration {
        match self.since {
            Some(start) => self.total + now.saturating_since(start),
            None => self.total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_cdf_and_percentiles() {
        let mut s = OccupancySeries::new();
        for i in 0..100u64 {
            s.record(i * 100_000); // 0 .. 9.9 MB
        }
        assert_eq!(s.len(), 100);
        let cdf = s.cdf_mb(10);
        assert_eq!(cdf.len(), 10);
        assert!((cdf.last().unwrap().0 - 9.9).abs() < 1e-9);
        assert!(s.percentile_bytes(50.0) <= s.percentile_bytes(99.0));
        assert_eq!(s.max_bytes(), 9_900_000.0);
    }

    #[test]
    fn merge_interleaved_reorders_shard_series_exactly() {
        // Global switch order: [A(part0), B(part1), C(part0)] over 2 ticks.
        // Part 0 records A, C per tick; part 1 records B per tick.
        let mut p0 = OccupancySeries::new();
        let mut p1 = OccupancySeries::new();
        for tick in 0..2u64 {
            p0.record(100 + tick); // A
            p0.record(300 + tick); // C
            p1.record(200 + tick); // B
        }
        let merged = OccupancySeries::merge_interleaved(&[&p0, &p1], &[0, 1, 0], 2);
        assert_eq!(
            merged.samples(),
            &[100.0, 200.0, 300.0, 101.0, 201.0, 301.0]
        );
    }

    #[test]
    fn merge_interleaved_of_one_part_is_identity() {
        let mut s = OccupancySeries::new();
        for v in [5u64, 7, 9, 11] {
            s.record(v);
        }
        let merged = OccupancySeries::merge_interleaved(&[&s], &[0, 0], 2);
        assert_eq!(merged.samples(), s.samples());
    }

    #[test]
    #[should_panic(expected = "every tick")]
    fn merge_interleaved_rejects_misaligned_parts() {
        let mut s = OccupancySeries::new();
        s.record(1);
        let _ = OccupancySeries::merge_interleaved(&[&s], &[0], 2);
    }

    #[test]
    fn utilization_math() {
        // 64 hosts at 100 Gbps for 1 ms can carry 800 MB.
        let u = UtilizationTracker::utilization_of(
            400_000_000,
            64,
            100.0,
            SimDuration::from_millis(1),
        );
        assert!((u - 0.5).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn pfc_fraction_averages_over_links() {
        let mut t = UtilizationTracker::new(4, 100.0, SimDuration::from_millis(1));
        t.add_pfc_paused(SimDuration::from_micros(100));
        t.add_pfc_paused(SimDuration::from_micros(300));
        // Two links, 1 ms each: 400 us paused of 2 ms total = 20%.
        assert!((t.pfc_pause_fraction() - 0.2).abs() < 1e-9);
        assert_eq!(t.duration(), SimDuration::from_millis(1));
    }

    #[test]
    fn empty_trackers_are_zero() {
        let t = UtilizationTracker::new(4, 100.0, SimDuration::from_millis(1));
        assert_eq!(t.utilization(), 0.0);
        assert_eq!(t.pfc_pause_fraction(), 0.0);
        assert!(OccupancySeries::new().is_empty());
    }

    #[test]
    fn paused_accumulator_tracks_intervals() {
        let mut a = PausedTimeAccumulator::new();
        a.set(true, SimTime::from_micros(10));
        a.set(false, SimTime::from_micros(15));
        a.set(true, SimTime::from_micros(20));
        assert_eq!(a.total(SimTime::from_micros(22)).as_nanos(), 7_000);
        a.set(false, SimTime::from_micros(25));
        a.set(false, SimTime::from_micros(30));
        assert_eq!(a.total(SimTime::from_micros(40)).as_nanos(), 10_000);
    }
}
