//! Safety analysis: PFC deadlock, pause storms, livelock.
//!
//! The PFC/BFC literature (and §2 of the paper) cares about three failure
//! modes that ordinary FCT/goodput metrics do not surface:
//!
//! * **PFC deadlock** — priority-flow-control pauses form a *wait-for
//!   graph*: when switch `Y` sends a pause frame to its upstream `X`, `X`'s
//!   egress toward `Y` stalls, so `X` waits for `Y`. A cycle in this graph
//!   that persists means no member can ever drain — the classic circular
//!   buffer dependency. Transient cycles do occur in healthy operation
//!   (pauses are short and release as queues drain), so only a cycle that
//!   survives at least [`SafetyConfig::deadlock_hold`] counts as a
//!   violation; shorter-lived ones are tallied as `cycles_formed`.
//! * **Pause storms** — cascades of pause frames propagating upstream. We
//!   track the total pause-frame count, the worst per-link count inside any
//!   fixed [`SafetyConfig::storm_window`], and the maximum *propagation
//!   depth*: a pause of `X` by `Y` while `Y` is itself paused by `Z` (which
//!   is paused by …) has depth `1 + depth(Y)`.
//! * **Livelock** — the fabric is "up", flows remain pending, and yet
//!   goodput is pinned at zero for at least
//!   [`SafetyConfig::livelock_horizon`] at the end of the run — the
//!   signature of flapping-link schedules that keep resetting recovery.
//!
//! A [`SafetyTracker`] accumulates raw observations during a run (pause
//! install/release edges from the driver's PFC interception, plus goodput
//! samples at every tick); [`SafetyTracker::finish`] replays the
//! canonically-sorted edge log into a [`SafetyReport`]. Like every other
//! metric in this workspace, the report is bit-identical across shard
//! counts: each wait-for edge `X → Y` is recorded only by the shard that
//! owns `X`, per-edge order is preserved by the engine's determinism, and
//! the replay sorts stably by `(time, X, Y)` in both the serial and the
//! merged path.

use std::collections::BTreeMap;

use bfc_net::types::NodeId;
use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};
use bfc_sim::{SimDuration, SimTime};

use crate::hist::Hist;

/// Thresholds for the three safety detectors. Analysis-only: changing these
/// never changes simulation behavior, only how the observations are judged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafetyConfig {
    /// A wait-for cycle must persist this long to count as a deadlock
    /// (shorter cycles are healthy transients and only tally
    /// `cycles_formed`).
    pub deadlock_hold: SimDuration,
    /// Zero goodput for at least this long at the end of a run — while
    /// flows remain pending — counts as livelock.
    pub livelock_horizon: SimDuration,
    /// Window for the worst per-link pause-frame count.
    pub storm_window: SimDuration,
}

impl Default for SafetyConfig {
    /// 20 µs hold (several pause/resume round trips on a datacenter RTT),
    /// 100 µs livelock horizon, 10 µs storm window (the default sample
    /// interval).
    fn default() -> Self {
        SafetyConfig {
            deadlock_hold: SimDuration::from_micros(20),
            livelock_horizon: SimDuration::from_micros(100),
            storm_window: SimDuration::from_micros(10),
        }
    }
}

/// One PFC wait-for edge observation: at `at`, the egress of `from` toward
/// `to` was paused (`pause`) or resumed (`!pause`) by a PFC frame from `to`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PauseEdge {
    at: SimTime,
    from: NodeId,
    to: NodeId,
    pause: bool,
}

/// Accumulates raw safety observations during a run. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct SafetyTracker {
    edges: Vec<PauseEdge>,
    /// Per-sample delivered bytes, `(instant, bytes since previous sample)`
    /// — recorded at *every* tick, unlike the recovery tracker's
    /// dynamics-gated sampling.
    samples: Vec<(SimTime, u64)>,
    last_cumulative: u64,
    /// Derived online from the edge log (never serialized — rebuilt by
    /// replay on restore): install time of each currently-paused edge,
    /// and the distribution of closed pause intervals in nanoseconds.
    open_pauses: BTreeMap<(NodeId, NodeId), SimTime>,
    pause_hist: Hist,
}

impl SafetyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        SafetyTracker::default()
    }

    /// Records a PFC frame delivery: `from`'s egress toward `to` pauses
    /// (`pause`) or resumes (`!pause`) at `now`. Call from the shard that
    /// owns `from`, in its processing order.
    pub fn record_pause(&mut self, now: SimTime, from: NodeId, to: NodeId, pause: bool) {
        self.edges.push(PauseEdge {
            at: now,
            from,
            to,
            pause,
        });
        self.update_pause_hist(now, from, to, pause);
    }

    /// The online pause-duration update: XOFF opens an interval on the
    /// edge (refreshes keep the original install time); XON closes it and
    /// records the duration. Pulled out of [`SafetyTracker::record_pause`]
    /// so [`SafetyTracker::restore_state`] can rebuild the derived state
    /// by replaying the serialized edge log.
    fn update_pause_hist(&mut self, now: SimTime, from: NodeId, to: NodeId, pause: bool) {
        let key = (from, to);
        if pause {
            self.open_pauses.entry(key).or_insert(now);
        } else if let Some(start) = self.open_pauses.remove(&key) {
            self.pause_hist.observe(now.saturating_since(start).as_nanos());
        }
    }

    /// The distribution of PFC pause intervals per wait-for edge, in
    /// nanoseconds; intervals still open are closed at `end`. All edges of
    /// one `(from, to)` pair are recorded by the shard owning `from`, so
    /// merged per-shard histograms are bit-identical to the serial one.
    pub fn pause_durations(&self, end: SimTime) -> Hist {
        let mut hist = self.pause_hist.clone();
        for (_, &start) in &self.open_pauses {
            hist.observe(end.saturating_since(start).as_nanos());
        }
        hist
    }

    /// Records one goodput sample: `cumulative_bytes` is the running total
    /// of delivered bytes across this tracker's receivers at `now`. Call at
    /// every sample tick, in time order.
    pub fn record_goodput(&mut self, now: SimTime, cumulative_bytes: u64) {
        let delta = cumulative_bytes.saturating_sub(self.last_cumulative);
        self.last_cumulative = cumulative_bytes;
        self.samples.push((now, delta));
    }

    /// Merges per-shard trackers into the tracker one fabric-wide collector
    /// would have built. Edge logs concatenate (each `(from, *)` edge is
    /// recorded by exactly one shard; [`SafetyTracker::finish`] sorts
    /// canonically anyway); lockstep goodput ticks sum per instant, exactly
    /// like the recovery tracker.
    pub fn merge(parts: Vec<SafetyTracker>) -> SafetyTracker {
        let mut merged = SafetyTracker::new();
        for part in &parts {
            merged.last_cumulative += part.last_cumulative;
            merged.edges.extend(part.edges.iter().copied());
            // Edge keys are shard-disjoint, so the open maps never collide
            // and the histogram merge is exact.
            merged.open_pauses.extend(part.open_pauses.iter().map(|(&k, &v)| (k, v)));
            merged.pause_hist.merge(&part.pause_hist);
        }
        if let Some(longest) = parts.iter().map(|p| p.samples.len()).max() {
            for tick in 0..longest {
                let mut at = None;
                let mut delta = 0u64;
                for part in &parts {
                    if let Some(&(t, d)) = part.samples.get(tick) {
                        debug_assert!(
                            at.is_none_or(|a| a == t),
                            "shards must sample at identical instants"
                        );
                        at = Some(t);
                        delta += d;
                    }
                }
                if let Some(t) = at {
                    merged.samples.push((t, delta));
                }
            }
        }
        merged
    }

    /// Serializes the accumulated observations for snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.edges.len());
        for e in &self.edges {
            w.put_u64(e.at.as_picos());
            w.put_u32(e.from.0);
            w.put_u32(e.to.0);
            w.put_bool(e.pause);
        }
        w.put_usize(self.samples.len());
        for &(t, bytes) in &self.samples {
            w.put_u64(t.as_picos());
            w.put_u64(bytes);
        }
        w.put_u64(self.last_cumulative);
    }

    /// Rebuilds a tracker from [`SafetyTracker::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_count(17)?;
        let mut edges = Vec::with_capacity(n);
        for _ in 0..n {
            edges.push(PauseEdge {
                at: SimTime::from_picos(r.get_u64()?),
                from: NodeId(r.get_u32()?),
                to: NodeId(r.get_u32()?),
                pause: r.get_bool()?,
            });
        }
        let n = r.get_count(16)?;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let t = SimTime::from_picos(r.get_u64()?);
            samples.push((t, r.get_u64()?));
        }
        let mut tracker = SafetyTracker {
            edges,
            samples,
            last_cumulative: r.get_u64()?,
            open_pauses: BTreeMap::new(),
            pause_hist: Hist::new(),
        };
        // Rebuild the derived pause-duration state by replaying the edge
        // log in recorded order — bit-identical to the uninterrupted
        // tracker, with no extra bytes in the snapshot format.
        for i in 0..tracker.edges.len() {
            let e = tracker.edges[i];
            tracker.update_pause_hist(e.at, e.from, e.to, e.pause);
        }
        Ok(tracker)
    }

    /// Replays the observations into a [`SafetyReport`]. `end` is the run's
    /// end time (bounds the lifetime of never-released cycles and the
    /// trailing stall); `pending_flows` is how many flows had not completed
    /// by then (livelock needs at least one).
    pub fn finish(&self, config: &SafetyConfig, end: SimTime, pending_flows: usize) -> SafetyReport {
        let mut report = SafetyReport::default();

        // Canonical order: stable by (time, from, to), so the merged
        // per-shard logs and the serial log replay identically; same-key
        // events (install + release of one edge at one instant) keep the
        // owning shard's processing order.
        let mut edges = self.edges.clone();
        edges.sort_by_key(|e| (e.at, e.from, e.to));

        // Live wait-for edges with their propagation depth.
        let mut live: BTreeMap<(NodeId, NodeId), u32> = BTreeMap::new();
        // Cycles currently intact: formation time + member edges.
        let mut candidates: Vec<(SimTime, Vec<(NodeId, NodeId)>)> = Vec::new();
        // Streaming per-link storm-window counter: (window index, count).
        let mut storm: BTreeMap<(NodeId, NodeId), (u64, u64)> = BTreeMap::new();
        let storm_ps = config.storm_window.as_picos().max(1);

        let confirm = |report: &mut SafetyReport, formed: SimTime, released: SimTime, cycle: &[(NodeId, NodeId)]| {
            if released.saturating_since(formed) >= config.deadlock_hold {
                report.deadlocks += 1;
                if report.first_deadlock_at.is_none() {
                    report.first_deadlock_at = Some(formed);
                    report.first_deadlock_cycle = cycle.iter().map(|&(a, _)| a).collect();
                }
            }
        };

        for e in &edges {
            let key = (e.from, e.to);
            if e.pause {
                report.pause_frames += 1;
                let window = e.at.as_picos() / storm_ps;
                let entry = storm.entry(key).or_insert((window, 0));
                if entry.0 != window {
                    *entry = (window, 0);
                }
                entry.1 += 1;
                report.max_link_window_frames = report.max_link_window_frames.max(entry.1);

                if live.contains_key(&key) {
                    // A refresh of an already-live edge: the wait-for graph
                    // is unchanged, so no new depth or cycle can arise.
                    continue;
                }
                let depth = 1 + live
                    .range((e.to, NodeId(0))..=(e.to, NodeId(u32::MAX)))
                    .map(|(_, &d)| d)
                    .max()
                    .unwrap_or(0);
                live.insert(key, depth);
                report.max_pause_depth = report.max_pause_depth.max(depth);

                // Does the new edge close a cycle? DFS from `to` back to
                // `from` over live edges (BTreeMap iteration order keeps it
                // deterministic).
                if let Some(path) = find_path(&live, e.to, e.from) {
                    report.cycles_formed += 1;
                    let mut cycle = vec![key];
                    cycle.extend(path);
                    candidates.push((e.at, cycle));
                }
            } else {
                live.remove(&key);
                // A released member breaks every cycle it participated in;
                // cycles that were held long enough are deadlocks.
                let mut kept = Vec::with_capacity(candidates.len());
                for (formed, cycle) in candidates.drain(..) {
                    if cycle.contains(&key) {
                        confirm(&mut report, formed, e.at, &cycle);
                    } else {
                        kept.push((formed, cycle));
                    }
                }
                candidates = kept;
            }
        }
        // Cycles still intact at the end of the run were held until `end`.
        for (formed, cycle) in candidates.drain(..) {
            confirm(&mut report, formed, end, &cycle);
        }

        // Livelock: flows pending, and the trailing span with zero goodput
        // is at least the horizon.
        if pending_flows > 0 {
            if let Some(&(last_tick, _)) = self.samples.last() {
                let stalled_from = self
                    .samples
                    .iter()
                    .rev()
                    .find(|&&(_, d)| d > 0)
                    .map(|&(t, _)| t)
                    .unwrap_or(SimTime::ZERO);
                report.stalled_for = last_tick.saturating_since(stalled_from);
                report.livelock = report.stalled_for >= config.livelock_horizon;
            }
        }
        report
    }
}

/// DFS from `start` to `goal` over the live wait-for edges; returns the
/// path's edges in order, or `None` if unreachable.
fn find_path(
    live: &BTreeMap<(NodeId, NodeId), u32>,
    start: NodeId,
    goal: NodeId,
) -> Option<Vec<(NodeId, NodeId)>> {
    let mut stack = vec![start];
    let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    while let Some(node) = stack.pop() {
        if node == goal {
            // Walk parents back to `start`, collecting edges.
            let mut path = Vec::new();
            let mut at = goal;
            while at != start {
                let p = parent[&at];
                path.push((p, at));
                at = p;
            }
            path.reverse();
            return Some(path);
        }
        for (&(_, next), _) in live.range((node, NodeId(0))..=(node, NodeId(u32::MAX))) {
            if next != start && !parent.contains_key(&next) {
                parent.insert(next, node);
                stack.push(next);
            }
        }
    }
    None
}

/// The safety summary of one experiment run. `Default` is the all-clear.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SafetyReport {
    /// PFC pause (XOFF) frames delivered.
    pub pause_frames: u64,
    /// Deepest pause-propagation chain observed (0 = PFC never fired).
    pub max_pause_depth: u32,
    /// Worst pause-frame count on one directed link inside one storm
    /// window.
    pub max_link_window_frames: u64,
    /// Wait-for cycles observed at pause install, including healthy
    /// transients.
    pub cycles_formed: u64,
    /// Cycles that persisted at least the configured hold — the PFC
    /// deadlock count. Non-zero is a safety violation.
    pub deadlocks: u64,
    /// Formation time of the first confirmed deadlock.
    pub first_deadlock_at: Option<SimTime>,
    /// The nodes of the first confirmed deadlock's cycle, in wait order.
    pub first_deadlock_cycle: Vec<NodeId>,
    /// Goodput pinned at zero past the horizon while flows were pending.
    /// A safety violation.
    pub livelock: bool,
    /// Length of the trailing zero-goodput span (diagnostic; only a
    /// violation when `livelock` is set).
    pub stalled_for: SimDuration,
}

impl SafetyReport {
    /// Number of safety violations: confirmed deadlocks plus livelock.
    pub fn violations(&self) -> u64 {
        self.deadlocks + u64::from(self.livelock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    fn node(n: u32) -> NodeId {
        NodeId(n)
    }

    /// Builds the canonical constructed-positive: a three-switch circular
    /// buffer dependency A→B→C→A installed at t=10us.
    fn cycle_at_10us(t: &mut SafetyTracker) {
        t.record_pause(us(10), node(0), node(1), true);
        t.record_pause(us(10), node(1), node(2), true);
        t.record_pause(us(10), node(2), node(0), true);
    }

    #[test]
    fn persistent_cycle_is_a_deadlock() {
        let mut t = SafetyTracker::new();
        cycle_at_10us(&mut t);
        // Released after 40us — twice the default 20us hold.
        t.record_pause(us(50), node(0), node(1), false);
        let r = t.finish(&SafetyConfig::default(), us(100), 0);
        assert_eq!(r.cycles_formed, 1);
        assert_eq!(r.deadlocks, 1);
        assert_eq!(r.violations(), 1);
        assert_eq!(r.first_deadlock_at, Some(us(10)));
        let mut nodes = r.first_deadlock_cycle.clone();
        nodes.sort();
        assert_eq!(nodes, vec![node(0), node(1), node(2)]);
    }

    #[test]
    fn transient_cycle_is_not_a_deadlock() {
        let mut t = SafetyTracker::new();
        cycle_at_10us(&mut t);
        // Broken after 5us — well under the hold: healthy PFC churn.
        t.record_pause(us(15), node(1), node(2), false);
        let r = t.finish(&SafetyConfig::default(), us(100), 0);
        assert_eq!(r.cycles_formed, 1);
        assert_eq!(r.deadlocks, 0);
        assert_eq!(r.violations(), 0);
    }

    #[test]
    fn unreleased_cycle_is_held_until_the_end_of_the_run() {
        let mut t = SafetyTracker::new();
        cycle_at_10us(&mut t);
        let r = t.finish(&SafetyConfig::default(), us(25), 0);
        assert_eq!(r.deadlocks, 0, "held 15us < 20us hold");
        let r = t.finish(&SafetyConfig::default(), us(100), 0);
        assert_eq!(r.deadlocks, 1, "held 90us at run end");
    }

    #[test]
    fn pause_depth_chains_through_live_edges() {
        let mut t = SafetyTracker::new();
        // C pauses B first, then B pauses A: A's pause has depth 2.
        t.record_pause(us(10), node(1), node(2), true);
        t.record_pause(us(11), node(0), node(1), true);
        let r = t.finish(&SafetyConfig::default(), us(100), 0);
        assert_eq!(r.max_pause_depth, 2);
        assert_eq!(r.pause_frames, 2);
        // Released edges no longer deepen later pauses.
        let mut t = SafetyTracker::new();
        t.record_pause(us(10), node(1), node(2), true);
        t.record_pause(us(12), node(1), node(2), false);
        t.record_pause(us(14), node(0), node(1), true);
        let r = t.finish(&SafetyConfig::default(), us(100), 0);
        assert_eq!(r.max_pause_depth, 1);
    }

    #[test]
    fn storm_window_tracks_the_worst_link() {
        let cfg = SafetyConfig::default(); // 10us window
        let mut t = SafetyTracker::new();
        // Three pause/release rounds on one link inside one window, one
        // round on another link.
        for i in 0..3u64 {
            t.record_pause(us(20) + SimDuration::from_micros(i), node(0), node(1), true);
            t.record_pause(
                us(20) + SimDuration::from_micros(i) + SimDuration::from_nanos(100),
                node(0),
                node(1),
                false,
            );
        }
        t.record_pause(us(21), node(2), node(3), true);
        let r = t.finish(&cfg, us(100), 0);
        assert_eq!(r.pause_frames, 4);
        assert_eq!(r.max_link_window_frames, 3);
        // The same three rounds spread across distinct windows peak at 1.
        let mut t = SafetyTracker::new();
        for i in 0..3u64 {
            t.record_pause(us(20 + 10 * i), node(0), node(1), true);
            t.record_pause(us(25 + 10 * i), node(0), node(1), false);
        }
        let r = t.finish(&cfg, us(100), 0);
        assert_eq!(r.max_link_window_frames, 1);
    }

    #[test]
    fn livelock_needs_pending_flows_and_a_long_stall() {
        let cfg = SafetyConfig::default(); // 100us horizon
        let mut t = SafetyTracker::new();
        let mut cumulative = 0;
        for i in 1..=5u64 {
            cumulative += 1_000;
            t.record_goodput(us(i * 10), cumulative);
        }
        for i in 6..=20u64 {
            t.record_goodput(us(i * 10), cumulative); // zero from t=60 on
        }
        // Stalled 150us ≥ 100us horizon with flows pending: livelock.
        let r = t.finish(&cfg, us(200), 3);
        assert!(r.livelock);
        assert_eq!(r.stalled_for, SimDuration::from_micros(150));
        assert_eq!(r.violations(), 1);
        // Same trace with everything completed: not a livelock.
        let r = t.finish(&cfg, us(200), 0);
        assert!(!r.livelock);
        assert_eq!(r.violations(), 0);
        // A short trailing stall with flows pending: not a livelock either.
        let mut t = SafetyTracker::new();
        t.record_goodput(us(10), 1_000);
        t.record_goodput(us(20), 1_000);
        let r = t.finish(&cfg, us(20), 3);
        assert!(!r.livelock);
        assert_eq!(r.stalled_for, SimDuration::from_micros(10));
    }

    #[test]
    fn merging_shard_trackers_matches_the_fabric_wide_tracker() {
        // Shard 0 owns nodes {0, 2}, shard 1 owns node {1}: each wait-for
        // edge is recorded by its `from`-owner only.
        let mut whole = SafetyTracker::new();
        let mut shard0 = SafetyTracker::new();
        let mut shard1 = SafetyTracker::new();
        for (at, from, to, pause) in [
            (10u64, 0u32, 1u32, true),
            (10, 1, 2, true),
            (10, 2, 0, true),
            (40, 1, 2, false),
        ] {
            whole.record_pause(us(at), node(from), node(to), pause);
            let shard = if from == 1 { &mut shard1 } else { &mut shard0 };
            shard.record_pause(us(at), node(from), node(to), pause);
        }
        let deliveries = [(10u64, 600u64, 400u64), (20, 700, 400), (30, 700, 500)];
        let (mut c, mut c0, mut c1) = (0, 0, 0);
        for (at, a, b) in deliveries {
            c += a + b;
            c0 += a;
            c1 += b;
            whole.record_goodput(us(at), c);
            shard0.record_goodput(us(at), c0);
            shard1.record_goodput(us(at), c1);
        }
        let merged = SafetyTracker::merge(vec![shard0, shard1]);
        let cfg = SafetyConfig::default();
        assert_eq!(merged.finish(&cfg, us(100), 2), whole.finish(&cfg, us(100), 2));
        assert_eq!(merged.finish(&cfg, us(100), 2).deadlocks, 1);
    }

    #[test]
    fn save_restore_round_trips() {
        let mut t = SafetyTracker::new();
        cycle_at_10us(&mut t);
        t.record_pause(us(30), node(0), node(1), false);
        t.record_goodput(us(10), 500);
        t.record_goodput(us(20), 1_500);
        let mut w = SnapWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let restored = SafetyTracker::restore_state(&mut r).expect("restores");
        let cfg = SafetyConfig::default();
        assert_eq!(restored.finish(&cfg, us(50), 1), t.finish(&cfg, us(50), 1));
        // A later sample continues from the restored cumulative counter.
        let mut t2 = restored.clone();
        t2.record_goodput(us(30), 1_600);
        assert_eq!(t2.samples.last(), Some(&(us(30), 100)));
    }

    #[test]
    fn pause_durations_close_open_intervals_at_end_and_survive_restore() {
        let mut t = SafetyTracker::new();
        t.record_pause(us(10), node(0), node(1), true);
        t.record_pause(us(12), node(0), node(1), true); // refresh, start unchanged
        t.record_pause(us(15), node(0), node(1), false); // 5us closed
        t.record_pause(us(20), node(2), node(3), true); // open until end
        let h = t.pause_durations(us(30));
        assert_eq!(h.count(), 2);
        let mut expect = Hist::new();
        expect.observe(SimDuration::from_micros(5).as_nanos());
        expect.observe(SimDuration::from_micros(10).as_nanos());
        assert_eq!(h, expect);
        // Restore rebuilds the same derived state from the edge log.
        let mut w = SnapWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let restored = SafetyTracker::restore_state(&mut r).unwrap();
        assert_eq!(restored.pause_durations(us(30)), h);
        // Shard-split durations merge to the serial histogram.
        let mut s0 = SafetyTracker::new();
        let mut s1 = SafetyTracker::new();
        s0.record_pause(us(10), node(0), node(1), true);
        s0.record_pause(us(12), node(0), node(1), true);
        s0.record_pause(us(15), node(0), node(1), false);
        s1.record_pause(us(20), node(2), node(3), true);
        let merged = SafetyTracker::merge(vec![s0, s1]);
        assert_eq!(merged.pause_durations(us(30)), h);
    }

    #[test]
    fn refreshed_pause_does_not_double_count_cycles() {
        let mut t = SafetyTracker::new();
        cycle_at_10us(&mut t);
        // The same edges pause again while still live: frames count,
        // cycles do not.
        cycle_at_10us(&mut t);
        let r = t.finish(&SafetyConfig::default(), us(100), 0);
        assert_eq!(r.pause_frames, 6);
        assert_eq!(r.cycles_formed, 1);
        assert_eq!(r.deadlocks, 1);
    }
}
