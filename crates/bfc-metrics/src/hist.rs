//! Deterministic log-bucketed histograms (re-exported).
//!
//! The implementation lives in [`bfc_sim::hist`] so that layers below the
//! metrics crate (the switch's queue-depth-at-enqueue distribution in
//! `bfc-net`, the engine's epoch widths in `bfc-sim`) can observe into a
//! [`Hist`] directly; this module re-exports it under the metrics crate,
//! where the registry and every consumer of distributions look for it.

pub use bfc_sim::hist::{bucket_of, bucket_upper, Hist, BUCKETS};
