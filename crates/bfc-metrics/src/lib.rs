//! # bfc-metrics — evaluation metrics
//!
//! The paper reports four metrics (§4.1): flow-completion-time slowdown at
//! the tail (99th percentile, per flow-size bucket), overall network
//! utilization, switch buffer occupancy, and the fraction of time links are
//! paused by PFC. This crate computes all of them from the raw observations
//! the simulation driver collects:
//!
//! * [`fct`] — per-flow FCT records, slowdown computation and the per-size
//!   bucketed percentile summaries used by every FCT figure.
//! * [`stats`] — percentiles, means and CDF construction.
//! * [`series`] — time-series sampling (buffer occupancy) and utilization /
//!   pause-time accounting.
//! * [`recovery`] — fault-recovery metrics for runs with network dynamics:
//!   blackholed packets, reroute count, time-to-recover, goodput dip depth.
//! * [`safety`] — the safety detectors the PFC/BFC community cares about:
//!   circular buffer-dependency (PFC deadlock) detection over the pause
//!   wait-for graph, pause-storm metrics, and livelock detection.
//! * [`registry`] — the unified counter/gauge/histogram registry:
//!   per-switch, per-scheme and engine-internal series under
//!   Prometheus-style names, with deterministic cross-shard merge and text
//!   exposition.
//! * [`hist`] — deterministic log-bucketed histograms (fixed boundaries,
//!   exact cross-shard merge, ≤12.5% quantile error) backing the
//!   registry's native FCT/pause/queue-depth distributions.

pub mod fct;
pub mod hist;
pub mod recovery;
pub mod registry;
pub mod safety;
pub mod series;
pub mod stats;

pub use fct::{FctRecord, FctSummary, SizeBucket};
pub use hist::Hist;
pub use recovery::{RecoveryMetrics, RecoveryTracker};
pub use registry::MetricsRegistry;
pub use safety::{SafetyConfig, SafetyReport, SafetyTracker};
pub use series::{OccupancySeries, UtilizationTracker};
pub use stats::{build_cdf, mean, percentile};
