//! Flow-completion-time records and slowdown summaries.
//!
//! The headline metric of the paper is the **FCT slowdown**: a flow's
//! completion time divided by the best possible completion time for a flow
//! of the same size on an unloaded network. Figures 5, 7, 9 and 11–14 plot
//! the 99th-percentile slowdown per flow-size bucket; this module produces
//! exactly those series.

use bfc_net::types::FlowId;
use bfc_sim::SimDuration;

use crate::stats::{mean, percentile};

/// One completed flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FctRecord {
    /// The flow.
    pub flow: FlowId,
    /// Application bytes transferred.
    pub size_bytes: u64,
    /// Measured completion time (start at the sender to last byte at the
    /// receiver).
    pub fct: SimDuration,
    /// Best-possible completion time on an idle network.
    pub ideal_fct: SimDuration,
    /// True if the flow was part of an incast event (excluded from the
    /// headline slowdown figures, as in the paper).
    pub is_incast: bool,
}

impl FctRecord {
    /// FCT slowdown (≥ 1 in a well-behaved run; we clamp below by 1 to guard
    /// against rounding in the ideal-FCT model).
    pub fn slowdown(&self) -> f64 {
        let ideal = self.ideal_fct.as_secs_f64().max(1e-12);
        (self.fct.as_secs_f64() / ideal).max(1.0)
    }
}

/// A flow-size bucket boundary set (log-spaced, in bytes), matching the
/// "Flow Size (KB)" axis of the paper's FCT figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeBucket {
    /// Inclusive lower bound in bytes.
    pub lo: u64,
    /// Exclusive upper bound in bytes.
    pub hi: u64,
}

impl SizeBucket {
    /// Human-readable label (e.g. `"1-3KB"`).
    pub fn label(&self) -> String {
        fn fmt(b: u64) -> String {
            if b >= 1_000_000 {
                format!("{}MB", b / 1_000_000)
            } else if b >= 1_000 {
                format!("{}KB", b / 1_000)
            } else {
                format!("{b}B")
            }
        }
        format!("{}-{}", fmt(self.lo), fmt(self.hi))
    }

    /// The default log-spaced buckets used by the figures: <1 KB up to 10 MB.
    pub fn defaults() -> Vec<SizeBucket> {
        let edges: [u64; 10] = [
            0, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, u64::MAX,
        ];
        edges
            .windows(2)
            .map(|w| SizeBucket { lo: w[0], hi: w[1] })
            .collect()
    }

    /// True if `size` falls in this bucket.
    pub fn contains(&self, size: u64) -> bool {
        size >= self.lo && size < self.hi
    }

    /// Geometric midpoint used as the x-coordinate when plotting.
    pub fn midpoint(&self) -> f64 {
        let hi = if self.hi == u64::MAX { 10_000_000 } else { self.hi };
        ((self.lo.max(1) as f64) * (hi as f64)).sqrt()
    }
}

/// Slowdown statistics for one size bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketSummary {
    /// The bucket.
    pub bucket: SizeBucket,
    /// Number of flows in the bucket.
    pub count: usize,
    /// Mean slowdown.
    pub mean: f64,
    /// Median slowdown.
    pub p50: f64,
    /// 95th-percentile slowdown.
    pub p95: f64,
    /// 99th-percentile slowdown (the paper's headline series).
    pub p99: f64,
}

/// A full per-size-bucket summary of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct FctSummary {
    /// Per-bucket statistics (buckets with no flows are omitted).
    pub buckets: Vec<BucketSummary>,
    /// Overall statistics across all (non-incast) flows.
    pub overall: Option<BucketSummary>,
}

impl FctSummary {
    /// Builds the summary from raw records, excluding incast flows (the paper
    /// only reports slowdowns of the regular traffic).
    pub fn from_records(records: &[FctRecord]) -> Self {
        Self::from_records_with_buckets(records, &SizeBucket::defaults())
    }

    /// Same as [`FctSummary::from_records`] but with caller-provided buckets.
    pub fn from_records_with_buckets(records: &[FctRecord], buckets: &[SizeBucket]) -> Self {
        let regular: Vec<&FctRecord> = records.iter().filter(|r| !r.is_incast).collect();
        let mut out = Vec::new();
        for &bucket in buckets {
            let slowdowns: Vec<f64> = regular
                .iter()
                .filter(|r| bucket.contains(r.size_bytes))
                .map(|r| r.slowdown())
                .collect();
            if slowdowns.is_empty() {
                continue;
            }
            out.push(BucketSummary {
                bucket,
                count: slowdowns.len(),
                mean: mean(&slowdowns).expect("non-empty"),
                p50: percentile(&slowdowns, 50.0).expect("non-empty"),
                p95: percentile(&slowdowns, 95.0).expect("non-empty"),
                p99: percentile(&slowdowns, 99.0).expect("non-empty"),
            });
        }
        let all: Vec<f64> = regular.iter().map(|r| r.slowdown()).collect();
        let overall = if all.is_empty() {
            None
        } else {
            Some(BucketSummary {
                bucket: SizeBucket { lo: 0, hi: u64::MAX },
                count: all.len(),
                mean: mean(&all).expect("non-empty"),
                p50: percentile(&all, 50.0).expect("non-empty"),
                p95: percentile(&all, 95.0).expect("non-empty"),
                p99: percentile(&all, 99.0).expect("non-empty"),
            })
        };
        FctSummary {
            buckets: out,
            overall,
        }
    }

    /// The 99th-percentile slowdown series as `(bucket midpoint bytes, p99)`
    /// pairs — the y-values of the paper's FCT figures.
    pub fn p99_series(&self) -> Vec<(f64, f64)> {
        self.buckets
            .iter()
            .map(|b| (b.bucket.midpoint(), b.p99))
            .collect()
    }

    /// Renders a fixed-width table (used by the experiment binaries).
    pub fn table(&self, title: &str) -> String {
        let mut s = format!("{title}\n{:<14} {:>8} {:>10} {:>10} {:>10} {:>10}\n", "size", "flows", "mean", "p50", "p95", "p99");
        for b in &self.buckets {
            s.push_str(&format!(
                "{:<14} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2}\n",
                b.bucket.label(),
                b.count,
                b.mean,
                b.p50,
                b.p95,
                b.p99
            ));
        }
        if let Some(o) = &self.overall {
            s.push_str(&format!(
                "{:<14} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2}\n",
                "ALL", o.count, o.mean, o.p50, o.p95, o.p99
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(size: u64, fct_us: u64, ideal_us: u64, incast: bool) -> FctRecord {
        FctRecord {
            flow: FlowId(0),
            size_bytes: size,
            fct: SimDuration::from_micros(fct_us),
            ideal_fct: SimDuration::from_micros(ideal_us),
            is_incast: incast,
        }
    }

    #[test]
    fn slowdown_is_ratio_clamped_at_one() {
        assert_eq!(rec(1000, 10, 5, false).slowdown(), 2.0);
        assert_eq!(rec(1000, 4, 5, false).slowdown(), 1.0);
    }

    #[test]
    fn buckets_cover_all_sizes() {
        let buckets = SizeBucket::defaults();
        for size in [1u64, 999, 1_000, 54_321, 2_000_000, 50_000_000] {
            assert_eq!(
                buckets.iter().filter(|b| b.contains(size)).count(),
                1,
                "size {size} must fall in exactly one bucket"
            );
        }
        assert!(buckets[0].label().contains('B'));
        assert!(buckets[3].midpoint() > buckets[2].midpoint());
    }

    #[test]
    fn summary_groups_by_size_and_excludes_incast() {
        let mut records = Vec::new();
        // 100 small flows with slowdown 2, two stragglers at slowdown 50.
        for i in 0..100 {
            let slow = if i < 2 { 500 } else { 20 };
            records.push(rec(500, slow, 10, false));
        }
        // Large flows with slowdown 4.
        for _ in 0..50 {
            records.push(rec(2_000_000, 400, 100, false));
        }
        // Incast flows with absurd slowdowns must not show up.
        for _ in 0..10 {
            records.push(rec(200_000, 100_000, 10, true));
        }
        let summary = FctSummary::from_records(&records);
        assert_eq!(summary.buckets.len(), 2);
        let small = &summary.buckets[0];
        assert_eq!(small.count, 100);
        assert_eq!(small.p50, 2.0);
        assert_eq!(small.p99, 50.0, "p99 catches the straggler");
        let big = &summary.buckets[1];
        assert_eq!(big.p99, 4.0);
        let overall = summary.overall.as_ref().expect("overall stats");
        assert_eq!(overall.count, 150);
        let table = summary.table("test");
        assert!(table.contains("p99"));
        assert!(table.contains("ALL"));
        assert_eq!(summary.p99_series().len(), 2);
    }

    #[test]
    fn empty_records_produce_empty_summary() {
        let summary = FctSummary::from_records(&[]);
        assert!(summary.buckets.is_empty());
        assert!(summary.overall.is_none());
    }
}
