//! The unified counter/gauge/histogram registry.
//!
//! Every layer of a run — switches, ports, schemes, and the engine itself
//! (epoch batches, calendar-queue overflow, flow-table probe lengths) —
//! reports into one [`MetricsRegistry`] keyed by Prometheus-style series
//! names (`bfc_switch_drops{node="3"}`). The registry is plain data over
//! `BTreeMap`s, so iteration order, [`MetricsRegistry::merge`] and the text
//! exposition are all deterministic: two registries built from the same run
//! are equal no matter how the run was sharded. Distributions (FCT
//! slowdown, pause durations, queue depth at enqueue, epoch widths) are
//! native [`Hist`] series, merged exactly bucket-by-bucket and exposed as
//! Prometheus `_bucket`/`_sum`/`_count` lines.
//!
//! The registry is *derived* state: it is rebuilt from the simulation's
//! components (which own the real counters and serialize them in
//! snapshots), never snapshotted itself, and never participates in result
//! bit-identity comparisons.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::Hist;

/// A deterministic registry of named counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Hist>,
}

/// Formats a full series key from a metric family name and `(label, value)`
/// pairs: `labeled("bfc_drops", &[("node", "3")])` →
/// `bfc_drops{node="3"}`. Labels are emitted in the order given.
pub fn labeled(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let mut key = String::with_capacity(family.len() + 16 * labels.len());
    key.push_str(family);
    key.push('{');
    for (i, (name, value)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{name}=\"{value}\"");
    }
    key.push('}');
    key
}

/// The metric family of a series key (the part before the label braces).
fn family(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` to the counter at `key` (creating it at zero first).
    pub fn add_counter(&mut self, key: impl Into<String>, value: u64) {
        *self.counters.entry(key.into()).or_insert(0) += value;
    }

    /// Sets the gauge at `key`.
    pub fn set_gauge(&mut self, key: impl Into<String>, value: f64) {
        self.gauges.insert(key.into(), value);
    }

    /// The counter at `key`, or `None` if it was never reported.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.get(key).copied()
    }

    /// The gauge at `key`, or `None` if it was never reported.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Records one observation into the histogram at `key` (creating it
    /// empty first).
    pub fn observe_hist(&mut self, key: impl Into<String>, value: u64) {
        self.hists.entry(key.into()).or_default().observe(value);
    }

    /// Folds a pre-built histogram into the series at `key` (exact
    /// bucket-by-bucket merge).
    pub fn merge_hist(&mut self, key: impl Into<String>, hist: &Hist) {
        self.hists.entry(key.into()).or_default().merge(hist);
    }

    /// The histogram at `key`, or `None` if it was never reported.
    pub fn hist(&self, key: &str) -> Option<&Hist> {
        self.hists.get(key)
    }

    /// Iterates histograms in sorted key order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Hist)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sums every counter of `family` across its label sets.
    pub fn family_total(&self, family_name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| family(k) == family_name)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Iterates counters in sorted key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauges in sorted key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of series (counters plus gauges plus histograms).
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len()
    }

    /// True if nothing has been reported.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Folds another registry into this one: counters and histogram
    /// buckets sum exactly; a gauge reported by both takes the maximum
    /// (gauges here are peaks). The operation is associative and
    /// commutative over counters and histograms, which is what makes the
    /// per-shard merge order-independent.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            self.add_counter(k.clone(), v);
        }
        for (k, &v) in &other.gauges {
            self.gauges
                .entry(k.clone())
                .and_modify(|g| *g = g.max(v))
                .or_insert(v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Renders the registry in the Prometheus text exposition format:
    /// one `# TYPE` comment per metric family followed by its series,
    /// families and series in sorted order, terminated by a newline.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for (key, value) in &self.counters {
            let fam = family(key);
            if fam != last_family {
                let _ = writeln!(out, "# TYPE {fam} counter");
                last_family = fam;
            }
            let _ = writeln!(out, "{key} {value}");
        }
        last_family = "";
        for (key, value) in &self.gauges {
            let fam = family(key);
            if fam != last_family {
                let _ = writeln!(out, "# TYPE {fam} gauge");
                last_family = fam;
            }
            let _ = writeln!(out, "{key} {value}");
        }
        last_family = "";
        for (key, hist) in &self.hists {
            let fam = family(key);
            if fam != last_family {
                let _ = writeln!(out, "# TYPE {fam} histogram");
                last_family = fam;
            }
            let mut cumulative = 0u64;
            for (upper, count) in hist.buckets() {
                cumulative += count;
                let series = with_suffix_and_le(key, "_bucket", Some(&upper.to_string()));
                let _ = writeln!(out, "{series} {cumulative}");
            }
            let inf = with_suffix_and_le(key, "_bucket", Some("+Inf"));
            let _ = writeln!(out, "{inf} {}", hist.count());
            let sum = with_suffix_and_le(key, "_sum", None);
            let _ = writeln!(out, "{sum} {}", hist.sum());
            let count = with_suffix_and_le(key, "_count", None);
            let _ = writeln!(out, "{count} {}", hist.count());
        }
        out
    }
}

/// Rewrites a series key for a histogram sub-series: appends `suffix` to
/// the family name and (for `_bucket` lines) an `le` label after any
/// existing labels: `with_suffix_and_le("q{node=\"3\"}", "_bucket",
/// Some("16"))` → `q_bucket{node="3",le="16"}`.
fn with_suffix_and_le(key: &str, suffix: &str, le: Option<&str>) -> String {
    let (fam, labels) = match key.find('{') {
        Some(brace) => (&key[..brace], Some(&key[brace + 1..key.len() - 1])),
        None => (key, None),
    };
    let mut out = String::with_capacity(key.len() + suffix.len() + 16);
    out.push_str(fam);
    out.push_str(suffix);
    match (labels, le) {
        (None, None) => {}
        (Some(l), None) => {
            let _ = write!(out, "{{{l}}}");
        }
        (None, Some(le)) => {
            let _ = write!(out, "{{le=\"{le}\"}}");
        }
        (Some(l), Some(le)) => {
            let _ = write!(out, "{{{l},le=\"{le}\"}}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_formats_series_keys() {
        assert_eq!(labeled("bfc_up", &[]), "bfc_up");
        assert_eq!(
            labeled("bfc_drops", &[("node", "3"), ("port", "1")]),
            "bfc_drops{node=\"3\",port=\"1\"}"
        );
    }

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter("a", 2);
        reg.add_counter("a", 3);
        reg.add_counter(labeled("b", &[("node", "0")]), 7);
        assert_eq!(reg.counter("a"), Some(5));
        assert_eq!(reg.counter("b{node=\"0\"}"), Some(7));
        assert_eq!(reg.counter("missing"), None);
        assert_eq!(reg.family_total("b"), 7);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn merge_sums_counters_exactly_and_is_order_independent() {
        let mut a = MetricsRegistry::new();
        a.add_counter("x", 1);
        a.add_counter("y", 10);
        a.set_gauge("peak", 3.0);
        let mut b = MetricsRegistry::new();
        b.add_counter("x", 2);
        b.add_counter("z", 5);
        b.set_gauge("peak", 4.0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("x"), Some(3));
        assert_eq!(ab.counter("y"), Some(10));
        assert_eq!(ab.counter("z"), Some(5));
        assert_eq!(ab.gauge("peak"), Some(4.0));
    }

    #[test]
    fn exposition_is_sorted_grouped_and_newline_terminated() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter(labeled("bfc_drops", &[("node", "1")]), 4);
        reg.add_counter(labeled("bfc_drops", &[("node", "0")]), 2);
        reg.add_counter("bfc_batches", 9);
        reg.set_gauge("bfc_peak_flows", 12.0);
        let text = reg.expose();
        assert_eq!(
            text,
            "# TYPE bfc_batches counter\n\
             bfc_batches 9\n\
             # TYPE bfc_drops counter\n\
             bfc_drops{node=\"0\"} 2\n\
             bfc_drops{node=\"1\"} 4\n\
             # TYPE bfc_peak_flows gauge\n\
             bfc_peak_flows 12\n"
        );
        // Deterministic: rendering twice is identical.
        assert_eq!(reg.expose(), text);
    }

    #[test]
    fn histograms_merge_exactly_and_expose_bucket_sum_count() {
        let mut a = MetricsRegistry::new();
        a.observe_hist(labeled("bfc_q", &[("node", "0")]), 3);
        a.observe_hist(labeled("bfc_q", &[("node", "0")]), 100);
        let mut b = MetricsRegistry::new();
        b.observe_hist(labeled("bfc_q", &[("node", "0")]), 3);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let h = ab.hist("bfc_q{node=\"0\"}").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 106);

        let text = ab.expose();
        assert_eq!(
            text,
            "# TYPE bfc_q histogram\n\
             bfc_q_bucket{node=\"0\",le=\"3\"} 2\n\
             bfc_q_bucket{node=\"0\",le=\"103\"} 3\n\
             bfc_q_bucket{node=\"0\",le=\"+Inf\"} 3\n\
             bfc_q_sum{node=\"0\"} 106\n\
             bfc_q_count{node=\"0\"} 3\n"
        );
    }

    #[test]
    fn histograms_without_labels_expose_clean_series() {
        let mut reg = MetricsRegistry::new();
        reg.observe_hist("bfc_widths", 4);
        let text = reg.expose();
        assert!(text.contains("bfc_widths_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("bfc_widths_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("bfc_widths_sum 4\n"));
        assert!(text.contains("bfc_widths_count 1\n"));
    }
}
