//! Recovery metrics for experiments with network dynamics.
//!
//! When a fault schedule perturbs the fabric (link down/up, degradation,
//! flapping), four quantities summarize how well a scheme rode it out:
//!
//! * **blackholed packets** — data packets lost to the dynamics themselves:
//!   flushed from a dead egress, dropped in flight on a severed cable, or
//!   arriving at a switch with no route to the destination;
//! * **reroutes** — how many times routing re-converged (one per
//!   topology-changing event, i.e. link down/up; rate changes don't
//!   reroute);
//! * **time to recover** — how long after the *last* fault event the
//!   fabric-wide goodput climbed back to the pre-fault baseline;
//! * **goodput dip depth** — how far goodput fell below the baseline during
//!   the disturbed window (0 = no dip, 1 = complete stall).
//!
//! The baseline is the mean per-sample goodput over the samples strictly
//! before the first fault, and "recovered" means a per-sample goodput of at
//! least [`RecoveryTracker::RECOVERY_FRACTION`] of that baseline. Everything
//! is computed from the driver's periodic samples, so the metrics are
//! bit-identical across thread counts like every other result.

use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};
use bfc_sim::{SimDuration, SimTime};

/// The recovery summary of one experiment run. For a run without dynamics
/// every field is zero / `None`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryMetrics {
    /// Data packets lost to network dynamics (dead-egress flushes, in-flight
    /// drops on severed cables, unroutable arrivals).
    pub blackholed_packets: u64,
    /// Number of routing re-convergences (one per link down/up event; rate
    /// changes do not alter the topology and so do not reroute).
    pub reroutes: u64,
    /// Fault events applied during the run.
    pub faults: usize,
    /// Time from the last fault event until goodput first returned to the
    /// pre-fault baseline. `None` if there were no faults, no pre-fault
    /// baseline existed, or goodput never recovered before the run ended.
    pub time_to_recover: Option<SimDuration>,
    /// `1 - min(goodput during the disturbed window) / baseline`, clamped to
    /// `[0, 1]`. Zero when no baseline exists.
    pub goodput_dip_depth: f64,
}

/// Accumulates goodput samples and fault instants during a run and distills
/// them into [`RecoveryMetrics`] at the end.
#[derive(Debug, Clone, Default)]
pub struct RecoveryTracker {
    /// Per-sample delivered bytes: `(instant, bytes since previous sample)`.
    samples: Vec<(SimTime, u64)>,
    last_cumulative: u64,
    disruptions: Vec<SimTime>,
    blackholed: u64,
    reroutes: u64,
}

impl RecoveryTracker {
    /// A sample counts as "recovered" at this fraction of the pre-fault
    /// baseline goodput.
    pub const RECOVERY_FRACTION: f64 = 0.9;

    /// Creates an empty tracker.
    pub fn new() -> Self {
        RecoveryTracker::default()
    }

    /// Records one goodput sample: `cumulative_bytes` is the running total of
    /// delivered bytes across all receivers at `now`. Call at every sample
    /// tick, in time order.
    pub fn record_goodput(&mut self, now: SimTime, cumulative_bytes: u64) {
        let delta = cumulative_bytes.saturating_sub(self.last_cumulative);
        self.last_cumulative = cumulative_bytes;
        self.samples.push((now, delta));
    }

    /// Records that a fault event was applied at `now` (anchors the
    /// time-to-recover / dip windows).
    pub fn record_fault(&mut self, now: SimTime) {
        self.disruptions.push(now);
    }

    /// Records one routing re-convergence. Counted separately from faults:
    /// rate changes disturb goodput but do not change the topology, so they
    /// anchor recovery windows without a reroute.
    pub fn record_reroute(&mut self) {
        self.reroutes += 1;
    }

    /// Adds blackholed data packets observed by the driver or a switch.
    pub fn add_blackholed(&mut self, packets: u64) {
        self.blackholed += packets;
    }

    /// Blackholed packets recorded so far.
    pub fn blackholed(&self) -> u64 {
        self.blackholed
    }

    /// Merges per-shard trackers into the tracker one collector covering the
    /// whole fabric would have built.
    ///
    /// Shards sample in lockstep, so every non-empty sample series carries
    /// the same tick instants; per-tick deltas (each shard's local receivers)
    /// sum to the fabric-wide delta exactly (`u64` addition). Fault instants
    /// and reroute counts are recorded by a single designated shard, so
    /// concatenation — kept time-sorted — reproduces the serial log.
    /// `merge(vec![t])` is `t` itself.
    pub fn merge(parts: Vec<RecoveryTracker>) -> RecoveryTracker {
        let mut merged = RecoveryTracker::new();
        for part in &parts {
            merged.blackholed += part.blackholed;
            merged.reroutes += part.reroutes;
            merged.last_cumulative += part.last_cumulative;
            merged.disruptions.extend(part.disruptions.iter().copied());
        }
        merged.disruptions.sort_unstable();
        if let Some(longest) = parts.iter().map(|p| p.samples.len()).max() {
            for tick in 0..longest {
                let mut at = None;
                let mut delta = 0u64;
                for part in &parts {
                    if let Some(&(t, d)) = part.samples.get(tick) {
                        debug_assert!(
                            at.is_none_or(|a| a == t),
                            "shards must sample at identical instants"
                        );
                        at = Some(t);
                        delta += d;
                    }
                }
                if let Some(t) = at {
                    merged.samples.push((t, delta));
                }
            }
        }
        merged
    }

    /// Serializes the tracker's accumulated samples and counters for
    /// snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.samples.len());
        for &(t, bytes) in &self.samples {
            w.put_u64(t.as_picos());
            w.put_u64(bytes);
        }
        w.put_u64(self.last_cumulative);
        w.put_usize(self.disruptions.len());
        for &t in &self.disruptions {
            w.put_u64(t.as_picos());
        }
        w.put_u64(self.blackholed);
        w.put_u64(self.reroutes);
    }

    /// Rebuilds a tracker from [`RecoveryTracker::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_count(16)?;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let t = SimTime::from_picos(r.get_u64()?);
            let bytes = r.get_u64()?;
            samples.push((t, bytes));
        }
        let last_cumulative = r.get_u64()?;
        let n = r.get_count(8)?;
        let mut disruptions = Vec::with_capacity(n);
        for _ in 0..n {
            disruptions.push(SimTime::from_picos(r.get_u64()?));
        }
        Ok(RecoveryTracker {
            samples,
            last_cumulative,
            disruptions,
            blackholed: r.get_u64()?,
            reroutes: r.get_u64()?,
        })
    }

    /// The pre-fault baseline: mean per-sample goodput over the samples
    /// strictly before `first`. Returns `None` when no such sample exists
    /// (fault at t=0, or before the first sample window closed) or when the
    /// mean is zero — both would otherwise divide by zero downstream and
    /// poison `goodput_dip_depth` with NaN/inf and `time_to_recover` with a
    /// threshold every idle sample trivially meets.
    fn baseline(&self, first: SimTime) -> Option<f64> {
        let mut sum = 0u64;
        let mut count = 0u64;
        for &(t, d) in &self.samples {
            if t < first {
                sum += d;
                count += 1;
            }
        }
        let baseline = (count > 0).then(|| sum as f64 / count as f64)?;
        (baseline > 0.0).then_some(baseline)
    }

    /// Distills the recorded run into its [`RecoveryMetrics`].
    ///
    /// When no pre-fault baseline exists (see [`RecoveryTracker::baseline`]),
    /// `time_to_recover` is explicitly `None` and `goodput_dip_depth`
    /// explicitly `0.0` — "unmeasurable", never NaN and never a bogus
    /// instant-recovery reading.
    pub fn finish(&self) -> RecoveryMetrics {
        let mut metrics = RecoveryMetrics {
            blackholed_packets: self.blackholed,
            reroutes: self.reroutes,
            faults: self.disruptions.len(),
            time_to_recover: None,
            goodput_dip_depth: 0.0,
        };
        let (Some(&first), Some(&last)) = (self.disruptions.first(), self.disruptions.last())
        else {
            return metrics;
        };
        let Some(baseline) = self.baseline(first) else {
            return metrics;
        };

        // A sample's delta covers the window since the *previous* sample, so
        // the first sample at/after the fault mostly counts pre-fault bytes.
        // Only samples whose whole window lies after the last fault are
        // eligible as recovery evidence.
        let mut window_start = SimTime::ZERO;
        let mut recovered_at = None;
        for &(t, d) in &self.samples {
            if window_start >= last && d as f64 >= Self::RECOVERY_FRACTION * baseline {
                recovered_at = Some(t);
                break;
            }
            window_start = t;
        }
        metrics.time_to_recover = recovered_at.map(|t| t.saturating_since(last));

        // The disturbed window: from the first fault until recovery (or the
        // end of the run if goodput never came back).
        let window_end = recovered_at.unwrap_or(SimTime::MAX);
        let min_goodput = self
            .samples
            .iter()
            .filter(|(t, _)| *t >= first && *t <= window_end)
            .map(|(_, d)| *d)
            .min();
        if let Some(min) = min_goodput {
            metrics.goodput_dip_depth = (1.0 - min as f64 / baseline).clamp(0.0, 1.0);
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn merging_shard_trackers_matches_the_fabric_wide_tracker() {
        // One fabric-wide tracker versus two shard trackers whose receivers
        // split the delivered bytes; the designated shard 0 records faults.
        let mut whole = RecoveryTracker::new();
        let mut shard0 = RecoveryTracker::new();
        let mut shard1 = RecoveryTracker::new();
        let deliveries = [(10u64, 600u64, 400u64), (20, 700, 400), (30, 700, 500)];
        for (at, a, b) in deliveries {
            whole.record_goodput(us(at), a + b);
            shard0.record_goodput(us(at), a);
            shard1.record_goodput(us(at), b);
        }
        whole.record_fault(us(15));
        whole.record_reroute();
        shard0.record_fault(us(15));
        shard0.record_reroute();
        whole.add_blackholed(3);
        shard0.add_blackholed(1);
        shard1.add_blackholed(2);
        let merged = RecoveryTracker::merge(vec![shard0, shard1]);
        assert_eq!(merged.finish(), whole.finish());
        assert_eq!(merged.blackholed(), 3);
    }

    #[test]
    fn merging_a_single_tracker_is_identity() {
        let mut t = RecoveryTracker::new();
        t.record_goodput(us(10), 1_000);
        t.record_fault(us(12));
        t.record_goodput(us(20), 1_500);
        t.add_blackholed(4);
        let expected = t.finish();
        assert_eq!(RecoveryTracker::merge(vec![t]).finish(), expected);
    }

    #[test]
    fn no_faults_yield_empty_metrics() {
        let mut t = RecoveryTracker::new();
        t.record_goodput(us(10), 1_000);
        t.record_goodput(us(20), 2_000);
        let m = t.finish();
        assert_eq!(m, RecoveryMetrics::default());
    }

    #[test]
    fn dip_and_recovery_are_measured_from_samples() {
        let mut t = RecoveryTracker::new();
        // Steady 1000 B per tick before the fault.
        let mut cumulative = 0;
        for i in 1..=4u64 {
            cumulative += 1_000;
            t.record_goodput(us(i * 10), cumulative);
        }
        t.record_fault(us(45));
        t.record_reroute();
        // Goodput collapses to 100 B, then recovers to 950 B at t=80.
        for (at, delta) in [(50, 100u64), (60, 100), (70, 500), (80, 950), (90, 1_000)] {
            cumulative += delta;
            t.record_goodput(us(at), cumulative);
        }
        t.add_blackholed(7);
        let m = t.finish();
        assert_eq!(m.blackholed_packets, 7);
        assert_eq!(m.reroutes, 1);
        assert_eq!(m.faults, 1);
        // Recovery threshold is 900 B: first met at t=80, 35 us after the fault.
        assert_eq!(m.time_to_recover, Some(SimDuration::from_micros(35)));
        assert!((m.goodput_dip_depth - 0.9).abs() < 1e-9, "dip {}", m.goodput_dip_depth);
    }

    #[test]
    fn unrecovered_runs_report_none() {
        let mut t = RecoveryTracker::new();
        t.record_goodput(us(10), 1_000);
        t.record_fault(us(15));
        t.record_goodput(us(20), 1_050);
        t.record_goodput(us(30), 1_100);
        let m = t.finish();
        assert_eq!(m.time_to_recover, None);
        assert!(m.goodput_dip_depth > 0.9);
    }

    #[test]
    fn fault_before_any_sample_has_no_baseline() {
        let mut t = RecoveryTracker::new();
        t.record_fault(us(1));
        t.record_goodput(us(10), 1_000);
        let m = t.finish();
        assert_eq!(m.time_to_recover, None);
        assert_eq!(m.goodput_dip_depth, 0.0);
        assert_eq!(m.faults, 1);
    }

    #[test]
    fn fault_at_time_zero_is_unmeasurable_not_nan() {
        // A fault at t=0 leaves zero samples strictly before it: no baseline
        // exists, so both metrics must take their explicit "unmeasurable"
        // values rather than dividing by zero.
        let mut t = RecoveryTracker::new();
        t.record_fault(us(0));
        let mut cumulative = 0;
        for i in 1..=3u64 {
            cumulative += 1_000;
            t.record_goodput(us(i * 10), cumulative);
        }
        let m = t.finish();
        assert_eq!(m.time_to_recover, None);
        assert_eq!(m.goodput_dip_depth, 0.0);
        assert!(m.goodput_dip_depth.is_finite());
        assert_eq!(m.faults, 1);
    }

    #[test]
    fn fault_before_first_window_closes_is_unmeasurable() {
        // The fault lands after t=0 but before the first sample window has
        // closed; the t=10 sample straddles it, so it is not baseline
        // evidence and the metrics stay at their explicit defaults.
        let mut t = RecoveryTracker::new();
        t.record_fault(us(5));
        let mut cumulative = 0;
        for i in 1..=3u64 {
            cumulative += 1_000;
            t.record_goodput(us(i * 10), cumulative);
        }
        let m = t.finish();
        assert_eq!(m.time_to_recover, None);
        assert_eq!(m.goodput_dip_depth, 0.0);
    }

    #[test]
    fn all_idle_pre_fault_samples_yield_no_baseline() {
        // Pre-fault samples exist but carry zero bytes: a zero baseline would
        // make every idle sample "recovered" instantly and the dip 0/0 = NaN.
        // It must instead count as no baseline at all.
        let mut t = RecoveryTracker::new();
        t.record_goodput(us(10), 0);
        t.record_goodput(us(20), 0);
        t.record_fault(us(25));
        t.record_goodput(us(30), 0);
        t.record_goodput(us(40), 500);
        let m = t.finish();
        assert_eq!(m.time_to_recover, None);
        assert_eq!(m.goodput_dip_depth, 0.0);
        assert!(m.goodput_dip_depth.is_finite());
    }

    #[test]
    fn recovery_measured_from_last_fault_of_a_flap() {
        let mut t = RecoveryTracker::new();
        let mut cumulative = 0;
        for i in 1..=3u64 {
            cumulative += 1_000;
            t.record_goodput(us(i * 10), cumulative);
        }
        t.record_fault(us(35)); // down
        cumulative += 100;
        t.record_goodput(us(40), cumulative);
        t.record_fault(us(45)); // up
        cumulative += 1_000;
        t.record_goodput(us(50), cumulative);
        cumulative += 1_000;
        t.record_goodput(us(60), cumulative);
        let m = t.finish();
        assert_eq!(m.faults, 2);
        // The t=50 sample's window (40..50) straddles the t=45 fault, so it
        // is not recovery evidence; the first clean window ends at t=60.
        assert_eq!(m.time_to_recover, Some(SimDuration::from_micros(15)));
    }

    #[test]
    fn straddling_sample_windows_do_not_count_as_recovery() {
        let mut t = RecoveryTracker::new();
        let mut cumulative = 0;
        for i in 1..=4u64 {
            cumulative += 1_000;
            t.record_goodput(us(i * 10), cumulative);
        }
        // Fault just before the next sample: that sample's delta is almost
        // entirely pre-fault traffic and must not count as recovery.
        t.record_fault(us(49));
        cumulative += 990;
        t.record_goodput(us(50), cumulative);
        // Goodput is actually dead afterwards.
        t.record_goodput(us(60), cumulative);
        t.record_goodput(us(70), cumulative);
        let m = t.finish();
        assert_eq!(m.time_to_recover, None);
    }
}
