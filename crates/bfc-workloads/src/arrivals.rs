//! Flow arrival processes and offered-load arithmetic.
//!
//! The paper sets the *average load* as a fraction of the network capacity
//! (the aggregate host access bandwidth) and draws flow inter-arrival times
//! from a log-normal distribution with σ = 2 whose mean matches that load.

use bfc_sim::{SimDuration, SimRng, SimTime};

/// The mean inter-arrival time (seconds) between flows across the whole
/// fabric needed to offer `load` (0..1) of the aggregate host bandwidth,
/// given the mean flow size.
pub fn mean_interarrival_secs(
    load: f64,
    num_hosts: usize,
    host_gbps: f64,
    mean_flow_bytes: f64,
) -> f64 {
    assert!(load > 0.0 && load <= 1.5, "load {load} out of range");
    assert!(num_hosts > 0 && host_gbps > 0.0 && mean_flow_bytes > 0.0);
    let aggregate_bps = num_hosts as f64 * host_gbps * 1e9;
    let offered_bps = load * aggregate_bps;
    mean_flow_bytes * 8.0 / offered_bps
}

/// How inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless Poisson arrivals (exponential gaps).
    Poisson {
        /// Mean gap between flow arrivals in seconds.
        mean_secs: f64,
    },
    /// Log-normal gaps with the given shape parameter (the paper uses σ = 2),
    /// scaled so the mean gap matches `mean_secs`.
    LogNormal {
        /// Mean gap between flow arrivals in seconds.
        mean_secs: f64,
        /// Shape parameter of the underlying normal.
        sigma: f64,
    },
}

impl ArrivalProcess {
    /// The paper's default: log-normal with σ = 2 at the given mean.
    pub fn paper_default(mean_secs: f64) -> Self {
        ArrivalProcess::LogNormal {
            mean_secs,
            sigma: 2.0,
        }
    }

    /// Mean gap of the process in seconds.
    pub fn mean_secs(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { mean_secs } => *mean_secs,
            ArrivalProcess::LogNormal { mean_secs, .. } => *mean_secs,
        }
    }

    /// Draws one inter-arrival gap.
    pub fn sample_gap(&self, rng: &mut SimRng) -> SimDuration {
        let secs = match self {
            ArrivalProcess::Poisson { mean_secs } => rng.exponential(*mean_secs),
            ArrivalProcess::LogNormal { mean_secs, sigma } => {
                rng.lognormal_with_mean(*mean_secs, *sigma)
            }
        };
        SimDuration::from_secs_f64(secs)
    }

    /// Generates arrival instants until `horizon`.
    pub fn arrivals_until(&self, horizon: SimTime, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO + self.sample_gap(rng);
        while t <= horizon {
            out.push(t);
            t += self.sample_gap(rng);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interarrival_matches_load_arithmetic() {
        // 64 hosts * 100 Gbps = 6.4 Tbps; 65% of that is 4.16 Tbps. With a
        // 10 KB mean flow, arrivals must average 80 kb / 4.16 Tbps ≈ 19.2 ns.
        let mean = mean_interarrival_secs(0.65, 64, 100.0, 10_000.0);
        assert!((mean - 1.923e-8).abs() < 1e-10, "got {mean}");
        // Halving the load doubles the gap.
        assert!((mean_interarrival_secs(0.325, 64, 100.0, 10_000.0) / mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn arrival_rate_approximates_target() {
        let mean = 2e-6;
        for process in [
            ArrivalProcess::Poisson { mean_secs: mean },
            ArrivalProcess::paper_default(mean),
        ] {
            let mut rng = SimRng::new(11);
            let horizon = SimTime::ZERO + SimDuration::from_millis(20);
            let arrivals = process.arrivals_until(horizon, &mut rng);
            let expected = 20e-3 / mean;
            let got = arrivals.len() as f64;
            assert!(
                (got - expected).abs() / expected < 0.25,
                "{process:?}: expected ≈{expected}, got {got}"
            );
            // Arrivals are sorted.
            for w in arrivals.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn lognormal_gaps_are_burstier_than_poisson() {
        // With σ = 2 the gap distribution has a much heavier tail: its median
        // is far below its mean, producing the bursts the paper relies on.
        let mut rng = SimRng::new(3);
        let process = ArrivalProcess::paper_default(1e-6);
        let mut gaps: Vec<f64> = (0..20_000)
            .map(|_| process.sample_gap(&mut rng).as_secs_f64())
            .collect();
        gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = gaps[gaps.len() / 2];
        assert!(median < 0.3e-6, "median {median} should sit well below the 1 us mean");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_load_rejected() {
        let _ = mean_interarrival_secs(0.0, 64, 100.0, 10_000.0);
    }
}
