//! Flow arrival processes and offered-load arithmetic.
//!
//! The paper sets the *average load* as a fraction of the network capacity
//! (the aggregate host access bandwidth) and draws flow inter-arrival times
//! from a log-normal distribution with σ = 2 whose mean matches that load.

use bfc_sim::{SimDuration, SimRng, SimTime};

/// The mean inter-arrival time (seconds) between flows across the whole
/// fabric needed to offer `load` (0..1) of the aggregate host bandwidth,
/// given the mean flow size.
pub fn mean_interarrival_secs(
    load: f64,
    num_hosts: usize,
    host_gbps: f64,
    mean_flow_bytes: f64,
) -> f64 {
    assert!(load > 0.0 && load <= 1.5, "load {load} out of range");
    assert!(num_hosts > 0 && host_gbps > 0.0 && mean_flow_bytes > 0.0);
    let aggregate_bps = num_hosts as f64 * host_gbps * 1e9;
    let offered_bps = load * aggregate_bps;
    mean_flow_bytes * 8.0 / offered_bps
}

/// How inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless Poisson arrivals (exponential gaps).
    Poisson {
        /// Mean gap between flow arrivals in seconds.
        mean_secs: f64,
    },
    /// Log-normal gaps with the given shape parameter (the paper uses σ = 2),
    /// scaled so the mean gap matches `mean_secs`.
    LogNormal {
        /// Mean gap between flow arrivals in seconds.
        mean_secs: f64,
        /// Shape parameter of the underlying normal.
        sigma: f64,
    },
    /// Markov-modulated on/off arrivals: bursts of closely spaced flows
    /// separated by long silences. Burst lengths are geometric with mean
    /// `mean_burst_len`; within a burst, gaps are exponential with mean
    /// `mean_secs * on_gap_fraction`, and each burst boundary inserts an
    /// exponential off period sized so the overall mean gap is exactly
    /// `mean_secs` — the offered load matches the smoother processes, only
    /// the short-timescale variance differs.
    Bursty {
        /// Mean gap between flow arrivals in seconds (across bursts and
        /// silences).
        mean_secs: f64,
        /// Expected number of arrivals per on-period (≥ 1).
        mean_burst_len: f64,
        /// Fraction of the mean gap attributable to in-burst spacing, in
        /// (0, 1]; the remaining `1 - on_gap_fraction` is spent silent.
        on_gap_fraction: f64,
    },
}

impl ArrivalProcess {
    /// The paper's default: log-normal with σ = 2 at the given mean.
    pub fn paper_default(mean_secs: f64) -> Self {
        ArrivalProcess::LogNormal {
            mean_secs,
            sigma: 2.0,
        }
    }

    /// A bursty on/off process at the given mean with the default burst
    /// parameters (20 flows per burst, 10% duty cycle).
    pub fn bursty(mean_secs: f64) -> Self {
        ArrivalProcess::Bursty {
            mean_secs,
            mean_burst_len: 20.0,
            on_gap_fraction: 0.1,
        }
    }

    /// Mean gap of the process in seconds.
    pub fn mean_secs(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { mean_secs } => *mean_secs,
            ArrivalProcess::LogNormal { mean_secs, .. } => *mean_secs,
            ArrivalProcess::Bursty { mean_secs, .. } => *mean_secs,
        }
    }

    /// Draws one inter-arrival gap.
    pub fn sample_gap(&self, rng: &mut SimRng) -> SimDuration {
        let secs = match self {
            ArrivalProcess::Poisson { mean_secs } => rng.exponential(*mean_secs),
            ArrivalProcess::LogNormal { mean_secs, sigma } => {
                rng.lognormal_with_mean(*mean_secs, *sigma)
            }
            ArrivalProcess::Bursty {
                mean_secs,
                mean_burst_len,
                on_gap_fraction,
            } => {
                debug_assert!(*mean_burst_len >= 1.0, "mean_burst_len must be >= 1");
                debug_assert!(
                    *on_gap_fraction > 0.0 && *on_gap_fraction <= 1.0,
                    "on_gap_fraction must be in (0, 1]"
                );
                // In-burst gap, plus — at a geometric burst boundary — an
                // off period whose mean restores the overall target:
                //   E[gap] = f·m + (1/B)·(1-f)·m·B = m.
                let mut secs = rng.exponential(mean_secs * on_gap_fraction);
                let off_mean = mean_secs * (1.0 - on_gap_fraction) * mean_burst_len;
                if off_mean > 0.0 && rng.chance(1.0 / mean_burst_len) {
                    secs += rng.exponential(off_mean);
                }
                secs
            }
        };
        SimDuration::from_secs_f64(secs)
    }

    /// Generates arrival instants until `horizon`.
    pub fn arrivals_until(&self, horizon: SimTime, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO + self.sample_gap(rng);
        while t <= horizon {
            out.push(t);
            t += self.sample_gap(rng);
        }
        out
    }
}

/// The shape of an arrival process, independent of its mean — what
/// [`crate::TraceParams`] carries so trace synthesis can scale the gap
/// distribution to the requested load. [`ArrivalShape::with_mean`] turns it
/// into a concrete [`ArrivalProcess`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalShape {
    /// Log-normal gaps with the given shape parameter (paper: σ = 2).
    LogNormal {
        /// Shape parameter of the underlying normal.
        sigma: f64,
    },
    /// Memoryless Poisson arrivals.
    Poisson,
    /// Markov-modulated on/off bursts (see [`ArrivalProcess::Bursty`]).
    Bursty {
        /// Expected number of arrivals per burst (≥ 1).
        mean_burst_len: f64,
        /// Fraction of the mean gap spent inside bursts, in (0, 1].
        on_gap_fraction: f64,
    },
}

impl ArrivalShape {
    /// The paper's default: log-normal with σ = 2.
    pub fn paper_default() -> Self {
        ArrivalShape::LogNormal { sigma: 2.0 }
    }

    /// The default bursty configuration (20 flows per burst, 10% duty cycle).
    pub fn bursty_default() -> Self {
        ArrivalShape::Bursty {
            mean_burst_len: 20.0,
            on_gap_fraction: 0.1,
        }
    }

    /// Instantiates the shape at a concrete mean gap.
    pub fn with_mean(&self, mean_secs: f64) -> ArrivalProcess {
        match *self {
            ArrivalShape::LogNormal { sigma } => ArrivalProcess::LogNormal { mean_secs, sigma },
            ArrivalShape::Poisson => ArrivalProcess::Poisson { mean_secs },
            ArrivalShape::Bursty {
                mean_burst_len,
                on_gap_fraction,
            } => ArrivalProcess::Bursty {
                mean_secs,
                mean_burst_len,
                on_gap_fraction,
            },
        }
    }
}

/// How incast *events* are spaced in time. The paper fires one incast every
/// fixed period; `LogNormalGaps` draws the inter-event gaps from a log-normal
/// distribution with the same mean instead, so events cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IncastSchedule {
    /// One event every `mean_gap`, exactly (the paper's setup).
    Periodic,
    /// Log-normal inter-event gaps with the given shape parameter, scaled so
    /// the mean gap (and thus the incast offered load) is unchanged.
    LogNormalGaps {
        /// Shape parameter of the underlying normal.
        sigma: f64,
    },
}

impl IncastSchedule {
    /// The paper's default: strictly periodic events.
    pub fn paper_default() -> Self {
        IncastSchedule::Periodic
    }

    /// Event instants until `horizon`, starting one gap after time zero.
    /// `Periodic` consumes no randomness; `LogNormalGaps` draws every gap
    /// from `rng`. `mean_gap` must be positive — a zero gap would mean an
    /// unbounded number of events.
    pub fn events_until(
        &self,
        mean_gap: SimDuration,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Vec<SimTime> {
        assert!(!mean_gap.is_zero(), "event mean_gap must be positive");
        let mut out = Vec::new();
        match *self {
            IncastSchedule::Periodic => {
                let mut t = SimTime::ZERO + mean_gap;
                while t <= horizon {
                    out.push(t);
                    t += mean_gap;
                }
            }
            IncastSchedule::LogNormalGaps { sigma } => {
                let mean_secs = mean_gap.as_secs_f64();
                let mut t = SimTime::ZERO
                    + SimDuration::from_secs_f64(rng.lognormal_with_mean(mean_secs, sigma));
                while t <= horizon {
                    out.push(t);
                    t += SimDuration::from_secs_f64(rng.lognormal_with_mean(mean_secs, sigma));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interarrival_matches_load_arithmetic() {
        // 64 hosts * 100 Gbps = 6.4 Tbps; 65% of that is 4.16 Tbps. With a
        // 10 KB mean flow, arrivals must average 80 kb / 4.16 Tbps ≈ 19.2 ns.
        let mean = mean_interarrival_secs(0.65, 64, 100.0, 10_000.0);
        assert!((mean - 1.923e-8).abs() < 1e-10, "got {mean}");
        // Halving the load doubles the gap.
        assert!((mean_interarrival_secs(0.325, 64, 100.0, 10_000.0) / mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn arrival_rate_approximates_target() {
        let mean = 2e-6;
        for process in [
            ArrivalProcess::Poisson { mean_secs: mean },
            ArrivalProcess::paper_default(mean),
            ArrivalProcess::bursty(mean),
        ] {
            let mut rng = SimRng::new(11);
            let horizon = SimTime::ZERO + SimDuration::from_millis(20);
            let arrivals = process.arrivals_until(horizon, &mut rng);
            let expected = 20e-3 / mean;
            let got = arrivals.len() as f64;
            assert!(
                (got - expected).abs() / expected < 0.25,
                "{process:?}: expected ≈{expected}, got {got}"
            );
            // Arrivals are sorted.
            for w in arrivals.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn lognormal_gaps_are_burstier_than_poisson() {
        // With σ = 2 the gap distribution has a much heavier tail: its median
        // is far below its mean, producing the bursts the paper relies on.
        let mut rng = SimRng::new(3);
        let process = ArrivalProcess::paper_default(1e-6);
        let mut gaps: Vec<f64> = (0..20_000)
            .map(|_| process.sample_gap(&mut rng).as_secs_f64())
            .collect();
        gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = gaps[gaps.len() / 2];
        assert!(median < 0.3e-6, "median {median} should sit well below the 1 us mean");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_load_rejected() {
        let _ = mean_interarrival_secs(0.0, 64, 100.0, 10_000.0);
    }

    #[test]
    fn bursty_gaps_cluster_into_bursts() {
        // Most gaps sit well below the mean (in-burst spacing), while the
        // occasional off period is far above it — the gap distribution is
        // bimodal in a way neither Poisson nor log-normal is.
        let mut rng = SimRng::new(17);
        let mean = 1e-6;
        let process = ArrivalProcess::bursty(mean);
        let gaps: Vec<f64> = (0..50_000)
            .map(|_| process.sample_gap(&mut rng).as_secs_f64())
            .collect();
        let measured_mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (measured_mean - mean).abs() / mean < 0.1,
            "mean {measured_mean} should match {mean}"
        );
        let short = gaps.iter().filter(|&&g| g < 0.5 * mean).count() as f64 / gaps.len() as f64;
        let long = gaps.iter().filter(|&&g| g > 4.0 * mean).count() as f64 / gaps.len() as f64;
        assert!(short > 0.8, "in-burst gaps dominate, got {short}");
        assert!(long > 0.02, "off periods exist, got {long}");
    }

    #[test]
    fn arrival_shape_instantiates_matching_process() {
        assert_eq!(
            ArrivalShape::paper_default().with_mean(3e-6),
            ArrivalProcess::paper_default(3e-6)
        );
        assert_eq!(
            ArrivalShape::Poisson.with_mean(1e-6),
            ArrivalProcess::Poisson { mean_secs: 1e-6 }
        );
        assert_eq!(
            ArrivalShape::bursty_default().with_mean(2e-6),
            ArrivalProcess::bursty(2e-6)
        );
    }

    #[test]
    fn incast_schedules_hit_the_target_event_rate() {
        let mean_gap = SimDuration::from_micros(100);
        let horizon = SimTime::ZERO + SimDuration::from_millis(50);
        let mut rng = SimRng::new(23);
        let periodic =
            IncastSchedule::Periodic.events_until(mean_gap, horizon, &mut rng);
        assert_eq!(periodic.len(), 500);
        assert_eq!(periodic[0], SimTime::ZERO + mean_gap);
        // Periodic consumed no randomness; a fresh rng produces the same
        // log-normal schedule as a used-for-periodic one would.
        let clustered = IncastSchedule::LogNormalGaps { sigma: 1.0 }
            .events_until(mean_gap, horizon, &mut rng);
        let expected = 500.0;
        assert!(
            (clustered.len() as f64 - expected).abs() / expected < 0.3,
            "expected ≈{expected} events, got {}",
            clustered.len()
        );
        for w in clustered.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
