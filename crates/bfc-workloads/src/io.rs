//! Trace import/export: a std-only CSV format for persisting and replaying
//! workload traces.
//!
//! ## Format
//!
//! The first content line must be the exact header
//! `src,dst,size_bytes,start_ns,is_incast`; every following content line is
//! one flow. Blank lines and lines starting with `#` are ignored anywhere.
//!
//! | column | meaning | syntax |
//! |---|---|---|
//! | `src` | sending host `NodeId` | unsigned integer ≤ `u32::MAX` |
//! | `dst` | receiving host `NodeId`, ≠ `src` | unsigned integer ≤ `u32::MAX` |
//! | `size_bytes` | application bytes, ≥ 1 | unsigned integer |
//! | `start_ns` | arrival time in nanoseconds | integer, optionally `.` + up to 3 fractional digits |
//! | `is_incast` | incast-event membership | `0`/`1` (also `false`/`true`) |
//!
//! `start_ns` carries up to three fractional digits because the simulator's
//! clock has **picosecond** resolution: `123.456` means 123 456 ps. Export
//! writes the fraction only when it is non-zero, so round-tripping any
//! valid trace through [`export_csv`] → [`import_csv`] reproduces the exact
//! flow list, bit for bit.
//!
//! **Sortedness contract:** rows must be non-decreasing in `start_ns` (the
//! order the experiment driver expects). The parser enforces it and reports
//! the first offending line. [`export_csv`] writes flows in the order given
//! without validating; a trace assembled by hand (e.g. concatenating
//! generator outputs) must be sorted by start — `flows.sort_by_key(|f|
//! f.start)` — before export, or the re-import will reject it. Everything
//! [`crate::trace`] synthesizes already satisfies the contract.
//!
//! Every parse error is a [`CsvError`] carrying the 1-based line number of
//! the offending input line; the parser never panics on malformed text.
//!
//! Import is **streaming**: [`read_csv_file`] / [`import_csv_reader`] feed a
//! reused line buffer through the incremental [`CsvParser`], so a
//! multi-gigabyte trace file is never resident in memory as a whole —
//! [`import_csv`] over an in-memory string drives the exact same core.

use std::collections::BTreeSet;
use std::fmt;
use std::io::BufRead;
use std::path::Path;

use bfc_net::types::NodeId;
use bfc_sim::SimTime;

use crate::trace::TraceFlow;

/// The mandatory header line of the trace CSV format.
pub const TRACE_CSV_HEADER: &str = "src,dst,size_bytes,start_ns,is_incast";

/// A line-numbered trace-CSV parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number in the input text (0 for whole-file errors such as
    /// a missing header in an empty input).
    pub line: usize,
    /// What went wrong on that line.
    pub kind: CsvErrorKind,
}

/// The ways a trace-CSV line can be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvErrorKind {
    /// The input contained no content lines at all.
    MissingHeader,
    /// The first content line was not [`TRACE_CSV_HEADER`].
    BadHeader {
        /// The line that was found instead.
        found: String,
    },
    /// A row had the wrong number of comma-separated fields (truncated or
    /// overlong).
    WrongFieldCount {
        /// How many fields the row actually had.
        found: usize,
    },
    /// A field failed to parse.
    BadField {
        /// Column name from the header.
        column: &'static str,
        /// The offending text.
        value: String,
        /// Human-readable expectation.
        reason: &'static str,
    },
    /// A node id did not fit the simulator's 32-bit `NodeId` space.
    NodeOutOfRange {
        /// Column name (`src` or `dst`).
        column: &'static str,
        /// The parsed (too large) value.
        value: u64,
    },
    /// `src` and `dst` named the same host.
    SelfFlow,
    /// The row's `start_ns` was earlier than the previous row's, violating
    /// the sortedness contract.
    UnsortedStart,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            CsvErrorKind::MissingHeader => {
                write!(f, "empty input: expected header `{TRACE_CSV_HEADER}`")
            }
            CsvErrorKind::BadHeader { found } => {
                write!(f, "bad header `{found}`: expected `{TRACE_CSV_HEADER}`")
            }
            CsvErrorKind::WrongFieldCount { found } => {
                write!(f, "expected 5 comma-separated fields, found {found}")
            }
            CsvErrorKind::BadField {
                column,
                value,
                reason,
            } => write!(f, "bad `{column}` field `{value}`: {reason}"),
            CsvErrorKind::NodeOutOfRange { column, value } => write!(
                f,
                "`{column}` id {value} does not fit a 32-bit NodeId"
            ),
            CsvErrorKind::SelfFlow => write!(f, "src and dst are the same host"),
            CsvErrorKind::UnsortedStart => write!(
                f,
                "start_ns is earlier than the previous row (rows must be sorted)"
            ),
        }
    }
}

impl std::error::Error for CsvError {}

/// Errors from reading a trace CSV file from disk.
#[derive(Debug)]
pub enum TraceReadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file contents failed to parse.
    Csv(CsvError),
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "{e}"),
            TraceReadError::Csv(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TraceReadError {}

impl From<std::io::Error> for TraceReadError {
    fn from(e: std::io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

impl From<CsvError> for TraceReadError {
    fn from(e: CsvError) -> Self {
        TraceReadError::Csv(e)
    }
}

/// Writes a `SimTime` as fractional nanoseconds, emitting the picosecond
/// fraction only when non-zero so common traces stay compact.
fn write_start(out: &mut String, t: SimTime) {
    use std::fmt::Write as _;
    let ps = t.as_picos();
    let (ns, frac) = (ps / 1_000, ps % 1_000);
    let _ = if frac == 0 {
        write!(out, "{ns}")
    } else {
        write!(out, "{ns}.{frac:03}")
    };
}

/// Parses fractional nanoseconds into picoseconds. `None` on any syntax
/// error or overflow.
fn parse_start_ps(text: &str) -> Option<u64> {
    let (ns_text, frac_text) = match text.split_once('.') {
        Some((a, b)) => (a, Some(b)),
        None => (text, None),
    };
    if ns_text.is_empty() || !ns_text.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let ns: u64 = ns_text.parse().ok()?;
    let frac_ps = match frac_text {
        None => 0,
        Some(f) if (1..=3).contains(&f.len()) && f.bytes().all(|b| b.is_ascii_digit()) => {
            // Right-pad to 3 digits: ".4" is 400 ps.
            f.parse::<u64>().ok()? * 10u64.pow(3 - f.len() as u32)
        }
        Some(_) => return None,
    };
    ns.checked_mul(1_000)?.checked_add(frac_ps)
}

/// Serializes a trace in the CSV format of this module, preserving flow
/// order. For any trace that satisfies the format's validity rules (sorted
/// by start, no self-flows, sizes ≥ 1 — everything the generators in
/// [`crate::trace`] produce), this is the exact inverse of [`import_csv`]:
/// re-importing the returned text reproduces `flows` bit for bit.
pub fn export_csv(flows: &[TraceFlow]) -> String {
    use std::fmt::Write as _;
    // ~26 bytes per typical row; headroom avoids repeated regrowth.
    let mut out = String::with_capacity(TRACE_CSV_HEADER.len() + 1 + flows.len() * 32);
    out.push_str(TRACE_CSV_HEADER);
    out.push('\n');
    for f in flows {
        let _ = write!(out, "{},{},{},", f.src.0, f.dst.0, f.size_bytes);
        write_start(&mut out, f.start);
        let _ = writeln!(out, ",{}", u8::from(f.is_incast));
    }
    out
}

fn node_field(
    line: usize,
    column: &'static str,
    text: &str,
) -> Result<NodeId, CsvError> {
    let value: u64 = text.parse().map_err(|_| CsvError {
        line,
        kind: CsvErrorKind::BadField {
            column,
            value: text.to_string(),
            reason: "expected an unsigned integer node id",
        },
    })?;
    if value > u64::from(u32::MAX) {
        return Err(CsvError {
            line,
            kind: CsvErrorKind::NodeOutOfRange { column, value },
        });
    }
    Ok(NodeId(value as u32))
}

/// Incremental trace-CSV parser: feed it one line at a time (in order) and
/// collect the flows at the end. This is the core both [`import_csv`] (over
/// an in-memory string) and [`import_csv_reader`] (streaming over any
/// `BufRead`, one line resident at a time) drive, so multi-gigabyte trace
/// files never have to be loaded eagerly.
#[derive(Debug, Default)]
pub struct CsvParser {
    flows: Vec<TraceFlow>,
    saw_header: bool,
    prev_start: SimTime,
    line: usize,
}

impl CsvParser {
    /// Creates a parser expecting the header line first.
    pub fn new() -> Self {
        CsvParser::default()
    }

    /// Consumes the next input line (excluding the terminator). Lines must be
    /// fed in file order; the parser tracks 1-based line numbers for errors.
    pub fn push_line(&mut self, raw: &str) -> Result<(), CsvError> {
        self.line += 1;
        let line = self.line;
        let content = raw.trim();
        if content.is_empty() || content.starts_with('#') {
            return Ok(());
        }
        if !self.saw_header {
            if content != TRACE_CSV_HEADER {
                return Err(CsvError {
                    line,
                    kind: CsvErrorKind::BadHeader {
                        found: content.to_string(),
                    },
                });
            }
            self.saw_header = true;
            return Ok(());
        }

        let mut fields = [""; 5];
        let mut found = 0;
        for part in content.split(',') {
            if found < 5 {
                fields[found] = part.trim();
            }
            found += 1;
        }
        if found != 5 {
            return Err(CsvError {
                line,
                kind: CsvErrorKind::WrongFieldCount { found },
            });
        }
        let src = node_field(line, "src", fields[0])?;
        let dst = node_field(line, "dst", fields[1])?;
        if src == dst {
            return Err(CsvError {
                line,
                kind: CsvErrorKind::SelfFlow,
            });
        }
        let size_bytes: u64 = fields[2].parse().map_err(|_| CsvError {
            line,
            kind: CsvErrorKind::BadField {
                column: "size_bytes",
                value: fields[2].to_string(),
                reason: "expected an unsigned integer byte count",
            },
        })?;
        if size_bytes == 0 {
            return Err(CsvError {
                line,
                kind: CsvErrorKind::BadField {
                    column: "size_bytes",
                    value: fields[2].to_string(),
                    reason: "flow size must be at least 1 byte",
                },
            });
        }
        let start_ps = parse_start_ps(fields[3]).ok_or_else(|| CsvError {
            line,
            kind: CsvErrorKind::BadField {
                column: "start_ns",
                value: fields[3].to_string(),
                reason: "expected nanoseconds with up to 3 fractional digits",
            },
        })?;
        let start = SimTime::from_picos(start_ps);
        if start < self.prev_start {
            return Err(CsvError {
                line,
                kind: CsvErrorKind::UnsortedStart,
            });
        }
        self.prev_start = start;
        let is_incast = match fields[4] {
            "0" | "false" => false,
            "1" | "true" => true,
            other => {
                return Err(CsvError {
                    line,
                    kind: CsvErrorKind::BadField {
                        column: "is_incast",
                        value: other.to_string(),
                        reason: "expected 0/1 or false/true",
                    },
                })
            }
        };
        self.flows.push(TraceFlow {
            src,
            dst,
            size_bytes,
            start,
            is_incast,
        });
        Ok(())
    }

    /// Drains the flows parsed so far without consuming the parser, so a
    /// caller tailing a growing input (see [`crate::ingest`]) can hand off
    /// complete rows incrementally while the parser keeps its header /
    /// sortedness / line-number state for the lines still to come.
    pub fn take_flows(&mut self) -> Vec<TraceFlow> {
        std::mem::take(&mut self.flows)
    }

    /// Number of input lines consumed so far (for error reporting by
    /// streaming callers).
    pub fn lines_consumed(&self) -> usize {
        self.line
    }

    /// Finishes parsing, returning the flows. Fails if no header (and hence
    /// no content) was ever seen.
    pub fn finish(self) -> Result<Vec<TraceFlow>, CsvError> {
        if !self.saw_header {
            return Err(CsvError {
                line: 0,
                kind: CsvErrorKind::MissingHeader,
            });
        }
        Ok(self.flows)
    }
}

/// Parses a trace from the CSV format of this module, enforcing the header,
/// field syntax, node-id range, no self-flows and the sortedness contract.
/// Errors carry the 1-based line number; malformed input never panics.
pub fn import_csv(text: &str) -> Result<Vec<TraceFlow>, CsvError> {
    let mut parser = CsvParser::new();
    for raw in text.lines() {
        parser.push_line(raw)?;
    }
    parser.finish()
}

/// Streams a trace out of any [`BufRead`] source, holding one line in memory
/// at a time — the import path for traces too large to slurp. The line
/// buffer is reused across rows, so steady-state parsing allocates only for
/// the flows themselves.
pub fn import_csv_reader<R: BufRead>(mut reader: R) -> Result<Vec<TraceFlow>, TraceReadError> {
    let mut parser = CsvParser::new();
    let mut buf = String::new();
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        // `read_line` keeps the terminator; `push_line` trims whitespace
        // (including `\r` from CRLF files) anyway.
        parser.push_line(buf.trim_end_matches('\n'))?;
    }
    Ok(parser.finish()?)
}

/// Writes `flows` to `path` in the CSV format of this module.
pub fn write_csv_file<P: AsRef<Path>>(path: P, flows: &[TraceFlow]) -> std::io::Result<()> {
    std::fs::write(path, export_csv(flows))
}

/// Reads and parses a trace CSV file, streaming it line by line (the file is
/// never resident in memory as a whole).
pub fn read_csv_file<P: AsRef<Path>>(path: P) -> Result<Vec<TraceFlow>, TraceReadError> {
    let file = std::fs::File::open(path)?;
    import_csv_reader(std::io::BufReader::new(file))
}

/// Summary statistics of a trace, as printed by `trace-tool stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total flows.
    pub flows: usize,
    /// Flows flagged as incast members.
    pub incast_flows: usize,
    /// Distinct hosts appearing as a source or destination.
    pub hosts: usize,
    /// Sum of flow sizes.
    pub total_bytes: u64,
    /// Mean flow size.
    pub mean_bytes: f64,
    /// Median flow size.
    pub p50_bytes: u64,
    /// 90th-percentile flow size.
    pub p90_bytes: u64,
    /// 99th-percentile flow size.
    pub p99_bytes: u64,
    /// Largest flow size.
    pub max_bytes: u64,
    /// First arrival instant.
    pub first_start: SimTime,
    /// Last arrival instant — the measurement window the trace covers.
    pub last_start: SimTime,
    /// Host access-link rate assumed for the load arithmetic (Gbps).
    pub host_gbps: f64,
    /// Offered load over `[0, last_start]` as a fraction of the aggregate
    /// host bandwidth (`hosts * host_gbps`); 0 when the window is empty.
    pub offered_load: f64,
}

impl TraceStats {
    /// Computes the summary of a flow list, assuming every host's access
    /// link runs at `host_gbps`. `None` for an empty trace.
    pub fn from_flows(flows: &[TraceFlow], host_gbps: f64) -> Option<TraceStats> {
        if flows.is_empty() {
            return None;
        }
        let mut sizes: Vec<u64> = flows.iter().map(|f| f.size_bytes).collect();
        sizes.sort_unstable();
        let pct = |p: f64| {
            let idx = (p / 100.0 * (sizes.len() - 1) as f64).round() as usize;
            sizes[idx.min(sizes.len() - 1)]
        };
        let hosts: BTreeSet<NodeId> = flows
            .iter()
            .flat_map(|f| [f.src, f.dst])
            .collect();
        let total_bytes: u64 = sizes.iter().sum();
        let first_start = flows.iter().map(|f| f.start).min().expect("non-empty");
        let last_start = flows.iter().map(|f| f.start).max().expect("non-empty");
        let window_secs = last_start.as_secs_f64();
        let aggregate_bps = hosts.len() as f64 * host_gbps * 1e9;
        let offered_load = if window_secs > 0.0 && aggregate_bps > 0.0 {
            total_bytes as f64 * 8.0 / window_secs / aggregate_bps
        } else {
            0.0
        };
        Some(TraceStats {
            flows: flows.len(),
            incast_flows: flows.iter().filter(|f| f.is_incast).count(),
            hosts: hosts.len(),
            total_bytes,
            mean_bytes: total_bytes as f64 / flows.len() as f64,
            p50_bytes: pct(50.0),
            p90_bytes: pct(90.0),
            p99_bytes: pct(99.0),
            max_bytes: *sizes.last().expect("non-empty"),
            first_start,
            last_start,
            host_gbps,
            offered_load,
        })
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "flows          {} ({} incast) across {} hosts",
            self.flows, self.incast_flows, self.hosts
        )?;
        writeln!(
            f,
            "window         {} .. {}",
            self.first_start, self.last_start
        )?;
        writeln!(
            f,
            "bytes          {} total, mean {:.0}",
            self.total_bytes, self.mean_bytes
        )?;
        writeln!(
            f,
            "size pct (B)   p50 {}  p90 {}  p99 {}  max {}",
            self.p50_bytes, self.p90_bytes, self.p99_bytes, self.max_bytes
        )?;
        write!(
            f,
            "offered load   {:.1}% of {} hosts x {:.0} Gbps",
            self.offered_load * 100.0,
            self.hosts,
            self.host_gbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{synthesize, TraceParams};
    use crate::Workload;
    use bfc_sim::SimDuration;

    fn hosts(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn round_trip_is_exact_at_picosecond_resolution() {
        let flows = vec![
            TraceFlow {
                src: NodeId(0),
                dst: NodeId(7),
                size_bytes: 1,
                start: SimTime::from_picos(1), // forces the ".001" fraction
                is_incast: false,
            },
            TraceFlow {
                src: NodeId(u32::MAX),
                dst: NodeId(3),
                size_bytes: u64::MAX,
                start: SimTime::from_picos(123_456_789),
                is_incast: true,
            },
        ];
        let csv = export_csv(&flows);
        assert!(csv.starts_with(TRACE_CSV_HEADER));
        assert!(csv.contains("0.001"), "sub-ns start must be fractional:\n{csv}");
        assert_eq!(import_csv(&csv).expect("round trip"), flows);
    }

    #[test]
    fn synthesized_trace_round_trips() {
        let hosts = hosts(16);
        let params = TraceParams::google_with_incast(SimDuration::from_micros(500), 7);
        let flows = synthesize(&hosts, &params);
        assert!(!flows.is_empty());
        assert_eq!(import_csv(&export_csv(&flows)).expect("round trip"), flows);
    }

    #[test]
    fn comments_blank_lines_and_field_padding_are_tolerated() {
        let csv = format!(
            "# a hand-written trace\n\n{TRACE_CSV_HEADER}\n# mid-file note\n 0 , 1 , 100 , 5 , 1 \n"
        );
        let flows = import_csv(&csv).expect("lenient whitespace");
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].start, SimTime::from_nanos(5));
        assert!(flows[0].is_incast);
    }

    #[test]
    fn truncated_row_reports_its_line() {
        let csv = format!("{TRACE_CSV_HEADER}\n0,1,100,5,0\n0,1,100\n");
        let err = import_csv(&csv).expect_err("truncated row");
        assert_eq!(err.line, 3);
        assert_eq!(err.kind, CsvErrorKind::WrongFieldCount { found: 3 });
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn non_numeric_fields_report_column_and_line() {
        for (row, column) in [
            ("x,1,100,5,0", "src"),
            ("0,y,100,5,0", "dst"),
            ("0,1,many,5,0", "size_bytes"),
            ("0,1,100,later,0", "is-start"),
            ("0,1,100,5,yes", "is_incast"),
        ] {
            let csv = format!("{TRACE_CSV_HEADER}\n{row}\n");
            let err = import_csv(&csv).expect_err(row);
            assert_eq!(err.line, 2, "{row}");
            if let CsvErrorKind::BadField { column: c, .. } = &err.kind {
                if column != "is-start" {
                    assert_eq!(*c, column, "{row}");
                }
            } else {
                panic!("{row}: expected BadField, got {:?}", err.kind);
            }
        }
    }

    #[test]
    fn out_of_range_node_id_is_rejected() {
        let too_big = u64::from(u32::MAX) + 1;
        let csv = format!("{TRACE_CSV_HEADER}\n{too_big},1,100,5,0\n");
        let err = import_csv(&csv).expect_err("oversized node id");
        assert_eq!(err.line, 2);
        assert_eq!(
            err.kind,
            CsvErrorKind::NodeOutOfRange {
                column: "src",
                value: too_big
            }
        );
    }

    #[test]
    fn unsorted_starts_are_rejected_at_the_offending_line() {
        let csv = format!("{TRACE_CSV_HEADER}\n0,1,100,10,0\n2,3,100,9,0\n");
        let err = import_csv(&csv).expect_err("unsorted");
        assert_eq!(err.line, 3);
        assert_eq!(err.kind, CsvErrorKind::UnsortedStart);
    }

    #[test]
    fn header_is_mandatory() {
        assert_eq!(
            import_csv("").expect_err("empty").kind,
            CsvErrorKind::MissingHeader
        );
        let err = import_csv("0,1,100,5,0\n").expect_err("no header");
        assert_eq!(err.line, 1);
        assert!(matches!(err.kind, CsvErrorKind::BadHeader { .. }));
    }

    #[test]
    fn self_flows_and_zero_sizes_are_rejected() {
        let csv = format!("{TRACE_CSV_HEADER}\n4,4,100,5,0\n");
        assert_eq!(import_csv(&csv).expect_err("self").kind, CsvErrorKind::SelfFlow);
        let csv = format!("{TRACE_CSV_HEADER}\n0,1,0,5,0\n");
        assert!(matches!(
            import_csv(&csv).expect_err("zero size").kind,
            CsvErrorKind::BadField { column: "size_bytes", .. }
        ));
    }

    #[test]
    fn fractional_start_syntax_is_validated() {
        for bad in ["1.", ".5", "1.2345", "1e3", "-1", "1.2.3"] {
            let csv = format!("{TRACE_CSV_HEADER}\n0,1,100,{bad},0\n");
            let err = import_csv(&csv).expect_err(bad);
            assert!(
                matches!(err.kind, CsvErrorKind::BadField { column: "start_ns", .. }),
                "{bad}: {:?}",
                err.kind
            );
        }
        let csv = format!("{TRACE_CSV_HEADER}\n0,1,100,1.5,0\n");
        let flows = import_csv(&csv).expect("short fraction pads right");
        assert_eq!(flows[0].start, SimTime::from_picos(1_500));
    }

    #[test]
    fn streaming_reader_matches_in_memory_import() {
        let hosts = hosts(16);
        let params = TraceParams::google_with_incast(SimDuration::from_micros(400), 11);
        let flows = synthesize(&hosts, &params);
        let csv = export_csv(&flows);
        // Tiny buffer capacity: lines still come out whole via read_line.
        let reader = std::io::BufReader::with_capacity(7, csv.as_bytes());
        let streamed = import_csv_reader(reader).expect("streaming parse");
        assert_eq!(streamed, flows);
        assert_eq!(streamed, import_csv(&csv).expect("in-memory parse"));
    }

    #[test]
    fn streaming_reader_reports_line_numbered_errors() {
        let csv = format!("{TRACE_CSV_HEADER}\n0,1,100,5,0\n0,1,100,4,0\n");
        let err = import_csv_reader(std::io::BufReader::new(csv.as_bytes()))
            .expect_err("unsorted row");
        match err {
            TraceReadError::Csv(e) => {
                assert_eq!(e.line, 3);
                assert_eq!(e.kind, CsvErrorKind::UnsortedStart);
            }
            TraceReadError::Io(e) => panic!("expected a CSV error, got io: {e}"),
        }
    }

    #[test]
    fn crlf_input_streams_cleanly() {
        let csv = format!("{TRACE_CSV_HEADER}\r\n0,1,100,5,0\r\n");
        let flows = import_csv_reader(std::io::BufReader::new(csv.as_bytes()))
            .expect("CRLF tolerated");
        assert_eq!(flows.len(), 1);
        assert!(!flows[0].is_incast);
    }

    #[test]
    fn stats_summarize_counts_window_and_load() {
        let hosts = hosts(32);
        let params = TraceParams::background_only(
            Workload::Google,
            0.5,
            SimDuration::from_millis(2),
            3,
        );
        let flows = synthesize(&hosts, &params);
        let stats = TraceStats::from_flows(&flows, 100.0).expect("non-empty");
        assert_eq!(stats.flows, flows.len());
        assert_eq!(stats.incast_flows, 0);
        assert!(stats.hosts <= 32);
        assert!(stats.p50_bytes <= stats.p90_bytes && stats.p90_bytes <= stats.max_bytes);
        assert!(
            (0.25..1.0).contains(&stats.offered_load),
            "offered load {} should sit near the requested 0.5",
            stats.offered_load
        );
        assert!(TraceStats::from_flows(&[], 100.0).is_none());
        let text = stats.to_string();
        assert!(text.contains("offered load") && text.contains("p99"));
    }
}
