//! Trace synthesis: complete lists of flows (source, destination, size,
//! start time) fed to the simulation driver.

use bfc_net::types::NodeId;
use bfc_sim::{SimDuration, SimRng, SimTime};

use crate::arrivals::{mean_interarrival_secs, ArrivalShape, IncastSchedule};
use crate::distributions::Workload;

/// One flow of a synthesized trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFlow {
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Application bytes.
    pub size_bytes: u64,
    /// Arrival time (when the sender may begin transmitting).
    pub start: SimTime,
    /// True for flows belonging to an incast event. The paper reports FCT
    /// slowdowns only for the non-incast traffic.
    pub is_incast: bool,
}

/// Parameters of the paper's standard background-plus-incast traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceParams {
    /// Flow-size distribution of the background traffic.
    pub workload: Workload,
    /// Background offered load as a fraction of aggregate host bandwidth
    /// (e.g. 0.60 for the 60% + 5% incast experiments).
    pub load: f64,
    /// Additional offered load contributed by incast events (0 disables
    /// incast).
    pub incast_load: f64,
    /// Number of senders per incast event (the paper's default is 100-to-1).
    pub incast_fan_in: usize,
    /// Aggregate size of one incast event in bytes (20 MB in the paper).
    pub incast_total_bytes: u64,
    /// Trace duration.
    pub duration: SimDuration,
    /// Host access-link rate in Gbps.
    pub host_gbps: f64,
    /// RNG seed.
    pub seed: u64,
    /// Shape of the background inter-arrival gaps (paper: log-normal σ = 2).
    pub arrivals: ArrivalShape,
    /// How incast events are spaced (paper: strictly periodic).
    pub incast_schedule: IncastSchedule,
}

impl TraceParams {
    /// The Fig. 5a configuration: Google workload, 60% background load plus
    /// 5% incast (100-to-1, 20 MB), at 100 Gbps.
    pub fn google_with_incast(duration: SimDuration, seed: u64) -> Self {
        TraceParams {
            workload: Workload::Google,
            load: 0.60,
            incast_load: 0.05,
            incast_fan_in: 100,
            incast_total_bytes: 20_000_000,
            duration,
            host_gbps: 100.0,
            seed,
            arrivals: ArrivalShape::paper_default(),
            incast_schedule: IncastSchedule::paper_default(),
        }
    }

    /// Background-only traffic at the given load (Fig. 5c uses 65%).
    pub fn background_only(workload: Workload, load: f64, duration: SimDuration, seed: u64) -> Self {
        TraceParams {
            workload,
            load,
            incast_load: 0.0,
            incast_fan_in: 0,
            incast_total_bytes: 0,
            duration,
            host_gbps: 100.0,
            seed,
            arrivals: ArrivalShape::paper_default(),
            incast_schedule: IncastSchedule::paper_default(),
        }
    }

    /// Overrides the background arrival shape.
    pub fn with_arrivals(mut self, arrivals: ArrivalShape) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Overrides the incast event schedule.
    pub fn with_incast_schedule(mut self, schedule: IncastSchedule) -> Self {
        self.incast_schedule = schedule;
        self
    }
}

fn pick_distinct_pair(hosts: &[NodeId], rng: &mut SimRng) -> (NodeId, NodeId) {
    assert!(hosts.len() >= 2, "need at least two hosts");
    let src = *rng.choose(hosts);
    loop {
        let dst = *rng.choose(hosts);
        if dst != src {
            return (src, dst);
        }
    }
}

/// Synthesizes the paper's standard workload: background arrivals matching
/// `params.load` (log-normal gaps by default; see [`TraceParams::arrivals`]),
/// plus incast events adding `params.incast_load` of extra traffic on the
/// schedule of [`TraceParams::incast_schedule`].
pub fn synthesize(hosts: &[NodeId], params: &TraceParams) -> Vec<TraceFlow> {
    let mut rng = SimRng::new(params.seed);
    let cdf = params.workload.cdf();
    let mean_size = cdf.mean_bytes();
    let horizon = SimTime::ZERO + params.duration;
    let mut flows = Vec::new();

    // Background traffic.
    if params.load > 0.0 {
        let mean_gap =
            mean_interarrival_secs(params.load, hosts.len(), params.host_gbps, mean_size);
        let process = params.arrivals.with_mean(mean_gap);
        let mut arrival_rng = rng.split(1);
        let mut size_rng = rng.split(2);
        let mut pair_rng = rng.split(3);
        for start in process.arrivals_until(horizon, &mut arrival_rng) {
            let (src, dst) = pick_distinct_pair(hosts, &mut pair_rng);
            flows.push(TraceFlow {
                src,
                dst,
                size_bytes: cdf.sample(&mut size_rng).max(1),
                start,
                is_incast: false,
            });
        }
    }

    // Incast events. The byte guard matters: a zero event size would make
    // the event rate infinite (period zero) below.
    if params.incast_load > 0.0 && params.incast_fan_in > 0 && params.incast_total_bytes > 0 {
        let aggregate_bps = hosts.len() as f64 * params.host_gbps * 1e9;
        let event_bits = params.incast_total_bytes as f64 * 8.0;
        let events_per_sec = params.incast_load * aggregate_bps / event_bits;
        let period = SimDuration::from_secs_f64(1.0 / events_per_sec);
        let mut incast_rng = rng.split(4);
        let mut schedule_rng = rng.split(5);
        for t in params
            .incast_schedule
            .events_until(period, horizon, &mut schedule_rng)
        {
            flows.extend(incast_event(
                hosts,
                params.incast_fan_in,
                params.incast_total_bytes,
                t,
                &mut incast_rng,
            ));
        }
    }

    flows.sort_by_key(|f| f.start);
    flows
}

/// One incast event: `fan_in` random senders each send an equal share of
/// `total_bytes` to one random receiver, all starting at `start`.
pub fn incast_event(
    hosts: &[NodeId],
    fan_in: usize,
    total_bytes: u64,
    start: SimTime,
    rng: &mut SimRng,
) -> Vec<TraceFlow> {
    assert!(hosts.len() >= 2);
    let receiver = *rng.choose(hosts);
    let per_sender = (total_bytes / fan_in as u64).max(1);
    let mut senders: Vec<NodeId> = hosts.iter().copied().filter(|h| *h != receiver).collect();
    rng.shuffle(&mut senders);
    senders
        .iter()
        .cycle()
        .take(fan_in)
        .map(|&src| TraceFlow {
            src,
            dst: receiver,
            size_bytes: per_sender,
            start,
            is_incast: true,
        })
        .collect()
}

/// Periodic incast (Fig. 8): one incast of `total_bytes` split over `fan_in`
/// senders every `period`, for `duration`.
pub fn incast_trace(
    hosts: &[NodeId],
    fan_in: usize,
    total_bytes: u64,
    period: SimDuration,
    duration: SimDuration,
    seed: u64,
) -> Vec<TraceFlow> {
    let mut rng = SimRng::new(seed);
    let horizon = SimTime::ZERO + duration;
    let mut t = SimTime::ZERO + period;
    let mut flows = Vec::new();
    while t <= horizon {
        flows.extend(incast_event(hosts, fan_in, total_bytes, t, &mut rng));
        t += period;
    }
    flows
}

/// Long-lived background flows for Fig. 8: `per_receiver` flows to every host
/// from random other senders, each long enough to last the whole experiment.
pub fn long_lived_per_receiver(
    hosts: &[NodeId],
    per_receiver: usize,
    size_bytes: u64,
    seed: u64,
) -> Vec<TraceFlow> {
    let mut rng = SimRng::new(seed);
    let mut flows = Vec::new();
    for &receiver in hosts {
        for _ in 0..per_receiver {
            let src = loop {
                let s = *rng.choose(hosts);
                if s != receiver {
                    break s;
                }
            };
            flows.push(TraceFlow {
                src,
                dst: receiver,
                size_bytes,
                start: SimTime::ZERO,
                is_incast: false,
            });
        }
    }
    flows
}

/// `n` concurrent long-lived flows to a single receiver from distinct senders
/// (Fig. 10's buffer-occupancy experiment). Senders are reused round-robin if
/// `n` exceeds the number of other hosts.
pub fn concurrent_long_flows(
    hosts: &[NodeId],
    receiver: NodeId,
    n: usize,
    size_bytes: u64,
) -> Vec<TraceFlow> {
    let senders: Vec<NodeId> = hosts.iter().copied().filter(|h| *h != receiver).collect();
    assert!(!senders.is_empty());
    (0..n)
        .map(|i| TraceFlow {
            src: senders[i % senders.len()],
            dst: receiver,
            size_bytes,
            start: SimTime::ZERO,
            is_incast: false,
        })
        .collect()
}

/// The cross-data-center mix of Fig. 9: background traffic where
/// `inter_dc_fraction` of flows cross between the two host groups and the
/// rest stay inside one data center.
pub fn cross_dc_trace(
    dc0_hosts: &[NodeId],
    dc1_hosts: &[NodeId],
    params: &TraceParams,
    inter_dc_fraction: f64,
) -> Vec<TraceFlow> {
    let all: Vec<NodeId> = dc0_hosts.iter().chain(dc1_hosts.iter()).copied().collect();
    let mut rng = SimRng::new(params.seed ^ 0xc0ffee);
    let cdf = params.workload.cdf();
    let mean_size = cdf.mean_bytes();
    let mean_gap = mean_interarrival_secs(params.load, all.len(), params.host_gbps, mean_size);
    let process = params.arrivals.with_mean(mean_gap);
    let horizon = SimTime::ZERO + params.duration;
    let mut arrival_rng = rng.split(1);
    let mut size_rng = rng.split(2);
    let mut pair_rng = rng.split(3);
    let mut kind_rng = rng.split(4);
    process
        .arrivals_until(horizon, &mut arrival_rng)
        .into_iter()
        .map(|start| {
            let inter = kind_rng.chance(inter_dc_fraction);
            let (src, dst) = if inter {
                let src = *pair_rng.choose(dc0_hosts);
                let dst = *pair_rng.choose(dc1_hosts);
                if pair_rng.chance(0.5) {
                    (src, dst)
                } else {
                    (dst, src)
                }
            } else if pair_rng.chance(0.5) {
                pick_distinct_pair(dc0_hosts, &mut pair_rng)
            } else {
                pick_distinct_pair(dc1_hosts, &mut pair_rng)
            };
            TraceFlow {
                src,
                dst,
                size_bytes: cdf.sample(&mut size_rng).max(1),
                start,
                is_incast: false,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn synthesized_load_is_close_to_target() {
        let hosts = hosts(64);
        let params = TraceParams::background_only(
            Workload::Google,
            0.5,
            SimDuration::from_millis(5),
            7,
        );
        let flows = synthesize(&hosts, &params);
        assert!(!flows.is_empty());
        let bytes: u64 = flows.iter().map(|f| f.size_bytes).sum();
        let offered = bytes as f64 * 8.0 / 5e-3;
        let target = 0.5 * 64.0 * 100e9;
        let ratio = offered / target;
        assert!(
            (0.6..1.4).contains(&ratio),
            "offered/target = {ratio} ({} flows)",
            flows.len()
        );
        // Sorted by start time, all before the horizon, no self-flows.
        for w in flows.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert!(flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn incast_adds_the_requested_extra_load() {
        let hosts = hosts(64);
        let params = TraceParams::google_with_incast(SimDuration::from_millis(5), 3);
        let flows = synthesize(&hosts, &params);
        let incast_bytes: u64 = flows.iter().filter(|f| f.is_incast).map(|f| f.size_bytes).sum();
        let incast_load = incast_bytes as f64 * 8.0 / 5e-3 / (64.0 * 100e9);
        assert!(
            (0.02..0.08).contains(&incast_load),
            "incast load {incast_load}"
        );
        // Each incast event has the right fan-in and one receiver.
        let first_start = flows
            .iter()
            .find(|f| f.is_incast)
            .map(|f| f.start)
            .expect("incast flows exist");
        let event: Vec<&TraceFlow> = flows
            .iter()
            .filter(|f| f.is_incast && f.start == first_start)
            .collect();
        assert_eq!(event.len(), 100);
        assert!(event.iter().all(|f| f.dst == event[0].dst));
    }

    #[test]
    fn zero_byte_incast_is_disabled_rather_than_divergent() {
        // incast_total_bytes = 0 would make the event period zero; the
        // branch must be skipped like fan_in = 0, not loop forever.
        let hosts = hosts(8);
        let params = TraceParams {
            incast_total_bytes: 0,
            ..TraceParams::google_with_incast(SimDuration::from_micros(200), 2)
        };
        let flows = synthesize(&hosts, &params);
        assert!(flows.iter().all(|f| !f.is_incast));
        assert!(!flows.is_empty());
    }

    #[test]
    fn bursty_arrivals_and_clustered_incast_keep_the_offered_load() {
        let hosts = hosts(64);
        let params = TraceParams::google_with_incast(SimDuration::from_millis(5), 13)
            .with_arrivals(ArrivalShape::bursty_default())
            .with_incast_schedule(IncastSchedule::LogNormalGaps { sigma: 1.0 });
        let flows = synthesize(&hosts, &params);
        let bytes: u64 = flows.iter().filter(|f| !f.is_incast).map(|f| f.size_bytes).sum();
        let ratio = bytes as f64 * 8.0 / 5e-3 / (0.60 * 64.0 * 100e9);
        assert!((0.5..1.5).contains(&ratio), "background offered/target = {ratio}");
        for w in flows.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        // Same seed, same trace; the variants are deterministic too.
        assert_eq!(flows, synthesize(&hosts, &params));
    }

    #[test]
    fn deterministic_given_seed() {
        let hosts = hosts(16);
        let params = TraceParams::google_with_incast(SimDuration::from_millis(1), 42);
        assert_eq!(synthesize(&hosts, &params), synthesize(&hosts, &params));
        let other = TraceParams {
            seed: 43,
            ..params
        };
        assert_ne!(synthesize(&hosts, &params), synthesize(&hosts, &other));
    }

    #[test]
    fn periodic_incast_trace_fires_every_period() {
        let hosts = hosts(32);
        let flows = incast_trace(
            &hosts,
            10,
            20_000_000,
            SimDuration::from_micros(500),
            SimDuration::from_millis(2),
            1,
        );
        // 4 events * 10 senders.
        assert_eq!(flows.len(), 40);
        let starts: std::collections::BTreeSet<u64> =
            flows.iter().map(|f| f.start.as_nanos()).collect();
        assert_eq!(starts.len(), 4);
        assert_eq!(flows[0].size_bytes, 2_000_000);
    }

    #[test]
    fn incast_event_reuses_senders_when_fan_in_exceeds_hosts() {
        let hosts = hosts(8);
        let mut rng = SimRng::new(5);
        let flows = incast_event(&hosts, 20, 20_000, SimTime::ZERO, &mut rng);
        assert_eq!(flows.len(), 20);
        assert!(flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn long_lived_and_concurrent_helpers() {
        let hosts = hosts(16);
        let ll = long_lived_per_receiver(&hosts, 4, 1_000_000_000, 9);
        assert_eq!(ll.len(), 64);
        assert!(ll.iter().all(|f| f.src != f.dst));

        let cc = concurrent_long_flows(&hosts, hosts[3], 40, 5_000_000);
        assert_eq!(cc.len(), 40);
        assert!(cc.iter().all(|f| f.dst == hosts[3] && f.src != hosts[3]));
    }

    #[test]
    fn cross_dc_trace_mixes_intra_and_inter() {
        let dc0 = hosts(32);
        let dc1: Vec<NodeId> = (100..132).map(NodeId).collect();
        let params = TraceParams {
            workload: Workload::FbHadoop,
            load: 0.65,
            incast_load: 0.0,
            incast_fan_in: 0,
            incast_total_bytes: 0,
            duration: SimDuration::from_millis(2),
            host_gbps: 10.0,
            seed: 4,
            arrivals: ArrivalShape::paper_default(),
            incast_schedule: IncastSchedule::paper_default(),
        };
        let flows = cross_dc_trace(&dc0, &dc1, &params, 0.2);
        assert!(!flows.is_empty());
        let is_inter = |f: &TraceFlow| (f.src.0 < 100) != (f.dst.0 < 100);
        let inter = flows.iter().filter(|f| is_inter(f)).count() as f64 / flows.len() as f64;
        assert!((0.1..0.3).contains(&inter), "inter-DC fraction {inter}");
    }
}
