//! # bfc-workloads — synthetic data-center traffic
//!
//! The paper evaluates BFC on synthetic traces whose flow sizes match three
//! published industry workloads (an aggregate of all applications in a Google
//! data center, a Facebook Hadoop cluster and the DCTCP web-search workload)
//! with log-normal (σ = 2) flow inter-arrival times, optionally mixed with
//! periodic large-fan-in incast events. This crate reproduces those traces:
//!
//! * [`distributions`] — empirical flow-size CDFs and samplers for the three
//!   workloads (plus helpers that regenerate the byte-weighted CDFs of
//!   Fig. 4).
//! * [`arrivals`] — offered-load arithmetic and the arrival processes:
//!   log-normal (paper default), Poisson, and bursty Markov-modulated on/off
//!   gaps, plus the periodic / log-normal incast event schedules.
//! * [`trace`] — complete trace synthesis: random sender/receiver pairs over
//!   a host set, incast events (Fig. 5/8/11), long-lived flow patterns
//!   (Figs. 8 and 10) and the cross-data-center mix of Fig. 9.
//! * [`io`] — the std-only CSV trace format: `export_csv` / `import_csv`
//!   with strict line-numbered parse errors, a streaming `import_csv_reader`
//!   (one line resident at a time, for multi-gigabyte traces), file helpers,
//!   and `TraceStats` summaries, so real cluster traces can be persisted and
//!   replayed.
//! * [`ingest`] — streaming flow sources for service mode: tail a growing
//!   trace CSV (`CsvTail`) or accept rows over a TCP socket
//!   (`SocketIngest`), with pull-based backpressure to the feeder.
//!
//! All generation is deterministic given a seed, and any trace round-trips
//! bit-exactly through the CSV form.

pub mod arrivals;
pub mod distributions;
pub mod ingest;
pub mod io;
pub mod trace;

pub use arrivals::{
    mean_interarrival_secs, ArrivalProcess, ArrivalShape, IncastSchedule,
};
pub use distributions::{EmpiricalCdf, Workload};
pub use ingest::{CsvTail, IngestError, IngestSource, SocketIngest, INGEST_END_MARKER};
pub use io::{export_csv, import_csv, import_csv_reader, CsvError, CsvErrorKind, TraceStats};
pub use trace::{
    concurrent_long_flows, cross_dc_trace, incast_trace, long_lived_per_receiver, synthesize,
    TraceFlow, TraceParams,
};
