//! # bfc-workloads — synthetic data-center traffic
//!
//! The paper evaluates BFC on synthetic traces whose flow sizes match three
//! published industry workloads (an aggregate of all applications in a Google
//! data center, a Facebook Hadoop cluster and the DCTCP web-search workload)
//! with log-normal (σ = 2) flow inter-arrival times, optionally mixed with
//! periodic large-fan-in incast events. This crate reproduces those traces:
//!
//! * [`distributions`] — empirical flow-size CDFs and samplers for the three
//!   workloads (plus helpers that regenerate the byte-weighted CDFs of
//!   Fig. 4).
//! * [`arrivals`] — offered-load arithmetic and the log-normal arrival
//!   process.
//! * [`trace`] — complete trace synthesis: random sender/receiver pairs over
//!   a host set, incast events (Fig. 5/8/11), long-lived flow patterns
//!   (Figs. 8 and 10) and the cross-data-center mix of Fig. 9.
//!
//! All generation is deterministic given a seed.

pub mod arrivals;
pub mod distributions;
pub mod trace;

pub use arrivals::{mean_interarrival_secs, ArrivalProcess};
pub use distributions::{EmpiricalCdf, Workload};
pub use trace::{
    concurrent_long_flows, cross_dc_trace, incast_trace, long_lived_per_receiver, synthesize,
    TraceFlow, TraceParams,
};
