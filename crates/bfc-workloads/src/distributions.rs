//! Flow-size distributions.
//!
//! The paper synthesizes traces matching three industry workloads (Fig. 4):
//!
//! * **Google** — the aggregate of all applications in a Google data center
//!   (via the Homa measurement study): dominated by tiny RPC-style messages,
//!   more than 80% of flows are under 1 KB, yet the byte-weighted CDF is
//!   carried by flows around and below one bandwidth-delay product.
//! * **FB_Hadoop** — a Facebook Hadoop cluster: small-to-moderate flows with
//!   most bytes in the 10 KB–1 MB range.
//! * **WebSearch** — the DCTCP web-search workload: the heaviest of the
//!   three, with flows up to tens of megabytes.
//!
//! The exact traces are proprietary; the CDFs below are transcriptions of the
//! published curves (the same approach the paper itself takes), expressed as
//! piecewise log-linear empirical CDFs. What matters for reproducing the
//! evaluation is the qualitative shape: the ordering of mean sizes, the heavy
//! single-packet mass in Google, and the heavy tail in WebSearch.

use bfc_sim::SimRng;

/// A named workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Aggregate of all applications in a Google data center.
    Google,
    /// Facebook Hadoop cluster.
    FbHadoop,
    /// DCTCP web-search.
    WebSearch,
}

impl Workload {
    /// All three workloads, in the order the paper lists them.
    pub fn all() -> [Workload; 3] {
        [Workload::Google, Workload::FbHadoop, Workload::WebSearch]
    }

    /// Human-readable name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Google => "Google",
            Workload::FbHadoop => "FB_Hadoop",
            Workload::WebSearch => "WebSearch",
        }
    }

    /// The flow-size CDF of this workload.
    pub fn cdf(&self) -> EmpiricalCdf {
        match self {
            Workload::Google => EmpiricalCdf::new(vec![
                (100.0, 0.30),
                (300.0, 0.60),
                (700.0, 0.75),
                (1_000.0, 0.82),
                (2_000.0, 0.87),
                (5_000.0, 0.91),
                (10_000.0, 0.935),
                (30_000.0, 0.96),
                (100_000.0, 0.98),
                (300_000.0, 0.99),
                (1_000_000.0, 0.997),
                (10_000_000.0, 1.0),
            ]),
            Workload::FbHadoop => EmpiricalCdf::new(vec![
                (150.0, 0.15),
                (300.0, 0.30),
                (1_000.0, 0.52),
                (3_000.0, 0.66),
                (10_000.0, 0.78),
                (30_000.0, 0.87),
                (100_000.0, 0.93),
                (300_000.0, 0.96),
                (1_000_000.0, 0.98),
                (3_000_000.0, 0.993),
                (10_000_000.0, 1.0),
            ]),
            Workload::WebSearch => EmpiricalCdf::new(vec![
                (6_000.0, 0.15),
                (13_000.0, 0.30),
                (19_000.0, 0.40),
                (33_000.0, 0.53),
                (53_000.0, 0.60),
                (133_000.0, 0.70),
                (667_000.0, 0.80),
                (1_333_000.0, 0.85),
                (3_333_000.0, 0.90),
                (6_667_000.0, 0.95),
                (20_000_000.0, 0.98),
                (30_000_000.0, 1.0),
            ]),
        }
    }
}

/// A piecewise log-linear empirical CDF over flow sizes in bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    /// `(size_bytes, cumulative_probability)` points, strictly increasing in
    /// both coordinates, ending at probability 1.
    points: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Builds a CDF from `(size, probability)` points. Points must be sorted,
    /// strictly increasing in size, with the final probability equal to 1.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "a CDF needs at least two points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must be strictly increasing");
            assert!(w[0].1 <= w[1].1, "probabilities must be non-decreasing");
        }
        assert!(
            (points.last().expect("non-empty").1 - 1.0).abs() < 1e-9,
            "the last point must have probability 1"
        );
        EmpiricalCdf { points }
    }

    /// The CDF points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Inverse-transform sampling of a flow size in bytes (at least 1).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.next_f64();
        self.quantile(u)
    }

    /// The flow size at cumulative probability `u` (log-linear interpolation
    /// between points).
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        let first = self.points[0];
        if u <= first.1 {
            // Interpolate from one byte up to the first point.
            let frac = if first.1 > 0.0 { u / first.1 } else { 1.0 };
            let size = (first.0.ln() * frac).exp();
            return size.max(1.0).round() as u64;
        }
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                let frac = if p1 > p0 { (u - p0) / (p1 - p0) } else { 1.0 };
                let log_size = s0.ln() + frac * (s1.ln() - s0.ln());
                return log_size.exp().max(1.0).round() as u64;
            }
        }
        self.points.last().expect("non-empty").0.round() as u64
    }

    /// Mean flow size in bytes (numerical integration of the quantile
    /// function; accurate enough for load calculations).
    pub fn mean_bytes(&self) -> f64 {
        let steps = 10_000;
        let mut sum = 0.0;
        for i in 0..steps {
            let u = (i as f64 + 0.5) / steps as f64;
            sum += self.quantile(u) as f64;
        }
        sum / steps as f64
    }

    /// Byte-weighted CDF evaluated at the distribution's own points, i.e. the
    /// fraction of all bytes carried by flows no larger than each size. This
    /// is the quantity plotted in Fig. 4.
    pub fn byte_weighted_cdf(&self) -> Vec<(f64, f64)> {
        let steps = 20_000;
        let mut total = 0.0;
        let mut samples = Vec::with_capacity(steps);
        for i in 0..steps {
            let u = (i as f64 + 0.5) / steps as f64;
            let s = self.quantile(u) as f64;
            total += s;
            samples.push(s);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sizes are finite"));
        self.points
            .iter()
            .map(|&(size, _)| {
                let carried: f64 = samples.iter().take_while(|&&s| s <= size).sum();
                (size, carried / total)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        for w in Workload::all() {
            let cdf = w.cdf();
            let mut prev = 0;
            for i in 0..=100 {
                let q = cdf.quantile(i as f64 / 100.0);
                assert!(q >= prev, "{}: quantile must be monotone", w.name());
                prev = q;
            }
            assert!(prev as f64 <= cdf.points().last().unwrap().0 + 1.0);
        }
    }

    #[test]
    fn google_is_dominated_by_sub_kilobyte_flows() {
        // The paper: "in the Google workload more than 80% flows are < 1KB".
        let cdf = Workload::Google.cdf();
        assert!(cdf.quantile(0.80) <= 1_000);
        assert!(cdf.quantile(0.95) > 1_000);
    }

    #[test]
    fn mean_sizes_are_ordered_google_hadoop_websearch() {
        let google = Workload::Google.cdf().mean_bytes();
        let hadoop = Workload::FbHadoop.cdf().mean_bytes();
        let websearch = Workload::WebSearch.cdf().mean_bytes();
        assert!(google < hadoop, "google {google} vs hadoop {hadoop}");
        assert!(hadoop < websearch, "hadoop {hadoop} vs websearch {websearch}");
        // Web search averages in the megabyte range.
        assert!(websearch > 1_000_000.0);
    }

    #[test]
    fn sampling_matches_the_cdf() {
        let cdf = Workload::FbHadoop.cdf();
        let mut rng = SimRng::new(7);
        let n = 100_000;
        let below_1k = (0..n)
            .filter(|_| cdf.sample(&mut rng) <= 1_000)
            .count() as f64
            / n as f64;
        assert!((below_1k - 0.52).abs() < 0.02, "got {below_1k}");
    }

    #[test]
    fn byte_weighted_cdf_is_monotone_and_ends_at_one() {
        for w in Workload::all() {
            let bw = w.cdf().byte_weighted_cdf();
            for pair in bw.windows(2) {
                assert!(pair[0].1 <= pair[1].1 + 1e-12);
            }
            let last = bw.last().unwrap().1;
            assert!((last - 1.0).abs() < 1e-6, "{}: {last}", w.name());
        }
    }

    #[test]
    fn byte_weighted_mass_sits_well_above_flow_count_mass() {
        // Most flows are tiny but most bytes are in larger flows: at 1 KB the
        // Google workload has >80% of flows but only a small share of bytes.
        let cdf = Workload::Google.cdf();
        let bw = cdf.byte_weighted_cdf();
        let at_1k = bw
            .iter()
            .find(|(s, _)| (*s - 1_000.0).abs() < 1.0)
            .map(|(_, p)| *p)
            .expect("1 KB point exists");
        assert!(at_1k < 0.2, "bytes below 1 KB should be a small share, got {at_1k}");
    }

    #[test]
    #[should_panic(expected = "probability 1")]
    fn cdf_must_end_at_one() {
        let _ = EmpiricalCdf::new(vec![(10.0, 0.5), (20.0, 0.9)]);
    }
}
