//! Streaming flow ingest: feed a live simulation from a growing CSV file or
//! a TCP socket instead of a fully materialized trace.
//!
//! An [`IngestSource`] is a *pull* interface: the consumer (the service-mode
//! driver in `bfc-experiments`) asks for one flow at a time and simply stops
//! asking while its inflight window is full. Backpressure to the feeder is
//! therefore inherent rather than protocol-level:
//!
//! * [`CsvTail`] — a file is never read past the consumer's demand, so a
//!   paused consumer costs nothing;
//! * [`SocketIngest`] — an unread TCP stream fills the kernel receive
//!   buffer, the peer's send window closes, and the feeder's writes block
//!   until the consumer drains flows again.
//!
//! Both sources speak the exact trace-CSV format of [`crate::io`] (header
//! line first, rows sorted by `start_ns`), driven through the incremental
//! [`CsvParser`] so every malformed line is rejected with its 1-based line
//! number, exactly like the batch import path.

use std::collections::VecDeque;
use std::fmt;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::time::Duration;

use crate::io::{CsvError, CsvParser};
use crate::trace::TraceFlow;

/// The comment line a feeder writes to terminate a followed ingest stream
/// (`CsvTail` in follow mode has no other end-of-input signal, since a plain
/// file cannot report "writer closed").
pub const INGEST_END_MARKER: &str = "#end";

/// How a streaming source can fail.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying file or socket failed.
    Io(std::io::Error),
    /// A line failed to parse as trace CSV (line-numbered).
    Csv(CsvError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest i/o: {e}"),
            IngestError::Csv(e) => write!(f, "ingest csv: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<CsvError> for IngestError {
    fn from(e: CsvError) -> Self {
        IngestError::Csv(e)
    }
}

/// A pull-based stream of flows for service mode.
pub trait IngestSource {
    /// Returns the next flow, blocking until one is available. `Ok(None)`
    /// means the stream ended cleanly and no more flows will ever arrive.
    fn next_flow(&mut self) -> Result<Option<TraceFlow>, IngestError>;
}

/// Incremental line assembly + CSV parsing shared by both sources: bytes go
/// in (possibly mid-line), complete rows come out as flows. Partial lines are
/// held back until their terminator arrives, so a feeder that writes a row in
/// two chunks never produces a spurious parse error.
#[derive(Debug, Default)]
struct LineAssembler {
    parser: CsvParser,
    ready: VecDeque<TraceFlow>,
    pending: String,
    saw_end_marker: bool,
}

impl LineAssembler {
    /// Feeds one `read_line` result (which keeps the `\n` except at EOF).
    /// Lines are only parsed once complete; the end marker short-circuits.
    fn feed(&mut self, chunk: &str) -> Result<(), CsvError> {
        self.pending.push_str(chunk);
        if !self.pending.ends_with('\n') {
            return Ok(());
        }
        let line = std::mem::take(&mut self.pending);
        self.consume_line(line.trim_end_matches(['\n', '\r']))
    }

    /// Force-parses whatever is buffered (final unterminated line at a true
    /// end of input).
    fn flush(&mut self) -> Result<(), CsvError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let line = std::mem::take(&mut self.pending);
        self.consume_line(line.trim_end_matches(['\n', '\r']))
    }

    fn consume_line(&mut self, line: &str) -> Result<(), CsvError> {
        if line.trim() == INGEST_END_MARKER {
            self.saw_end_marker = true;
            return Ok(());
        }
        self.parser.push_line(line)?;
        self.ready.extend(self.parser.take_flows());
        Ok(())
    }
}

/// Streams flows out of a (possibly still growing) trace CSV file.
///
/// Without `follow`, the source ends at the file's current end — plain
/// streaming of a finished trace. With `follow`, end-of-file means "the
/// writer has not caught up yet": the tail sleeps briefly and retries until
/// it sees the [`INGEST_END_MARKER`] comment line.
#[derive(Debug)]
pub struct CsvTail {
    reader: BufReader<std::fs::File>,
    lines: LineAssembler,
    follow: bool,
    poll_interval: Duration,
    ended: bool,
}

impl CsvTail {
    /// Opens `path` for streaming. `follow` selects tail -f semantics.
    pub fn open<P: AsRef<Path>>(path: P, follow: bool) -> std::io::Result<CsvTail> {
        Ok(CsvTail {
            reader: BufReader::new(std::fs::File::open(path)?),
            lines: LineAssembler::default(),
            follow,
            poll_interval: Duration::from_millis(10),
            ended: false,
        })
    }

    /// Overrides the follow-mode polling interval (tests use a short one).
    pub fn with_poll_interval(mut self, interval: Duration) -> CsvTail {
        self.poll_interval = interval;
        self
    }
}

impl IngestSource for CsvTail {
    fn next_flow(&mut self) -> Result<Option<TraceFlow>, IngestError> {
        let mut chunk = String::new();
        loop {
            if let Some(flow) = self.lines.ready.pop_front() {
                return Ok(Some(flow));
            }
            if self.ended {
                return Ok(None);
            }
            chunk.clear();
            if self.reader.read_line(&mut chunk)? == 0 {
                if self.follow && !self.lines.saw_end_marker {
                    std::thread::sleep(self.poll_interval);
                    continue;
                }
                self.lines.flush()?;
                self.ended = true;
                continue;
            }
            self.lines.feed(&chunk)?;
            if self.lines.saw_end_marker {
                self.ended = true;
            }
        }
    }
}

/// Streams flows from a single TCP connection speaking the trace-CSV format.
///
/// The listener accepts exactly one feeder; the stream ends when the feeder
/// closes its side. Reads happen only on consumer demand, so a full inflight
/// window translates into TCP backpressure on the feeder.
#[derive(Debug)]
pub struct SocketIngest {
    listener: TcpListener,
    conn: Option<BufReader<TcpStream>>,
    lines: LineAssembler,
    ended: bool,
}

impl SocketIngest {
    /// Binds `addr` (e.g. `127.0.0.1:9000`; port 0 picks a free port) and
    /// returns the source plus the actual bound address.
    pub fn bind(addr: &str) -> std::io::Result<(SocketIngest, SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok((
            SocketIngest {
                listener,
                conn: None,
                lines: LineAssembler::default(),
                ended: false,
            },
            local,
        ))
    }
}

impl IngestSource for SocketIngest {
    fn next_flow(&mut self) -> Result<Option<TraceFlow>, IngestError> {
        let mut chunk = String::new();
        loop {
            if let Some(flow) = self.lines.ready.pop_front() {
                return Ok(Some(flow));
            }
            if self.ended {
                return Ok(None);
            }
            if self.conn.is_none() {
                let (stream, _peer) = self.listener.accept()?;
                self.conn = Some(BufReader::new(stream));
            }
            let conn = self.conn.as_mut().expect("connection accepted above");
            chunk.clear();
            if conn.read_line(&mut chunk)? == 0 {
                self.lines.flush()?;
                self.ended = true;
                continue;
            }
            self.lines.feed(&chunk)?;
            if self.lines.saw_end_marker {
                self.ended = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{export_csv, CsvErrorKind, TRACE_CSV_HEADER};
    use crate::trace::{synthesize, TraceParams};
    use crate::Workload;
    use bfc_net::types::NodeId;
    use bfc_sim::SimDuration;
    use std::io::Write as _;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bfc-ingest-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn csv_tail_streams_a_finished_file_exactly() {
        let hosts: Vec<NodeId> = (0..8).map(NodeId).collect();
        let params = TraceParams::background_only(
            Workload::Google,
            0.4,
            SimDuration::from_micros(80),
            13,
        );
        let flows = synthesize(&hosts, &params);
        let path = tmp_path("finished");
        std::fs::write(&path, export_csv(&flows)).expect("write trace");
        let mut tail = CsvTail::open(&path, false).expect("open");
        let mut streamed = Vec::new();
        while let Some(f) = tail.next_flow().expect("valid csv") {
            streamed.push(f);
        }
        assert_eq!(streamed, flows);
        assert!(tail.next_flow().expect("idempotent end").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn csv_tail_reports_line_numbered_errors() {
        let path = tmp_path("bad");
        std::fs::write(&path, format!("{TRACE_CSV_HEADER}\n0,1,100,5,0\n0,0,9,6,0\n"))
            .expect("write trace");
        let mut tail = CsvTail::open(&path, false).expect("open");
        assert!(tail.next_flow().expect("first row fine").is_some());
        match tail.next_flow() {
            Err(IngestError::Csv(e)) => {
                assert_eq!(e.line, 3);
                assert_eq!(e.kind, CsvErrorKind::SelfFlow);
            }
            other => panic!("expected a line-3 CSV error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn csv_tail_follow_waits_for_growth_and_end_marker() {
        let path = tmp_path("follow");
        std::fs::write(&path, format!("{TRACE_CSV_HEADER}\n")).expect("write header");
        let mut tail = CsvTail::open(&path, true)
            .expect("open")
            .with_poll_interval(Duration::from_millis(1));
        let path2 = path.clone();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path2)
                .expect("reopen");
            // Split one row across two writes to exercise partial-line
            // buffering, then terminate the stream.
            write!(f, "0,1,100").expect("partial row");
            f.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(20));
            writeln!(f, ",5,0").expect("rest of row");
            writeln!(f, "2,3,200,9,1").expect("second row");
            writeln!(f, "{INGEST_END_MARKER}").expect("end marker");
        });
        let first = tail.next_flow().expect("valid").expect("first flow");
        assert_eq!((first.src, first.dst, first.size_bytes), (NodeId(0), NodeId(1), 100));
        let second = tail.next_flow().expect("valid").expect("second flow");
        assert_eq!(second.size_bytes, 200);
        assert!(second.is_incast);
        assert!(tail.next_flow().expect("clean end").is_none());
        writer.join().expect("writer thread");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn socket_ingest_streams_one_connection() {
        let (mut source, addr) = SocketIngest::bind("127.0.0.1:0").expect("bind");
        let feeder = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            write!(
                stream,
                "{TRACE_CSV_HEADER}\n0,1,1000,5,0\n1,2,2000,7.25,1\n"
            )
            .expect("send rows");
            // Closing the stream ends the ingest.
        });
        let a = source.next_flow().expect("valid").expect("first");
        assert_eq!(a.size_bytes, 1000);
        let b = source.next_flow().expect("valid").expect("second");
        assert_eq!(b.start.as_picos(), 7_250);
        assert!(source.next_flow().expect("clean end").is_none());
        feeder.join().expect("feeder thread");
    }
}
