//! HPCC: high-precision congestion control (Li et al., SIGCOMM 2019).
//!
//! HPCC is the second end-to-end baseline in the paper. Switches append
//! in-band network telemetry (INT) to every data packet: queue length,
//! cumulative transmitted bytes, a timestamp and the link capacity. The
//! receiver echoes the telemetry on ACKs and the sender computes, per link,
//! an estimate of bytes-in-flight relative to the bandwidth-delay product,
//! then sets its window multiplicatively toward the target utilization
//! `η = 0.95`, with at most `maxStage` additive steps between multiplicative
//! updates.

use bfc_net::packet::{IntHop, IntPath};
use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};

use crate::config::HpccParams;

/// Sender-side HPCC state for one flow.
#[derive(Debug, Clone)]
pub struct HpccState {
    /// Current window in bytes (also drives the pacing rate `W / T`).
    pub window_bytes: f64,
    /// Reference window updated once per RTT.
    reference_window: f64,
    /// Additive-increase stages since the last multiplicative update.
    inc_stage: u32,
    /// Sequence number that must be acknowledged before the reference window
    /// may be updated again (the "per-ACK vs per-RTT" guard of the paper).
    update_after_seq: u64,
    /// Last INT record seen per hop (stored inline: no per-ACK allocation).
    last_int: IntPath,
    /// Additive increase in bytes.
    w_ai: f64,
    /// Base RTT in seconds.
    base_rtt_secs: f64,
    /// One bandwidth-delay product in bytes (window upper bound).
    max_window: f64,
}

impl HpccState {
    /// Creates the state for a flow on a `line_rate_gbps` access link with
    /// the given network base RTT.
    pub fn new(line_rate_gbps: f64, base_rtt_secs: f64, params: &HpccParams) -> Self {
        let bdp = line_rate_gbps * 1e9 / 8.0 * base_rtt_secs;
        HpccState {
            window_bytes: bdp,
            reference_window: bdp,
            inc_stage: 0,
            update_after_seq: 0,
            last_int: IntPath::new(),
            w_ai: bdp * params.w_ai_fraction,
            base_rtt_secs,
            max_window: bdp,
        }
    }

    /// Current pacing rate in Gbps implied by the window.
    pub fn rate_gbps(&self) -> f64 {
        (self.window_bytes * 8.0 / self.base_rtt_secs) / 1e9
    }

    /// The normalized utilization `U` of the most congested hop, given fresh
    /// telemetry and the previous sample. Returns `None` until two samples of
    /// the same path are available.
    fn max_utilization(&self, int: &[IntHop]) -> Option<f64> {
        if self.last_int.len() != int.len() || int.is_empty() {
            return None;
        }
        let mut u_max: f64 = 0.0;
        for (cur, prev) in int.iter().zip(self.last_int.iter()) {
            let link_bps = cur.link_gbps * 1e9;
            let dt_secs = (cur.timestamp_ps.saturating_sub(prev.timestamp_ps)) as f64 / 1e12;
            let tx_rate_bps = if dt_secs > 0.0 {
                (cur.tx_bytes.saturating_sub(prev.tx_bytes)) as f64 * 8.0 / dt_secs
            } else {
                0.0
            };
            let qlen = cur.qlen_bytes.min(prev.qlen_bytes) as f64;
            let u = qlen * 8.0 / (link_bps * self.base_rtt_secs) + tx_rate_bps / link_bps;
            u_max = u_max.max(u);
        }
        Some(u_max)
    }

    /// Processes the INT echoed on an ACK. `acked_seq` is the cumulative
    /// acknowledgement and `snd_nxt` the sender's next unsent sequence number
    /// (both in packets); they gate the once-per-RTT reference-window update.
    pub fn on_ack(&mut self, int: &[IntHop], acked_seq: u64, snd_nxt: u64, params: &HpccParams) {
        let utilization = self.max_utilization(int);
        self.last_int = IntPath::from_slice(int);
        let Some(u) = utilization else {
            return;
        };

        if u >= params.eta || self.inc_stage >= params.max_stage {
            self.window_bytes = self.reference_window / (u / params.eta) + self.w_ai;
            if acked_seq >= self.update_after_seq {
                self.reference_window = self.window_bytes;
                self.inc_stage = 0;
                self.update_after_seq = snd_nxt;
            }
        } else {
            self.window_bytes = self.reference_window + self.w_ai;
            if acked_seq >= self.update_after_seq {
                self.reference_window = self.window_bytes;
                self.inc_stage += 1;
                self.update_after_seq = snd_nxt;
            }
        }
        let floor = self.w_ai.max(1_500.0);
        self.window_bytes = self.window_bytes.clamp(floor, self.max_window);
        self.reference_window = self.reference_window.clamp(floor, self.max_window);
    }

    /// Current additive-increase stage (diagnostics).
    pub fn inc_stage(&self) -> u32 {
        self.inc_stage
    }

    /// Serializes the full state machine for snapshot/restore (floats by
    /// bits).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_f64(self.window_bytes);
        w.put_f64(self.reference_window);
        w.put_u32(self.inc_stage);
        w.put_u64(self.update_after_seq);
        self.last_int.save_state(w);
        w.put_f64(self.w_ai);
        w.put_f64(self.base_rtt_secs);
        w.put_f64(self.max_window);
    }

    /// Rebuilds the state machine from [`HpccState::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(HpccState {
            window_bytes: r.get_f64()?,
            reference_window: r.get_f64()?,
            inc_stage: r.get_u32()?,
            update_after_seq: r.get_u64()?,
            last_int: IntPath::restore_state(r)?,
            w_ai: r.get_f64()?,
            base_rtt_secs: r.get_f64()?,
            max_window: r.get_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE_RTT: f64 = 8e-6;

    fn params() -> HpccParams {
        HpccParams::default()
    }

    fn hop(qlen: u64, tx: u64, ts_ps: u64) -> IntHop {
        IntHop {
            qlen_bytes: qlen,
            tx_bytes: tx,
            timestamp_ps: ts_ps,
            link_gbps: 100.0,
        }
    }

    #[test]
    fn starts_at_one_bdp() {
        let s = HpccState::new(100.0, BASE_RTT, &params());
        assert!((s.window_bytes - 100_000.0).abs() < 1.0);
        assert!((s.rate_gbps() - 100.0).abs() < 0.1);
    }

    #[test]
    fn congested_link_shrinks_window() {
        let p = params();
        let mut s = HpccState::new(100.0, BASE_RTT, &p);
        // First sample primes last_int with an already-deep queue.
        s.on_ack(&[hop(400_000, 100_000, 0)], 1, 10, &p);
        // Second sample: the link transmitted a full BDP during one RTT and
        // still holds a deep queue → utilization well above η.
        s.on_ack(&[hop(400_000, 200_000, 8_000_000)], 2, 12, &p);
        assert!(
            s.window_bytes < 50_000.0,
            "window should shrink sharply, got {}",
            s.window_bytes
        );
    }

    #[test]
    fn idle_link_lets_window_grow_back_to_cap() {
        let p = params();
        let mut s = HpccState::new(100.0, BASE_RTT, &p);
        // Prime, then congest to shrink the window.
        s.on_ack(&[hop(400_000, 100_000, 0)], 1, 10, &p);
        s.on_ack(&[hop(400_000, 200_000, 8_000_000)], 2, 12, &p);
        let small = s.window_bytes;
        // Now a long series of samples from an almost idle link.
        let mut ts = 16_000_000u64;
        let mut tx = 200_000u64;
        for ack in 3..200u64 {
            ts += 8_000_000;
            tx += 10_000; // 10 KB per RTT ≈ 10% utilization
            s.on_ack(&[hop(0, tx, ts)], ack, ack + 10, &p);
        }
        assert!(s.window_bytes > small);
        assert!(s.window_bytes <= 100_000.0 + 1.0, "never exceeds one BDP");
    }

    #[test]
    fn utilization_needs_two_samples_of_same_path_length() {
        let p = params();
        let mut s = HpccState::new(100.0, BASE_RTT, &p);
        let w0 = s.window_bytes;
        s.on_ack(&[hop(0, 0, 0), hop(0, 0, 0)], 1, 5, &p);
        assert_eq!(s.window_bytes, w0, "first sample must not move the window");
        // A path-length change (reroute) re-primes instead of computing
        // nonsense utilization.
        s.on_ack(&[hop(0, 0, 8_000_000)], 2, 6, &p);
        assert_eq!(s.window_bytes, w0);
    }

    #[test]
    fn window_never_collapses_below_floor() {
        let p = params();
        let mut s = HpccState::new(100.0, BASE_RTT, &p);
        s.on_ack(&[hop(0, 0, 0)], 1, 10, &p);
        let mut ts = 8_000_000u64;
        let mut tx = 0u64;
        for ack in 2..100 {
            ts += 8_000_000;
            tx += 100_000;
            s.on_ack(&[hop(4_000_000, tx, ts)], ack, ack + 10, &p);
        }
        assert!(s.window_bytes >= 1_500.0);
    }

    #[test]
    fn inc_stage_counts_additive_steps() {
        let p = params();
        let mut s = HpccState::new(100.0, BASE_RTT, &p);
        s.on_ack(&[hop(0, 0, 0)], 1, 2, &p);
        let mut ts = 8_000_000u64;
        for ack in 2..6u64 {
            ts += 8_000_000;
            s.on_ack(&[hop(0, 1_000 * ack, ts)], ack, ack + 1, &p);
        }
        assert!(s.inc_stage() >= 1);
        assert!(s.inc_stage() <= p.max_stage);
    }
}
