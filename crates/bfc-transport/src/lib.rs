//! # bfc-transport — host / RDMA NIC models
//!
//! Everything that runs on an end host in the BFC evaluation lives here:
//!
//! * [`host::Host`] — the NIC model: per-flow send state, round-robin
//!   scheduling onto the uplink, strict-priority ACK/CNP transmission,
//!   Go-Back-N reliability, PFC obedience and per-flow BFC pause obedience.
//! * [`dcqcn`] — the DCQCN rate-control algorithm (ECN marks → CNPs → rate
//!   decrease; timer-driven fast recovery / additive / hyper increase), with
//!   the optional one-BDP window cap of the paper's DCQCN+Win variant.
//! * [`hpcc`] — HPCC's INT-driven window control (η = 0.95, maxStage = 5).
//! * [`config`] — the per-host configuration selecting one of the paper's
//!   schemes (BFC hosts send at line rate until paused; Ideal-FQ and
//!   SFQ+InfBuffer hosts only apply a one-BDP window cap).
//!
//! The host interacts with the fabric exclusively through
//! [`bfc_net::NetEvent`]s, so any switch policy can be combined with any
//! host-side congestion control — exactly the combinations the paper's
//! evaluation sweeps over.

pub mod config;
pub mod dcqcn;
pub mod flow;
pub mod host;
pub mod hpcc;

pub use config::{CcKind, DcqcnParams, HostConfig, HpccParams};
pub use flow::{FlowSpec, ReceiverFlow, SenderFlow};
pub use host::Host;
