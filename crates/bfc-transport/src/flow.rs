//! Per-flow sender and receiver state.

use bfc_net::types::{FlowId, NodeId};
use bfc_sim::SimTime;

use crate::dcqcn::DcqcnState;
use crate::hpcc::HpccState;

/// Static description of a flow, produced by the workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Dense flow identifier.
    pub flow: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Application bytes to transfer.
    pub size_bytes: u64,
    /// Virtual flow ID (`hash(5-tuple) mod num_vfids`), shared by every
    /// switch and the NICs.
    pub vfid: u32,
}

impl FlowSpec {
    /// Number of MTU-sized packets needed (at least one).
    pub fn num_packets(&self, mtu: u32) -> u64 {
        self.size_bytes.div_ceil(mtu as u64).max(1)
    }

    /// Wire size of packet `seq` (the last packet carries the remainder).
    pub fn packet_size(&self, seq: u64, mtu: u32) -> u32 {
        let total = self.num_packets(mtu);
        debug_assert!(seq < total);
        if seq + 1 < total {
            mtu
        } else {
            let rem = self.size_bytes - (total - 1) * mtu as u64;
            (rem.max(1)).min(mtu as u64) as u32
        }
    }
}

/// Congestion-control state attached to a sender flow.
#[derive(Debug, Clone)]
pub enum CcState {
    /// Line-rate or window-only sending: no per-flow algorithm state.
    None,
    /// DCQCN rate control.
    Dcqcn(DcqcnState),
    /// HPCC window control.
    Hpcc(HpccState),
}

/// Sender-side state of one flow.
#[derive(Debug, Clone)]
pub struct SenderFlow {
    /// The flow's static description.
    pub spec: FlowSpec,
    /// Total packets to send.
    pub num_packets: u64,
    /// Next packet sequence number to transmit.
    pub next_seq: u64,
    /// Highest cumulative acknowledgement received.
    pub acked_seq: u64,
    /// Earliest time the pacer allows the next transmission.
    pub next_allowed: SimTime,
    /// Congestion-control state.
    pub cc: CcState,
    /// `acked_seq` observed at the last retransmission-timer check.
    pub acked_at_last_timeout: u64,
    /// When the flow started (the sender saw its arrival).
    pub started_at: SimTime,
}

impl SenderFlow {
    /// Creates sender state for `spec`.
    pub fn new(spec: FlowSpec, mtu: u32, cc: CcState, started_at: SimTime) -> Self {
        SenderFlow {
            num_packets: spec.num_packets(mtu),
            spec,
            next_seq: 0,
            acked_seq: 0,
            next_allowed: started_at,
            cc,
            acked_at_last_timeout: 0,
            started_at,
        }
    }

    /// True once every packet has been cumulatively acknowledged.
    pub fn fully_acked(&self) -> bool {
        self.acked_seq >= self.num_packets
    }

    /// True while there are packets that have not been transmitted (or that
    /// must be retransmitted after a Go-Back-N rewind).
    pub fn has_unsent(&self) -> bool {
        self.next_seq < self.num_packets
    }

    /// Approximate bytes in flight (unacknowledged), assuming MTU-sized
    /// packets; used for window checks.
    pub fn inflight_bytes(&self, mtu: u32) -> u64 {
        self.next_seq.saturating_sub(self.acked_seq) * mtu as u64
    }
}

/// Receiver-side state of one flow.
#[derive(Debug, Clone)]
pub struct ReceiverFlow {
    /// The flow's static description.
    pub spec: FlowSpec,
    /// Total packets expected.
    pub num_packets: u64,
    /// Next in-order packet sequence expected.
    pub expected_seq: u64,
    /// Application bytes received in order.
    pub received_bytes: u64,
    /// Time the last in-order byte arrived (completion time once finished).
    pub last_arrival: Option<SimTime>,
    /// Last time a CNP was generated for this flow.
    pub last_cnp: Option<SimTime>,
    /// Sequence for which a NACK was already sent (suppresses duplicates).
    pub nack_sent_for: Option<u64>,
    /// True once every byte has arrived.
    pub completed: bool,
}

impl ReceiverFlow {
    /// Creates receiver state for `spec`.
    pub fn new(spec: FlowSpec, mtu: u32) -> Self {
        ReceiverFlow {
            num_packets: spec.num_packets(mtu),
            spec,
            expected_seq: 0,
            received_bytes: 0,
            last_arrival: None,
            last_cnp: None,
            nack_sent_for: None,
            completed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(size: u64) -> FlowSpec {
        FlowSpec {
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: size,
            vfid: 7,
        }
    }

    #[test]
    fn packetization_rounds_up() {
        assert_eq!(spec(1).num_packets(1000), 1);
        assert_eq!(spec(1000).num_packets(1000), 1);
        assert_eq!(spec(1001).num_packets(1000), 2);
        assert_eq!(spec(20_000_000).num_packets(1000), 20_000);
    }

    #[test]
    fn last_packet_carries_remainder() {
        let s = spec(2500);
        assert_eq!(s.packet_size(0, 1000), 1000);
        assert_eq!(s.packet_size(1, 1000), 1000);
        assert_eq!(s.packet_size(2, 1000), 500);
        assert_eq!(spec(1000).packet_size(0, 1000), 1000);
        assert_eq!(spec(64).packet_size(0, 1000), 64);
    }

    #[test]
    fn sender_flow_progress_flags() {
        let mut f = SenderFlow::new(spec(2500), 1000, CcState::None, SimTime::ZERO);
        assert!(f.has_unsent());
        assert!(!f.fully_acked());
        f.next_seq = 3;
        assert!(!f.has_unsent());
        assert_eq!(f.inflight_bytes(1000), 3000);
        f.acked_seq = 3;
        assert!(f.fully_acked());
        assert_eq!(f.inflight_bytes(1000), 0);
    }

    #[test]
    fn receiver_flow_initial_state() {
        let r = ReceiverFlow::new(spec(5000), 1000);
        assert_eq!(r.num_packets, 5);
        assert_eq!(r.expected_seq, 0);
        assert!(!r.completed);
    }
}
