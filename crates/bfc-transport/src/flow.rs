//! Per-flow sender and receiver state.

use bfc_net::types::{FlowId, NodeId};
use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};
use bfc_sim::SimTime;

use crate::dcqcn::DcqcnState;
use crate::hpcc::HpccState;

fn put_opt_time(w: &mut SnapWriter, t: Option<SimTime>) {
    match t {
        Some(t) => {
            w.put_bool(true);
            w.put_u64(t.as_picos());
        }
        None => w.put_bool(false),
    }
}

fn get_opt_time(r: &mut SnapReader<'_>) -> Result<Option<SimTime>, SnapError> {
    Ok(if r.get_bool()? {
        Some(SimTime::from_picos(r.get_u64()?))
    } else {
        None
    })
}

/// Static description of a flow, produced by the workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Dense flow identifier.
    pub flow: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Application bytes to transfer.
    pub size_bytes: u64,
    /// Virtual flow ID (`hash(5-tuple) mod num_vfids`), shared by every
    /// switch and the NICs.
    pub vfid: u32,
}

impl FlowSpec {
    /// Number of MTU-sized packets needed (at least one).
    pub fn num_packets(&self, mtu: u32) -> u64 {
        self.size_bytes.div_ceil(mtu as u64).max(1)
    }

    /// Wire size of packet `seq` (the last packet carries the remainder).
    pub fn packet_size(&self, seq: u64, mtu: u32) -> u32 {
        let total = self.num_packets(mtu);
        debug_assert!(seq < total);
        if seq + 1 < total {
            mtu
        } else {
            let rem = self.size_bytes - (total - 1) * mtu as u64;
            (rem.max(1)).min(mtu as u64) as u32
        }
    }

    /// Serializes the spec for snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u32(self.flow.0);
        w.put_u32(self.src.0);
        w.put_u32(self.dst.0);
        w.put_u64(self.size_bytes);
        w.put_u32(self.vfid);
    }

    /// Rebuilds a spec from [`FlowSpec::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FlowSpec {
            flow: FlowId(r.get_u32()?),
            src: NodeId(r.get_u32()?),
            dst: NodeId(r.get_u32()?),
            size_bytes: r.get_u64()?,
            vfid: r.get_u32()?,
        })
    }
}

/// Congestion-control state attached to a sender flow.
#[derive(Debug, Clone)]
pub enum CcState {
    /// Line-rate or window-only sending: no per-flow algorithm state.
    None,
    /// DCQCN rate control.
    Dcqcn(DcqcnState),
    /// HPCC window control.
    Hpcc(HpccState),
}

impl CcState {
    /// Serializes the congestion-control state with a variant tag.
    pub fn save_state(&self, w: &mut SnapWriter) {
        match self {
            CcState::None => w.put_u8(0),
            CcState::Dcqcn(state) => {
                w.put_u8(1);
                state.save_state(w);
            }
            CcState::Hpcc(state) => {
                w.put_u8(2);
                state.save_state(w);
            }
        }
    }

    /// Rebuilds the state from [`CcState::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.get_u8()? {
            0 => CcState::None,
            1 => CcState::Dcqcn(DcqcnState::restore_state(r)?),
            2 => CcState::Hpcc(HpccState::restore_state(r)?),
            _ => return Err(SnapError::Corrupt("unknown congestion-control tag")),
        })
    }
}

/// Sender-side state of one flow.
#[derive(Debug, Clone)]
pub struct SenderFlow {
    /// The flow's static description.
    pub spec: FlowSpec,
    /// Total packets to send.
    pub num_packets: u64,
    /// Next packet sequence number to transmit.
    pub next_seq: u64,
    /// Highest cumulative acknowledgement received.
    pub acked_seq: u64,
    /// Earliest time the pacer allows the next transmission.
    pub next_allowed: SimTime,
    /// Congestion-control state.
    pub cc: CcState,
    /// `acked_seq` observed at the last retransmission-timer check.
    pub acked_at_last_timeout: u64,
    /// When the flow started (the sender saw its arrival).
    pub started_at: SimTime,
}

impl SenderFlow {
    /// Creates sender state for `spec`.
    pub fn new(spec: FlowSpec, mtu: u32, cc: CcState, started_at: SimTime) -> Self {
        SenderFlow {
            num_packets: spec.num_packets(mtu),
            spec,
            next_seq: 0,
            acked_seq: 0,
            next_allowed: started_at,
            cc,
            acked_at_last_timeout: 0,
            started_at,
        }
    }

    /// True once every packet has been cumulatively acknowledged.
    pub fn fully_acked(&self) -> bool {
        self.acked_seq >= self.num_packets
    }

    /// True while there are packets that have not been transmitted (or that
    /// must be retransmitted after a Go-Back-N rewind).
    pub fn has_unsent(&self) -> bool {
        self.next_seq < self.num_packets
    }

    /// Approximate bytes in flight (unacknowledged), assuming MTU-sized
    /// packets; used for window checks.
    pub fn inflight_bytes(&self, mtu: u32) -> u64 {
        self.next_seq.saturating_sub(self.acked_seq) * mtu as u64
    }

    /// Serializes the sender state for snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.spec.save_state(w);
        w.put_u64(self.num_packets);
        w.put_u64(self.next_seq);
        w.put_u64(self.acked_seq);
        w.put_u64(self.next_allowed.as_picos());
        self.cc.save_state(w);
        w.put_u64(self.acked_at_last_timeout);
        w.put_u64(self.started_at.as_picos());
    }

    /// Rebuilds the sender state from [`SenderFlow::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SenderFlow {
            spec: FlowSpec::restore_state(r)?,
            num_packets: r.get_u64()?,
            next_seq: r.get_u64()?,
            acked_seq: r.get_u64()?,
            next_allowed: SimTime::from_picos(r.get_u64()?),
            cc: CcState::restore_state(r)?,
            acked_at_last_timeout: r.get_u64()?,
            started_at: SimTime::from_picos(r.get_u64()?),
        })
    }
}

/// Receiver-side state of one flow.
#[derive(Debug, Clone)]
pub struct ReceiverFlow {
    /// The flow's static description.
    pub spec: FlowSpec,
    /// Total packets expected.
    pub num_packets: u64,
    /// Next in-order packet sequence expected.
    pub expected_seq: u64,
    /// Application bytes received in order.
    pub received_bytes: u64,
    /// Time the last in-order byte arrived (completion time once finished).
    pub last_arrival: Option<SimTime>,
    /// Last time a CNP was generated for this flow.
    pub last_cnp: Option<SimTime>,
    /// Sequence for which a NACK was already sent (suppresses duplicates).
    pub nack_sent_for: Option<u64>,
    /// True once every byte has arrived.
    pub completed: bool,
}

impl ReceiverFlow {
    /// Creates receiver state for `spec`.
    pub fn new(spec: FlowSpec, mtu: u32) -> Self {
        ReceiverFlow {
            num_packets: spec.num_packets(mtu),
            spec,
            expected_seq: 0,
            received_bytes: 0,
            last_arrival: None,
            last_cnp: None,
            nack_sent_for: None,
            completed: false,
        }
    }

    /// Serializes the receiver state for snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.spec.save_state(w);
        w.put_u64(self.num_packets);
        w.put_u64(self.expected_seq);
        w.put_u64(self.received_bytes);
        put_opt_time(w, self.last_arrival);
        put_opt_time(w, self.last_cnp);
        match self.nack_sent_for {
            Some(seq) => {
                w.put_bool(true);
                w.put_u64(seq);
            }
            None => w.put_bool(false),
        }
        w.put_bool(self.completed);
    }

    /// Rebuilds the receiver state from [`ReceiverFlow::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ReceiverFlow {
            spec: FlowSpec::restore_state(r)?,
            num_packets: r.get_u64()?,
            expected_seq: r.get_u64()?,
            received_bytes: r.get_u64()?,
            last_arrival: get_opt_time(r)?,
            last_cnp: get_opt_time(r)?,
            nack_sent_for: if r.get_bool()? {
                Some(r.get_u64()?)
            } else {
                None
            },
            completed: r.get_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(size: u64) -> FlowSpec {
        FlowSpec {
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: size,
            vfid: 7,
        }
    }

    #[test]
    fn packetization_rounds_up() {
        assert_eq!(spec(1).num_packets(1000), 1);
        assert_eq!(spec(1000).num_packets(1000), 1);
        assert_eq!(spec(1001).num_packets(1000), 2);
        assert_eq!(spec(20_000_000).num_packets(1000), 20_000);
    }

    #[test]
    fn last_packet_carries_remainder() {
        let s = spec(2500);
        assert_eq!(s.packet_size(0, 1000), 1000);
        assert_eq!(s.packet_size(1, 1000), 1000);
        assert_eq!(s.packet_size(2, 1000), 500);
        assert_eq!(spec(1000).packet_size(0, 1000), 1000);
        assert_eq!(spec(64).packet_size(0, 1000), 64);
    }

    #[test]
    fn sender_flow_progress_flags() {
        let mut f = SenderFlow::new(spec(2500), 1000, CcState::None, SimTime::ZERO);
        assert!(f.has_unsent());
        assert!(!f.fully_acked());
        f.next_seq = 3;
        assert!(!f.has_unsent());
        assert_eq!(f.inflight_bytes(1000), 3000);
        f.acked_seq = 3;
        assert!(f.fully_acked());
        assert_eq!(f.inflight_bytes(1000), 0);
    }

    #[test]
    fn receiver_flow_initial_state() {
        let r = ReceiverFlow::new(spec(5000), 1000);
        assert_eq!(r.num_packets, 5);
        assert_eq!(r.expected_seq, 0);
        assert!(!r.completed);
    }
}
