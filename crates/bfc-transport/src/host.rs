//! The host / RDMA NIC model.
//!
//! A [`Host`] plays both roles of the RDMA transport:
//!
//! * **Sender** — flows handed over by the workload driver are packetized and
//!   transmitted in round-robin order over the single uplink, subject to the
//!   configured congestion control (line-rate for BFC, windows and/or rates
//!   for the baselines), per-flow BFC pause frames from the ToR, and PFC.
//!   Reliability is Go-Back-N: a NACK or a retransmission timeout rewinds
//!   `next_seq` to the cumulative acknowledgement.
//! * **Receiver** — in-order data is acknowledged per packet (with HPCC INT
//!   echoed on the ACK), ECN marks are converted to CNPs at most once per
//!   `cnp_interval`, and a [`bfc_net::NetEvent::FlowCompleted`] event is
//!   emitted when the last byte arrives, which is where the paper measures
//!   flow completion time.
//!
//! ACKs and CNPs are sent with strict priority over data on the uplink, the
//! same treatment switches give them.

use std::collections::VecDeque;

use bfc_net::event::{NetEvent, NetSink, TransportTimer};
use bfc_net::link::Link;
use bfc_net::packet::{Packet, PacketKind, PauseFrame};
use bfc_net::types::{FlowId, NodeId};
use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};
use bfc_sim::{FastHashMap, SimTime};

use crate::config::{CcKind, HostConfig};
use crate::dcqcn::DcqcnState;
use crate::flow::{CcState, FlowSpec, ReceiverFlow, SenderFlow};
use crate::hpcc::HpccState;

/// Counters exposed by a host.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostCounters {
    /// Data bytes transmitted (including Go-Back-N retransmissions).
    pub tx_data_bytes: u64,
    /// Data bytes received in order (goodput).
    pub rx_data_bytes: u64,
    /// Data packets retransmitted.
    pub retransmitted_packets: u64,
    /// CNPs generated as a receiver.
    pub cnps_sent: u64,
    /// Flows that completed at this receiver.
    pub completed_flows: u64,
}

/// An end host with one NIC port.
pub struct Host {
    /// This host's node ID.
    pub id: NodeId,
    config: HostConfig,
    uplink: Link,
    peer: (NodeId, u32),
    line_rate_gbps: f64,

    busy: bool,
    uplink_up: bool,
    pfc_paused: bool,
    pause_frame: Option<PauseFrame>,
    pending_wakeup: Option<SimTime>,

    control_queue: VecDeque<Packet>,
    sending: FastHashMap<FlowId, SenderFlow>,
    send_order: VecDeque<FlowId>,
    receiving: FastHashMap<FlowId, ReceiverFlow>,

    counters: HostCounters,
}

impl Host {
    /// Creates a host attached to `(peer, peer_port)` over `uplink`.
    pub fn new(id: NodeId, uplink: Link, peer: (NodeId, u32), config: HostConfig) -> Self {
        Host {
            id,
            line_rate_gbps: uplink.rate_gbps,
            uplink,
            peer,
            config,
            busy: false,
            uplink_up: true,
            pfc_paused: false,
            pause_frame: None,
            pending_wakeup: None,
            control_queue: VecDeque::new(),
            sending: FastHashMap::default(),
            send_order: VecDeque::new(),
            receiving: FastHashMap::default(),
            counters: HostCounters::default(),
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> HostCounters {
        self.counters
    }

    /// Flows currently being sent by this host.
    pub fn active_sender_flows(&self) -> usize {
        self.sending.len()
    }

    /// The host configuration.
    pub fn config(&self) -> &HostConfig {
        &self.config
    }

    /// Whether the NIC's uplink cable is currently up.
    pub fn uplink_is_up(&self) -> bool {
        self.uplink_up
    }

    /// Applies an uplink state change from the dynamics subsystem. Going
    /// down clears MAC-level pause state (it does not survive a link reset);
    /// coming back up restarts transmission. Packets already in flight are
    /// the driver's concern (they are blackholed at delivery time).
    pub fn set_uplink_up(&mut self, now: SimTime, up: bool, events: &mut impl NetSink) {
        self.uplink_up = up;
        if up {
            self.try_send(now, events);
        } else {
            self.pfc_paused = false;
            self.pause_frame = None;
        }
    }

    /// Applies an uplink rate change (degradation / repair). Only the wire
    /// rate changes; congestion-control state keeps its configured line rate,
    /// like a real NIC unaware of a degraded cable.
    pub fn set_uplink_rate(&mut self, gbps: f64) {
        assert!(gbps > 0.0, "link rate must be positive");
        self.uplink.rate_gbps = gbps;
    }

    /// Serializes all mutable host state — pause/link flags, control queue,
    /// sender and receiver flow tables, the round-robin rotation, counters —
    /// for snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_f64(self.uplink.rate_gbps);
        w.put_bool(self.busy);
        w.put_bool(self.uplink_up);
        w.put_bool(self.pfc_paused);
        match &self.pause_frame {
            Some(frame) => {
                w.put_bool(true);
                frame.save_state(w);
            }
            None => w.put_bool(false),
        }
        match self.pending_wakeup {
            Some(t) => {
                w.put_bool(true);
                w.put_u64(t.as_picos());
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.control_queue.len());
        for pkt in &self.control_queue {
            pkt.save_state(w);
        }
        // Map iteration order is not deterministic; serialize sorted by key.
        let mut sending: Vec<u32> = self.sending.keys().map(|f| f.0).collect();
        sending.sort_unstable();
        w.put_usize(sending.len());
        for flow in sending {
            w.put_u32(flow);
            self.sending[&FlowId(flow)].save_state(w);
        }
        // The rotation order itself is semantic: keep it verbatim.
        w.put_usize(self.send_order.len());
        for flow in &self.send_order {
            w.put_u32(flow.0);
        }
        let mut receiving: Vec<u32> = self.receiving.keys().map(|f| f.0).collect();
        receiving.sort_unstable();
        w.put_usize(receiving.len());
        for flow in receiving {
            w.put_u32(flow);
            self.receiving[&FlowId(flow)].save_state(w);
        }
        w.put_u64(self.counters.tx_data_bytes);
        w.put_u64(self.counters.rx_data_bytes);
        w.put_u64(self.counters.retransmitted_packets);
        w.put_u64(self.counters.cnps_sent);
        w.put_u64(self.counters.completed_flows);
    }

    /// Restores state captured by [`Host::save_state`] into this host, which
    /// must have been freshly built with the same id, uplink and config.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let rate = r.get_f64()?;
        if !(rate > 0.0) {
            return Err(SnapError::Corrupt("non-positive uplink rate"));
        }
        self.uplink.rate_gbps = rate;
        self.busy = r.get_bool()?;
        self.uplink_up = r.get_bool()?;
        self.pfc_paused = r.get_bool()?;
        self.pause_frame = if r.get_bool()? {
            Some(PauseFrame::restore_state(r)?)
        } else {
            None
        };
        self.pending_wakeup = if r.get_bool()? {
            Some(SimTime::from_picos(r.get_u64()?))
        } else {
            None
        };
        let n = r.get_count(8)?;
        self.control_queue.clear();
        for _ in 0..n {
            self.control_queue.push_back(Packet::restore_state(r)?);
        }
        let n = r.get_count(40)?;
        self.sending.clear();
        for _ in 0..n {
            let flow = FlowId(r.get_u32()?);
            if self
                .sending
                .insert(flow, SenderFlow::restore_state(r)?)
                .is_some()
            {
                return Err(SnapError::Corrupt("duplicate sender flow"));
            }
        }
        let n = r.get_count(4)?;
        self.send_order.clear();
        for _ in 0..n {
            self.send_order.push_back(FlowId(r.get_u32()?));
        }
        let n = r.get_count(40)?;
        self.receiving.clear();
        for _ in 0..n {
            let flow = FlowId(r.get_u32()?);
            if self
                .receiving
                .insert(flow, ReceiverFlow::restore_state(r)?)
                .is_some()
            {
                return Err(SnapError::Corrupt("duplicate receiver flow"));
            }
        }
        self.counters.tx_data_bytes = r.get_u64()?;
        self.counters.rx_data_bytes = r.get_u64()?;
        self.counters.retransmitted_packets = r.get_u64()?;
        self.counters.cnps_sent = r.get_u64()?;
        self.counters.completed_flows = r.get_u64()?;
        Ok(())
    }

    /// Registers a flow this host will receive, so completion can be
    /// detected. Must be called no later than the flow's start.
    pub fn expect_flow(&mut self, spec: FlowSpec) {
        self.receiving
            .insert(spec.flow, ReceiverFlow::new(spec, self.config.mtu));
    }

    /// Starts sending a flow. Schedules the congestion-control timers and the
    /// first transmission opportunity.
    pub fn start_flow(&mut self, now: SimTime, spec: FlowSpec, events: &mut impl NetSink) {
        let cc = match self.config.cc {
            CcKind::LineRate | CcKind::WindowLimited => CcState::None,
            CcKind::Dcqcn => CcState::Dcqcn(DcqcnState::new(self.line_rate_gbps)),
            CcKind::Hpcc => CcState::Hpcc(HpccState::new(
                self.line_rate_gbps,
                self.config.base_rtt.as_secs_f64(),
                &self.config.hpcc,
            )),
        };
        let flow_id = spec.flow;
        let flow = SenderFlow::new(spec, self.config.mtu, cc, now);
        self.sending.insert(flow_id, flow);
        self.send_order.push_back(flow_id);

        events.send(
            now + self.config.retransmit_timeout,
            NetEvent::HostTimer {
                node: self.id,
                timer: TransportTimer::Retransmit(flow_id),
            },
        );
        if self.config.cc == CcKind::Dcqcn {
            events.send(
                now + self.config.dcqcn.rate_increase_interval,
                NetEvent::HostTimer {
                    node: self.id,
                    timer: TransportTimer::RateIncrease(flow_id),
                },
            );
            events.send(
                now + self.config.dcqcn.alpha_update_interval,
                NetEvent::HostTimer {
                    node: self.id,
                    timer: TransportTimer::AlphaUpdate(flow_id),
                },
            );
        }
        self.try_send(now, events);
    }

    /// Handles a packet arriving at the NIC.
    pub fn handle_packet(
        &mut self,
        now: SimTime,
        packet: Packet,
        events: &mut impl NetSink,
    ) {
        // Match on a borrow of the kind (copying out only the small fields)
        // so no per-packet clone of the kind — which would allocate nothing
        // today but still memcpy the largest variant — is needed.
        match &packet.kind {
            PacketKind::PfcPause { pause } => {
                let pause = *pause;
                self.pfc_paused = pause;
                if !pause {
                    self.try_send(now, events);
                }
            }
            PacketKind::FlowPause { frame } => {
                self.pause_frame = Some(**frame);
                self.try_send(now, events);
            }
            PacketKind::Data => {
                self.receive_data(now, packet, events);
                self.try_send(now, events);
            }
            PacketKind::Ack {
                cumulative_seq,
                is_nack,
                ..
            } => {
                let (cumulative_seq, is_nack) = (*cumulative_seq, *is_nack);
                self.receive_ack(now, &packet, cumulative_seq, is_nack);
                self.try_send(now, events);
            }
            PacketKind::Cnp => {
                if let Some(flow) = self.sending.get_mut(&packet.flow) {
                    if let CcState::Dcqcn(state) = &mut flow.cc {
                        state.on_cnp(&self.config.dcqcn);
                    }
                }
            }
        }
    }

    /// The uplink finished serializing a packet.
    pub fn handle_tx_complete(&mut self, now: SimTime, events: &mut impl NetSink) {
        self.busy = false;
        self.try_send(now, events);
    }

    /// A transport timer fired.
    pub fn handle_timer(
        &mut self,
        now: SimTime,
        timer: TransportTimer,
        events: &mut impl NetSink,
    ) {
        match timer {
            TransportTimer::NicWakeup => {
                self.pending_wakeup = None;
                self.try_send(now, events);
            }
            TransportTimer::Retransmit(flow_id) => self.handle_retransmit_timer(now, flow_id, events),
            TransportTimer::RateIncrease(flow_id) => {
                if let Some(flow) = self.sending.get_mut(&flow_id) {
                    if let CcState::Dcqcn(state) = &mut flow.cc {
                        state.on_rate_increase_timer(&self.config.dcqcn);
                    }
                    events.send(
                        now + self.config.dcqcn.rate_increase_interval,
                        NetEvent::HostTimer {
                            node: self.id,
                            timer: TransportTimer::RateIncrease(flow_id),
                        },
                    );
                    self.try_send(now, events);
                }
            }
            TransportTimer::AlphaUpdate(flow_id) => {
                if let Some(flow) = self.sending.get_mut(&flow_id) {
                    if let CcState::Dcqcn(state) = &mut flow.cc {
                        state.on_alpha_timer(&self.config.dcqcn);
                    }
                    events.send(
                        now + self.config.dcqcn.alpha_update_interval,
                        NetEvent::HostTimer {
                            node: self.id,
                            timer: TransportTimer::AlphaUpdate(flow_id),
                        },
                    );
                }
            }
        }
    }

    fn handle_retransmit_timer(
        &mut self,
        now: SimTime,
        flow_id: FlowId,
        events: &mut impl NetSink,
    ) {
        let Some(flow) = self.sending.get_mut(&flow_id) else {
            return;
        };
        let inflight = flow.next_seq > flow.acked_seq;
        if inflight && flow.acked_seq == flow.acked_at_last_timeout {
            // No progress for a full RTO: Go-Back-N from the last ack.
            self.counters.retransmitted_packets += flow.next_seq - flow.acked_seq;
            flow.next_seq = flow.acked_seq;
            if !self.send_order.contains(&flow_id) {
                self.send_order.push_back(flow_id);
            }
        }
        flow.acked_at_last_timeout = flow.acked_seq;
        events.send(
            now + self.config.retransmit_timeout,
            NetEvent::HostTimer {
                node: self.id,
                timer: TransportTimer::Retransmit(flow_id),
            },
        );
        self.try_send(now, events);
    }

    fn receive_data(&mut self, now: SimTime, packet: Packet, events: &mut impl NetSink) {
        let Some(rf) = self.receiving.get_mut(&packet.flow) else {
            return;
        };
        let sender = rf.spec.src;
        if packet.seq == rf.expected_seq {
            rf.expected_seq += 1;
            rf.received_bytes += packet.size_bytes as u64;
            rf.last_arrival = Some(now);
            rf.nack_sent_for = None;
            self.counters.rx_data_bytes += packet.size_bytes as u64;

            if packet.ecn_ce {
                let due = rf
                    .last_cnp
                    .is_none_or(|t| now.saturating_since(t) >= self.config.dcqcn.cnp_interval);
                if due {
                    rf.last_cnp = Some(now);
                    self.counters.cnps_sent += 1;
                    self.control_queue
                        .push_back(Packet::cnp(packet.flow, self.id, sender));
                }
            }
            self.control_queue.push_back(Packet::ack(
                packet.flow,
                self.id,
                sender,
                rf.expected_seq,
                false,
                packet.ecn_ce,
                packet.int,
            ));
            if rf.expected_seq >= rf.num_packets && !rf.completed {
                rf.completed = true;
                self.counters.completed_flows += 1;
                events.send(now, NetEvent::FlowCompleted { flow: packet.flow });
            }
        } else if packet.seq > rf.expected_seq {
            // Out of order: ask the sender to go back, once per gap.
            if rf.nack_sent_for != Some(rf.expected_seq) {
                rf.nack_sent_for = Some(rf.expected_seq);
                self.control_queue.push_back(Packet::ack(
                    packet.flow,
                    self.id,
                    sender,
                    rf.expected_seq,
                    true,
                    false,
                    Default::default(),
                ));
            }
        } else {
            // Duplicate of already-delivered data: re-acknowledge.
            self.control_queue.push_back(Packet::ack(
                packet.flow,
                self.id,
                sender,
                rf.expected_seq,
                false,
                false,
                Default::default(),
            ));
        }
    }

    fn receive_ack(&mut self, _now: SimTime, packet: &Packet, cumulative_seq: u64, is_nack: bool) {
        let Some(flow) = self.sending.get_mut(&packet.flow) else {
            return;
        };
        if cumulative_seq > flow.acked_seq {
            flow.acked_seq = cumulative_seq;
        }
        if is_nack && cumulative_seq < flow.next_seq {
            self.counters.retransmitted_packets += flow.next_seq - cumulative_seq;
            flow.next_seq = cumulative_seq;
            if !self.send_order.contains(&packet.flow) {
                self.send_order.push_back(packet.flow);
            }
        }
        if let CcState::Hpcc(state) = &mut flow.cc {
            state.on_ack(&packet.int, cumulative_seq, flow.next_seq, &self.config.hpcc);
        }
        if flow.fully_acked() {
            self.sending.remove(&packet.flow);
        }
    }

    /// Effective window limit for a flow, if any.
    fn window_limit(config: &HostConfig, flow: &SenderFlow) -> Option<u64> {
        match &flow.cc {
            CcState::Hpcc(state) => {
                let hpcc_window = state.window_bytes as u64;
                Some(match config.window_bytes {
                    Some(cap) => hpcc_window.min(cap),
                    None => hpcc_window,
                })
            }
            _ => config.window_bytes,
        }
    }

    /// Pacing rate for a flow, if rate-limited.
    fn pacing_rate_gbps(flow: &SenderFlow) -> Option<f64> {
        match &flow.cc {
            CcState::Dcqcn(state) => Some(state.rate_gbps),
            CcState::Hpcc(state) => Some(state.rate_gbps()),
            CcState::None => None,
        }
    }

    /// Attempts to transmit one packet (control first, then data round-robin).
    fn try_send(&mut self, now: SimTime, events: &mut impl NetSink) {
        if self.busy || !self.uplink_up || self.pfc_paused {
            return;
        }
        if let Some(pkt) = self.control_queue.pop_front() {
            self.transmit(now, pkt, events);
            return;
        }

        let mut earliest_blocked: Option<SimTime> = None;
        let candidates = self.send_order.len();
        for _ in 0..candidates {
            let Some(flow_id) = self.send_order.pop_front() else {
                break;
            };
            let Some(flow) = self.sending.get_mut(&flow_id) else {
                // Fully acked and removed: drop from the rotation.
                continue;
            };
            if !flow.has_unsent() {
                // Everything transmitted; the flow re-enters the rotation only
                // if a NACK/timeout rewinds it.
                continue;
            }

            let paused = self
                .pause_frame
                .as_ref()
                .is_some_and(|f| f.contains(flow.spec.vfid));
            let window_ok = match Self::window_limit(&self.config, flow) {
                Some(limit) => flow.inflight_bytes(self.config.mtu) + self.config.mtu as u64 <= limit.max(self.config.mtu as u64),
                None => true,
            };
            let pacing_ok = now >= flow.next_allowed;

            if paused || !window_ok {
                // Wait for a pause release or an ACK; both trigger try_send.
                self.send_order.push_back(flow_id);
                continue;
            }
            if !pacing_ok {
                earliest_blocked = Some(match earliest_blocked {
                    Some(t) if t <= flow.next_allowed => t,
                    _ => flow.next_allowed,
                });
                self.send_order.push_back(flow_id);
                continue;
            }

            // Transmit the next packet of this flow.
            let seq = flow.next_seq;
            let size = flow.spec.packet_size(seq, self.config.mtu);
            let pkt = Packet::data(
                flow.spec.flow,
                self.id,
                flow.spec.dst,
                seq,
                size,
                flow.spec.vfid,
                seq == 0,
            );
            flow.next_seq += 1;
            if let Some(rate) = Self::pacing_rate_gbps(flow) {
                let gap = bfc_sim::SimDuration::for_bytes_at_gbps(size as u64, rate.max(1e-3));
                flow.next_allowed = now + gap;
            }
            if flow.has_unsent() {
                self.send_order.push_back(flow_id);
            }
            self.counters.tx_data_bytes += size as u64;
            self.transmit(now, pkt, events);
            return;
        }

        if let Some(t) = earliest_blocked {
            let need_schedule = self.pending_wakeup.is_none_or(|w| t < w);
            if need_schedule {
                self.pending_wakeup = Some(t);
                events.send(
                    t,
                    NetEvent::HostTimer {
                        node: self.id,
                        timer: TransportTimer::NicWakeup,
                    },
                );
            }
        }
    }

    fn transmit(&mut self, now: SimTime, packet: Packet, events: &mut impl NetSink) {
        let serialization = self.uplink.serialization(packet.size_bytes);
        let arrival = now + serialization + self.uplink.propagation;
        self.busy = true;
        events.send(
            now + serialization,
            NetEvent::TxComplete {
                node: self.id,
                port: 0,
            },
        );
        events.send(
            arrival,
            NetEvent::PacketArrive {
                node: self.peer.0,
                port: self.peer.1,
                packet,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfc_sim::{EventQueue, SimDuration};

    const MTU: u32 = 1000;
    const BASE_RTT: SimDuration = SimDuration::from_micros(8);

    fn link() -> Link {
        Link::datacenter_default()
    }

    fn spec(flow: u32, src: u32, dst: u32, size: u64) -> FlowSpec {
        FlowSpec {
            flow: FlowId(flow),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: size,
            vfid: flow,
        }
    }

    fn sender(config: HostConfig) -> Host {
        Host::new(NodeId(0), link(), (NodeId(100), 3), config)
    }

    /// Collects the data packets a host emits when left to run with the given
    /// events (ACKs are not fed back, so window-limited hosts stall).
    fn drain_transmissions(host: &mut Host, events: &mut EventQueue<NetEvent>) -> Vec<Packet> {
        let mut sent = Vec::new();
        while let Some((t, ev)) = events.pop() {
            match ev {
                NetEvent::TxComplete { .. } => host.handle_tx_complete(t, events),
                NetEvent::PacketArrive { packet, .. } => sent.push(packet),
                NetEvent::HostTimer { timer, .. } => {
                    // Stop once only periodic timers remain.
                    if matches!(timer, TransportTimer::NicWakeup) {
                        host.handle_timer(t, timer, events);
                    }
                }
                _ => {}
            }
            if sent.len() > 10_000 {
                break;
            }
        }
        sent
    }

    #[test]
    fn bfc_host_sends_whole_flow_at_line_rate() {
        let mut host = sender(HostConfig::bfc(MTU, BASE_RTT));
        let mut events = EventQueue::new();
        host.start_flow(SimTime::ZERO, spec(1, 0, 1, 5_000), &mut events);
        let sent = drain_transmissions(&mut host, &mut events);
        let data: Vec<&Packet> = sent.iter().filter(|p| p.is_data()).collect();
        assert_eq!(data.len(), 5);
        assert!(data[0].first_of_flow);
        assert!(!data[1].first_of_flow);
        assert_eq!(host.counters().tx_data_bytes, 5_000);
    }

    #[test]
    fn window_limited_host_stalls_at_one_bdp() {
        let mut host = sender(HostConfig::window_limited(MTU, BASE_RTT, 3_000));
        let mut events = EventQueue::new();
        host.start_flow(SimTime::ZERO, spec(1, 0, 1, 50_000), &mut events);
        let sent = drain_transmissions(&mut host, &mut events);
        let data = sent.iter().filter(|p| p.is_data()).count();
        assert_eq!(data, 3, "only one window of packets without ACKs");
    }

    #[test]
    fn acks_open_the_window_and_complete_the_flow() {
        let mut host = sender(HostConfig::window_limited(MTU, BASE_RTT, 2_000));
        let mut events = EventQueue::new();
        host.start_flow(SimTime::ZERO, spec(1, 0, 1, 6_000), &mut events);
        let mut sent = 0;
        let mut t_now = SimTime::ZERO;
        // Run a loop that immediately acknowledges every data packet.
        while let Some((t, ev)) = events.pop() {
            t_now = t;
            match ev {
                NetEvent::TxComplete { .. } => host.handle_tx_complete(t, &mut events),
                NetEvent::PacketArrive { packet, .. } if packet.is_data() => {
                    sent += 1;
                    let ack = Packet::ack(
                        packet.flow,
                        packet.dst,
                        packet.src,
                        packet.seq + 1,
                        false,
                        false,
                        Default::default(),
                    );
                    host.handle_packet(t, ack, &mut events);
                }
                NetEvent::HostTimer { timer, .. } => {
                    if matches!(timer, TransportTimer::NicWakeup) {
                        host.handle_timer(t, timer, &mut events);
                    }
                    // Periodic retransmit timers are dropped: the flow is
                    // progressing.
                }
                _ => {}
            }
            if sent == 6 && host.active_sender_flows() == 0 {
                break;
            }
        }
        assert_eq!(sent, 6);
        assert_eq!(host.active_sender_flows(), 0, "flow removed once fully acked");
        assert!(t_now > SimTime::ZERO);
    }

    #[test]
    fn uplink_down_blocks_and_repair_restarts() {
        let mut host = sender(HostConfig::bfc(MTU, BASE_RTT));
        let mut events = EventQueue::new();
        host.set_uplink_up(SimTime::ZERO, false, &mut events);
        host.start_flow(SimTime::ZERO, spec(1, 0, 1, 3_000), &mut events);
        // Only the retransmit timer is scheduled while the cable is dead.
        assert_eq!(events.total_scheduled(), 1, "down NIC transmits nothing");
        assert!(!host.uplink_is_up());
        host.set_uplink_up(SimTime::from_micros(5), true, &mut events);
        assert!(events.total_scheduled() > 1, "repair restarts transmission");
        assert!(host.uplink_is_up());
    }

    #[test]
    fn uplink_degradation_stretches_serialization() {
        let mut host = sender(HostConfig::bfc(MTU, BASE_RTT));
        host.set_uplink_rate(10.0);
        let mut events = EventQueue::new();
        host.start_flow(SimTime::ZERO, spec(1, 0, 1, 1_000), &mut events);
        let mut saw_tx = false;
        while let Some((t, ev)) = events.pop() {
            if matches!(ev, NetEvent::TxComplete { .. }) {
                // 1000 B at 10 Gbps = 800 ns (100 Gbps would be 80 ns).
                assert_eq!(t.as_nanos(), 800);
                saw_tx = true;
            }
        }
        assert!(saw_tx);
    }

    #[test]
    fn pfc_pause_blocks_and_resume_restarts() {
        let mut host = sender(HostConfig::bfc(MTU, BASE_RTT));
        let mut events = EventQueue::new();
        host.handle_packet(SimTime::ZERO, Packet::pfc(NodeId(100), NodeId(0), true), &mut events);
        host.start_flow(SimTime::ZERO, spec(1, 0, 1, 3_000), &mut events);
        let transmissions = |q: &EventQueue<NetEvent>| {
            // Only timer events may be pending while paused; transmissions
            // would show up as TxComplete entries.
            q.total_scheduled()
        };
        let before = transmissions(&events);
        // Nothing but the retransmit timer was scheduled.
        assert_eq!(before, 1, "paused NIC transmits nothing");
        host.handle_packet(
            SimTime::from_micros(3),
            Packet::pfc(NodeId(100), NodeId(0), false),
            &mut events,
        );
        assert!(events.total_scheduled() > before, "resume restarts transmission");
    }

    #[test]
    fn bfc_pause_frame_pauses_only_named_flows() {
        let mut host = sender(HostConfig::bfc(MTU, BASE_RTT));
        let mut events = EventQueue::new();
        let mut frame = PauseFrame::new(128, 4);
        frame.insert(1); // pause flow 1 (vfid == flow id in these tests)
        host.handle_packet(
            SimTime::ZERO,
            Packet::flow_pause(NodeId(100), NodeId(0), frame),
            &mut events,
        );
        host.start_flow(SimTime::ZERO, spec(1, 0, 1, 3_000), &mut events);
        host.start_flow(SimTime::ZERO, spec(2, 0, 1, 3_000), &mut events);
        let sent = drain_transmissions(&mut host, &mut events);
        let flows: Vec<u32> = sent.iter().filter(|p| p.is_data()).map(|p| p.flow.0).collect();
        assert!(!flows.is_empty());
        assert!(flows.iter().all(|&f| f == 2), "only the unpaused flow sends");
        // Clearing the pause releases flow 1.
        host.handle_packet(
            SimTime::from_micros(10),
            Packet::flow_pause(NodeId(100), NodeId(0), PauseFrame::new(128, 4)),
            &mut events,
        );
        let sent = drain_transmissions(&mut host, &mut events);
        assert!(sent.iter().any(|p| p.is_data() && p.flow.0 == 1));
    }

    #[test]
    fn receiver_acks_in_order_data_and_reports_completion() {
        let mut rx = Host::new(NodeId(5), link(), (NodeId(100), 0), HostConfig::bfc(MTU, BASE_RTT));
        let mut events = EventQueue::new();
        rx.expect_flow(spec(9, 0, 5, 2_500));
        for seq in 0..3u64 {
            let size = if seq == 2 { 500 } else { 1000 };
            let pkt = Packet::data(FlowId(9), NodeId(0), NodeId(5), seq, size, 9, seq == 0);
            rx.handle_packet(SimTime::from_micros(seq), pkt, &mut events);
        }
        let mut completed = false;
        let mut acks = 0;
        while let Some((_, ev)) = events.pop() {
            match ev {
                NetEvent::FlowCompleted { flow } => {
                    assert_eq!(flow, FlowId(9));
                    completed = true;
                }
                NetEvent::PacketArrive { packet, .. } => {
                    if matches!(packet.kind, PacketKind::Ack { .. }) {
                        acks += 1;
                    }
                }
                NetEvent::TxComplete { .. } => rx.handle_tx_complete(SimTime::ZERO, &mut events),
                _ => {}
            }
        }
        assert!(completed);
        assert!(acks >= 1);
        assert_eq!(rx.counters().rx_data_bytes, 2_500);
        assert_eq!(rx.counters().completed_flows, 1);
    }

    #[test]
    fn out_of_order_data_triggers_single_nack_and_gbn_rewind() {
        let mut rx = Host::new(NodeId(5), link(), (NodeId(100), 0), HostConfig::bfc(MTU, BASE_RTT));
        let mut events = EventQueue::new();
        rx.expect_flow(spec(9, 0, 5, 10_000));
        // Deliver packet 0, then skip to 3, 4 (2 lost).
        for seq in [0u64, 3, 4] {
            let pkt = Packet::data(FlowId(9), NodeId(0), NodeId(5), seq, 1000, 9, seq == 0);
            rx.handle_packet(SimTime::from_micros(seq), pkt, &mut events);
        }
        let mut nacks = 0;
        while let Some((t, ev)) = events.pop() {
            match ev {
                NetEvent::PacketArrive { packet, .. } => {
                    if let PacketKind::Ack { is_nack: true, cumulative_seq, .. } = packet.kind {
                        assert_eq!(cumulative_seq, 1);
                        nacks += 1;
                    }
                }
                NetEvent::TxComplete { .. } => rx.handle_tx_complete(t, &mut events),
                _ => {}
            }
        }
        assert_eq!(nacks, 1, "duplicate out-of-order packets must not spam NACKs");

        // Sender side: a NACK rewinds next_seq.
        let mut tx = sender(HostConfig::bfc(MTU, BASE_RTT));
        let mut ev2 = EventQueue::new();
        tx.start_flow(SimTime::ZERO, spec(9, 0, 5, 10_000), &mut ev2);
        let _ = drain_transmissions(&mut tx, &mut ev2);
        let nack = Packet::ack(FlowId(9), NodeId(5), NodeId(0), 1, true, false, Default::default());
        tx.handle_packet(SimTime::from_micros(50), nack, &mut ev2);
        let resent = drain_transmissions(&mut tx, &mut ev2);
        let seqs: Vec<u64> = resent.iter().filter(|p| p.is_data()).map(|p| p.seq).collect();
        assert_eq!(seqs.first(), Some(&1), "Go-Back-N resumes from the NACKed seq");
        assert!(tx.counters().retransmitted_packets > 0);
    }

    #[test]
    fn retransmission_timeout_rewinds_without_acks() {
        let mut host = sender(HostConfig::bfc(MTU, BASE_RTT));
        let mut events = EventQueue::new();
        host.start_flow(SimTime::ZERO, spec(1, 0, 1, 2_000), &mut events);
        let first = drain_transmissions(&mut host, &mut events);
        assert_eq!(first.iter().filter(|p| p.is_data()).count(), 2);
        // Fire the retransmit timer twice with no ACK progress: the second
        // firing detects the stall and rewinds.
        let rto = host.config().retransmit_timeout;
        host.handle_timer(
            SimTime::ZERO + rto,
            TransportTimer::Retransmit(FlowId(1)),
            &mut events,
        );
        host.handle_timer(
            SimTime::ZERO + rto * 2,
            TransportTimer::Retransmit(FlowId(1)),
            &mut events,
        );
        let resent = drain_transmissions(&mut host, &mut events);
        assert!(
            resent.iter().filter(|p| p.is_data()).count() >= 2,
            "timeout should retransmit the window"
        );
    }

    #[test]
    fn dcqcn_cnp_slows_the_sender_down() {
        let mut host = sender(HostConfig::dcqcn(MTU, BASE_RTT, None));
        let mut events = EventQueue::new();
        host.start_flow(SimTime::ZERO, spec(1, 0, 1, 200_000), &mut events);
        // Let a few packets go out, then deliver a CNP and compare pacing.
        let mut data_times: Vec<SimTime> = Vec::new();
        let mut cnp_sent = false;
        while let Some((t, ev)) = events.pop() {
            match ev {
                NetEvent::TxComplete { .. } => host.handle_tx_complete(t, &mut events),
                NetEvent::PacketArrive { packet, .. } if packet.is_data() => {
                    data_times.push(t);
                    if data_times.len() == 10 && !cnp_sent {
                        cnp_sent = true;
                        host.handle_packet(t, Packet::cnp(FlowId(1), NodeId(1), NodeId(0)), &mut events);
                    }
                    if data_times.len() >= 30 {
                        break;
                    }
                }
                NetEvent::HostTimer { timer, .. } => host.handle_timer(t, timer, &mut events),
                _ => {}
            }
        }
        assert!(data_times.len() >= 30);
        let before = data_times[9].saturating_since(data_times[5]).as_nanos() as f64 / 4.0;
        let after = data_times[29].saturating_since(data_times[25]).as_nanos() as f64 / 4.0;
        assert!(
            after > before * 1.5,
            "inter-packet gap should grow after a CNP: before {before} ns, after {after} ns"
        );
    }

    #[test]
    fn receiver_generates_cnp_for_marked_packets_with_pacing() {
        let mut rx = Host::new(
            NodeId(5),
            link(),
            (NodeId(100), 0),
            HostConfig::dcqcn(MTU, BASE_RTT, None),
        );
        let mut events = EventQueue::new();
        rx.expect_flow(spec(9, 0, 5, 1_000_000));
        // 100 marked packets arriving 1 us apart: CNPs are paced to one per
        // 50 us, so only ~3 are generated.
        for seq in 0..100u64 {
            let mut pkt = Packet::data(FlowId(9), NodeId(0), NodeId(5), seq, 1000, 9, seq == 0);
            pkt.ecn_ce = true;
            rx.handle_packet(SimTime::from_micros(seq), pkt, &mut events);
        }
        assert!(rx.counters().cnps_sent >= 2);
        assert!(rx.counters().cnps_sent <= 3, "CNPs must be paced");
    }

    #[test]
    fn hpcc_host_paces_by_window_from_int() {
        let mut host = sender(HostConfig::hpcc(MTU, BASE_RTT));
        let mut events = EventQueue::new();
        host.start_flow(SimTime::ZERO, spec(1, 0, 1, 1_000_000), &mut events);
        // Without ACKs the HPCC host can send at most one BDP (100 KB).
        let sent = drain_transmissions(&mut host, &mut events);
        let data = sent.iter().filter(|p| p.is_data()).count();
        assert!(data <= 101, "HPCC must respect its initial window, sent {data}");
        assert!(data >= 90);
    }
}
