//! The DCQCN rate-control algorithm (Zhu et al., SIGCOMM 2015).
//!
//! DCQCN is the deployed RDMA congestion control the paper compares against.
//! Switches ECN-mark packets above a queue threshold; the receiver NIC
//! reflects marks back as congestion-notification packets (CNPs) at most once
//! per `cnp_interval`; the sender multiplicatively decreases on CNPs and
//! recovers through fast-recovery / additive-increase / hyper-increase stages
//! driven by a periodic timer. Flows start at line rate.
//!
//! Only the sender-side state machine lives here; CNP generation is part of
//! the receiving [`crate::host::Host`].

use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};

use crate::config::DcqcnParams;

/// Sender-side DCQCN state for one flow.
#[derive(Debug, Clone)]
pub struct DcqcnState {
    /// Current sending rate in Gbps.
    pub rate_gbps: f64,
    /// Target rate used by the increase phases.
    pub target_gbps: f64,
    /// Congestion estimate.
    pub alpha: f64,
    /// Consecutive rate-increase events since the last CNP.
    pub increase_stage: u32,
    /// True if a CNP arrived since the last alpha-decay tick.
    cnp_since_alpha_update: bool,
    line_rate_gbps: f64,
}

impl DcqcnState {
    /// A new flow starts at line rate with `alpha = 1`.
    pub fn new(line_rate_gbps: f64) -> Self {
        DcqcnState {
            rate_gbps: line_rate_gbps,
            target_gbps: line_rate_gbps,
            alpha: 1.0,
            increase_stage: 0,
            cnp_since_alpha_update: false,
            line_rate_gbps,
        }
    }

    /// Reaction to a congestion-notification packet: cut the rate by
    /// `alpha / 2`, remember the pre-cut rate as the recovery target and
    /// freshen alpha.
    pub fn on_cnp(&mut self, params: &DcqcnParams) {
        self.target_gbps = self.rate_gbps;
        self.rate_gbps = (self.rate_gbps * (1.0 - self.alpha / 2.0)).max(params.min_rate_gbps);
        self.alpha = ((1.0 - params.g) * self.alpha + params.g).min(1.0);
        self.increase_stage = 0;
        self.cnp_since_alpha_update = true;
    }

    /// Periodic alpha decay (runs only if no CNP arrived during the interval).
    pub fn on_alpha_timer(&mut self, params: &DcqcnParams) {
        if self.cnp_since_alpha_update {
            self.cnp_since_alpha_update = false;
        } else {
            self.alpha *= 1.0 - params.g;
        }
    }

    /// Periodic rate increase: fast recovery toward the target for the first
    /// few stages, then additive increase, then hyper increase.
    pub fn on_rate_increase_timer(&mut self, params: &DcqcnParams) {
        self.increase_stage += 1;
        if self.increase_stage > 2 * params.fast_recovery_stages {
            self.target_gbps += params.rate_hai_gbps;
        } else if self.increase_stage > params.fast_recovery_stages {
            self.target_gbps += params.rate_ai_gbps;
        }
        self.target_gbps = self.target_gbps.min(self.line_rate_gbps);
        self.rate_gbps = ((self.rate_gbps + self.target_gbps) / 2.0).min(self.line_rate_gbps);
    }

    /// The flow's configured line rate.
    pub fn line_rate_gbps(&self) -> f64 {
        self.line_rate_gbps
    }

    /// Serializes the full state machine for snapshot/restore (floats by
    /// bits).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_f64(self.rate_gbps);
        w.put_f64(self.target_gbps);
        w.put_f64(self.alpha);
        w.put_u32(self.increase_stage);
        w.put_bool(self.cnp_since_alpha_update);
        w.put_f64(self.line_rate_gbps);
    }

    /// Rebuilds the state machine from [`DcqcnState::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(DcqcnState {
            rate_gbps: r.get_f64()?,
            target_gbps: r.get_f64()?,
            alpha: r.get_f64()?,
            increase_stage: r.get_u32()?,
            cnp_since_alpha_update: r.get_bool()?,
            line_rate_gbps: r.get_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DcqcnParams {
        DcqcnParams::default()
    }

    #[test]
    fn starts_at_line_rate() {
        let s = DcqcnState::new(100.0);
        assert_eq!(s.rate_gbps, 100.0);
        assert_eq!(s.alpha, 1.0);
    }

    #[test]
    fn cnp_halves_rate_when_alpha_is_one() {
        let mut s = DcqcnState::new(100.0);
        s.on_cnp(&params());
        assert!((s.rate_gbps - 50.0).abs() < 1e-9);
        assert_eq!(s.target_gbps, 100.0);
        assert!(s.alpha <= 1.0);
    }

    #[test]
    fn repeated_cnps_drive_rate_toward_minimum() {
        let p = params();
        let mut s = DcqcnState::new(100.0);
        for _ in 0..200 {
            s.on_cnp(&p);
        }
        assert!(s.rate_gbps >= p.min_rate_gbps);
        assert!(s.rate_gbps < 1.0, "rate should collapse under persistent CNPs");
    }

    #[test]
    fn fast_recovery_converges_back_to_target() {
        let p = params();
        let mut s = DcqcnState::new(100.0);
        s.on_cnp(&p);
        let after_cut = s.rate_gbps;
        for _ in 0..p.fast_recovery_stages {
            s.on_rate_increase_timer(&p);
        }
        assert!(s.rate_gbps > after_cut);
        assert!(s.rate_gbps <= s.target_gbps + 1e-9);
        // Five halvings of the gap leave ~3% of it.
        assert!((s.target_gbps - s.rate_gbps) / (s.target_gbps - after_cut) < 0.05);
    }

    #[test]
    fn additive_then_hyper_increase_raise_target() {
        let p = params();
        let mut s = DcqcnState::new(100.0);
        s.on_cnp(&p);
        s.on_cnp(&p);
        let target_after_cnp = s.target_gbps;
        for _ in 0..(2 * p.fast_recovery_stages + 10) {
            s.on_rate_increase_timer(&p);
        }
        assert!(s.target_gbps > target_after_cnp);
        assert!(s.rate_gbps <= 100.0 + 1e-9, "never exceeds line rate");
    }

    #[test]
    fn alpha_decays_only_without_cnps() {
        let p = params();
        let mut s = DcqcnState::new(100.0);
        s.on_cnp(&p);
        let alpha_after_cnp = s.alpha;
        // First timer tick after a CNP only clears the flag.
        s.on_alpha_timer(&p);
        assert_eq!(s.alpha, alpha_after_cnp);
        s.on_alpha_timer(&p);
        assert!(s.alpha < alpha_after_cnp);
        for _ in 0..2000 {
            s.on_alpha_timer(&p);
        }
        assert!(s.alpha < 0.01, "alpha decays toward zero in calm periods");
    }
}
