//! The registry of evaluated schemes (§4.1 "Comparison Schemes").
//!
//! A [`Scheme`] bundles the three pieces the paper varies together:
//! the switch configuration (ECN/INT/PFC/buffering), the per-switch queue
//! policy, and the host congestion control.

use bfc_core::{BfcConfig, BfcPolicy};
use bfc_net::config::{EcnConfig, SwitchConfig};
use bfc_net::policy::{FifoPolicy, SfqPolicy, SwitchPolicy};
use bfc_sim::SimDuration;
use bfc_transport::HostConfig;

/// One evaluated scheme.
#[derive(Debug, Clone, PartialEq)]
pub enum Scheme {
    /// Backpressure Flow Control with the given configuration (covers the
    /// BFC-VFID / BFC-BufferOpt / BFC-HighPriorityQ ablations via the config
    /// flags).
    Bfc(BfcConfig),
    /// DCQCN: single-FIFO switches with ECN, optional one-BDP window cap
    /// (`window`) and optional stochastic fair queueing (`sfq`).
    Dcqcn {
        /// Apply the one-BDP in-flight cap (DCQCN+Win).
        window: bool,
        /// Use stochastic fair queueing at switches (DCQCN+Win+SFQ).
        sfq: bool,
    },
    /// HPCC: INT-carrying switches, window control at the host.
    Hpcc,
    /// Ideal fair queueing: per-flow queues (approximated with a large number
    /// of SFQ queues), infinite buffers, no PFC, one-BDP window cap. An
    /// unrealizable upper bound.
    IdealFq,
    /// Static SFQ with infinite buffers and a one-BDP window (the
    /// SFQ+InfBuffer comparison of Fig. 7).
    SfqInfBuffer,
}

impl Scheme {
    /// The name used in tables, matching the paper's legends.
    pub fn name(&self) -> String {
        match self {
            Scheme::Bfc(cfg) => {
                if !cfg.dynamic_assignment {
                    "BFC-VFID".to_string()
                } else if !cfg.limit_resumes {
                    "BFC-BufferOpt".to_string()
                } else if !cfg.use_high_priority_queue {
                    "BFC-HighPriorityQ".to_string()
                } else {
                    "BFC".to_string()
                }
            }
            Scheme::Dcqcn { window, sfq } => match (window, sfq) {
                (false, _) => "DCQCN".to_string(),
                (true, false) => "DCQCN+Win".to_string(),
                (true, true) => "DCQCN+Win+SFQ".to_string(),
            },
            Scheme::Hpcc => "HPCC".to_string(),
            Scheme::IdealFq => "Ideal-FQ".to_string(),
            Scheme::SfqInfBuffer => "SFQ+InfBuffer".to_string(),
        }
    }

    /// Plain BFC with the paper's defaults.
    pub fn bfc() -> Scheme {
        Scheme::Bfc(BfcConfig::default())
    }

    /// The straw-proposal ablation (static hashed queue assignment).
    pub fn bfc_vfid() -> Scheme {
        Scheme::Bfc(BfcConfig::vfid_straw())
    }

    /// The full comparison set of Fig. 5.
    pub fn paper_lineup() -> Vec<Scheme> {
        vec![
            Scheme::bfc(),
            Scheme::IdealFq,
            Scheme::Dcqcn {
                window: false,
                sfq: false,
            },
            Scheme::Dcqcn {
                window: true,
                sfq: false,
            },
            Scheme::Hpcc,
            Scheme::Dcqcn {
                window: true,
                sfq: true,
            },
        ]
    }

    /// The stable machine-readable key used on command lines and in fuzz
    /// reproducer files. Round-trips through [`Scheme::from_cli_key`] for
    /// every scheme a key exists for (the BFC ablation configs other than
    /// `bfc` / `bfc-vfid` map onto the plain `bfc` key).
    pub fn cli_key(&self) -> &'static str {
        match self {
            Scheme::Bfc(cfg) if !cfg.dynamic_assignment => "bfc-vfid",
            Scheme::Bfc(_) => "bfc",
            Scheme::Dcqcn { window: false, .. } => "dcqcn",
            Scheme::Dcqcn { window: true, sfq: false } => "dcqcn-win",
            Scheme::Dcqcn { window: true, sfq: true } => "dcqcn-win-sfq",
            Scheme::Hpcc => "hpcc",
            Scheme::IdealFq => "ideal-fq",
            Scheme::SfqInfBuffer => "sfq-inf",
        }
    }

    /// Parses a [`Scheme::cli_key`] back into a scheme.
    pub fn from_cli_key(key: &str) -> Option<Scheme> {
        Some(match key {
            "bfc" => Scheme::bfc(),
            "bfc-vfid" => Scheme::bfc_vfid(),
            "ideal-fq" => Scheme::IdealFq,
            "dcqcn" => Scheme::Dcqcn { window: false, sfq: false },
            "dcqcn-win" => Scheme::Dcqcn { window: true, sfq: false },
            "dcqcn-win-sfq" => Scheme::Dcqcn { window: true, sfq: true },
            "hpcc" => Scheme::Hpcc,
            "sfq-inf" => Scheme::SfqInfBuffer,
            _ => return None,
        })
    }

    /// Whether the scheme relies on PFC as a backstop.
    pub fn uses_pfc(&self) -> bool {
        !matches!(self, Scheme::IdealFq | Scheme::SfqInfBuffer)
    }

    /// Builds the switch configuration for this scheme. `queues_per_port`,
    /// `buffer_bytes` and `mtu` come from the experiment (they are swept by
    /// the sensitivity figures).
    pub fn switch_config(&self, queues_per_port: usize, buffer_bytes: u64, mtu: u32) -> SwitchConfig {
        let base = SwitchConfig {
            queues_per_port,
            buffer_bytes,
            mtu_bytes: mtu,
            ..SwitchConfig::default()
        };
        match self {
            Scheme::Bfc(cfg) => SwitchConfig {
                ecn: None,
                int_enabled: false,
                pause_frame_interval: cfg.pause_interval,
                ..base
            },
            Scheme::Dcqcn { .. } => SwitchConfig {
                ecn: Some(EcnConfig::default()),
                ..base
            },
            Scheme::Hpcc => SwitchConfig {
                int_enabled: true,
                ..base
            },
            Scheme::IdealFq => SwitchConfig {
                // Approximate per-flow fair queueing with a large queue count.
                queues_per_port: 1_000,
                ..base
            }
            .with_infinite_buffer()
            .without_pfc(),
            Scheme::SfqInfBuffer => base.with_infinite_buffer().without_pfc(),
        }
    }

    /// Builds a fresh queue policy instance for one switch.
    pub fn make_policy(&self, seed: u64) -> Box<dyn SwitchPolicy> {
        match self {
            Scheme::Bfc(cfg) => Box::new(BfcPolicy::new(*cfg, seed)),
            Scheme::Dcqcn { sfq, .. } => {
                if *sfq {
                    Box::new(SfqPolicy::new(false))
                } else {
                    Box::new(FifoPolicy::new())
                }
            }
            Scheme::Hpcc => Box::new(FifoPolicy::new()),
            Scheme::IdealFq | Scheme::SfqInfBuffer => Box::new(SfqPolicy::new(false)),
        }
    }

    /// Builds the host configuration. `bdp_bytes` is one end-to-end
    /// bandwidth-delay product at the access-link rate.
    pub fn host_config(&self, mtu: u32, base_rtt: SimDuration, bdp_bytes: u64) -> HostConfig {
        match self {
            Scheme::Bfc(_) => HostConfig::bfc(mtu, base_rtt),
            Scheme::Dcqcn { window, .. } => {
                HostConfig::dcqcn(mtu, base_rtt, window.then_some(bdp_bytes))
            }
            Scheme::Hpcc => HostConfig::hpcc(mtu, base_rtt),
            Scheme::IdealFq | Scheme::SfqInfBuffer => {
                HostConfig::window_limited(mtu, base_rtt, bdp_bytes)
            }
        }
    }

    /// The number of VFIDs hosts must use when computing packet VFIDs (only
    /// meaningful for BFC; other schemes hash into a large space).
    pub fn num_vfids(&self) -> u32 {
        match self {
            Scheme::Bfc(cfg) => cfg.num_vfids,
            _ => 1 << 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_legends() {
        let names: Vec<String> = Scheme::paper_lineup().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["BFC", "Ideal-FQ", "DCQCN", "DCQCN+Win", "HPCC", "DCQCN+Win+SFQ"]
        );
        assert_eq!(Scheme::bfc_vfid().name(), "BFC-VFID");
        assert_eq!(Scheme::Bfc(BfcConfig::without_resume_limit()).name(), "BFC-BufferOpt");
        assert_eq!(
            Scheme::Bfc(BfcConfig::without_high_priority_queue()).name(),
            "BFC-HighPriorityQ"
        );
        assert_eq!(Scheme::SfqInfBuffer.name(), "SFQ+InfBuffer");
    }

    #[test]
    fn cli_keys_round_trip() {
        for scheme in Scheme::paper_lineup()
            .into_iter()
            .chain([Scheme::bfc_vfid(), Scheme::SfqInfBuffer])
        {
            assert_eq!(Scheme::from_cli_key(scheme.cli_key()), Some(scheme.clone()));
        }
        assert_eq!(Scheme::from_cli_key("no-such-scheme"), None);
    }

    #[test]
    fn switch_configs_reflect_scheme_features() {
        let mtu = 1000;
        let bfc = Scheme::bfc().switch_config(32, 12_000_000, mtu);
        assert!(bfc.ecn.is_none() && !bfc.int_enabled && bfc.pfc.enabled);
        let dcqcn = Scheme::Dcqcn { window: true, sfq: false }.switch_config(32, 12_000_000, mtu);
        assert!(dcqcn.ecn.is_some());
        let hpcc = Scheme::Hpcc.switch_config(32, 12_000_000, mtu);
        assert!(hpcc.int_enabled && hpcc.ecn.is_none());
        let ideal = Scheme::IdealFq.switch_config(32, 12_000_000, mtu);
        assert_eq!(ideal.buffer_bytes, u64::MAX);
        assert!(!ideal.pfc.enabled);
        assert_eq!(ideal.queues_per_port, 1_000);
        assert!(!Scheme::IdealFq.uses_pfc());
        assert!(Scheme::bfc().uses_pfc());
    }

    #[test]
    fn policies_and_hosts_match_scheme() {
        let rtt = SimDuration::from_micros(8);
        assert_eq!(Scheme::bfc().make_policy(1).name(), "bfc");
        assert_eq!(Scheme::bfc_vfid().make_policy(1).name(), "bfc-vfid");
        assert_eq!(
            Scheme::Dcqcn { window: true, sfq: true }.make_policy(1).name(),
            "sfq"
        );
        assert_eq!(Scheme::Hpcc.make_policy(1).name(), "fifo");
        let host = Scheme::Dcqcn { window: true, sfq: false }.host_config(1000, rtt, 100_000);
        assert_eq!(host.window_bytes, Some(100_000));
        let host = Scheme::Dcqcn { window: false, sfq: false }.host_config(1000, rtt, 100_000);
        assert_eq!(host.window_bytes, None);
        assert_eq!(Scheme::bfc().num_vfids(), 16_384);
        assert_eq!(Scheme::Hpcc.num_vfids(), 1 << 20);
    }
}
