//! Regenerates the failure-sweep figure implemented by
//! `figures::failure_sweep`: BFC vs DCQCN+Win vs HPCC across three link-fault
//! shapes (single down/up, degraded core, flapping) and a failed-link-count
//! sweep, with the dynamics subsystem's recovery metrics.
//!
//! Runs at quick scale by default; pass `--full` for the paper's topologies
//! and trace lengths (use `--release`).
use bfc_experiments::figures::{failure_sweep, Scale};

fn main() {
    println!("{}", failure_sweep::run(&Scale::from_args()));
}
