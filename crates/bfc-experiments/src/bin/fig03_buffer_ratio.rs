//! Regenerates the paper figure implemented by `figures::fig03`.
//!
//! Runs at quick scale by default; pass `--full` for the paper's topologies
//! and trace lengths (use `--release`).
use bfc_experiments::figures::{Scale, fig03};

fn main() {
    println!("{}", fig03::run(&Scale::from_args()));
}
