//! Regenerates the paper figure implemented by `figures::fig07`.
//!
//! Runs at quick scale by default; pass `--full` for the paper's topologies
//! and trace lengths (use `--release`).
use bfc_experiments::figures::{Scale, fig07};

fn main() {
    println!("{}", fig07::run(&Scale::from_args()));
}
