//! Regenerates the paper figure implemented by `figures::fig14`.
//!
//! Runs at quick scale by default; pass `--full` for the paper's topologies
//! and trace lengths (use `--release`).
use bfc_experiments::figures::{Scale, fig14};

fn main() {
    println!("{}", fig14::run(&Scale::from_args()));
}
