//! Regenerates the paper figure implemented by `figures::fig13`.
//!
//! Runs at quick scale by default; pass `--full` for the paper's topologies
//! and trace lengths (use `--release`).
use bfc_experiments::figures::{Scale, fig13};

fn main() {
    println!("{}", fig13::run(&Scale::from_args()));
}
