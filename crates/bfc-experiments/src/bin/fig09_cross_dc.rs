//! Regenerates the paper figure implemented by `figures::fig09`.
//!
//! Runs at quick scale by default; pass `--full` for the paper's topologies
//! and trace lengths (use `--release`).
use bfc_experiments::figures::{Scale, fig09};

fn main() {
    println!("{}", fig09::run(&Scale::from_args()));
}
