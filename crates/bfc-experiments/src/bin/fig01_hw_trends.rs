//! Regenerates Fig. 1 (hardware trends table).
fn main() {
    println!("{}", bfc_experiments::figures::fig01::run());
}
