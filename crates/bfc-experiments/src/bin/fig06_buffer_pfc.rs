//! Regenerates the paper figure implemented by `figures::fig06`.
//!
//! Runs at quick scale by default; pass `--full` for the paper's topologies
//! and trace lengths (use `--release`).
use bfc_experiments::figures::{Scale, fig06};

fn main() {
    println!("{}", fig06::run(&Scale::from_args()));
}
