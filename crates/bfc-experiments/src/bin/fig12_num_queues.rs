//! Regenerates the paper figure implemented by `figures::fig12`.
//!
//! Runs at quick scale by default; pass `--full` for the paper's topologies
//! and trace lengths (use `--release`).
use bfc_experiments::figures::{Scale, fig12};

fn main() {
    println!("{}", fig12::run(&Scale::from_args()));
}
