//! Regenerates the paper figure implemented by `figures::fig11`.
//!
//! Runs at quick scale by default; pass `--full` for the paper's topologies
//! and trace lengths (use `--release`).
use bfc_experiments::figures::{Scale, fig11};

fn main() {
    println!("{}", fig11::run(&Scale::from_args()));
}
