//! Regenerates Fig. 5 (the headline tail-latency comparison, panels a/b/c).
//!
//! Runs at quick scale by default; pass `--full` for the paper's T1 topology
//! and longer traces (use `--release`).
use bfc_experiments::figures::{fig05, Scale};

fn main() {
    println!("{}", fig05::run(&Scale::from_args()));
}
