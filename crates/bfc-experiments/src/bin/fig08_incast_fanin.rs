//! Regenerates the paper figure implemented by `figures::fig08`.
//!
//! Runs at quick scale by default; pass `--full` for the paper's topologies
//! and trace lengths (use `--release`).
use bfc_experiments::figures::{Scale, fig08};

fn main() {
    println!("{}", fig08::run(&Scale::from_args()));
}
