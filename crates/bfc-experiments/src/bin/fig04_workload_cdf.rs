//! Regenerates Fig. 4 (byte-weighted flow-size CDFs).
fn main() {
    println!("{}", bfc_experiments::figures::fig04::run());
}
