//! Regenerates the paper figure implemented by `figures::fig10`.
//!
//! Runs at quick scale by default; pass `--full` for the paper's topologies
//! and trace lengths (use `--release`).
use bfc_experiments::figures::{Scale, fig10};

fn main() {
    println!("{}", fig10::run(&Scale::from_args()));
}
