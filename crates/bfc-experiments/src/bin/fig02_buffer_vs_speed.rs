//! Regenerates the paper figure implemented by `figures::fig02`.
//!
//! Runs at quick scale by default; pass `--full` for the paper's topologies
//! and trace lengths (use `--release`).
use bfc_experiments::figures::{Scale, fig02};

fn main() {
    println!("{}", fig02::run(&Scale::from_args()));
}
