//! `trace-tool` — synthesize, summarize and replay workload traces in the
//! CSV format of `bfc_workloads::io`.
//!
//! ```sh
//! cargo run --release -p bfc-experiments --bin trace-tool -- synth --out trace.csv
//! cargo run --release -p bfc-experiments --bin trace-tool -- stats trace.csv
//! cargo run --release -p bfc-experiments --bin trace-tool -- replay trace.csv --scheme lineup
//! ```
//!
//! `synth` generates a trace over the hosts of a built-in fat-tree topology
//! and writes it as CSV; `stats` prints a summary (flow count, offered load,
//! size percentiles); `replay` validates the trace against the same topology
//! and runs it through the experiment driver (all schemes fan out across the
//! `ParallelRunner`; results are bit-identical at any `BFC_THREADS`).
//!
//! Service mode: `snapshot` checkpoints a run's complete simulation state at
//! a chosen instant, `resume` continues it to completion (bit-identical to
//! the uninterrupted replay), and `serve` feeds a live simulation from a
//! tailed CSV file or a TCP socket under an inflight cap.
//!
//! Adversarial mode: `scenario` runs a fault-injection file and reports
//! recovery and safety metrics; `fuzz` searches for the (workload, fault
//! schedule) a scheme handles worst and shrinks it to a minimal reproducer
//! (see `bfc_experiments::fuzz`).

use std::path::PathBuf;
use std::process::ExitCode;

use bfc_experiments::figures::failure_sweep;
use bfc_experiments::{
    resume_experiment, serve_experiment, snapshot_experiment, ExperimentConfig, ExperimentResult,
    ParallelRunner, ReplayTrace, ScenarioSpec, Scheme,
};
use bfc_net::topology::Topology;
use bfc_sim::{SimDuration, SimTime};
use bfc_workloads::ingest::{CsvTail, IngestSource, SocketIngest};
use bfc_workloads::io::{read_csv_file, write_csv_file, TraceStats};
use bfc_workloads::{synthesize, ArrivalShape, IncastSchedule, TraceParams, Workload};

const USAGE: &str = "\
usage: trace-tool <command> [options]

commands:
  synth --out <path>      synthesize a trace and write it as CSV
    --topo tiny|t1|t2       topology whose hosts the trace runs over [tiny]
    --workload google|fb-hadoop|websearch   flow-size CDF [google]
    --load <frac>           background offered load [0.6]
    --incast-load <frac>    extra incast load, 0 disables [0.05]
    --fan-in <n>            senders per incast event [6]
    --incast-bytes <n>      aggregate bytes per incast event [500000]
    --duration-us <n>       trace duration in microseconds [300]
    --seed <n>              RNG seed [1]
    --arrivals lognormal|poisson|bursty     background gap shape [lognormal]
    --incast-schedule periodic|lognormal    incast event spacing [periodic]

  stats <path>            print a summary of a trace CSV
    --gbps <rate>           host link rate for the load arithmetic [100]

  replay <path>           replay a trace CSV through the experiment driver
    --topo tiny|t1|t2       topology to replay over (must cover the trace's
                            host ids) [tiny]
    --scheme bfc|bfc-vfid|ideal-fq|dcqcn|dcqcn-win|dcqcn-win-sfq|hpcc|lineup
                            scheme(s) to run [bfc]
    --seed <n>              experiment seed [1]
    --drain-x <n>           drain window as a multiple of the horizon [4]
    --shards <n>            split each run across n engine shards
                            (bit-identical results; same as BFC_SHARDS=n)

  snapshot <path>         run a trace partway and write a checkpoint of the
                          complete simulation state (versioned, checksummed;
                          resuming is bit-identical to the uninterrupted run)
    --at-us <n>             simulated instant to snapshot at (required)
    --out <snap>            snapshot file to write (required)
    --topo tiny|t1|t2       topology to replay over [tiny]
    --scheme ...            a single scheme (as replay, but not lineup) [bfc]
    --seed <n>              experiment seed [1]
    --drain-x <n>           drain window as a multiple of the horizon [4]
    --shards <n>            take the snapshot under the sharded engine [1]

  resume <path>           resume a snapshot against the same trace/options
                          and run to completion
    --snapshot <snap>       snapshot file to resume from (required)
    --topo / --scheme / --seed / --drain-x   must match the snapshot run

  serve                   run a live simulation fed by a streaming source,
                          admitting flows under an inflight cap (the cap is
                          the backpressure signal to the feeder)
    --tail <csv>            stream flows from this file; with --follow, keep
                            polling at EOF until a line reading `#end`
    --listen <addr>         accept one TCP feeder (e.g. 127.0.0.1:9000;
                            port 0 picks a free port) speaking the CSV format
    --cap <n>               max flows admitted but not yet completed [64]
    --topo tiny|t1|t2       topology to serve over [tiny]
    --scheme ...            a single scheme (as replay, but not lineup) [bfc]
    --seed <n>              experiment seed [1]
    --horizon-us <n>        measurement horizon in microseconds [300]
    --drain-x <n>           drain window as a multiple of the horizon [4]

  scenario <path>         run a link-dynamics scenario (fault-injection)
                          file through the experiment driver and report the
                          recovery metrics. The scenario format is one
                          directive per line:
                            at <time> down|up <a> <b>
                            at <time> rate <a> <b> <gbps>
                            flap <a> <b> from <t> every <period> until <t>
                          with times like 100us/2ms and endpoints named by
                          topology label (tor0, spine1, host3) or node id.
    --topo tiny|t1|t2       topology the scenario runs over [tiny]
    --trace <csv>           replay this trace instead of synthesizing one
    --scheme ... (as replay) scheme(s) to run [lineup]
    --load <frac>           background load of the synthetic trace [0.6]
    --duration-us <n>       synthetic trace duration in microseconds [300]
    --seed <n>              experiment seed [1]
    --drain-x <n>           drain window as a multiple of the horizon [4]
    --shards <n>            split each run across n engine shards
                            (bit-identical results; same as BFC_SHARDS=n)

  fuzz --out <path>       search for the (workload, fault schedule) a scheme
                          handles worst, shrink the offender to a minimal
                          reproducer and write it as a scenario-style text
                          file that `fuzz --replay` (or the committed
                          regression tests) re-runs bit-identically.
                          Deterministic: same options, same bytes out.
    --seed <n>              search seed [1]
    --budget <n>            random cases to evaluate [24]
    --shrink-evals <n>      extra evaluations the shrinker may spend [24]
    --objective p99|p999|dip|recovery|safety   what to maximize [p99]
    --scheme ...            a single scheme (as replay, but not lineup) [bfc]
    --topo tiny|t1|t2       restrict the search to one topology, or a
                            comma list like tiny,t1 (smallest first) [tiny]
    --shards <n>            evaluate on n engine shards (same results)
    --replay                after writing, re-read the file and replay it";

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace-tool: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}

fn parse_topology(name: &str) -> Option<Topology> {
    bfc_experiments::fuzz::topology_by_name(name)
}

fn parse_workload(name: &str) -> Option<Workload> {
    match name {
        "google" => Some(Workload::Google),
        "fb-hadoop" | "fb_hadoop" | "hadoop" => Some(Workload::FbHadoop),
        "websearch" | "web-search" => Some(Workload::WebSearch),
        _ => None,
    }
}

fn parse_schemes(name: &str) -> Option<Vec<Scheme>> {
    match name {
        "lineup" | "all" => Some(Scheme::paper_lineup()),
        key => Scheme::from_cli_key(key).map(|s| vec![s]),
    }
}

/// `--flag value` option walker shared by the three subcommands: returns the
/// positional arguments, handing each `--flag`'s value to `set`.
fn walk_options(
    args: &[String],
    mut set: impl FnMut(&str, &str) -> Result<(), String>,
) -> Result<Vec<String>, String> {
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(flag) = arg.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("--{flag} requires a value"))?;
            set(flag, value)?;
        } else {
            positional.push(arg.clone());
        }
    }
    Ok(positional)
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("--{flag}: not a valid number: {value}"))
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let mut out: Option<PathBuf> = None;
    let mut topo: Option<Topology> = None;
    let mut topo_name = "tiny".to_string();
    let mut workload = Workload::Google;
    let mut load = 0.6f64;
    let mut incast_load = 0.05f64;
    let mut fan_in = 6usize;
    let mut incast_bytes = 500_000u64;
    let mut duration_us = 300u64;
    let mut seed = 1u64;
    let mut arrivals = ArrivalShape::paper_default();
    let mut incast_schedule = IncastSchedule::paper_default();

    let positional = walk_options(args, |flag, value| {
        match flag {
            "out" => out = Some(PathBuf::from(value)),
            "topo" => {
                topo = Some(
                    parse_topology(value)
                        .ok_or_else(|| format!("--topo: unknown topology {value}"))?,
                );
                topo_name = value.to_string();
            }
            "workload" => {
                workload = parse_workload(value)
                    .ok_or_else(|| format!("--workload: unknown workload {value}"))?;
            }
            "load" => load = parse_num(flag, value)?,
            "incast-load" => incast_load = parse_num(flag, value)?,
            "fan-in" => fan_in = parse_num(flag, value)?,
            "incast-bytes" => incast_bytes = parse_num(flag, value)?,
            "duration-us" => duration_us = parse_num(flag, value)?,
            "seed" => seed = parse_num(flag, value)?,
            "arrivals" => {
                arrivals = match value {
                    "lognormal" => ArrivalShape::paper_default(),
                    "poisson" => ArrivalShape::Poisson,
                    "bursty" => ArrivalShape::bursty_default(),
                    _ => return Err(format!("--arrivals: unknown shape {value}")),
                }
            }
            "incast-schedule" => {
                incast_schedule = match value {
                    "periodic" => IncastSchedule::Periodic,
                    "lognormal" => IncastSchedule::LogNormalGaps { sigma: 1.0 },
                    _ => return Err(format!("--incast-schedule: unknown schedule {value}")),
                }
            }
            _ => return Err(format!("synth: unknown option --{flag}")),
        }
        Ok(())
    })?;
    if !positional.is_empty() {
        return Err(format!("synth: unexpected argument {}", positional[0]));
    }
    let out = out.ok_or("synth: --out <path> is required")?;
    // Keep the load arithmetic (and the incast event period) in sane,
    // non-panicking ranges before handing the parameters to `synthesize`.
    if !(load > 0.0 && load <= 1.5) {
        return Err(format!("synth: --load must be in (0, 1.5], got {load}"));
    }
    if !(0.0..=1.5).contains(&incast_load) {
        return Err(format!(
            "synth: --incast-load must be in [0, 1.5], got {incast_load}"
        ));
    }
    if incast_load > 0.0 && incast_bytes < 1_000 {
        return Err(format!(
            "synth: --incast-bytes must be at least 1000 when incast is enabled, got {incast_bytes}"
        ));
    }
    if duration_us == 0 {
        return Err("synth: --duration-us must be positive".into());
    }

    let topo = topo.unwrap_or_else(|| parse_topology("tiny").expect("tiny always builds"));
    let hosts = topo.hosts();
    let params = TraceParams {
        workload,
        load,
        incast_load,
        incast_fan_in: fan_in,
        incast_total_bytes: incast_bytes,
        duration: SimDuration::from_micros(duration_us),
        host_gbps: topo.host_uplink(hosts[0]).link.rate_gbps,
        seed,
        arrivals,
        incast_schedule,
    };
    let flows = synthesize(&hosts, &params);
    write_csv_file(&out, &flows).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "wrote {} flows over {} ({} hosts of `{topo_name}`) to {}",
        flows.len(),
        params.duration,
        hosts.len(),
        out.display()
    );
    Ok(())
}

/// Routes the runs of this invocation through the sharded engine by setting
/// `BFC_SHARDS` (the experiment paths read it via
/// `bfc_experiments::sharded::shards_from_env`). Results are bit-identical
/// at any shard count; only wall-clock changes.
fn set_shards(_flag: &str, value: &str) -> Result<(), String> {
    bfc_experiments::sharded::set_shards_env(value)
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let mut gbps = 100.0f64;
    let positional = walk_options(args, |flag, value| {
        match flag {
            "gbps" => gbps = parse_num(flag, value)?,
            _ => return Err(format!("stats: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path] = positional.as_slice() else {
        return Err("stats: exactly one trace path is required".into());
    };
    let flows = read_csv_file(path).map_err(|e| format!("{path}: {e}"))?;
    match TraceStats::from_flows(&flows, gbps) {
        Some(stats) => println!("{stats}"),
        None => println!("{path}: empty trace"),
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let mut topo: Option<Topology> = None;
    let mut topo_name = "tiny".to_string();
    let mut schemes = vec![Scheme::bfc()];
    let mut seed = 1u64;
    let mut drain_x = 4u64;
    let positional = walk_options(args, |flag, value| {
        match flag {
            "topo" => {
                topo = Some(
                    parse_topology(value)
                        .ok_or_else(|| format!("--topo: unknown topology {value}"))?,
                );
                topo_name = value.to_string();
            }
            "scheme" => {
                schemes = parse_schemes(value)
                    .ok_or_else(|| format!("--scheme: unknown scheme {value}"))?;
            }
            "seed" => seed = parse_num(flag, value)?,
            "drain-x" => drain_x = parse_num(flag, value)?,
            "shards" => set_shards(flag, value)?,
            _ => return Err(format!("replay: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path] = positional.as_slice() else {
        return Err("replay: exactly one trace path is required".into());
    };

    let topo = topo.unwrap_or_else(|| parse_topology("tiny").expect("tiny always builds"));
    let replay = ReplayTrace::from_csv_path(path).map_err(|e| format!("{path}: {e}"))?;
    let horizon = replay.horizon();
    let configs: Vec<ExperimentConfig> = schemes
        .into_iter()
        .map(|scheme| {
            let mut config = ExperimentConfig::new(scheme, horizon).with_seed(seed);
            config.drain = horizon * drain_x;
            config
        })
        .collect();
    let runner = ParallelRunner::from_env();
    let results = replay
        .run_all(&topo, &configs, &runner)
        .map_err(|e| format!("{path}: {e}"))?;

    println!(
        "replayed {} flows (horizon {horizon}) over `{topo_name}` with {} worker thread{}\n",
        replay.flows().len(),
        runner.threads(),
        if runner.threads() == 1 { "" } else { "s" },
    );
    print_results_table(&results);
    print_epoch_counters(&results);
    Ok(())
}

/// Per-run epoch-driver counters for sharded replays. Written to stderr so
/// stdout stays byte-identical to a serial replay (scripts diff it); serial
/// runs have no epochs and print nothing.
fn print_epoch_counters(results: &[ExperimentResult]) {
    if bfc_experiments::sharded::shards_from_env() <= 1 {
        return;
    }
    for r in results {
        let e = &r.epochs;
        eprintln!(
            "epochs[{}]: batches {} windows {} barriers {} widened {} cross-shard msgs {}",
            r.scheme, e.batches, e.windows, e.barriers, e.widened, e.boundary_events
        );
    }
}

/// The replay results table, shared by `replay`, `resume` and `serve` so a
/// resumed run's table is byte-identical to the uninterrupted replay's.
fn print_results_table(results: &[ExperimentResult]) {
    println!(
        "{:<16} {:>11} {:>9} {:>9} {:>8} {:>7}",
        "scheme", "completed", "p50", "p99", "util %", "drops"
    );
    for r in results {
        let (p50, p99) = r
            .fct
            .overall
            .as_ref()
            .map(|o| (o.p50, o.p99))
            .unwrap_or((f64::NAN, f64::NAN));
        println!(
            "{:<16} {:>5}/{:<5} {:>9.2} {:>9.2} {:>8.1} {:>7}",
            r.scheme,
            r.completed_flows,
            r.total_flows,
            p50,
            p99,
            r.utilization * 100.0,
            r.drops
        );
    }
    println!("\n(FCT slowdown percentiles over non-incast flows)");
}

/// Shared option state for the `snapshot` / `resume` / `serve` commands:
/// one scheme, one seed, one drain multiple, one topology.
struct RunOptions {
    topo: Topology,
    topo_name: String,
    scheme: Scheme,
    seed: u64,
    drain_x: u64,
}

impl RunOptions {
    fn defaults() -> RunOptions {
        RunOptions {
            topo: parse_topology("tiny").expect("tiny always builds"),
            topo_name: "tiny".to_string(),
            scheme: Scheme::bfc(),
            seed: 1,
            drain_x: 4,
        }
    }

    /// Handles the options common to the service-mode commands; returns
    /// false if the flag is not one of them.
    fn set(&mut self, cmd: &str, flag: &str, value: &str) -> Result<bool, String> {
        match flag {
            "topo" => {
                self.topo = parse_topology(value)
                    .ok_or_else(|| format!("--topo: unknown topology {value}"))?;
                self.topo_name = value.to_string();
            }
            "scheme" => {
                let schemes = parse_schemes(value)
                    .ok_or_else(|| format!("--scheme: unknown scheme {value}"))?;
                let [scheme] = schemes.as_slice() else {
                    return Err(format!("{cmd}: --scheme requires a single scheme, not a lineup"));
                };
                self.scheme = scheme.clone();
            }
            "seed" => self.seed = parse_num(flag, value)?,
            "drain-x" => self.drain_x = parse_num(flag, value)?,
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn config(&self, horizon: SimDuration) -> ExperimentConfig {
        let mut config = ExperimentConfig::new(self.scheme.clone(), horizon).with_seed(self.seed);
        config.drain = horizon * self.drain_x;
        config
    }
}

/// Loads and validates the trace the snapshot/resume commands run over,
/// exactly like `replay` does.
fn load_trace(cmd: &str, opts: &RunOptions, path: &str) -> Result<ReplayTrace, String> {
    let replay = ReplayTrace::from_csv_path(path).map_err(|e| format!("{path}: {e}"))?;
    replay
        .validate(&opts.topo)
        .map_err(|e| format!("{cmd}: {path}: {e}"))?;
    Ok(replay)
}

fn cmd_snapshot(args: &[String]) -> Result<(), String> {
    let mut opts = RunOptions::defaults();
    let mut at_us: Option<u64> = None;
    let mut out: Option<PathBuf> = None;
    let mut shards = 1usize;
    let positional = walk_options(args, |flag, value| {
        if opts.set("snapshot", flag, value)? {
            return Ok(());
        }
        match flag {
            "at-us" => at_us = Some(parse_num(flag, value)?),
            "out" => out = Some(PathBuf::from(value)),
            "shards" => {
                shards = parse_num(flag, value)?;
                if shards == 0 {
                    return Err("--shards requires a positive shard count, got 0".into());
                }
            }
            _ => return Err(format!("snapshot: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path] = positional.as_slice() else {
        return Err("snapshot: exactly one trace path is required".into());
    };
    let at_us = at_us.ok_or("snapshot: --at-us <n> is required")?;
    let out = out.ok_or("snapshot: --out <snap> is required")?;

    let replay = load_trace("snapshot", &opts, path)?;
    let config = opts.config(replay.horizon());
    let at = SimTime::ZERO + SimDuration::from_micros(at_us);
    let blob = snapshot_experiment(&opts.topo, replay.flows(), &config, at, shards);
    std::fs::write(&out, &blob).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "snapshotted `{}` ({} flows, scheme {}) at {at} into {} ({} bytes, {} shard{})",
        path,
        replay.flows().len(),
        config.scheme.name(),
        out.display(),
        blob.len(),
        shards,
        if shards == 1 { "" } else { "s" },
    );
    Ok(())
}

fn cmd_resume(args: &[String]) -> Result<(), String> {
    let mut opts = RunOptions::defaults();
    let mut snap_path: Option<PathBuf> = None;
    let positional = walk_options(args, |flag, value| {
        if opts.set("resume", flag, value)? {
            return Ok(());
        }
        match flag {
            "snapshot" => snap_path = Some(PathBuf::from(value)),
            _ => return Err(format!("resume: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path] = positional.as_slice() else {
        return Err("resume: exactly one trace path is required".into());
    };
    let snap_path = snap_path.ok_or("resume: --snapshot <snap> is required")?;

    let replay = load_trace("resume", &opts, path)?;
    let horizon = replay.horizon();
    let config = opts.config(horizon);
    let blob = std::fs::read(&snap_path)
        .map_err(|e| format!("reading {}: {e}", snap_path.display()))?;
    let result = resume_experiment(&opts.topo, replay.flows(), &config, &blob)
        .map_err(|e| format!("{}: {e}", snap_path.display()))?;
    println!(
        "resumed {} flows (horizon {horizon}) over `{}` from `{}`\n",
        replay.flows().len(),
        opts.topo_name,
        snap_path.display(),
    );
    print_results_table(std::slice::from_ref(&result));
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    // `--follow` is the one valueless flag in the tool; pull it out before
    // the `--flag value` walker sees it.
    let mut follow = false;
    let args: Vec<String> = args
        .iter()
        .filter(|a| {
            let is_follow = a.as_str() == "--follow";
            follow |= is_follow;
            !is_follow
        })
        .cloned()
        .collect();

    let mut opts = RunOptions::defaults();
    let mut tail_path: Option<PathBuf> = None;
    let mut listen_addr: Option<String> = None;
    let mut cap = 64usize;
    let mut horizon_us = 300u64;
    let positional = walk_options(&args, |flag, value| {
        if opts.set("serve", flag, value)? {
            return Ok(());
        }
        match flag {
            "tail" => tail_path = Some(PathBuf::from(value)),
            "listen" => listen_addr = Some(value.to_string()),
            "cap" => {
                cap = parse_num(flag, value)?;
                if cap == 0 {
                    return Err("--cap must be at least 1".into());
                }
            }
            "horizon-us" => {
                horizon_us = parse_num(flag, value)?;
                if horizon_us == 0 {
                    return Err("--horizon-us must be positive".into());
                }
            }
            _ => return Err(format!("serve: unknown option --{flag}")),
        }
        Ok(())
    })?;
    if !positional.is_empty() {
        return Err(format!("serve: unexpected argument {}", positional[0]));
    }
    let config = opts.config(SimDuration::from_micros(horizon_us));

    let mut source: Box<dyn IngestSource> = match (&tail_path, &listen_addr) {
        (Some(path), None) => Box::new(
            CsvTail::open(path, follow).map_err(|e| format!("opening {}: {e}", path.display()))?,
        ),
        (None, Some(addr)) => {
            let (source, local) =
                SocketIngest::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
            println!("listening on {local} (feed trace CSV, close to finish)");
            Box::new(source)
        }
        _ => return Err("serve: exactly one of --tail <csv> or --listen <addr> is required".into()),
    };
    if follow && tail_path.is_none() {
        return Err("serve: --follow only applies to --tail".into());
    }

    let report = serve_experiment(&opts.topo, &config, source.as_mut(), cap)
        .map_err(|e| format!("serve: {e}"))?;
    println!(
        "served {} flows (horizon {}) over `{}` under inflight cap {cap}\n",
        report.admitted, config.horizon, opts.topo_name,
    );
    print_results_table(std::slice::from_ref(&report.result));
    Ok(())
}

fn cmd_scenario(args: &[String]) -> Result<(), String> {
    let mut topo: Option<Topology> = None;
    let mut topo_name = "tiny".to_string();
    let mut schemes = Scheme::paper_lineup();
    let mut trace_path: Option<PathBuf> = None;
    let mut load = 0.6f64;
    let mut duration_us = 300u64;
    let mut seed = 1u64;
    let mut drain_x = 4u64;
    let positional = walk_options(args, |flag, value| {
        match flag {
            "topo" => {
                topo = Some(
                    parse_topology(value)
                        .ok_or_else(|| format!("--topo: unknown topology {value}"))?,
                );
                topo_name = value.to_string();
            }
            "scheme" => {
                schemes = parse_schemes(value)
                    .ok_or_else(|| format!("--scheme: unknown scheme {value}"))?;
            }
            "trace" => trace_path = Some(PathBuf::from(value)),
            "load" => load = parse_num(flag, value)?,
            "duration-us" => duration_us = parse_num(flag, value)?,
            "seed" => seed = parse_num(flag, value)?,
            "drain-x" => drain_x = parse_num(flag, value)?,
            "shards" => set_shards(flag, value)?,
            _ => return Err(format!("scenario: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path] = positional.as_slice() else {
        return Err("scenario: exactly one scenario path is required".into());
    };
    if !(load > 0.0 && load <= 1.5) {
        return Err(format!("scenario: --load must be in (0, 1.5], got {load}"));
    }
    if duration_us == 0 {
        return Err("scenario: --duration-us must be positive".into());
    }

    let topo = topo.unwrap_or_else(|| parse_topology("tiny").expect("tiny always builds"));
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let spec = ScenarioSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schedule = spec.resolve(&topo).map_err(|e| format!("{path}: {e}"))?;

    let (flows, horizon) = match &trace_path {
        Some(csv) => {
            let replay =
                ReplayTrace::from_csv_path(csv).map_err(|e| format!("{}: {e}", csv.display()))?;
            replay
                .validate(&topo)
                .map_err(|e| format!("{}: {e}", csv.display()))?;
            let horizon = replay.horizon();
            (replay.flows().to_vec(), horizon)
        }
        None => {
            let hosts = topo.hosts();
            let duration = SimDuration::from_micros(duration_us);
            let params = TraceParams::background_only(Workload::Google, load, duration, seed);
            let params = TraceParams {
                host_gbps: topo.host_uplink(hosts[0]).link.rate_gbps,
                ..params
            };
            (synthesize(&hosts, &params), duration)
        }
    };
    let configs: Vec<ExperimentConfig> = schemes
        .into_iter()
        .map(|scheme| {
            let mut config = ExperimentConfig::new(scheme, horizon)
                .with_seed(seed)
                .with_dynamics(schedule.clone());
            config.drain = horizon * drain_x;
            config
        })
        .collect();
    let runner = ParallelRunner::from_env();
    let results = runner.run_experiments(&topo, &flows, &configs);

    println!(
        "scenario `{path}`: {} fault event{} over `{topo_name}`, {} flows, {} worker thread{}\n",
        schedule.len(),
        if schedule.len() == 1 { "" } else { "s" },
        flows.len(),
        runner.threads(),
        if runner.threads() == 1 { "" } else { "s" },
    );
    // The scenario file's stem labels the rows; the table itself is the
    // failure-sweep figure's formatter, so the CLI and figure cannot drift.
    let label = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "scenario".to_string());
    print!("{}", failure_sweep::HEADER);
    for r in &results {
        print!("{}", failure_sweep::result_row(&label, r));
    }
    println!();
    for r in &results {
        println!("{}", safety_line(r));
    }
    println!("\n(FCT slowdown p99 over non-incast flows; ttr = goodput recovery after the last fault)");
    Ok(())
}

/// One per-scheme line from the safety detectors: pause-storm counters,
/// wait-for-graph cycles, confirmed PFC deadlocks and livelock. Violations
/// are marked loudly so scripts can grep for them.
fn safety_line(r: &ExperimentResult) -> String {
    let s = &r.safety;
    let mut line = format!(
        "safety[{}]: pause-frames {} max-depth {} max-window {} cycles {} deadlocks {} livelock {}",
        r.scheme,
        s.pause_frames,
        s.max_pause_depth,
        s.max_link_window_frames,
        s.cycles_formed,
        s.deadlocks,
        if s.livelock { "yes" } else { "no" },
    );
    if let Some(at) = s.first_deadlock_at {
        line.push_str(&format!(" first-deadlock {at}"));
    }
    if s.violations() > 0 {
        line.push_str(" VIOLATION");
    }
    line
}

fn cmd_fuzz(args: &[String]) -> Result<(), String> {
    // `--replay` is valueless; pull it out before the `--flag value` walker.
    let mut replay = false;
    let args: Vec<String> = args
        .iter()
        .filter(|a| {
            let is_replay = a.as_str() == "--replay";
            replay |= is_replay;
            !is_replay
        })
        .cloned()
        .collect();

    let mut cfg = bfc_experiments::FuzzConfig::new();
    let mut out: Option<PathBuf> = None;
    let positional = walk_options(&args, |flag, value| {
        match flag {
            "out" => out = Some(PathBuf::from(value)),
            "seed" => cfg.seed = parse_num(flag, value)?,
            "budget" => {
                cfg.budget = parse_num(flag, value)?;
                if cfg.budget == 0 {
                    return Err("--budget must be at least 1".into());
                }
            }
            "shrink-evals" => cfg.shrink_evals = parse_num(flag, value)?,
            "objective" => {
                cfg.objective = bfc_experiments::fuzz::Objective::from_cli_key(value)
                    .ok_or_else(|| format!("--objective: unknown objective {value}"))?;
            }
            "scheme" => {
                let schemes = parse_schemes(value)
                    .ok_or_else(|| format!("--scheme: unknown scheme {value}"))?;
                let [scheme] = schemes.as_slice() else {
                    return Err("fuzz: --scheme requires a single scheme, not a lineup".into());
                };
                cfg.scheme = scheme.clone();
            }
            "topo" => {
                cfg.topos = value.split(',').map(str::to_string).collect();
                for name in &cfg.topos {
                    if parse_topology(name).is_none() {
                        return Err(format!("--topo: unknown topology {name}"));
                    }
                }
            }
            "shards" => set_shards(flag, value)?,
            _ => return Err(format!("fuzz: unknown option --{flag}")),
        }
        Ok(())
    })?;
    if !positional.is_empty() {
        return Err(format!("fuzz: unexpected argument {}", positional[0]));
    }
    let out = out.ok_or("fuzz: --out <path> is required")?;

    let outcome = bfc_experiments::fuzz::fuzz(&cfg)?;
    let text = format!(
        "# worst case found by `trace-tool fuzz` (seed {}, budget {}, objective {}, \
         score {:.4}, pre-shrink {:.4})\n{}",
        cfg.seed,
        cfg.budget,
        cfg.objective.cli_key(),
        outcome.score,
        outcome.original_score,
        outcome.reproducer,
    );
    std::fs::write(&out, &text).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "fuzzed scheme {} for objective `{}`: {} evaluations, {} shrink step{}, \
         score {:.4} (pre-shrink {:.4})\nwrote reproducer to {}",
        cfg.scheme.name(),
        cfg.objective.cli_key(),
        outcome.evals,
        outcome.shrink_steps,
        if outcome.shrink_steps == 1 { "" } else { "s" },
        outcome.score,
        outcome.original_score,
        out.display(),
    );

    if replay {
        // Prove the artifact (not the in-memory case) is what replays: read
        // the file back, parse it, and run it.
        let text = std::fs::read_to_string(&out)
            .map_err(|e| format!("reading {}: {e}", out.display()))?;
        let repro = bfc_experiments::Reproducer::parse(&text)
            .map_err(|e| format!("{}: {e}", out.display()))?;
        let result = repro.replay_auto()?;
        println!("\nreplayed from {}:\n", out.display());
        print_results_table(std::slice::from_ref(&result));
        println!("{}", safety_line(&result));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return fail("missing command");
    };
    let result = match command.as_str() {
        "synth" => cmd_synth(rest),
        "stats" => cmd_stats(rest),
        "replay" => cmd_replay(rest),
        "snapshot" => cmd_snapshot(rest),
        "resume" => cmd_resume(rest),
        "serve" => cmd_serve(rest),
        "scenario" => cmd_scenario(rest),
        "fuzz" => cmd_fuzz(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => return fail(&format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => fail(&msg),
    }
}
