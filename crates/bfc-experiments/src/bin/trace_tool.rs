//! `trace-tool` — synthesize, summarize and replay workload traces in the
//! CSV format of `bfc_workloads::io`.
//!
//! ```sh
//! cargo run --release -p bfc-experiments --bin trace-tool -- synth --out trace.csv
//! cargo run --release -p bfc-experiments --bin trace-tool -- stats trace.csv
//! cargo run --release -p bfc-experiments --bin trace-tool -- replay trace.csv --scheme lineup
//! ```
//!
//! `synth` generates a trace over the hosts of a built-in fat-tree topology
//! and writes it as CSV; `stats` prints a summary (flow count, offered load,
//! size percentiles); `replay` validates the trace against the same topology
//! and runs it through the experiment driver (all schemes fan out across the
//! `ParallelRunner`; results are bit-identical at any `BFC_THREADS`).
//!
//! Service mode: `snapshot` checkpoints a run's complete simulation state at
//! a chosen instant, `resume` continues it to completion (bit-identical to
//! the uninterrupted replay), and `serve` feeds a live simulation from a
//! tailed CSV file or a TCP socket under an inflight cap.
//!
//! Adversarial mode: `scenario` runs a fault-injection file and reports
//! recovery and safety metrics; `fuzz` searches for the (workload, fault
//! schedule) a scheme handles worst and shrinks it to a minimal reproducer
//! (see `bfc_experiments::fuzz`).

use std::path::PathBuf;
use std::process::ExitCode;

use bfc_experiments::figures::failure_sweep;
use bfc_experiments::{
    resume_experiment, serve_experiment_with, snapshot_experiment, ExperimentConfig,
    ExperimentResult, MetricsHub, ParallelRunner, ReplayTrace, Reproducer, ScenarioSpec, Scheme,
};
use bfc_net::topology::Topology;
use bfc_net::trace::{kind_index_of, read_trace, write_trace, FlightTrace, TraceFilter};
use bfc_net::types::NodeId;
use bfc_sim::{SimDuration, SimTime};
use bfc_workloads::ingest::{CsvTail, IngestSource, SocketIngest};
use bfc_workloads::io::{read_csv_file, write_csv_file, TraceStats};
use bfc_workloads::{synthesize, ArrivalShape, IncastSchedule, TraceParams, Workload};

const USAGE: &str = "\
usage: trace-tool <command> [options]

commands:
  synth --out <path>      synthesize a trace and write it as CSV
    --topo tiny|t1|t2       topology whose hosts the trace runs over [tiny]
    --workload google|fb-hadoop|websearch   flow-size CDF [google]
    --load <frac>           background offered load [0.6]
    --incast-load <frac>    extra incast load, 0 disables [0.05]
    --fan-in <n>            senders per incast event [6]
    --incast-bytes <n>      aggregate bytes per incast event [500000]
    --duration-us <n>       trace duration in microseconds [300]
    --seed <n>              RNG seed [1]
    --arrivals lognormal|poisson|bursty     background gap shape [lognormal]
    --incast-schedule periodic|lognormal    incast event spacing [periodic]

  stats <path>            print a summary of a trace CSV
    --gbps <rate>           host link rate for the load arithmetic [100]

  replay <path>           replay a trace CSV through the experiment driver
    --topo tiny|t1|t2       topology to replay over (must cover the trace's
                            host ids) [tiny]
    --scheme bfc|bfc-vfid|ideal-fq|dcqcn|dcqcn-win|dcqcn-win-sfq|hpcc|lineup
                            scheme(s) to run [bfc]
    --seed <n>              experiment seed [1]
    --drain-x <n>           drain window as a multiple of the horizon [4]
    --shards <n>            split each run across n engine shards
                            (bit-identical results; same as BFC_SHARDS=n)

  snapshot <path>         run a trace partway and write a checkpoint of the
                          complete simulation state (versioned, checksummed;
                          resuming is bit-identical to the uninterrupted run)
    --at-us <n>             simulated instant to snapshot at (required)
    --out <snap>            snapshot file to write (required)
    --topo tiny|t1|t2       topology to replay over [tiny]
    --scheme ...            a single scheme (as replay, but not lineup) [bfc]
    --seed <n>              experiment seed [1]
    --drain-x <n>           drain window as a multiple of the horizon [4]
    --shards <n>            take the snapshot under the sharded engine [1]

  resume <path>           resume a snapshot against the same trace/options
                          and run to completion
    --snapshot <snap>       snapshot file to resume from (required)
    --topo / --scheme / --seed / --drain-x   must match the snapshot run

  serve                   run a live simulation fed by a streaming source,
                          admitting flows under an inflight cap (the cap is
                          the backpressure signal to the feeder)
    --tail <csv>            stream flows from this file; with --follow, keep
                            polling at EOF until a line reading `#end`
    --listen <addr>         accept one TCP feeder (e.g. 127.0.0.1:9000;
                            port 0 picks a free port) speaking the CSV format
    --cap <n>               max flows admitted but not yet completed [64]
    --topo tiny|t1|t2       topology to serve over [tiny]
    --scheme ...            a single scheme (as replay, but not lineup) [bfc]
    --seed <n>              experiment seed [1]
    --horizon-us <n>        measurement horizon in microseconds [300]
    --drain-x <n>           drain window as a multiple of the horizon [4]
    --metrics <addr>        also serve a Prometheus-style text exposition of
                            the live metrics registry on this TCP address
                            (port 0 picks a free port; the bound address
                            prints to stderr). Connections are persistent:
                            each scrape ends with a `# EOF` line, and sending
                            a newline on the same connection requests a fresh
                            scrape

  scenario <path>         run a link-dynamics scenario (fault-injection)
                          file through the experiment driver and report the
                          recovery metrics. The scenario format is one
                          directive per line:
                            at <time> down|up <a> <b>
                            at <time> rate <a> <b> <gbps>
                            flap <a> <b> from <t> every <period> until <t>
                          with times like 100us/2ms and endpoints named by
                          topology label (tor0, spine1, host3) or node id.
                          A fuzz reproducer (`objective ...` header, as
                          written by `fuzz --out` and committed under
                          tests/scenarios/) also works: it pins its own
                          topology, scheme and workload, so the
                          scenario-building flags below don't apply.
    --topo tiny|t1|t2       topology the scenario runs over [tiny]
    --trace <csv>           replay this trace instead of synthesizing one
    --scheme ... (as replay) scheme(s) to run [lineup]
    --load <frac>           background load of the synthetic trace [0.6]
    --duration-us <n>       synthetic trace duration in microseconds [300]
    --seed <n>              experiment seed [1]
    --drain-x <n>           drain window as a multiple of the horizon [4]
    --shards <n>            split each run across n engine shards
                            (bit-identical results; same as BFC_SHARDS=n)
    --json                  report safety/recovery per scheme as JSON on
                            stdout instead of the tables
    --trace-cap <n>         flight-recorder ring capacity for this run
                            [65536]
    --flight <path>         write the (single) scheme's flight trace here
                            unconditionally; without this flag, any run whose
                            safety report is a VIOLATION auto-dumps its last
                            trace events to <scenario-stem>-<scheme>.flight
    --diff-schemes <a,b>    run the scenario under both schemes, diff the two
                            flight traces in memory (see `trace diff`) and
                            exit nonzero if they diverge

  trace <sub>             flight-recorder traces (binary .flight containers)
    record <trace.csv> --out <flight>   replay with the recorder on and write
                                        the canonical trace
      --last <n>            ring capacity: keep the last n events [65536]
      --kind <a,b>          record only these event kinds (record-time
                            filter; filtered events never enter the ring)
      --node <a,b>          record only events at these node ids
      --topo / --scheme / --seed / --drain-x   as replay (single scheme)
      --shards <n>          record under the sharded engine (the merged
                            trace is identical to a serial recording)
    inspect <flight>        print the label, per-kind counts and records
      --limit <n>           print at most the last n records [40]
      --stats               print only the per-kind counts and the ring-drop
                            count, no record listing
    filter <flight>         print records matching every given predicate
      --kind <k>            event kind (enqueue, dequeue, drop, pfc-sent,
                            pfc-delivered, flow-pause, queue-active, ...)
      --node <id>           only events at this switch/host id
      --limit <n>           print at most the last n matches [1000]
    top <flight>            top queues by PFC pause-time
      --n <count>           rows to print [10]
      --tree                print the pause-propagation tree instead
    diff <a> <b>            compare two canonical traces record by record:
                            prints nothing and exits 0 when identical;
                            otherwise prints the first diverging record with
                            context plus per-kind and per-(switch, port)
                            summaries of the divergent tails, and exits 1
      --context <n>         common-prefix records printed before the first
                            divergence [5]

  fuzz --out <path>       search for the (workload, fault schedule) a scheme
                          handles worst, shrink the offender to a minimal
                          reproducer and write it as a scenario-style text
                          file that `fuzz --replay` (or the committed
                          regression tests) re-runs bit-identically.
                          Deterministic: same options, same bytes out.
    --seed <n>              search seed [1]
    --budget <n>            random cases to evaluate [24]
    --shrink-evals <n>      extra evaluations the shrinker may spend [24]
    --objective p99|p999|dip|recovery|safety   what to maximize [p99]
    --scheme ...            a single scheme (as replay, but not lineup) [bfc]
    --topo tiny|t1|t2       restrict the search to one topology, or a
                            comma list like tiny,t1 (smallest first) [tiny]
    --shards <n>            evaluate on n engine shards (same results)
    --replay                after writing, re-read the file and replay it";

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace-tool: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}

fn parse_topology(name: &str) -> Option<Topology> {
    bfc_experiments::fuzz::topology_by_name(name)
}

fn parse_workload(name: &str) -> Option<Workload> {
    match name {
        "google" => Some(Workload::Google),
        "fb-hadoop" | "fb_hadoop" | "hadoop" => Some(Workload::FbHadoop),
        "websearch" | "web-search" => Some(Workload::WebSearch),
        _ => None,
    }
}

fn parse_schemes(name: &str) -> Option<Vec<Scheme>> {
    match name {
        "lineup" | "all" => Some(Scheme::paper_lineup()),
        key => Scheme::from_cli_key(key).map(|s| vec![s]),
    }
}

/// `--flag value` option walker shared by the three subcommands: returns the
/// positional arguments, handing each `--flag`'s value to `set`.
fn walk_options(
    args: &[String],
    mut set: impl FnMut(&str, &str) -> Result<(), String>,
) -> Result<Vec<String>, String> {
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(flag) = arg.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("--{flag} requires a value"))?;
            set(flag, value)?;
        } else {
            positional.push(arg.clone());
        }
    }
    Ok(positional)
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("--{flag}: not a valid number: {value}"))
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let mut out: Option<PathBuf> = None;
    let mut topo: Option<Topology> = None;
    let mut topo_name = "tiny".to_string();
    let mut workload = Workload::Google;
    let mut load = 0.6f64;
    let mut incast_load = 0.05f64;
    let mut fan_in = 6usize;
    let mut incast_bytes = 500_000u64;
    let mut duration_us = 300u64;
    let mut seed = 1u64;
    let mut arrivals = ArrivalShape::paper_default();
    let mut incast_schedule = IncastSchedule::paper_default();

    let positional = walk_options(args, |flag, value| {
        match flag {
            "out" => out = Some(PathBuf::from(value)),
            "topo" => {
                topo = Some(
                    parse_topology(value)
                        .ok_or_else(|| format!("--topo: unknown topology {value}"))?,
                );
                topo_name = value.to_string();
            }
            "workload" => {
                workload = parse_workload(value)
                    .ok_or_else(|| format!("--workload: unknown workload {value}"))?;
            }
            "load" => load = parse_num(flag, value)?,
            "incast-load" => incast_load = parse_num(flag, value)?,
            "fan-in" => fan_in = parse_num(flag, value)?,
            "incast-bytes" => incast_bytes = parse_num(flag, value)?,
            "duration-us" => duration_us = parse_num(flag, value)?,
            "seed" => seed = parse_num(flag, value)?,
            "arrivals" => {
                arrivals = match value {
                    "lognormal" => ArrivalShape::paper_default(),
                    "poisson" => ArrivalShape::Poisson,
                    "bursty" => ArrivalShape::bursty_default(),
                    _ => return Err(format!("--arrivals: unknown shape {value}")),
                }
            }
            "incast-schedule" => {
                incast_schedule = match value {
                    "periodic" => IncastSchedule::Periodic,
                    "lognormal" => IncastSchedule::LogNormalGaps { sigma: 1.0 },
                    _ => return Err(format!("--incast-schedule: unknown schedule {value}")),
                }
            }
            _ => return Err(format!("synth: unknown option --{flag}")),
        }
        Ok(())
    })?;
    if !positional.is_empty() {
        return Err(format!("synth: unexpected argument {}", positional[0]));
    }
    let out = out.ok_or("synth: --out <path> is required")?;
    // Keep the load arithmetic (and the incast event period) in sane,
    // non-panicking ranges before handing the parameters to `synthesize`.
    if !(load > 0.0 && load <= 1.5) {
        return Err(format!("synth: --load must be in (0, 1.5], got {load}"));
    }
    if !(0.0..=1.5).contains(&incast_load) {
        return Err(format!(
            "synth: --incast-load must be in [0, 1.5], got {incast_load}"
        ));
    }
    if incast_load > 0.0 && incast_bytes < 1_000 {
        return Err(format!(
            "synth: --incast-bytes must be at least 1000 when incast is enabled, got {incast_bytes}"
        ));
    }
    if duration_us == 0 {
        return Err("synth: --duration-us must be positive".into());
    }

    let topo = topo.unwrap_or_else(|| parse_topology("tiny").expect("tiny always builds"));
    let hosts = topo.hosts();
    let params = TraceParams {
        workload,
        load,
        incast_load,
        incast_fan_in: fan_in,
        incast_total_bytes: incast_bytes,
        duration: SimDuration::from_micros(duration_us),
        host_gbps: topo.host_uplink(hosts[0]).link.rate_gbps,
        seed,
        arrivals,
        incast_schedule,
    };
    let flows = synthesize(&hosts, &params);
    write_csv_file(&out, &flows).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "wrote {} flows over {} ({} hosts of `{topo_name}`) to {}",
        flows.len(),
        params.duration,
        hosts.len(),
        out.display()
    );
    Ok(())
}

/// Routes the runs of this invocation through the sharded engine by setting
/// `BFC_SHARDS` (the experiment paths read it via
/// `bfc_experiments::sharded::shards_from_env`). Results are bit-identical
/// at any shard count; only wall-clock changes.
fn set_shards(_flag: &str, value: &str) -> Result<(), String> {
    bfc_experiments::sharded::set_shards_env(value)
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let mut gbps = 100.0f64;
    let positional = walk_options(args, |flag, value| {
        match flag {
            "gbps" => gbps = parse_num(flag, value)?,
            _ => return Err(format!("stats: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path] = positional.as_slice() else {
        return Err("stats: exactly one trace path is required".into());
    };
    let flows = read_csv_file(path).map_err(|e| format!("{path}: {e}"))?;
    match TraceStats::from_flows(&flows, gbps) {
        Some(stats) => println!("{stats}"),
        None => println!("{path}: empty trace"),
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let mut topo: Option<Topology> = None;
    let mut topo_name = "tiny".to_string();
    let mut schemes = vec![Scheme::bfc()];
    let mut seed = 1u64;
    let mut drain_x = 4u64;
    let positional = walk_options(args, |flag, value| {
        match flag {
            "topo" => {
                topo = Some(
                    parse_topology(value)
                        .ok_or_else(|| format!("--topo: unknown topology {value}"))?,
                );
                topo_name = value.to_string();
            }
            "scheme" => {
                schemes = parse_schemes(value)
                    .ok_or_else(|| format!("--scheme: unknown scheme {value}"))?;
            }
            "seed" => seed = parse_num(flag, value)?,
            "drain-x" => drain_x = parse_num(flag, value)?,
            "shards" => set_shards(flag, value)?,
            _ => return Err(format!("replay: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path] = positional.as_slice() else {
        return Err("replay: exactly one trace path is required".into());
    };

    let topo = topo.unwrap_or_else(|| parse_topology("tiny").expect("tiny always builds"));
    let replay = ReplayTrace::from_csv_path(path).map_err(|e| format!("{path}: {e}"))?;
    let horizon = replay.horizon();
    let configs: Vec<ExperimentConfig> = schemes
        .into_iter()
        .map(|scheme| {
            let mut config = ExperimentConfig::new(scheme, horizon).with_seed(seed);
            config.drain = horizon * drain_x;
            config
        })
        .collect();
    let runner = ParallelRunner::from_env();
    let results = replay
        .run_all(&topo, &configs, &runner)
        .map_err(|e| format!("{path}: {e}"))?;

    println!(
        "replayed {} flows (horizon {horizon}) over `{topo_name}` with {} worker thread{}\n",
        replay.flows().len(),
        runner.threads(),
        if runner.threads() == 1 { "" } else { "s" },
    );
    print_results_table(&results);
    print_engine_counters(&results);
    Ok(())
}

/// Per-run engine-internal counters, read uniformly from the unified
/// registry — serial runs print the same line with zero epochs. Written to
/// stderr so stdout stays byte-identical across engines (scripts diff it).
fn print_engine_counters(results: &[ExperimentResult]) {
    for r in results {
        let c = |key: &str| r.registry.counter(key).unwrap_or(0);
        eprintln!(
            "engine[{}]: queue-overflow {} epoch-batches {} windows {} barriers {} widened {} \
             cross-shard msgs {}",
            r.scheme,
            c("bfc_engine_queue_overflow_pushes"),
            c("bfc_engine_epoch_batches"),
            c("bfc_engine_epoch_windows"),
            c("bfc_engine_epoch_barriers"),
            c("bfc_engine_epoch_widened"),
            c("bfc_engine_epoch_boundary_events"),
        );
    }
}

/// The replay results table, shared by `replay`, `resume` and `serve` so a
/// resumed run's table is byte-identical to the uninterrupted replay's.
fn print_results_table(results: &[ExperimentResult]) {
    println!(
        "{:<16} {:>11} {:>9} {:>9} {:>8} {:>7}",
        "scheme", "completed", "p50", "p99", "util %", "drops"
    );
    for r in results {
        let (p50, p99) = r
            .fct
            .overall
            .as_ref()
            .map(|o| (o.p50, o.p99))
            .unwrap_or((f64::NAN, f64::NAN));
        println!(
            "{:<16} {:>5}/{:<5} {:>9.2} {:>9.2} {:>8.1} {:>7}",
            r.scheme,
            r.completed_flows,
            r.total_flows,
            p50,
            p99,
            r.utilization * 100.0,
            r.drops
        );
    }
    println!("\n(FCT slowdown percentiles over non-incast flows)");
}

/// Shared option state for the `snapshot` / `resume` / `serve` commands:
/// one scheme, one seed, one drain multiple, one topology.
struct RunOptions {
    topo: Topology,
    topo_name: String,
    scheme: Scheme,
    seed: u64,
    drain_x: u64,
}

impl RunOptions {
    fn defaults() -> RunOptions {
        RunOptions {
            topo: parse_topology("tiny").expect("tiny always builds"),
            topo_name: "tiny".to_string(),
            scheme: Scheme::bfc(),
            seed: 1,
            drain_x: 4,
        }
    }

    /// Handles the options common to the service-mode commands; returns
    /// false if the flag is not one of them.
    fn set(&mut self, cmd: &str, flag: &str, value: &str) -> Result<bool, String> {
        match flag {
            "topo" => {
                self.topo = parse_topology(value)
                    .ok_or_else(|| format!("--topo: unknown topology {value}"))?;
                self.topo_name = value.to_string();
            }
            "scheme" => {
                let schemes = parse_schemes(value)
                    .ok_or_else(|| format!("--scheme: unknown scheme {value}"))?;
                let [scheme] = schemes.as_slice() else {
                    return Err(format!("{cmd}: --scheme requires a single scheme, not a lineup"));
                };
                self.scheme = scheme.clone();
            }
            "seed" => self.seed = parse_num(flag, value)?,
            "drain-x" => self.drain_x = parse_num(flag, value)?,
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn config(&self, horizon: SimDuration) -> ExperimentConfig {
        let mut config = ExperimentConfig::new(self.scheme.clone(), horizon).with_seed(self.seed);
        config.drain = horizon * self.drain_x;
        config
    }
}

/// Loads and validates the trace the snapshot/resume commands run over,
/// exactly like `replay` does.
fn load_trace(cmd: &str, opts: &RunOptions, path: &str) -> Result<ReplayTrace, String> {
    let replay = ReplayTrace::from_csv_path(path).map_err(|e| format!("{path}: {e}"))?;
    replay
        .validate(&opts.topo)
        .map_err(|e| format!("{cmd}: {path}: {e}"))?;
    Ok(replay)
}

fn cmd_snapshot(args: &[String]) -> Result<(), String> {
    let mut opts = RunOptions::defaults();
    let mut at_us: Option<u64> = None;
    let mut out: Option<PathBuf> = None;
    let mut shards = 1usize;
    let positional = walk_options(args, |flag, value| {
        if opts.set("snapshot", flag, value)? {
            return Ok(());
        }
        match flag {
            "at-us" => at_us = Some(parse_num(flag, value)?),
            "out" => out = Some(PathBuf::from(value)),
            "shards" => {
                shards = parse_num(flag, value)?;
                if shards == 0 {
                    return Err("--shards requires a positive shard count, got 0".into());
                }
            }
            _ => return Err(format!("snapshot: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path] = positional.as_slice() else {
        return Err("snapshot: exactly one trace path is required".into());
    };
    let at_us = at_us.ok_or("snapshot: --at-us <n> is required")?;
    let out = out.ok_or("snapshot: --out <snap> is required")?;

    let replay = load_trace("snapshot", &opts, path)?;
    let config = opts.config(replay.horizon());
    let at = SimTime::ZERO + SimDuration::from_micros(at_us);
    let blob = snapshot_experiment(&opts.topo, replay.flows(), &config, at, shards);
    std::fs::write(&out, &blob).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "snapshotted `{}` ({} flows, scheme {}) at {at} into {} ({} bytes, {} shard{})",
        path,
        replay.flows().len(),
        config.scheme.name(),
        out.display(),
        blob.len(),
        shards,
        if shards == 1 { "" } else { "s" },
    );
    Ok(())
}

fn cmd_resume(args: &[String]) -> Result<(), String> {
    let mut opts = RunOptions::defaults();
    let mut snap_path: Option<PathBuf> = None;
    let positional = walk_options(args, |flag, value| {
        if opts.set("resume", flag, value)? {
            return Ok(());
        }
        match flag {
            "snapshot" => snap_path = Some(PathBuf::from(value)),
            _ => return Err(format!("resume: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path] = positional.as_slice() else {
        return Err("resume: exactly one trace path is required".into());
    };
    let snap_path = snap_path.ok_or("resume: --snapshot <snap> is required")?;

    let replay = load_trace("resume", &opts, path)?;
    let horizon = replay.horizon();
    let config = opts.config(horizon);
    let blob = std::fs::read(&snap_path)
        .map_err(|e| format!("reading {}: {e}", snap_path.display()))?;
    let result = resume_experiment(&opts.topo, replay.flows(), &config, &blob)
        .map_err(|e| format!("{}: {e}", snap_path.display()))?;
    println!(
        "resumed {} flows (horizon {horizon}) over `{}` from `{}`\n",
        replay.flows().len(),
        opts.topo_name,
        snap_path.display(),
    );
    print_results_table(std::slice::from_ref(&result));
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    // `--follow` is the one valueless flag in the tool; pull it out before
    // the `--flag value` walker sees it.
    let mut follow = false;
    let args: Vec<String> = args
        .iter()
        .filter(|a| {
            let is_follow = a.as_str() == "--follow";
            follow |= is_follow;
            !is_follow
        })
        .cloned()
        .collect();

    let mut opts = RunOptions::defaults();
    let mut tail_path: Option<PathBuf> = None;
    let mut listen_addr: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut cap = 64usize;
    let mut horizon_us = 300u64;
    let positional = walk_options(&args, |flag, value| {
        if opts.set("serve", flag, value)? {
            return Ok(());
        }
        match flag {
            "tail" => tail_path = Some(PathBuf::from(value)),
            "listen" => listen_addr = Some(value.to_string()),
            "metrics" => metrics_addr = Some(value.to_string()),
            "cap" => {
                cap = parse_num(flag, value)?;
                if cap == 0 {
                    return Err("--cap must be at least 1".into());
                }
            }
            "horizon-us" => {
                horizon_us = parse_num(flag, value)?;
                if horizon_us == 0 {
                    return Err("--horizon-us must be positive".into());
                }
            }
            _ => return Err(format!("serve: unknown option --{flag}")),
        }
        Ok(())
    })?;
    if !positional.is_empty() {
        return Err(format!("serve: unexpected argument {}", positional[0]));
    }
    let config = opts.config(SimDuration::from_micros(horizon_us));

    // Live metrics exposition: an accept loop handing each connection to a
    // thread that serves one scrape immediately and a fresh one per request
    // line, so a monitoring client can watch the run over one persistent
    // connection. Observation never feeds back into the simulation.
    let hub = MetricsHub::new();
    let metrics = if let Some(addr) = &metrics_addr {
        let listener = std::net::TcpListener::bind(addr.as_str())
            .map_err(|e| format!("binding metrics address {addr}: {e}"))?;
        let local = listener.local_addr().map_err(|e| format!("metrics: {e}"))?;
        eprintln!("metrics listening on {local}");
        let scrape_hub = hub.clone();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(conn) = conn else { continue };
                let hub = scrape_hub.clone();
                std::thread::spawn(move || serve_scrapes(conn, &hub));
            }
        });
        Some(hub)
    } else {
        None
    };

    let mut source: Box<dyn IngestSource> = match (&tail_path, &listen_addr) {
        (Some(path), None) => Box::new(
            CsvTail::open(path, follow).map_err(|e| format!("opening {}: {e}", path.display()))?,
        ),
        (None, Some(addr)) => {
            let (source, local) =
                SocketIngest::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
            println!("listening on {local} (feed trace CSV, close to finish)");
            Box::new(source)
        }
        _ => return Err("serve: exactly one of --tail <csv> or --listen <addr> is required".into()),
    };
    if follow && tail_path.is_none() {
        return Err("serve: --follow only applies to --tail".into());
    }

    let report = serve_experiment_with(&opts.topo, &config, source.as_mut(), cap, metrics.as_ref())
        .map_err(|e| format!("serve: {e}"))?;
    println!(
        "served {} flows (horizon {}) over `{}` under inflight cap {cap}\n",
        report.admitted, config.horizon, opts.topo_name,
    );
    print_results_table(std::slice::from_ref(&report.result));
    Ok(())
}

/// Serves metrics scrapes over one persistent connection: the current
/// exposition (terminated by a `# EOF` line) is written immediately, then
/// once more — re-rendered fresh — for every newline-terminated request line
/// the client sends. Returns when the peer closes or any write fails.
fn serve_scrapes(conn: std::net::TcpStream, hub: &MetricsHub) {
    use std::io::{BufRead as _, BufReader, Write as _};
    let Ok(read_half) = conn.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut conn = conn;
    loop {
        let mut text = hub.render();
        text.push_str("# EOF\n");
        if conn.write_all(text.as_bytes()).is_err() || conn.flush().is_err() {
            return;
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

fn cmd_scenario(args: &[String]) -> Result<ExitCode, String> {
    // `--json` is valueless; pull it out before the `--flag value` walker.
    let mut json = false;
    let args: Vec<String> = args
        .iter()
        .filter(|a| {
            let is_json = a.as_str() == "--json";
            json |= is_json;
            !is_json
        })
        .cloned()
        .collect();

    let mut topo: Option<Topology> = None;
    let mut topo_name = "tiny".to_string();
    let mut schemes = Scheme::paper_lineup();
    let mut trace_path: Option<PathBuf> = None;
    let mut flight_path: Option<PathBuf> = None;
    let mut diff_schemes: Option<String> = None;
    let mut trace_cap = 65_536usize;
    let mut load = 0.6f64;
    let mut duration_us = 300u64;
    let mut seed = 1u64;
    let mut drain_x = 4u64;
    let positional = walk_options(&args, |flag, value| {
        match flag {
            "topo" => {
                topo = Some(
                    parse_topology(value)
                        .ok_or_else(|| format!("--topo: unknown topology {value}"))?,
                );
                topo_name = value.to_string();
            }
            "scheme" => {
                schemes = parse_schemes(value)
                    .ok_or_else(|| format!("--scheme: unknown scheme {value}"))?;
            }
            "trace" => trace_path = Some(PathBuf::from(value)),
            "diff-schemes" => diff_schemes = Some(value.to_string()),
            "flight" => flight_path = Some(PathBuf::from(value)),
            "trace-cap" => {
                trace_cap = parse_num(flag, value)?;
                if trace_cap == 0 {
                    return Err("--trace-cap must be at least 1".into());
                }
            }
            "load" => load = parse_num(flag, value)?,
            "duration-us" => duration_us = parse_num(flag, value)?,
            "seed" => seed = parse_num(flag, value)?,
            "drain-x" => drain_x = parse_num(flag, value)?,
            "shards" => set_shards(flag, value)?,
            _ => return Err(format!("scenario: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path] = positional.as_slice() else {
        return Err("scenario: exactly one scenario path is required".into());
    };
    if !(load > 0.0 && load <= 1.5) {
        return Err(format!("scenario: --load must be in (0, 1.5], got {load}"));
    }
    if duration_us == 0 {
        return Err("scenario: --duration-us must be positive".into());
    }
    let diff_pair: Option<(Scheme, Scheme)> = match &diff_schemes {
        None => None,
        Some(spec) => {
            let parse_one = |key: &str| -> Result<Scheme, String> {
                let parsed = parse_schemes(key)
                    .ok_or_else(|| format!("--diff-schemes: unknown scheme {key}"))?;
                let [s] = parsed.as_slice() else {
                    return Err("--diff-schemes: lineups are not allowed, name two schemes".into());
                };
                Ok(s.clone())
            };
            let parts: Vec<&str> = spec.split(',').collect();
            let [a, b] = parts.as_slice() else {
                return Err(
                    "scenario: --diff-schemes takes exactly two comma-separated schemes".into(),
                );
            };
            Some((parse_one(a)?, parse_one(b)?))
        }
    };

    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    // A file whose first directive is an `objective` header is a committed
    // fuzz reproducer: it pins its own topology, scheme, workload and fault
    // schedule, so the scenario-building flags don't apply to it.
    let is_reproducer = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .is_some_and(|l| l.starts_with("objective "));

    let (topo, topo_name, flows, configs, run_seed) = if is_reproducer {
        let repro = Reproducer::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let (topo, flows, config) = repro.materialize().map_err(|e| format!("{path}: {e}"))?;
        let run_seed = config.seed;
        // Always record: the ring is bounded and results are bit-identical
        // either way, and a VIOLATION verdict must be able to dump the
        // events leading up to it.
        let config = config.with_trace_capacity(trace_cap);
        (topo, repro.topo.clone(), flows, vec![config], run_seed)
    } else {
        let topo = topo.unwrap_or_else(|| parse_topology("tiny").expect("tiny always builds"));
        let spec = ScenarioSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let schedule = spec.resolve(&topo).map_err(|e| format!("{path}: {e}"))?;

        let (flows, horizon) = match &trace_path {
            Some(csv) => {
                let replay = ReplayTrace::from_csv_path(csv)
                    .map_err(|e| format!("{}: {e}", csv.display()))?;
                replay
                    .validate(&topo)
                    .map_err(|e| format!("{}: {e}", csv.display()))?;
                let horizon = replay.horizon();
                (replay.flows().to_vec(), horizon)
            }
            None => {
                let hosts = topo.hosts();
                let duration = SimDuration::from_micros(duration_us);
                let params = TraceParams::background_only(Workload::Google, load, duration, seed);
                let params = TraceParams {
                    host_gbps: topo.host_uplink(hosts[0]).link.rate_gbps,
                    ..params
                };
                (synthesize(&hosts, &params), duration)
            }
        };
        let configs: Vec<ExperimentConfig> = schemes
            .into_iter()
            .map(|scheme| {
                let mut config = ExperimentConfig::new(scheme, horizon)
                    .with_seed(seed)
                    .with_dynamics(schedule.clone())
                    // See above: tracing is always on in scenario runs.
                    .with_trace_capacity(trace_cap);
                config.drain = horizon * drain_x;
                config
            })
            .collect();
        (topo, topo_name, flows, configs, seed)
    };
    // `--diff-schemes a,b`: same scenario, same inputs, two schemes — run
    // both traced (overriding even a reproducer's pinned scheme) and diff
    // the flight traces in memory at the end.
    let configs: Vec<ExperimentConfig> = match &diff_pair {
        None => configs,
        Some((a, b)) => {
            let base = configs.into_iter().next().expect("at least one config");
            [a, b]
                .into_iter()
                .map(|scheme| {
                    let mut config = base.clone();
                    config.scheme = scheme.clone();
                    config
                })
                .collect()
        }
    };
    let fault_events = configs[0].dynamics.events().len();
    if flight_path.is_some() && configs.len() != 1 {
        return Err("scenario: --flight requires a single --scheme, not a lineup".into());
    }
    let runner = ParallelRunner::from_env();
    let mut results = runner.run_experiments(&topo, &flows, &configs);

    // The scenario file's stem labels the rows; the table itself is the
    // failure-sweep figure's formatter, so the CLI and figure cannot drift.
    let label = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "scenario".to_string());

    // Flight dumps: explicit `--flight` always writes; otherwise a safety
    // VIOLATION auto-dumps the last trace events so the pause wait-for
    // chain leading into the deadlock/livelock stays inspectable.
    for r in results.iter_mut() {
        let Some(flight) = r.flight.take() else { continue };
        let dump: Option<PathBuf> = match &flight_path {
            Some(p) => Some(p.clone()),
            None if r.safety.violations() > 0 => {
                Some(PathBuf::from(format!("{label}-{}.flight", scheme_file_key(&r.scheme))))
            }
            None => None,
        };
        if let Some(out) = dump {
            let trace_label = format!("scenario {label} scheme {} seed {run_seed}", r.scheme);
            let blob = write_trace(&trace_label, &flight);
            std::fs::write(&out, &blob).map_err(|e| format!("writing {}: {e}", out.display()))?;
            eprintln!(
                "flight[{}]: {} events ({} shed) -> {}{}",
                r.scheme,
                flight.records.len(),
                flight.dropped,
                out.display(),
                if r.safety.violations() > 0 { " (safety violation)" } else { "" },
            );
        }
        r.flight = Some(flight);
    }

    if json {
        println!("{}", scenario_json(&label, &topo_name, flows.len(), fault_events, &results));
        print_engine_counters(&results);
    } else {
        println!(
            "scenario `{path}`: {} fault event{} over `{topo_name}`, {} flows, {} worker thread{}\n",
            fault_events,
            if fault_events == 1 { "" } else { "s" },
            flows.len(),
            runner.threads(),
            if runner.threads() == 1 { "" } else { "s" },
        );
        print!("{}", failure_sweep::HEADER);
        for r in &results {
            print!("{}", failure_sweep::result_row(&label, r));
        }
        println!();
        for r in &results {
            println!("{}", safety_line(r));
        }
        println!("\n(FCT slowdown p99 over non-incast flows; ttr = goodput recovery after the last fault)");
        print_engine_counters(&results);
    }

    if diff_pair.is_some() {
        let flight_b = results[1].flight.take().expect("tracing is always on in scenario runs");
        let flight_a = results[0].flight.take().expect("tracing is always on in scenario runs");
        let desc = format!("scenario {label} seed {run_seed}");
        println!();
        return Ok(print_trace_diff(
            (&results[0].scheme, &desc, &flight_a),
            (&results[1].scheme, &desc, &flight_b),
            5,
        ));
    }
    Ok(ExitCode::SUCCESS)
}

/// Filesystem-safe key for a scheme name (`DCQCN+Win` -> `dcqcn-win`).
fn scheme_file_key(name: &str) -> String {
    let mut key = String::with_capacity(name.len());
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            key.push(ch.to_ascii_lowercase());
        } else if !key.ends_with('-') {
            key.push('-');
        }
    }
    key.trim_matches('-').to_string()
}

/// Renders a float as a JSON value (`null` for NaN/infinite, which JSON
/// cannot represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// JSON string escaping for the small, controlled strings we emit (scheme
/// names, labels): quotes, backslashes and control characters.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The `scenario --json` document: run header plus per-scheme completion,
/// tail latency, recovery and safety reporting.
fn scenario_json(
    label: &str,
    topo_name: &str,
    flows: usize,
    fault_events: usize,
    results: &[ExperimentResult],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scenario\": {},\n", json_str(label)));
    out.push_str(&format!("  \"topology\": {},\n", json_str(topo_name)));
    out.push_str(&format!("  \"flows\": {flows},\n"));
    out.push_str(&format!("  \"fault_events\": {fault_events},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let p99 = r.fct.overall.as_ref().map(|o| o.p99).unwrap_or(f64::NAN);
        let s = &r.safety;
        let rec = &r.recovery;
        out.push_str("    {\n");
        out.push_str(&format!("      \"scheme\": {},\n", json_str(&r.scheme)));
        out.push_str(&format!("      \"completed\": {},\n", r.completed_flows));
        out.push_str(&format!("      \"total\": {},\n", r.total_flows));
        out.push_str(&format!("      \"p99_slowdown\": {},\n", json_f64(p99)));
        out.push_str(&format!("      \"utilization\": {},\n", json_f64(r.utilization)));
        out.push_str(&format!("      \"drops\": {},\n", r.drops));
        out.push_str("      \"recovery\": {\n");
        out.push_str(&format!(
            "        \"blackholed_packets\": {},\n",
            rec.blackholed_packets
        ));
        out.push_str(&format!("        \"reroutes\": {},\n", rec.reroutes));
        out.push_str(&format!("        \"faults\": {},\n", rec.faults));
        out.push_str(&format!(
            "        \"time_to_recover_us\": {},\n",
            rec.time_to_recover
                .map(|d| json_f64(d.as_secs_f64() * 1e6))
                .unwrap_or_else(|| "null".to_string())
        ));
        out.push_str(&format!(
            "        \"goodput_dip_depth\": {}\n",
            json_f64(rec.goodput_dip_depth)
        ));
        out.push_str("      },\n");
        out.push_str("      \"safety\": {\n");
        out.push_str(&format!("        \"pause_frames\": {},\n", s.pause_frames));
        out.push_str(&format!("        \"max_pause_depth\": {},\n", s.max_pause_depth));
        out.push_str(&format!(
            "        \"max_link_window_frames\": {},\n",
            s.max_link_window_frames
        ));
        out.push_str(&format!("        \"cycles_formed\": {},\n", s.cycles_formed));
        out.push_str(&format!("        \"deadlocks\": {},\n", s.deadlocks));
        out.push_str(&format!("        \"livelock\": {},\n", s.livelock));
        out.push_str(&format!("        \"violations\": {}\n", s.violations()));
        out.push_str("      }\n");
        out.push_str(if i + 1 == results.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}");
    out
}

/// One per-scheme line from the safety detectors: pause-storm counters,
/// wait-for-graph cycles, confirmed PFC deadlocks and livelock. Violations
/// are marked loudly so scripts can grep for them.
fn safety_line(r: &ExperimentResult) -> String {
    let s = &r.safety;
    let mut line = format!(
        "safety[{}]: pause-frames {} max-depth {} max-window {} cycles {} deadlocks {} livelock {}",
        r.scheme,
        s.pause_frames,
        s.max_pause_depth,
        s.max_link_window_frames,
        s.cycles_formed,
        s.deadlocks,
        if s.livelock { "yes" } else { "no" },
    );
    if let Some(at) = s.first_deadlock_at {
        line.push_str(&format!(" first-deadlock {at}"));
    }
    if s.violations() > 0 {
        line.push_str(" VIOLATION");
    }
    line
}

fn cmd_trace(args: &[String]) -> Result<ExitCode, String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err("trace: missing subcommand (record, inspect, filter, top, diff)".into());
    };
    match sub.as_str() {
        "record" => cmd_trace_record(rest).map(|()| ExitCode::SUCCESS),
        "inspect" => cmd_trace_inspect(rest).map(|()| ExitCode::SUCCESS),
        "filter" => cmd_trace_filter(rest).map(|()| ExitCode::SUCCESS),
        "top" => cmd_trace_top(rest).map(|()| ExitCode::SUCCESS),
        "diff" => cmd_trace_diff(rest),
        other => Err(format!("trace: unknown subcommand `{other}`")),
    }
}

fn cmd_trace_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut context = 5usize;
    let positional = walk_options(args, |flag, value| {
        match flag {
            "context" => context = parse_num(flag, value)?,
            _ => return Err(format!("trace diff: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path_a, path_b] = positional.as_slice() else {
        return Err("trace diff: exactly two flight paths are required".into());
    };
    let (label_a, flight_a) = open_flight(path_a)?;
    let (label_b, flight_b) = open_flight(path_b)?;
    Ok(print_trace_diff(
        (path_a, &label_a, &flight_a),
        (path_b, &label_b, &flight_b),
        context,
    ))
}

/// Renders the divergence report between two canonical traces, each given as
/// `(name, run label, trace)`. Identical traces print nothing and return
/// success; otherwise the first diverging record (with up to `context`
/// records of common prefix before it) and the per-kind / per-(switch, port)
/// summaries of the divergent tails are printed, and the exit code is
/// failure — "the traces differ" is the command's result, not an error.
fn print_trace_diff(
    a: (&str, &str, &FlightTrace),
    b: (&str, &str, &FlightTrace),
    context: usize,
) -> ExitCode {
    let (name_a, label_a, flight_a) = a;
    let (name_b, label_b, flight_b) = b;
    let Some(diff) = flight_a.diff(flight_b) else {
        return ExitCode::SUCCESS;
    };
    println!("a: {name_a} — {} records [{label_a}]", flight_a.records.len());
    println!("b: {name_b} — {} records [{label_b}]", flight_b.records.len());
    println!("\nfirst divergence at canonical record {}:", diff.index);
    let start = diff.index.saturating_sub(context);
    if start < diff.index {
        println!("  (common prefix, last {} records)", diff.index - start);
        for r in &flight_a.records[start..diff.index] {
            println!("  = {}", record_line(r));
        }
    }
    match &diff.first_a {
        Some(r) => println!("  a {}", record_line(r)),
        None => println!("  a (trace ends here)"),
    }
    match &diff.first_b {
        Some(r) => println!("  b {}", record_line(r)),
        None => println!("  b (trace ends here)"),
    }
    println!(
        "\ndivergent tails: {} records in a, {} in b",
        diff.tail_a, diff.tail_b
    );
    let time_or_dash = |t: Option<SimTime>| t.map(|t| t.to_string()).unwrap_or_else(|| "-".into());
    if !diff.kinds.is_empty() {
        println!(
            "\n{:<14} {:>9} {:>9}  {:<14} {}",
            "kind", "a", "b", "first-a", "first-b"
        );
        for k in &diff.kinds {
            println!(
                "{:<14} {:>9} {:>9}  {:<14} {}",
                k.kind,
                k.count_a,
                k.count_b,
                time_or_dash(k.first_a),
                time_or_dash(k.first_b),
            );
        }
    }
    if !diff.ports.is_empty() {
        println!(
            "\n{:<8} {:<6} {:>9} {:>9}  {:<14} {}",
            "switch", "port", "a", "b", "pause-a", "pause-b"
        );
        for p in &diff.ports {
            println!(
                "{:<8} {:<6} {:>9} {:>9}  {:<14} {}",
                format!("sw{}", p.node.0),
                p.port,
                p.count_a,
                p.count_b,
                format!("{}", p.pause_a),
                p.pause_b,
            );
        }
    }
    ExitCode::FAILURE
}

fn cmd_trace_record(args: &[String]) -> Result<(), String> {
    let mut opts = RunOptions::defaults();
    let mut out: Option<PathBuf> = None;
    let mut last = 65_536usize;
    let mut kinds: Vec<String> = Vec::new();
    let mut nodes: Vec<u32> = Vec::new();
    let positional = walk_options(args, |flag, value| {
        if opts.set("trace record", flag, value)? {
            return Ok(());
        }
        match flag {
            "out" => out = Some(PathBuf::from(value)),
            "last" => {
                last = parse_num(flag, value)?;
                if last == 0 {
                    return Err("--last must be at least 1".into());
                }
            }
            "kind" => kinds.extend(value.split(',').map(str::to_string)),
            "node" => {
                for part in value.split(',') {
                    nodes.push(parse_num(flag, part)?);
                }
            }
            "shards" => set_shards(flag, value)?,
            _ => return Err(format!("trace record: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path] = positional.as_slice() else {
        return Err("trace record: exactly one trace CSV path is required".into());
    };
    let out = out.ok_or("trace record: --out <flight> is required")?;

    let replay = load_trace("trace record", &opts, path)?;
    let mut config = opts.config(replay.horizon()).with_trace_capacity(last);
    if !kinds.is_empty() || !nodes.is_empty() {
        let mut filter = TraceFilter::all();
        if !kinds.is_empty() {
            let mut indices = Vec::with_capacity(kinds.len());
            for k in &kinds {
                indices.push(
                    kind_index_of(k).ok_or_else(|| format!("--kind: unknown event kind {k}"))?,
                );
            }
            filter = filter.with_kinds(indices);
        }
        if !nodes.is_empty() {
            filter = filter.with_nodes(nodes.iter().map(|&n| NodeId(n)));
        }
        config = config.with_trace_filter(filter);
    }
    let result = bfc_experiments::run_experiment_auto(&opts.topo, replay.flows(), &config);
    let flight = result.flight.expect("tracing was enabled for this run");
    let label = format!(
        "replay {path} scheme {} seed {}",
        config.scheme.name(),
        opts.seed
    );
    let blob = write_trace(&label, &flight);
    std::fs::write(&out, &blob).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "recorded {} trace events ({} shed by the ring of {last}) from {} flows over `{}` -> {} ({} bytes)",
        flight.records.len(),
        flight.dropped,
        replay.flows().len(),
        opts.topo_name,
        out.display(),
        blob.len(),
    );
    Ok(())
}

/// Opens a flight-trace container, mapping errors to CLI diagnostics.
fn open_flight(path: &str) -> Result<(String, FlightTrace), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    read_trace(&bytes).map_err(|e| format!("{path}: {e}"))
}

/// One rendered record line: sequence, simulated time, one-line event text.
fn record_line(r: &bfc_net::trace::TraceRecord) -> String {
    format!("{:>8}  {:<14} {}", r.seq, format!("{}", r.at), r.event.render())
}

fn cmd_trace_inspect(args: &[String]) -> Result<(), String> {
    // `--stats` is valueless; pull it out before the `--flag value` walker.
    let mut stats = false;
    let args: Vec<String> = args
        .iter()
        .filter(|a| {
            let is_stats = a.as_str() == "--stats";
            stats |= is_stats;
            !is_stats
        })
        .cloned()
        .collect();

    let mut limit = 40usize;
    let positional = walk_options(&args, |flag, value| {
        match flag {
            "limit" => limit = parse_num(flag, value)?,
            _ => return Err(format!("trace inspect: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path] = positional.as_slice() else {
        return Err("trace inspect: exactly one flight path is required".into());
    };
    let (label, flight) = open_flight(path)?;

    println!("label:   {label}");
    println!(
        "records: {} held, {} shed by the ring before them",
        flight.records.len(),
        flight.dropped
    );
    let mut by_kind: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for r in &flight.records {
        *by_kind.entry(r.event.kind()).or_insert(0) += 1;
    }
    for (kind, count) in &by_kind {
        println!("  {kind:<14} {count}");
    }
    if stats || flight.records.is_empty() {
        return Ok(());
    }
    let skip = flight.records.len().saturating_sub(limit);
    if skip > 0 {
        println!("\nlast {limit} records ({skip} earlier records not shown; --limit raises):");
    } else {
        println!("\nrecords:");
    }
    for r in &flight.records[skip..] {
        println!("{}", record_line(r));
    }
    Ok(())
}

fn cmd_trace_filter(args: &[String]) -> Result<(), String> {
    let mut kind: Option<String> = None;
    let mut node: Option<u32> = None;
    let mut limit = 1_000usize;
    let positional = walk_options(args, |flag, value| {
        match flag {
            "kind" => kind = Some(value.to_string()),
            "node" => node = Some(parse_num(flag, value)?),
            "limit" => limit = parse_num(flag, value)?,
            _ => return Err(format!("trace filter: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path] = positional.as_slice() else {
        return Err("trace filter: exactly one flight path is required".into());
    };
    if kind.is_none() && node.is_none() {
        return Err("trace filter: at least one of --kind or --node is required".into());
    }
    let (_, flight) = open_flight(path)?;

    let matches: Vec<_> = flight
        .records
        .iter()
        .filter(|r| kind.as_deref().is_none_or(|k| r.event.kind() == k))
        .filter(|r| node.is_none_or(|n| r.event.node() == Some(NodeId(n))))
        .collect();
    let skip = matches.len().saturating_sub(limit);
    println!(
        "{} of {} records match{}",
        matches.len(),
        flight.records.len(),
        if skip > 0 {
            format!(" (showing the last {limit}; --limit raises)")
        } else {
            String::new()
        }
    );
    for r in &matches[skip..] {
        println!("{}", record_line(r));
    }
    Ok(())
}

fn cmd_trace_top(args: &[String]) -> Result<(), String> {
    // `--tree` is valueless; pull it out before the `--flag value` walker.
    let mut tree = false;
    let args: Vec<String> = args
        .iter()
        .filter(|a| {
            let is_tree = a.as_str() == "--tree";
            tree |= is_tree;
            !is_tree
        })
        .cloned()
        .collect();

    let mut n = 10usize;
    let positional = walk_options(&args, |flag, value| {
        match flag {
            "n" => n = parse_num(flag, value)?,
            _ => return Err(format!("trace top: unknown option --{flag}")),
        }
        Ok(())
    })?;
    let [path] = positional.as_slice() else {
        return Err("trace top: exactly one flight path is required".into());
    };
    let (_, flight) = open_flight(path)?;

    if tree {
        print_pause_tree(&flight);
        return Ok(());
    }

    let end = flight
        .records
        .last()
        .map(|r| r.at)
        .unwrap_or(SimTime::ZERO);
    let top = flight.pause_time_by_port(end);
    if top.is_empty() {
        println!("no PFC pause intervals in this trace");
        return Ok(());
    }
    println!("top {} queues by PFC pause-time (open intervals closed at {end}):", n.min(top.len()));
    println!("{:<8} {:<6} {}", "switch", "port", "paused");
    for ((node, port), paused) in top.iter().take(n) {
        println!("{:<8} {:<6} {}", format!("sw{}", node.0), port, paused);
    }
    Ok(())
}

/// Renders the pause-propagation forest from the trace's PFC wait-for
/// edges: an edge `src -> node` means a frame from `src` paused `node`'s
/// egress toward it, i.e. backpressure propagated from `src` upstream to
/// `node`. Roots are pause origins (never themselves paused); a back edge
/// to an ancestor is marked as a cycle — the signature of PFC deadlock.
fn print_pause_tree(flight: &FlightTrace) {
    use std::collections::{BTreeMap, BTreeSet};
    let mut children: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    let mut paused: BTreeSet<u32> = BTreeSet::new();
    for (_, node, src, pause) in flight.pause_edges() {
        if pause {
            children.entry(src.0).or_default().insert(node.0);
            paused.insert(node.0);
        }
    }
    if children.is_empty() {
        println!("no PFC pause (XOFF) deliveries in this trace");
        return;
    }
    fn walk(
        node: u32,
        children: &BTreeMap<u32, BTreeSet<u32>>,
        path: &mut Vec<u32>,
        depth: usize,
        seen: &mut BTreeSet<u32>,
    ) {
        println!("{}sw{}", "  ".repeat(depth), node);
        seen.insert(node);
        path.push(node);
        if let Some(kids) = children.get(&node) {
            for &kid in kids {
                if path.contains(&kid) {
                    println!(
                        "{}sw{} ^ cycle back into the chain",
                        "  ".repeat(depth + 1),
                        kid
                    );
                    seen.insert(kid);
                } else {
                    walk(kid, children, path, depth + 1, seen);
                }
            }
        }
        path.pop();
    }
    let roots: Vec<u32> = children
        .keys()
        .filter(|k| !paused.contains(k))
        .copied()
        .collect();
    println!("pause propagation (roots are pause origins):");
    let mut seen = BTreeSet::new();
    for root in roots {
        walk(root, &children, &mut Vec::new(), 0, &mut seen);
    }
    // Components with no pure origin are wait-for cycles — the deadlock
    // signature — and are unreachable from any root, so walk them too,
    // entering each at its smallest unvisited pauser.
    loop {
        let Some(&entry) = children.keys().find(|k| !seen.contains(k)) else {
            break;
        };
        println!("(cyclic component, no pure origin:)");
        walk(entry, &children, &mut Vec::new(), 0, &mut seen);
    }
}

fn cmd_fuzz(args: &[String]) -> Result<(), String> {
    // `--replay` is valueless; pull it out before the `--flag value` walker.
    let mut replay = false;
    let args: Vec<String> = args
        .iter()
        .filter(|a| {
            let is_replay = a.as_str() == "--replay";
            replay |= is_replay;
            !is_replay
        })
        .cloned()
        .collect();

    let mut cfg = bfc_experiments::FuzzConfig::new();
    let mut out: Option<PathBuf> = None;
    let positional = walk_options(&args, |flag, value| {
        match flag {
            "out" => out = Some(PathBuf::from(value)),
            "seed" => cfg.seed = parse_num(flag, value)?,
            "budget" => {
                cfg.budget = parse_num(flag, value)?;
                if cfg.budget == 0 {
                    return Err("--budget must be at least 1".into());
                }
            }
            "shrink-evals" => cfg.shrink_evals = parse_num(flag, value)?,
            "objective" => {
                cfg.objective = bfc_experiments::fuzz::Objective::from_cli_key(value)
                    .ok_or_else(|| format!("--objective: unknown objective {value}"))?;
            }
            "scheme" => {
                let schemes = parse_schemes(value)
                    .ok_or_else(|| format!("--scheme: unknown scheme {value}"))?;
                let [scheme] = schemes.as_slice() else {
                    return Err("fuzz: --scheme requires a single scheme, not a lineup".into());
                };
                cfg.scheme = scheme.clone();
            }
            "topo" => {
                cfg.topos = value.split(',').map(str::to_string).collect();
                for name in &cfg.topos {
                    if parse_topology(name).is_none() {
                        return Err(format!("--topo: unknown topology {name}"));
                    }
                }
            }
            "shards" => set_shards(flag, value)?,
            _ => return Err(format!("fuzz: unknown option --{flag}")),
        }
        Ok(())
    })?;
    if !positional.is_empty() {
        return Err(format!("fuzz: unexpected argument {}", positional[0]));
    }
    let out = out.ok_or("fuzz: --out <path> is required")?;

    let outcome = bfc_experiments::fuzz::fuzz(&cfg)?;
    let text = format!(
        "# worst case found by `trace-tool fuzz` (seed {}, budget {}, objective {}, \
         score {:.4}, pre-shrink {:.4})\n{}",
        cfg.seed,
        cfg.budget,
        cfg.objective.cli_key(),
        outcome.score,
        outcome.original_score,
        outcome.reproducer,
    );
    std::fs::write(&out, &text).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "fuzzed scheme {} for objective `{}`: {} evaluations, {} shrink step{}, \
         score {:.4} (pre-shrink {:.4})\nwrote reproducer to {}",
        cfg.scheme.name(),
        cfg.objective.cli_key(),
        outcome.evals,
        outcome.shrink_steps,
        if outcome.shrink_steps == 1 { "" } else { "s" },
        outcome.score,
        outcome.original_score,
        out.display(),
    );

    if replay {
        // Prove the artifact (not the in-memory case) is what replays: read
        // the file back, parse it, and run it.
        let text = std::fs::read_to_string(&out)
            .map_err(|e| format!("reading {}: {e}", out.display()))?;
        let repro = bfc_experiments::Reproducer::parse(&text)
            .map_err(|e| format!("{}: {e}", out.display()))?;
        let result = repro.replay_auto()?;
        println!("\nreplayed from {}:\n", out.display());
        print_results_table(std::slice::from_ref(&result));
        println!("{}", safety_line(&result));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return fail("missing command");
    };
    // `scenario` and `trace` can exit nonzero *without* a usage error (a
    // divergence found by `trace diff` / `--diff-schemes` is a result, not a
    // misuse), so commands return an exit code on success.
    let result = match command.as_str() {
        "synth" => cmd_synth(rest).map(|()| ExitCode::SUCCESS),
        "stats" => cmd_stats(rest).map(|()| ExitCode::SUCCESS),
        "replay" => cmd_replay(rest).map(|()| ExitCode::SUCCESS),
        "snapshot" => cmd_snapshot(rest).map(|()| ExitCode::SUCCESS),
        "resume" => cmd_resume(rest).map(|()| ExitCode::SUCCESS),
        "serve" => cmd_serve(rest).map(|()| ExitCode::SUCCESS),
        "scenario" => cmd_scenario(rest),
        "trace" => cmd_trace(rest),
        "fuzz" => cmd_fuzz(rest).map(|()| ExitCode::SUCCESS),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => return fail(&format!("unknown command `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => fail(&msg),
    }
}
