//! The parallel experiment driver.
//!
//! The evaluation sweeps many independent (scheme, sweep-point, seed)
//! combinations, and every [`run_experiment`] call is a pure function of its
//! inputs: it builds its own switches, hosts, event queue and RNGs from the
//! `ExperimentConfig` seed, touches no global state, and all of its pieces
//! are `Send`. [`ParallelRunner`] exploits that by fanning jobs across
//! `std::thread` workers.
//!
//! **Determinism contract:** results are collected into a vector indexed by
//! job order, so the output is *bit-identical* at any thread count — only
//! wall-clock time changes. Every figure function routes its runs through
//! this module, which is what makes `BFC_THREADS=8 cargo run --release -p
//! bfc-experiments --bin fig05_main_fct -- --full` both fast and exactly
//! reproducible.

use bfc_net::topology::Topology;
use bfc_workloads::TraceFlow;

use crate::runner::{ExperimentConfig, ExperimentResult};
use crate::sharded::run_experiment_auto;

/// Fans independent jobs across a fixed pool of `std::thread` workers while
/// preserving job order in the results.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    threads: usize,
}

impl ParallelRunner {
    /// A runner using exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ParallelRunner {
            threads: threads.max(1),
        }
    }

    /// A serial runner (one worker, no thread spawns).
    pub fn serial() -> Self {
        ParallelRunner::new(1)
    }

    /// Reads the worker count from the `BFC_THREADS` environment variable,
    /// falling back to the machine's available parallelism. This is the
    /// constructor the figure binaries and examples use: set `BFC_THREADS=1`
    /// to force serial execution, or leave it unset to use every core.
    pub fn from_env() -> Self {
        let threads = std::env::var("BFC_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        ParallelRunner::new(threads)
    }

    /// Number of worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job` for every element of `jobs`, at most `threads` at a time,
    /// and returns the results **in job order** regardless of which worker
    /// finished first — the scheduling is work-stealing by index, the output
    /// is deterministic.
    pub fn run_all<J, R, F>(&self, jobs: &[J], job: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(&J) -> R + Sync,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(jobs.len());
        if workers == 1 {
            // Inline serial path: no spawn overhead, and a direct witness
            // that the parallel path computes exactly the same thing.
            return jobs.iter().map(job).collect();
        }

        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(jobs.len(), || None);
        let slots = std::sync::Mutex::new(slots);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if index >= jobs.len() {
                        break;
                    }
                    let result = job(&jobs[index]);
                    slots
                        .lock()
                        .expect("result mutex poisoned: a worker panicked")
                        [index] = Some(result);
                });
            }
        });

        slots
            .into_inner()
            .expect("result mutex poisoned: a worker panicked")
            .into_iter()
            .map(|slot| slot.expect("every job index was claimed exactly once"))
            .collect()
    }

    /// Runs one experiment per config over a shared topology and trace —
    /// the common "same workload, many schemes/parameters" sweep shape.
    /// Results come back in `configs` order, bit-identical at any thread
    /// count. Each run honours `BFC_SHARDS` (within-run sharding composes
    /// with the across-run fan-out; results stay bit-identical either way).
    pub fn run_experiments(
        &self,
        topo: &Topology,
        trace: &[TraceFlow],
        configs: &[ExperimentConfig],
    ) -> Vec<ExperimentResult> {
        self.run_all(configs, |config| run_experiment_auto(topo, trace, config))
    }
}

impl Default for ParallelRunner {
    fn default() -> Self {
        ParallelRunner::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfc_net::topology::{fat_tree, FatTreeParams};
    use bfc_sim::SimDuration;
    use bfc_workloads::{synthesize, TraceParams, Workload};

    use crate::scheme::Scheme;

    #[test]
    fn run_all_preserves_job_order() {
        for threads in [1, 2, 4, 7] {
            let jobs: Vec<u64> = (0..37).collect();
            let results = ParallelRunner::new(threads).run_all(&jobs, |&j| j * j);
            assert_eq!(results, (0..37).map(|j| j * j).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let results: Vec<u32> = ParallelRunner::new(4).run_all(&[] as &[u32], |&j| j);
        assert!(results.is_empty());
    }

    #[test]
    fn thread_count_is_clamped_to_one() {
        assert_eq!(ParallelRunner::new(0).threads(), 1);
        assert_eq!(ParallelRunner::serial().threads(), 1);
    }

    #[test]
    fn experiments_are_bit_identical_across_thread_counts() {
        let topo = fat_tree(FatTreeParams::tiny());
        let trace = synthesize(
            &topo.hosts(),
            &TraceParams::background_only(
                Workload::Google,
                0.3,
                SimDuration::from_micros(150),
                11,
            ),
        );
        let configs: Vec<ExperimentConfig> = [Scheme::bfc(), Scheme::Dcqcn { window: true, sfq: false }]
            .into_iter()
            .map(|s| ExperimentConfig::new(s, SimDuration::from_micros(150)))
            .collect();
        let serial = ParallelRunner::serial().run_experiments(&topo, &trace, &configs);
        let parallel = ParallelRunner::new(4).run_experiments(&topo, &trace, &configs);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.fct, b.fct, "FCT summaries must be bit-identical");
            assert_eq!(a.completed_flows, b.completed_flows);
            assert_eq!(a.end_time, b.end_time);
            assert_eq!(a.drops, b.drops);
        }
    }
}
