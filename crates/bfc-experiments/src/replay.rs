//! Trace replay: feed an imported (or otherwise pre-built) trace through the
//! experiment driver instead of synthesizing one.
//!
//! [`ReplayTrace`] wraps a flow list loaded from the CSV format of
//! [`bfc_workloads::io`], validates it against the target topology (every
//! flow endpoint must be a real host), derives the measurement horizon from
//! the trace itself, and runs it through [`run_experiment`] — serially or
//! fanned across a [`ParallelRunner`]. Because `run_experiment` is a pure
//! function of `(topology, trace, config)`, a replayed trace produces
//! **bit-identical** results to the in-memory trace it was exported from.

use std::fmt;
use std::path::Path;

use bfc_net::topology::Topology;
use bfc_net::types::NodeId;
use bfc_sim::SimDuration;
use bfc_workloads::io::{import_csv, read_csv_file, CsvError, TraceReadError};
use bfc_workloads::TraceFlow;

use crate::parallel::ParallelRunner;
use crate::runner::{ExperimentConfig, ExperimentResult};
use crate::scheme::Scheme;

/// Why a trace could not be replayed.
#[derive(Debug)]
pub enum ReplayError {
    /// The trace file could not be read.
    Io(std::io::Error),
    /// The trace file failed to parse (line-numbered).
    Csv(CsvError),
    /// The trace contains no flows.
    EmptyTrace,
    /// A flow endpoint is not a host of the replay topology.
    UnknownHost {
        /// Index of the offending flow in the trace.
        flow_index: usize,
        /// The unknown endpoint.
        node: NodeId,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "reading trace: {e}"),
            ReplayError::Csv(e) => write!(f, "parsing trace: {e}"),
            ReplayError::EmptyTrace => write!(f, "trace contains no flows"),
            ReplayError::UnknownHost { flow_index, node } => write!(
                f,
                "flow {flow_index} uses {node:?}, which is not a host of the replay topology"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TraceReadError> for ReplayError {
    fn from(e: TraceReadError) -> Self {
        match e {
            TraceReadError::Io(e) => ReplayError::Io(e),
            TraceReadError::Csv(e) => ReplayError::Csv(e),
        }
    }
}

impl From<CsvError> for ReplayError {
    fn from(e: CsvError) -> Self {
        ReplayError::Csv(e)
    }
}

/// A trace ready to be replayed through the experiment driver.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayTrace {
    flows: Vec<TraceFlow>,
}

impl ReplayTrace {
    /// Wraps an in-memory flow list (must be non-empty).
    pub fn from_flows(flows: Vec<TraceFlow>) -> Result<Self, ReplayError> {
        if flows.is_empty() {
            return Err(ReplayError::EmptyTrace);
        }
        Ok(ReplayTrace { flows })
    }

    /// Parses a trace from CSV text (see [`bfc_workloads::io`]).
    pub fn from_csv_str(text: &str) -> Result<Self, ReplayError> {
        ReplayTrace::from_flows(import_csv(text)?)
    }

    /// Reads and parses a trace CSV file.
    pub fn from_csv_path<P: AsRef<Path>>(path: P) -> Result<Self, ReplayError> {
        ReplayTrace::from_flows(read_csv_file(path)?)
    }

    /// The replayed flows, in arrival order.
    pub fn flows(&self) -> &[TraceFlow] {
        &self.flows
    }

    /// The measurement window the trace covers: the last arrival instant
    /// (clamped up to 1 µs so degenerate all-at-zero traces still get a
    /// non-empty window). Use it where a synthetic trace would use its
    /// `TraceParams::duration`.
    pub fn horizon(&self) -> SimDuration {
        let last = self
            .flows
            .iter()
            .map(|f| f.start)
            .max()
            .expect("ReplayTrace is never empty");
        last.saturating_since(bfc_sim::SimTime::ZERO)
            .max(SimDuration::from_micros(1))
    }

    /// A paper-default [`ExperimentConfig`] for this trace: the horizon is
    /// derived from the trace instead of from `TraceParams`.
    pub fn config(&self, scheme: Scheme) -> ExperimentConfig {
        ExperimentConfig::new(scheme, self.horizon())
    }

    /// Checks that every flow endpoint is a host of `topo`.
    pub fn validate(&self, topo: &Topology) -> Result<(), ReplayError> {
        let hosts: std::collections::HashSet<NodeId> = topo.hosts().into_iter().collect();
        for (flow_index, f) in self.flows.iter().enumerate() {
            for node in [f.src, f.dst] {
                if !hosts.contains(&node) {
                    return Err(ReplayError::UnknownHost { flow_index, node });
                }
            }
        }
        Ok(())
    }

    /// Validates against `topo` and runs one experiment over the replayed
    /// trace — exactly [`run_experiment`] on the imported flows (sharded
    /// when `BFC_SHARDS` asks for it; results are identical either way).
    pub fn run(
        &self,
        topo: &Topology,
        config: &ExperimentConfig,
    ) -> Result<ExperimentResult, ReplayError> {
        self.validate(topo)?;
        Ok(crate::sharded::run_experiment_auto(topo, &self.flows, config))
    }

    /// Validates once, then fans one run per config across `runner` —
    /// results in config order, bit-identical at any thread count.
    pub fn run_all(
        &self,
        topo: &Topology,
        configs: &[ExperimentConfig],
        runner: &ParallelRunner,
    ) -> Result<Vec<ExperimentResult>, ReplayError> {
        self.validate(topo)?;
        Ok(runner.run_experiments(topo, &self.flows, configs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_experiment;
    use bfc_net::topology::{fat_tree, FatTreeParams};
    use bfc_sim::SimTime;
    use bfc_workloads::{export_csv, synthesize, TraceParams, Workload};

    fn small_trace(topo: &Topology) -> Vec<TraceFlow> {
        synthesize(
            &topo.hosts(),
            &TraceParams::background_only(
                Workload::Google,
                0.3,
                SimDuration::from_micros(120),
                5,
            ),
        )
    }

    #[test]
    fn replay_of_exported_csv_matches_in_memory_run() {
        let topo = fat_tree(FatTreeParams::tiny());
        let trace = small_trace(&topo);
        let replay = ReplayTrace::from_csv_str(&export_csv(&trace)).expect("round trip");
        assert_eq!(replay.flows(), &trace[..]);
        let config = ExperimentConfig::new(Scheme::bfc(), SimDuration::from_micros(120));
        let original = run_experiment(&topo, &trace, &config);
        let replayed = replay.run(&topo, &config).expect("valid trace");
        assert_eq!(original.fct, replayed.fct);
        assert_eq!(original.records, replayed.records);
        assert_eq!(original.end_time, replayed.end_time);
    }

    #[test]
    fn horizon_tracks_the_last_arrival() {
        let topo = fat_tree(FatTreeParams::tiny());
        let trace = small_trace(&topo);
        let last = trace.iter().map(|f| f.start).max().expect("non-empty");
        let replay = ReplayTrace::from_flows(trace).expect("non-empty");
        assert_eq!(
            replay.horizon(),
            last.saturating_since(SimTime::ZERO).max(SimDuration::from_micros(1))
        );
    }

    #[test]
    fn unknown_hosts_and_empty_traces_are_rejected() {
        let topo = fat_tree(FatTreeParams::tiny());
        assert!(matches!(
            ReplayTrace::from_flows(Vec::new()),
            Err(ReplayError::EmptyTrace)
        ));
        let bogus = vec![TraceFlow {
            src: NodeId(9_999),
            dst: topo.hosts()[0],
            size_bytes: 1_000,
            start: SimTime::ZERO,
            is_incast: false,
        }];
        let replay = ReplayTrace::from_flows(bogus).expect("non-empty");
        let err = replay
            .run(&topo, &ExperimentConfig::new(Scheme::bfc(), SimDuration::from_micros(10)))
            .expect_err("bogus node id");
        assert!(matches!(
            err,
            ReplayError::UnknownHost { flow_index: 0, node: NodeId(9_999) }
        ));
    }
}
