//! Service mode: deterministic checkpoint/restore and streaming ingest.
//!
//! # Snapshots
//!
//! [`snapshot_experiment`] runs an experiment up to an instant `at` and
//! serializes the complete simulation state — calendar queues, switches
//! (PhysQueues, shared buffers, pause state, policy state and RNG streams),
//! hosts (sender/receiver flow tables and congestion-control state), link
//! state, metrics collectors and the recovery and safety trackers — into a
//! versioned,
//! length-prefixed, checksummed, std-only binary blob
//! ([`bfc_sim::snapshot`]). [`resume_experiment`] rebuilds the run from the
//! same inputs, overlays the saved state and runs to completion.
//!
//! The contract is **bit-identity**: resuming a snapshot taken at any point
//! produces an [`ExperimentResult`] identical field-for-field (floats
//! compared by bits) to the uninterrupted run, for the serial engine and for
//! the sharded engine at the snapshot's shard count.
//!
//! *Serial runs* can stop anywhere: [`bfc_sim::run_until`] processes events
//! in a deterministic total order, so "events with `t <= at`" is a prefix of
//! the uninterrupted run's pop sequence and the remaining events are exactly
//! the pending set. *Sharded runs* stop at the first **epoch barrier** whose
//! next window would begin after `at`: at a barrier every outbox is empty
//! and each shard's state is a pure function of the epochs completed so far,
//! so resuming re-derives the identical subsequent windows from queue state
//! alone. The snapshot therefore cuts along the same seams the conservative
//! driver already synchronizes on — no new synchronization invariants.
//!
//! A snapshot stores a fingerprint of everything it does *not* serialize
//! (topology shape, trace, configuration, shard count); resuming against
//! different inputs is rejected as corruption rather than silently
//! diverging.
//!
//! # Streaming ingest
//!
//! [`serve_experiment`] drives a live simulation from an
//! [`IngestSource`] (a tailed CSV file or a TCP socket — see
//! [`bfc_workloads::ingest`]) instead of a pre-materialized trace. Flows are
//! admitted under an inflight cap: while `admitted - completed` is at the
//! cap, the driver advances the simulation instead of pulling from the
//! source, which is exactly the backpressure signal (an unread file costs
//! nothing; an unread socket closes the feeder's TCP window).

use std::sync::Arc;

use bfc_net::event::{FifoSink, NetEvent};
use bfc_net::routing::RoutingTables;
use bfc_net::topology::Topology;
use bfc_sim::shard::{run_conservative, Boundary, ShardHandler};
use bfc_sim::snapshot::{self, fnv1a64, SnapError, SnapReader, SnapWriter};
use bfc_sim::{run_until, EventQueue, SimDuration, SimTime};
use bfc_workloads::ingest::{IngestError, IngestSource};
use bfc_workloads::TraceFlow;

use crate::runner::{
    assemble_result, build_flow_meta, build_flow_metas, build_sim, seed_samples, seed_send,
    ExperimentConfig,
    ExperimentResult, FabricSim, Frame,
};
use crate::sharded::{build_workers, epoch_lookahead, plan_for, ShardWorker};

/// Magic bytes identifying a BFC snapshot container.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"BFCSNAP\0";

/// Current snapshot payload format version. Bump on any layout change; old
/// versions are rejected with [`SnapError::BadVersion`] rather than
/// misinterpreted. Version 4 appended the observability counters to the
/// flow-table and calendar-queue states. Version 5 appended the native
/// histograms: queue-depth-at-enqueue inside each switch's state and the
/// per-sim FCT slowdown histogram after the safety tracker.
pub const SNAPSHOT_VERSION: u32 = 5;

/// Hashes every run input the snapshot does *not* serialize — topology
/// shape, trace, configuration and shard count — so a resume against
/// different inputs fails loudly instead of silently diverging.
fn fingerprint(
    topo: &Topology,
    trace: &[TraceFlow],
    config: &ExperimentConfig,
    num_shards: usize,
) -> u64 {
    let mut w = SnapWriter::new();
    // Scheme and fault schedule are hashed via their Debug forms: both are
    // plain data enums whose Debug output covers every field.
    w.put_str(&format!("{:?}", config.scheme));
    w.put_u64(config.seed);
    w.put_u32(config.mtu);
    w.put_usize(config.queues_per_port);
    w.put_u64(config.buffer_bytes);
    w.put_u64(config.horizon.as_picos());
    w.put_u64(config.drain.as_picos());
    w.put_u64(config.sample_interval.as_picos());
    w.put_str(&format!("{:?}", config.dynamics));
    w.put_usize(topo.num_nodes());
    w.put_usize(topo.hosts().len());
    w.put_usize(num_shards);
    w.put_usize(trace.len());
    for t in trace {
        w.put_u32(t.src.0);
        w.put_u32(t.dst.0);
        w.put_u64(t.size_bytes);
        w.put_u64(t.start.as_picos());
        w.put_bool(t.is_incast);
    }
    fnv1a64(&w.into_bytes())
}

/// Serializes one sim's mutable state (everything not rebuilt from the run
/// inputs). The immutable frame — topology, flow metadata, configs — is
/// reconstructed on resume and checked via the fingerprint.
fn save_sim(sim: &FabricSim<'_>, w: &mut SnapWriter) {
    sim.link_state.save_state(w);
    w.put_usize(sim.switches.len());
    for slot in &sim.switches {
        w.put_bool(slot.is_some());
        if let Some(sw) = slot {
            sw.save_state(w);
        }
    }
    w.put_usize(sim.hosts.len());
    for slot in &sim.hosts {
        w.put_bool(slot.is_some());
        if let Some(h) = slot {
            h.save_state(w);
        }
    }
    w.put_usize(sim.flow_completed.len());
    for done in &sim.flow_completed {
        w.put_bool(done.is_some());
        if let Some(t) = done {
            w.put_u64(t.as_picos());
        }
    }
    sim.occupancy.save_state(w);
    w.put_usize(sim.peak_queue_samples.len());
    for &v in &sim.peak_queue_samples {
        w.put_f64(v);
    }
    w.put_usize(sim.occupied_queue_samples.len());
    for &v in &sim.occupied_queue_samples {
        w.put_f64(v);
    }
    w.put_usize(sim.completed);
    sim.recovery.save_state(w);
    sim.safety.save_state(w);
    sim.fct_hist.save_state(w);
}

/// Overlays saved mutable state onto a freshly built sim. The sim must have
/// been built from the same inputs with the same ownership predicate — the
/// fingerprint guarantees the former, slot-presence checks the latter.
fn restore_sim(
    sim: &mut FabricSim<'_>,
    frame: &Frame,
    r: &mut SnapReader<'_>,
) -> Result<(), SnapError> {
    sim.link_state.restore_state(r)?;
    if r.get_usize()? != sim.switches.len() {
        return Err(SnapError::Corrupt("switch count mismatch"));
    }
    for slot in sim.switches.iter_mut() {
        match (r.get_bool()?, slot.as_mut()) {
            (true, Some(sw)) => sw.restore_state(r)?,
            (false, None) => {}
            _ => return Err(SnapError::Corrupt("switch ownership mismatch")),
        }
    }
    if r.get_usize()? != sim.hosts.len() {
        return Err(SnapError::Corrupt("host count mismatch"));
    }
    for slot in sim.hosts.iter_mut() {
        match (r.get_bool()?, slot.as_mut()) {
            (true, Some(h)) => h.restore_state(r)?,
            (false, None) => {}
            _ => return Err(SnapError::Corrupt("host ownership mismatch")),
        }
    }
    if r.get_usize()? != sim.flow_completed.len() {
        return Err(SnapError::Corrupt("flow count mismatch"));
    }
    for done in sim.flow_completed.iter_mut() {
        *done = if r.get_bool()? {
            Some(SimTime::from_picos(r.get_u64()?))
        } else {
            None
        };
    }
    sim.occupancy = bfc_metrics::OccupancySeries::restore_state(r)?;
    let n = r.get_count(8)?;
    sim.peak_queue_samples = Vec::with_capacity(n);
    for _ in 0..n {
        sim.peak_queue_samples.push(r.get_f64()?);
    }
    let n = r.get_count(8)?;
    sim.occupied_queue_samples = Vec::with_capacity(n);
    for _ in 0..n {
        sim.occupied_queue_samples.push(r.get_f64()?);
    }
    sim.completed = r.get_usize()?;
    if sim.completed > sim.flow_completed.len() {
        return Err(SnapError::Corrupt("completed count exceeds flow count"));
    }
    sim.recovery = bfc_metrics::RecoveryTracker::restore_state(r)?;
    sim.safety = bfc_metrics::SafetyTracker::restore_state(r)?;
    sim.fct_hist = bfc_metrics::Hist::restore_state(r)?;
    // Routing tables are derived state: recompute them from the restored
    // link-state instead of serializing O(nodes^2) next-hop tables.
    sim.routes = if sim.link_state.all_up() {
        frame.routes.clone()
    } else {
        let ls = &sim.link_state;
        RoutingTables::compute_filtered(sim.topo, |n, p| ls.is_up(n, p))
    };
    Ok(())
}

/// The sequential epoch loop of [`bfc_sim::shard::run_conservative`], with
/// one extra exit: it stops at the first barrier whose next window would
/// begin after `stop_after`. At a barrier all outboxes are empty, so the
/// per-shard queues and sims are the complete simulation state — the safe
/// cut for a snapshot.
fn run_epochs_until<S: ShardHandler>(
    shards: &mut [S],
    lookahead: SimDuration,
    stop_after: SimTime,
    deadline: SimTime,
) {
    assert!(
        !lookahead.is_zero(),
        "conservative synchronization needs a positive lookahead"
    );
    let n = shards.len();
    loop {
        let Some(t0) = shards.iter().filter_map(|s| s.next_time()).min() else {
            return;
        };
        if t0 > deadline || t0 > stop_after {
            return;
        }
        let window_end = t0 + lookahead;
        for shard in shards.iter_mut() {
            shard.run_window(window_end, deadline);
        }
        let outboxes: Vec<Vec<Vec<Boundary<S::Event>>>> =
            shards.iter_mut().map(|s| s.take_outboxes()).collect();
        for (src, rows) in outboxes.into_iter().enumerate() {
            debug_assert_eq!(rows.len(), n, "outbox row per destination shard");
            for (dest, batch) in rows.into_iter().enumerate() {
                debug_assert!(dest != src || batch.is_empty(), "no self-addressed batches");
                if !batch.is_empty() {
                    shards[dest].deliver(batch);
                }
            }
        }
    }
}

fn save_worker(wk: &ShardWorker<'_>, w: &mut SnapWriter) {
    w.put_u64(wk.last.as_picos());
    wk.queue.save_state(w, |w, e: &NetEvent| e.save_state(w));
    save_sim(&wk.sim, w);
}

/// Runs the experiment up to `at` (clamped to the run deadline) and returns
/// the serialized snapshot. `num_shards <= 1` snapshots the serial engine;
/// larger counts snapshot the sharded engine at the first epoch barrier
/// past `at`.
///
/// Panics on invalid inputs (bad fault schedule, unpartitionable topology),
/// exactly like the run entry points.
pub fn snapshot_experiment(
    topo: &Topology,
    trace: &[TraceFlow],
    config: &ExperimentConfig,
    at: SimTime,
    num_shards: usize,
) -> Vec<u8> {
    let requested = num_shards.max(1);
    let deadline = SimTime::ZERO + config.horizon + config.drain;
    let stop_after = at.min(deadline);
    let mut payload = SnapWriter::new();

    if requested == 1 {
        // Serial engine: replicate `run_experiment` up to `stop_after`.
        if let Err(e) = config.dynamics.validate(topo) {
            panic!("invalid fault schedule for this topology: {e}");
        }
        payload.put_u64(fingerprint(topo, trace, config, 1));
        payload.put_u64(stop_after.as_picos());
        payload.put_usize(1);
        let frame = Frame::new(topo, config);
        let flows = Arc::new(build_flow_metas(topo, trace, config, &frame));
        let mut sim = build_sim(topo, flows, config, &frame, |_| true, true);
        let fifo = config.rank_mode.is_fifo();
        let mut queue = EventQueue::with_capacity(trace.len() * 4 + 16);
        for (i, t) in trace.iter().enumerate() {
            seed_send(&mut queue, fifo, t.start, NetEvent::FlowArrival { index: i });
        }
        seed_samples(&mut queue, fifo, config);
        for (index, event) in config.dynamics.events().iter().enumerate() {
            seed_send(&mut queue, fifo, event.at, NetEvent::NetworkDynamics { index });
        }
        let last = run_until(&mut sim, &mut queue, stop_after);
        payload.put_u64(last.as_picos());
        queue.save_state(&mut payload, |w, e: &NetEvent| e.save_state(w));
        save_sim(&sim, &mut payload);
    } else {
        let plan = plan_for(topo, trace, config, requested);
        payload.put_u64(fingerprint(topo, trace, config, plan.num_shards()));
        payload.put_u64(stop_after.as_picos());
        payload.put_usize(plan.num_shards());
        let frame = Frame::new(topo, config);
        let flows = Arc::new(build_flow_metas(topo, trace, config, &frame));
        let lookahead = epoch_lookahead(&plan, config);
        let mut workers = build_workers(topo, trace, config, &frame, &flows, &plan);
        run_epochs_until(&mut workers, lookahead, stop_after, deadline);
        for wk in &workers {
            save_worker(wk, &mut payload);
        }
    }
    snapshot::finalize(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &payload.into_bytes())
}

/// Restores a snapshot taken by [`snapshot_experiment`] against the same
/// inputs and runs the experiment to completion. The result is bit-identical
/// to the uninterrupted run at the snapshot's shard count (which is itself
/// bit-identical to the serial run).
pub fn resume_experiment(
    topo: &Topology,
    trace: &[TraceFlow],
    config: &ExperimentConfig,
    bytes: &[u8],
) -> Result<ExperimentResult, SnapError> {
    let payload = snapshot::open(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, bytes)?;
    let mut r = SnapReader::new(payload);
    let stored_fp = r.get_u64()?;
    let _at = SimTime::from_picos(r.get_u64()?);
    let num_shards = r.get_usize()?;
    if !(1..=4096).contains(&num_shards) {
        return Err(SnapError::Corrupt("implausible shard count"));
    }
    if stored_fp != fingerprint(topo, trace, config, num_shards) {
        return Err(SnapError::Corrupt(
            "snapshot was taken for different inputs (topology, trace, config or shard count)",
        ));
    }
    let deadline = SimTime::ZERO + config.horizon + config.drain;
    let frame = Frame::new(topo, config);
    let flows = Arc::new(build_flow_metas(topo, trace, config, &frame));

    if num_shards == 1 {
        let mut sim = build_sim(topo, Arc::clone(&flows), config, &frame, |_| true, true);
        let last = SimTime::from_picos(r.get_u64()?);
        let mut queue = EventQueue::restore_state(&mut r, |r| NetEvent::restore_state(r))?;
        restore_sim(&mut sim, &frame, &mut r)?;
        r.expect_end()?;
        let resumed = run_until(&mut sim, &mut queue, deadline);
        // `run_until` returns ZERO when every event was already processed
        // before the snapshot; the run's end is whichever came later.
        let end_time = last.max(resumed);
        let mut result = assemble_result(topo, trace, config, &frame, vec![sim], end_time);
        // The queue counter was restored from the snapshot, so the resumed
        // run reports the same lifetime total as the uninterrupted one.
        result.record_engine_counters(queue.overflow_pushes());
        Ok(result)
    } else {
        let plan = plan_for(topo, trace, config, num_shards);
        if plan.num_shards() != num_shards {
            return Err(SnapError::Corrupt("shard plan does not match snapshot"));
        }
        let lookahead = epoch_lookahead(&plan, config);
        let mut workers = build_workers(topo, trace, config, &frame, &flows, &plan);
        for wk in workers.iter_mut() {
            wk.last = SimTime::from_picos(r.get_u64()?);
            wk.queue = EventQueue::restore_state(&mut r, |r| NetEvent::restore_state(r))?;
            restore_sim(&mut wk.sim, &frame, &mut r)?;
        }
        r.expect_end()?;
        let parallel = workers.len() > 1;
        // `run_conservative` folds in each shard's restored `last`, so a
        // snapshot taken after the final event still reports the right end.
        let (end_time, epochs) = run_conservative(
            &mut workers,
            lookahead,
            deadline,
            parallel,
            config.batch_policy(),
        );
        let overflow_pushes: u64 = workers.iter().map(|w| w.queue.overflow_pushes()).sum();
        let sims: Vec<FabricSim<'_>> = workers.into_iter().map(|w| w.sim).collect();
        let mut result = assemble_result(topo, trace, config, &frame, sims, end_time);
        result.epochs = epochs;
        result.record_engine_counters(overflow_pushes);
        Ok(result)
    }
}

/// A shared slot holding the latest rendered metrics exposition, so a
/// scrape thread can serve the text while [`serve_experiment_with`] keeps
/// driving the simulation. Cloning shares the slot.
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    text: Arc<std::sync::Mutex<String>>,
}

impl MetricsHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the published exposition with a fresh render of `registry`.
    pub fn publish(&self, registry: &bfc_metrics::MetricsRegistry) {
        *self.text.lock().expect("metrics hub poisoned") = registry.expose();
    }

    /// The most recently published exposition text (empty before the first
    /// publish).
    pub fn render(&self) -> String {
        self.text.lock().expect("metrics hub poisoned").clone()
    }
}

/// Builds the live (mid-run) registry for service mode: the per-switch
/// forwarding counters plus the ingest admission state. Cheap enough to
/// rebuild on every admission.
fn live_registry(sim: &FabricSim<'_>, admitted: usize) -> bfc_metrics::MetricsRegistry {
    let mut registry = bfc_metrics::MetricsRegistry::new();
    for sw in sim.switches.iter().flatten() {
        crate::runner::record_switch_counters(&mut registry, sw);
    }
    registry.add_counter("bfc_flows_admitted", admitted as u64);
    registry.add_counter("bfc_flows_completed", sim.completed as u64);
    registry
}

/// What [`serve_experiment`] produced.
#[derive(Debug)]
pub struct ServeReport {
    /// The experiment result over every admitted flow.
    pub result: ExperimentResult,
    /// Number of flows admitted from the source (equals
    /// `result.total_flows`).
    pub admitted: usize,
}

/// Drives a live simulation from a streaming [`IngestSource`] under an
/// inflight cap (serial engine).
///
/// Flows are admitted in arrival order; a flow whose start time has already
/// passed (the simulation outran the feeder) is admitted "now" — at the last
/// processed instant — since the calendar queue cannot schedule into the
/// past. While `admitted - completed >= inflight_cap` the driver advances
/// the simulation instead of pulling, so a slow consumer never reads ahead:
/// that is the backpressure the source contract relies on.
///
/// The run ends when the source is exhausted and the queue has drained (or
/// the configured horizon + drain deadline passes).
pub fn serve_experiment(
    topo: &Topology,
    config: &ExperimentConfig,
    source: &mut dyn IngestSource,
    inflight_cap: usize,
) -> Result<ServeReport, IngestError> {
    serve_experiment_with(topo, config, source, inflight_cap, None)
}

/// [`serve_experiment`] with live metrics: when `metrics` is given, the
/// driver publishes a fresh exposition to the hub on every admission and
/// once more at the end of the run, so a concurrent scrape thread always
/// reads a consistent (if slightly stale) snapshot. Publishing never feeds
/// back into the simulation, so results are unchanged by observation.
pub fn serve_experiment_with(
    topo: &Topology,
    config: &ExperimentConfig,
    source: &mut dyn IngestSource,
    inflight_cap: usize,
    metrics: Option<&MetricsHub>,
) -> Result<ServeReport, IngestError> {
    assert!(inflight_cap >= 1, "inflight cap must be at least 1");
    if let Err(e) = config.dynamics.validate(topo) {
        panic!("invalid fault schedule for this topology: {e}");
    }
    let frame = Frame::new(topo, config);
    let mut sim = build_sim(topo, Arc::new(Vec::new()), config, &frame, |_| true, true);
    let fifo = config.rank_mode.is_fifo();
    let mut queue = EventQueue::with_capacity(1024);
    seed_samples(&mut queue, fifo, config);
    for (index, event) in config.dynamics.events().iter().enumerate() {
        seed_send(&mut queue, fifo, event.at, NetEvent::NetworkDynamics { index });
    }
    let deadline = SimTime::ZERO + config.horizon + config.drain;
    let mut admitted: Vec<TraceFlow> = Vec::new();
    let mut last = SimTime::ZERO;
    if let Some(hub) = metrics {
        // Publish the zeroed registry up front so a scrape racing the first
        // admission still reads well-formed exposition text.
        hub.publish(&live_registry(&sim, 0));
    }

    loop {
        // Backpressure: while the inflight window is full, make progress
        // instead of pulling. If the sim cannot progress (nothing left to
        // run before the deadline), admission resumes — the stuck flows can
        // never complete, and starving the feeder would not change that.
        while admitted.len() - sim.completed >= inflight_cap {
            match queue.peek_time() {
                Some(t) if t <= deadline => {
                    let (now, event) = queue.pop().expect("peeked event exists");
                    last = now;
                    if fifo {
                        sim.dispatch(now, event, &mut FifoSink(&mut queue));
                    } else {
                        sim.dispatch(now, event, &mut queue);
                    }
                }
                _ => break,
            }
        }
        let Some(mut flow) = source.next_flow()? else {
            break;
        };
        // The feeder's timestamps are admission *requests*; a start already
        // in the simulated past becomes "now".
        flow.start = flow.start.max(last);
        let index = admitted.len();
        let meta = build_flow_meta(topo, index, &flow, config, &frame);
        Arc::get_mut(&mut sim.flows)
            .expect("serve sim uniquely owns its flow table")
            .push(meta);
        sim.flow_completed.push(None);
        seed_send(&mut queue, fifo, flow.start, NetEvent::FlowArrival { index });
        admitted.push(flow);
        if let Some(hub) = metrics {
            hub.publish(&live_registry(&sim, admitted.len()));
        }
    }

    let drained = run_until(&mut sim, &mut queue, deadline);
    let end_time = last.max(drained);
    let mut result = assemble_result(topo, &admitted, config, &frame, vec![sim], end_time);
    result.record_engine_counters(queue.overflow_pushes());
    if let Some(hub) = metrics {
        hub.publish(&result.registry);
    }
    let count = admitted.len();
    Ok(ServeReport {
        result,
        admitted: count,
    })
}
