//! One module per paper table/figure.
//!
//! Every figure exposes a `run(&Scale) -> String` function that regenerates
//! the figure's rows/series and returns them as a formatted text table. The
//! `src/bin/figNN_*` binaries print the result; the Criterion benches in
//! `bfc-bench` call the same functions at [`Scale::quick`] so the whole
//! evaluation can be exercised in minutes.
//!
//! `Scale::quick()` shrinks the topology and trace so each experiment takes
//! well under a second; `Scale::full()` uses the paper's topologies (T1/T2,
//! 100 Gbps, 12 MB buffers) and longer traces. Absolute numbers differ from
//! the paper in either mode (see `EXPERIMENTS.md`), but relative orderings
//! hold.

use bfc_core::BfcConfig;
use bfc_net::topology::{cross_dc, fat_tree, CrossDcParams, FatTreeParams, Topology};
use bfc_net::types::NodeId;
use bfc_sim::SimDuration;
use bfc_workloads::{
    concurrent_long_flows, cross_dc_trace, incast_trace, long_lived_per_receiver, synthesize,
    ArrivalShape, IncastSchedule, TraceFlow, TraceParams, Workload,
};

use crate::parallel::ParallelRunner;
use crate::runner::{ExperimentConfig, ExperimentResult};
use crate::sharded::run_experiment_auto;
use crate::scheme::Scheme;

/// The worker pool shared by every figure: thread count from `BFC_THREADS`
/// or the machine's parallelism. Results are bit-identical at any setting.
fn runner() -> ParallelRunner {
    ParallelRunner::from_env()
}

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Use the paper's full topologies and longer traces.
    pub full: bool,
    /// RNG seed shared by all figures.
    pub seed: u64,
    /// Background arrival shape for the synthetic workloads (paper default:
    /// log-normal σ = 2; `--bursty` switches to Markov-modulated on/off).
    pub arrivals: ArrivalShape,
    /// Incast event schedule (paper default: periodic; `--lognormal-incast`
    /// switches to log-normal inter-event gaps).
    pub incast_schedule: IncastSchedule,
}

impl Scale {
    /// Small topology, short traces: every figure finishes in seconds.
    pub fn quick() -> Self {
        Scale {
            full: false,
            seed: 1,
            arrivals: ArrivalShape::paper_default(),
            incast_schedule: IncastSchedule::paper_default(),
        }
    }

    /// The paper's topologies and parameters (minutes per figure; run with
    /// `--release`).
    pub fn full() -> Self {
        Scale {
            full: true,
            ..Scale::quick()
        }
    }

    /// Parses process arguments: `--full` switches to full scale, `--bursty`
    /// to on/off background arrivals, `--lognormal-incast` to log-normal
    /// incast inter-event gaps, and `--shards N` routes every run through
    /// the sharded engine (equivalent to setting `BFC_SHARDS=N`; results are
    /// bit-identical at any shard count).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = if args.iter().any(|a| a == "--full") {
            Scale::full()
        } else {
            Scale::quick()
        };
        if args.iter().any(|a| a == "--bursty") {
            scale.arrivals = ArrivalShape::bursty_default();
        }
        if args.iter().any(|a| a == "--lognormal-incast") {
            scale.incast_schedule = IncastSchedule::LogNormalGaps { sigma: 1.0 };
        }
        if let Some(i) = args.iter().position(|a| a == "--shards") {
            let value = args.get(i + 1).map(String::as_str).unwrap_or("");
            if let Err(e) = crate::sharded::set_shards_env(value) {
                panic!("{e}");
            }
        }
        scale
    }

    /// The T1-like topology used by the headline figures.
    pub fn t1(&self) -> Topology {
        if self.full {
            fat_tree(FatTreeParams::t1())
        } else {
            fat_tree(FatTreeParams::tiny())
        }
    }

    /// The T2-like topology used by the smaller experiments.
    pub fn t2(&self) -> Topology {
        if self.full {
            fat_tree(FatTreeParams::t2())
        } else {
            fat_tree(FatTreeParams::tiny())
        }
    }

    /// Trace duration (the measurement window).
    pub fn duration(&self) -> SimDuration {
        if self.full {
            SimDuration::from_millis(4)
        } else {
            SimDuration::from_micros(300)
        }
    }

    /// Aggregate incast size per event, scaled down in quick mode so one
    /// event does not dominate the short trace.
    pub fn incast_bytes(&self) -> u64 {
        if self.full {
            20_000_000
        } else {
            500_000
        }
    }

    /// Incast fan-in for the background+incast workloads.
    pub fn incast_fan_in(&self) -> usize {
        if self.full {
            100
        } else {
            6
        }
    }
}

/// The standard background + incast trace of Figs. 5a/6/7/12/13/14.
fn standard_trace(scale: &Scale, topo: &Topology, workload: Workload, load: f64, incast: f64) -> Vec<TraceFlow> {
    let params = TraceParams {
        workload,
        load,
        incast_load: incast,
        incast_fan_in: scale.incast_fan_in(),
        incast_total_bytes: scale.incast_bytes(),
        duration: scale.duration(),
        host_gbps: topo.host_uplink(topo.hosts()[0]).link.rate_gbps,
        seed: scale.seed,
        arrivals: scale.arrivals,
        incast_schedule: scale.incast_schedule,
    };
    synthesize(&topo.hosts(), &params)
}

fn config_for(scale: &Scale, scheme: Scheme) -> ExperimentConfig {
    ExperimentConfig::new(scheme, scale.duration()).with_seed(scale.seed)
}

fn p99_line(result: &ExperimentResult) -> String {
    let mut line = format!("{:<16}", result.scheme);
    for b in &result.fct.buckets {
        line.push_str(&format!(" {:>12.2}", b.p99));
    }
    line.push('\n');
    line
}

fn bucket_header(result: &ExperimentResult) -> String {
    let mut line = format!("{:<16}", "scheme \\ size");
    for b in &result.fct.buckets {
        line.push_str(&format!(" {:>12}", b.bucket.label()));
    }
    line.push('\n');
    line
}

/// Runs a set of schemes on one trace and renders the p99-slowdown-per-bucket
/// comparison table the FCT figures use.
fn fct_comparison(scale: &Scale, topo: &Topology, trace: &[TraceFlow], schemes: Vec<Scheme>, title: &str) -> String {
    let mut out = format!("{title}\n");
    let configs: Vec<ExperimentConfig> = schemes
        .into_iter()
        .map(|scheme| config_for(scale, scheme))
        .collect();
    let results = runner().run_experiments(topo, trace, &configs);
    if let Some(first) = results.first() {
        out.push_str(&bucket_header(first));
    }
    for r in &results {
        out.push_str(&p99_line(r));
    }
    out.push_str("(99th-percentile FCT slowdown per flow-size bucket; non-incast flows)\n");
    out
}

/// Figure 1: hardware trends for top-of-the-line Broadcom switches. Static
/// data transcribed from the paper; included so the full set of figures can
/// be regenerated from one place.
pub mod fig01 {
    /// Returns the hardware-trend table.
    pub fn run() -> String {
        let rows = [
            ("Trident2", 2012, 1.28, 12.0),
            ("Tomahawk", 2014, 3.2, 16.0),
            ("Tomahawk2", 2016, 6.4, 42.0),
            ("Tomahawk3", 2018, 12.8, 64.0),
        ];
        let mut out = String::from(
            "Fig 1: switch capacity vs buffer (Broadcom)\nchip         year  capacity(Tbps)  buffer(MB)  buffer/capacity(us)\n",
        );
        for (chip, year, tbps, mb) in rows {
            let us = mb * 8.0 / (tbps * 1e3) * 1e3;
            out.push_str(&format!(
                "{chip:<12} {year}  {tbps:>14.2}  {mb:>10.1}  {us:>19.1}\n"
            ));
        }
        out
    }
}

/// Figure 2: CDF of switch buffer occupancy for DCQCN (PFC off) as the link
/// speed grows, at constant utilization.
pub mod fig02 {
    use super::*;

    /// Runs the link-speed sweep and reports occupancy percentiles.
    pub fn run(scale: &Scale) -> String {
        let speeds = [10.0, 40.0, 100.0];
        let mut out = String::from(
            "Fig 2: DCQCN buffer occupancy vs link speed (no PFC)\nspeed(Gbps)   p50(MB)   p90(MB)   p99(MB)   max(MB)\n",
        );
        // Each sweep point builds its own topology and trace, so the whole
        // point is an independent job for the parallel runner.
        let results = runner().run_all(&speeds, |&gbps| {
            let params = if scale.full {
                FatTreeParams::t2_at_rate(gbps)
            } else {
                FatTreeParams {
                    host_link: bfc_net::Link::new(gbps, SimDuration::from_micros(1)),
                    fabric_link: bfc_net::Link::new(gbps, SimDuration::from_micros(1)),
                    ..FatTreeParams::tiny()
                }
            };
            let topo = fat_tree(params);
            let trace = {
                let p = TraceParams {
                    workload: Workload::Google,
                    load: 0.70,
                    incast_load: 0.05,
                    incast_fan_in: scale.incast_fan_in(),
                    incast_total_bytes: scale.incast_bytes(),
                    duration: scale.duration(),
                    host_gbps: gbps,
                    seed: scale.seed,
                    arrivals: scale.arrivals,
                    incast_schedule: scale.incast_schedule,
                };
                synthesize(&topo.hosts(), &p)
            };
            let scheme = Scheme::Dcqcn { window: false, sfq: false };
            let mut config = config_for(scale, scheme);
            // The figure runs without PFC so buffers are free to grow.
            config.buffer_bytes = u64::MAX;
            run_experiment_auto(&topo, &trace, &config)
        });
        for (gbps, result) in speeds.iter().zip(&results) {
            out.push_str(&format!(
                "{gbps:>10.0}  {:>8.3}  {:>8.3}  {:>8.3}  {:>8.3}\n",
                result.occupancy.percentile_bytes(50.0) / 1e6,
                result.occupancy.percentile_bytes(90.0) / 1e6,
                result.occupancy.percentile_bytes(99.0) / 1e6,
                result.occupancy.max_bytes() / 1e6,
            ));
        }
        out.push_str("(higher link speed -> more buffer occupancy at equal utilization)\n");
        out
    }
}

/// Figure 3: tail FCT slowdown as the buffer/capacity ratio shrinks (DCQCN).
pub mod fig03 {
    use super::*;

    /// Runs the buffer-ratio sweep.
    pub fn run(scale: &Scale) -> String {
        let ratios_us = [30.0, 20.0, 10.0];
        let topo = scale.t2();
        let trace = standard_trace(scale, &topo, Workload::Google, 0.60, 0.05);
        // Switch capacity = sum of port rates of the largest switch (a ToR).
        let tor = topo.switches()[0];
        let capacity_gbps: f64 = topo.ports(tor).iter().map(|p| p.link.rate_gbps).sum();
        let mut out = String::from(
            "Fig 3: DCQCN tail FCT vs buffer/capacity ratio\nbuffer(us of capacity)  buffer(MB)  overall p99 slowdown\n",
        );
        let configs: Vec<ExperimentConfig> = ratios_us
            .iter()
            .map(|ratio| {
                let buffer_bytes = (capacity_gbps * 1e9 / 8.0 * ratio * 1e-6) as u64;
                config_for(scale, Scheme::Dcqcn { window: false, sfq: false })
                    .with_buffer_bytes(buffer_bytes)
            })
            .collect();
        let results = runner().run_experiments(&topo, &trace, &configs);
        for ((ratio, config), result) in ratios_us.iter().zip(&configs).zip(&results) {
            let p99 = result.fct.overall.as_ref().map(|o| o.p99).unwrap_or(f64::NAN);
            out.push_str(&format!(
                "{ratio:>22.0}  {:>10.2}  {:>20.2}\n",
                config.buffer_bytes as f64 / 1e6,
                p99
            ));
        }
        out.push_str("(smaller buffers hurt DCQCN tail latency)\n");
        out
    }
}

/// Figure 4: byte-weighted CDF of flow sizes for the three workloads.
pub mod fig04 {
    use super::*;

    /// Prints the byte-weighted CDFs.
    pub fn run() -> String {
        let mut out = String::from("Fig 4: cumulative bytes by flow size\n");
        for w in Workload::all() {
            out.push_str(&format!("-- {} (mean {:.0} B)\n", w.name(), w.cdf().mean_bytes()));
            for (size, frac) in w.cdf().byte_weighted_cdf() {
                out.push_str(&format!("  {:>12.0} B  {:>6.3}\n", size, frac));
            }
        }
        out
    }
}

/// Figure 5: the headline tail-latency comparison.
pub mod fig05 {
    use super::*;

    /// Fig. 5a: Google workload with incast.
    pub fn run_google_incast(scale: &Scale) -> String {
        let topo = scale.t1();
        let trace = standard_trace(scale, &topo, Workload::Google, 0.60, 0.05);
        fct_comparison(
            scale,
            &topo,
            &trace,
            Scheme::paper_lineup(),
            "Fig 5a: Google + incast (60% + 5%), T1",
        )
    }

    /// Fig. 5b: FB_Hadoop workload with incast.
    pub fn run_hadoop_incast(scale: &Scale) -> String {
        let topo = scale.t1();
        let trace = standard_trace(scale, &topo, Workload::FbHadoop, 0.60, 0.05);
        fct_comparison(
            scale,
            &topo,
            &trace,
            Scheme::paper_lineup(),
            "Fig 5b: FB_Hadoop + incast (60% + 5%), T1",
        )
    }

    /// Fig. 5c: Google workload without incast.
    pub fn run_google_no_incast(scale: &Scale) -> String {
        let topo = scale.t1();
        let trace = standard_trace(scale, &topo, Workload::Google, 0.65, 0.0);
        fct_comparison(
            scale,
            &topo,
            &trace,
            Scheme::paper_lineup(),
            "Fig 5c: Google, no incast (65%), T1",
        )
    }

    /// All three panels.
    pub fn run(scale: &Scale) -> String {
        format!(
            "{}\n{}\n{}",
            run_google_incast(scale),
            run_hadoop_incast(scale),
            run_google_no_incast(scale)
        )
    }
}

/// Figure 6: buffer occupancy and PFC pause time for the Fig. 5a experiment.
pub mod fig06 {
    use super::*;

    /// Runs the Fig. 5a workload and reports occupancy and pause-time stats.
    pub fn run(scale: &Scale) -> String {
        let topo = scale.t1();
        let trace = standard_trace(scale, &topo, Workload::Google, 0.60, 0.05);
        let mut out = String::from(
            "Fig 6: buffer occupancy and PFC pause time (Fig 5a workload)\nscheme            occ p50(MB)  occ p99(MB)  pfc paused(%)  drops\n",
        );
        let configs: Vec<ExperimentConfig> = Scheme::paper_lineup()
            .into_iter()
            .map(|scheme| config_for(scale, scheme))
            .collect();
        for result in runner().run_experiments(&topo, &trace, &configs) {
            out.push_str(&format!(
                "{:<16}  {:>11.3}  {:>11.3}  {:>13.3}  {:>5}\n",
                result.scheme,
                result.occupancy.percentile_bytes(50.0) / 1e6,
                result.occupancy.percentile_bytes(99.0) / 1e6,
                result.pfc_pause_fraction * 100.0,
                result.drops
            ));
        }
        out
    }
}

/// Figure 7: dynamic vs static queue assignment (BFC vs BFC-VFID vs
/// SFQ+InfBuffer).
pub mod fig07 {
    use super::*;

    /// Runs the comparison and reports tail FCT plus collision fractions.
    pub fn run(scale: &Scale) -> String {
        let topo = scale.t1();
        let trace = standard_trace(scale, &topo, Workload::Google, 0.60, 0.05);
        let schemes = vec![Scheme::bfc(), Scheme::bfc_vfid(), Scheme::SfqInfBuffer];
        let mut out = fct_comparison(scale, &topo, &trace, schemes.clone(), "Fig 7a: queue assignment");
        out.push_str("\nFig 7b: physical-queue collisions\nscheme            collision fraction\n");
        let configs: Vec<ExperimentConfig> = schemes
            .into_iter()
            .map(|scheme| config_for(scale, scheme))
            .collect();
        for result in runner().run_experiments(&topo, &trace, &configs) {
            out.push_str(&format!(
                "{:<16}  {:>18.4}\n",
                result.scheme,
                result.policy_stats.collision_fraction()
            ));
        }
        out
    }
}

/// Figure 8: incast fan-in sweep — utilization and tail buffer occupancy.
pub mod fig08 {
    use super::*;

    /// The fan-in values swept at this scale.
    pub fn fan_ins(scale: &Scale) -> Vec<usize> {
        if scale.full {
            vec![10, 50, 100, 200, 400, 800]
        } else {
            vec![4, 8, 16]
        }
    }

    /// Runs the sweep for BFC and DCQCN+Win.
    pub fn run(scale: &Scale) -> String {
        let topo = scale.t2();
        let hosts = topo.hosts();
        let mut out = String::from(
            "Fig 8: incast fan-in sweep (4 long flows per receiver + periodic incast)\nscheme            fan-in  utilization  p99 buffer(MB)\n",
        );
        // Incast events repeat every 500 us at full scale; quick scale packs a
        // few events into its short window instead.
        let incast_period = if scale.full {
            SimDuration::from_micros(500)
        } else {
            scale.duration() / 4
        };
        let jobs: Vec<(Scheme, usize)> = [Scheme::bfc(), Scheme::Dcqcn { window: true, sfq: false }]
            .into_iter()
            .flat_map(|scheme| fan_ins(scale).into_iter().map(move |f| (scheme.clone(), f)))
            .collect();
        let results = runner().run_all(&jobs, |(scheme, fan_in)| {
            let mut trace = long_lived_per_receiver(
                &hosts,
                if scale.full { 4 } else { 1 },
                if scale.full { 40_000_000 } else { 10_000_000 },
                scale.seed,
            );
            trace.extend(incast_trace(
                &hosts,
                *fan_in,
                scale.incast_bytes(),
                incast_period,
                scale.duration(),
                scale.seed + 7,
            ));
            let mut config = config_for(scale, scheme.clone());
            // Long-lived flows are not expected to finish: measure over
            // the window only.
            config.drain = SimDuration::ZERO;
            run_experiment_auto(&topo, &trace, &config)
        });
        for ((_, fan_in), result) in jobs.iter().zip(&results) {
            out.push_str(&format!(
                "{:<16}  {:>6}  {:>11.3}  {:>14.3}\n",
                result.scheme,
                fan_in,
                result.utilization,
                result.occupancy.percentile_bytes(99.0) / 1e6
            ));
        }
        out
    }
}

/// Figure 9: cross-data-center traffic.
pub mod fig09 {
    use super::*;
    use bfc_metrics::fct::{FctSummary, SizeBucket};

    /// Runs the two-data-center experiment and reports intra- vs inter-DC
    /// tail slowdowns for BFC and DCQCN+Win.
    pub fn run(scale: &Scale) -> String {
        let params = if scale.full {
            CrossDcParams::paper_default()
        } else {
            CrossDcParams {
                dc: FatTreeParams {
                    num_tors: 2,
                    hosts_per_tor: 4,
                    num_spines: 2,
                    host_link: bfc_net::Link::new(10.0, SimDuration::from_micros(1)),
                    fabric_link: bfc_net::Link::new(10.0, SimDuration::from_micros(1)),
                },
                inter_dc_link: bfc_net::Link::new(100.0, SimDuration::from_micros(20)),
            }
        };
        let built = cross_dc(params);
        let duration = if scale.full {
            SimDuration::from_millis(8)
        } else {
            SimDuration::from_micros(800)
        };
        let trace_params = TraceParams {
            workload: Workload::FbHadoop,
            load: 0.5,
            incast_load: 0.0,
            incast_fan_in: 0,
            incast_total_bytes: 0,
            duration,
            host_gbps: params.dc.host_link.rate_gbps,
            seed: scale.seed,
            arrivals: scale.arrivals,
            incast_schedule: scale.incast_schedule,
        };
        let trace = cross_dc_trace(&built.dc0_hosts, &built.dc1_hosts, &trace_params, 0.2);
        let dc0: std::collections::HashSet<NodeId> = built.dc0_hosts.iter().copied().collect();
        let is_inter = |f: &TraceFlow| dc0.contains(&f.src) != dc0.contains(&f.dst);

        let mut out = String::from(
            "Fig 9: cross-datacenter FCT slowdown\nscheme            class     flows   p50     p99\n",
        );
        let configs: Vec<ExperimentConfig> = [Scheme::bfc(), Scheme::Dcqcn { window: true, sfq: false }]
            .into_iter()
            .map(|scheme| {
                let mut config = ExperimentConfig::new(scheme, duration).with_seed(scale.seed);
                // The long-haul hop needs more buffering, as in the paper.
                config.buffer_bytes = if scale.full { 60_000_000 } else { 12_000_000 };
                config
            })
            .collect();
        for result in runner().run_experiments(&built.topology, &trace, &configs) {
            for inter in [false, true] {
                let records: Vec<_> = result
                    .records
                    .iter()
                    .filter(|r| is_inter(&trace[r.flow.index()]) == inter)
                    .copied()
                    .collect();
                let summary = FctSummary::from_records_with_buckets(
                    &records,
                    &[SizeBucket { lo: 0, hi: u64::MAX }],
                );
                if let Some(o) = summary.overall {
                    out.push_str(&format!(
                        "{:<16}  {:<8}  {:>5}  {:>6.2}  {:>6.2}\n",
                        result.scheme,
                        if inter { "inter-DC" } else { "intra-DC" },
                        o.count,
                        o.p50,
                        o.p99
                    ));
                }
            }
        }
        out
    }
}

/// Figure 10: physical-queue size vs number of concurrent flows (the
/// resume-limiting ablation).
pub mod fig10 {
    use super::*;

    /// The concurrency levels swept at this scale.
    pub fn flow_counts(scale: &Scale) -> Vec<usize> {
        if scale.full {
            vec![8, 32, 64, 128, 256]
        } else {
            // Go past the 32 physical queues so flows must share queues and
            // the resume-limiting difference is visible even at quick scale.
            vec![16, 48, 96]
        }
    }

    /// Runs the sweep for BFC and BFC-BufferOpt.
    pub fn run(scale: &Scale) -> String {
        let topo = scale.t2();
        let hosts = topo.hosts();
        let receiver = hosts[0];
        let mut out = String::from(
            "Fig 10: per-queue buffering vs concurrent flows to one receiver\nscheme            flows  p99 physical queue (KB)\n",
        );
        let jobs: Vec<(Scheme, usize)> = [
            Scheme::bfc(),
            Scheme::Bfc(BfcConfig::without_resume_limit()),
        ]
        .into_iter()
        .flat_map(|scheme| flow_counts(scale).into_iter().map(move |n| (scheme.clone(), n)))
        .collect();
        let results = runner().run_all(&jobs, |(scheme, n)| {
            let size = if scale.full { 2_000_000 } else { 300_000 };
            let trace = concurrent_long_flows(&hosts, receiver, *n, size);
            let mut config = config_for(scale, scheme.clone());
            config.drain = scale.duration() * 8;
            run_experiment_auto(&topo, &trace, &config)
        });
        for ((_, n), result) in jobs.iter().zip(&results) {
            let p99_kb = bfc_metrics::percentile(&result.peak_queue_samples, 99.0)
                .unwrap_or(0.0)
                / 1e3;
            out.push_str(&format!(
                "{:<16}  {:>5}  {:>22.1}\n",
                result.scheme, n, p99_kb
            ));
        }
        out.push_str("(BFC caps per-queue buffering; BFC-BufferOpt grows with the flow count)\n");
        out
    }
}

/// Figure 11: the high-priority-queue ablation.
pub mod fig11 {
    use super::*;

    /// Runs BFC with and without the high-priority queue on a hot workload.
    pub fn run(scale: &Scale) -> String {
        let topo = scale.t1();
        let trace = standard_trace(scale, &topo, Workload::Google, 0.80, 0.05);
        let schemes = vec![
            Scheme::bfc(),
            Scheme::Bfc(BfcConfig::without_high_priority_queue()),
        ];
        let mut out = fct_comparison(
            scale,
            &topo,
            &trace,
            schemes.clone(),
            "Fig 11b: tail FCT with/without the high-priority queue (85% load + incast)",
        );
        out.push_str("\nFig 11a: occupied physical queues\nscheme              p50    p99\n");
        let configs: Vec<ExperimentConfig> = schemes
            .into_iter()
            .map(|scheme| config_for(scale, scheme))
            .collect();
        for result in runner().run_experiments(&topo, &trace, &configs) {
            out.push_str(&format!(
                "{:<16}  {:>6.1} {:>6.1}\n",
                result.scheme,
                bfc_metrics::percentile(&result.occupied_queue_samples, 50.0).unwrap_or(0.0),
                bfc_metrics::percentile(&result.occupied_queue_samples, 99.0).unwrap_or(0.0),
            ));
        }
        out
    }
}

/// Figure 12: sensitivity to the number of physical queues per port.
pub mod fig12 {
    use super::*;

    /// Queue counts swept.
    pub fn queue_counts(scale: &Scale) -> Vec<usize> {
        if scale.full {
            vec![8, 16, 32, 64, 128]
        } else {
            vec![8, 32]
        }
    }

    /// Runs the sweep.
    pub fn run(scale: &Scale) -> String {
        let topo = scale.t1();
        let trace = standard_trace(scale, &topo, Workload::Google, 0.60, 0.05);
        let mut out = String::from(
            "Fig 12: sensitivity to physical queues per port (BFC)\nqueues  collision%  overall p99 slowdown\n",
        );
        let counts = queue_counts(scale);
        let configs: Vec<ExperimentConfig> = counts
            .iter()
            .map(|&queues| config_for(scale, Scheme::bfc()).with_queues_per_port(queues))
            .collect();
        let results = runner().run_experiments(&topo, &trace, &configs);
        for (queues, result) in counts.iter().zip(&results) {
            let p99 = result.fct.overall.as_ref().map(|o| o.p99).unwrap_or(f64::NAN);
            out.push_str(&format!(
                "{queues:>6}  {:>10.3}  {:>20.2}\n",
                result.policy_stats.collision_fraction() * 100.0,
                p99
            ));
        }
        out
    }
}

/// Figure 13: sensitivity to the size of the VFID space / flow table.
pub mod fig13 {
    use super::*;

    /// VFID-space sizes swept.
    pub fn vfid_counts(scale: &Scale) -> Vec<u32> {
        if scale.full {
            vec![1024, 4096, 16_384, 65_536]
        } else {
            vec![64, 1024, 16_384]
        }
    }

    /// Runs the sweep.
    pub fn run(scale: &Scale) -> String {
        let topo = scale.t1();
        let trace = standard_trace(scale, &topo, Workload::Google, 0.60, 0.05);
        let mut out = String::from(
            "Fig 13: sensitivity to the number of VFIDs (BFC)\nvfids   overflow%  overall p99 slowdown\n",
        );
        let counts = vfid_counts(scale);
        let configs: Vec<ExperimentConfig> = counts
            .iter()
            .map(|&vfids| {
                config_for(scale, Scheme::Bfc(BfcConfig::default().with_num_vfids(vfids)))
            })
            .collect();
        let results = runner().run_experiments(&topo, &trace, &configs);
        for (vfids, result) in counts.iter().zip(&results) {
            let p99 = result.fct.overall.as_ref().map(|o| o.p99).unwrap_or(f64::NAN);
            out.push_str(&format!(
                "{vfids:>6}  {:>9.4}  {:>20.2}\n",
                result.policy_stats.overflow_fraction() * 100.0,
                p99
            ));
        }
        out
    }
}

/// Figure 14: sensitivity to the bloom-filter (pause frame) size.
pub mod fig14 {
    use super::*;

    /// Bloom-filter sizes swept (bytes).
    pub fn bloom_sizes() -> Vec<usize> {
        vec![16, 32, 64, 128]
    }

    /// Runs the sweep.
    pub fn run(scale: &Scale) -> String {
        let topo = scale.t1();
        let trace = standard_trace(scale, &topo, Workload::Google, 0.60, 0.05);
        let mut out = String::from(
            "Fig 14: sensitivity to pause-frame bloom filter size (BFC)\nbloom(B)  overall p99 slowdown  pauses\n",
        );
        let sizes = bloom_sizes();
        let configs: Vec<ExperimentConfig> = sizes
            .iter()
            .map(|&bytes| {
                config_for(scale, Scheme::Bfc(BfcConfig::default().with_bloom_bytes(bytes)))
            })
            .collect();
        let results = runner().run_experiments(&topo, &trace, &configs);
        for (bytes, result) in sizes.iter().zip(&results) {
            let p99 = result.fct.overall.as_ref().map(|o| o.p99).unwrap_or(f64::NAN);
            out.push_str(&format!(
                "{bytes:>8}  {:>20.2}  {:>6}\n",
                p99, result.policy_stats.pauses
            ));
        }
        out
    }
}

/// Failure sweep (dynamics subsystem): BFC vs DCQCN+Win vs HPCC under link
/// failures, degradation and flapping — the regime where hop-by-hop
/// backpressure's 1-RTT reaction time should differentiate.
pub mod failure_sweep {
    use super::*;
    use crate::scenario::ScenarioSpec;

    /// The schemes compared by the sweep.
    pub fn schemes() -> Vec<Scheme> {
        vec![
            Scheme::bfc(),
            Scheme::Dcqcn {
                window: true,
                sfq: false,
            },
            Scheme::Hpcc,
        ]
    }

    /// The three canonical scenario shapes at this scale, over the t2-style
    /// topology's `tor`/`spine` labels: a single cable down/up, a degraded
    /// core cable (25 Gbps, later restored), and a flapping cable.
    pub fn shapes(scale: &Scale) -> Vec<(&'static str, ScenarioSpec)> {
        let d = scale.duration();
        vec![
            (
                "single down/up",
                ScenarioSpec::single_link_down_up("tor0", "spine0", d / 4, d * 3 / 5),
            ),
            (
                "degraded core",
                ScenarioSpec::degraded_link("tor0", "spine1", d / 4, 25.0, d * 3 / 4, 100.0),
            ),
            (
                "flapping",
                ScenarioSpec::flapping_link("tor1", "spine0", d / 5, d / 10, d * 7 / 10),
            ),
        ]
    }

    /// The failure-rate sweep: how many distinct ToR↔spine cables die at
    /// once (down at 25% of the window, repaired at 60%).
    pub fn failure_counts() -> Vec<usize> {
        vec![0, 1, 2]
    }

    /// One recovery-results row, shared with `trace-tool scenario` so the
    /// figure and the CLI cannot drift apart.
    pub fn result_row(label: &str, result: &ExperimentResult) -> String {
        let p99 = result
            .fct
            .overall
            .as_ref()
            .map(|o| o.p99)
            .unwrap_or(f64::NAN);
        let ttr = result
            .recovery
            .time_to_recover
            .map(|d| format!("{:.1}", d.as_micros_f64()))
            .unwrap_or_else(|| "-".to_string());
        format!(
            "{:<16} {:>15} {:>11} {:>9.2} {:>11} {:>9} {:>8} {:>7.2}\n",
            result.scheme,
            label,
            format!("{}/{}", result.completed_flows, result.total_flows),
            p99,
            result.recovery.blackholed_packets,
            result.recovery.reroutes,
            ttr,
            result.recovery.goodput_dip_depth,
        )
    }

    /// Header matching [`result_row`]'s columns.
    pub const HEADER: &str = "scheme                     shape   completed   fct p99  blackholed  reroutes  ttr(us)     dip\n";

    /// Runs the shape comparison and the failure-rate sweep.
    pub fn run(scale: &Scale) -> String {
        let topo = scale.t2();
        let trace = standard_trace(scale, &topo, Workload::Google, 0.60, 0.0);
        let mut out = String::from("Fig 15a: recovery under three failure shapes\n");
        out.push_str(HEADER);

        let shapes = shapes(scale);
        let jobs: Vec<(usize, Scheme)> = (0..shapes.len())
            .flat_map(|i| schemes().into_iter().map(move |s| (i, s)))
            .collect();
        let results = runner().run_all(&jobs, |(shape, scheme)| {
            let schedule = shapes[*shape]
                .1
                .resolve(&topo)
                .expect("shape labels exist in the sweep topology");
            let config = config_for(scale, scheme.clone()).with_dynamics(schedule);
            run_experiment_auto(&topo, &trace, &config)
        });
        for ((shape, _), result) in jobs.iter().zip(&results) {
            out.push_str(&result_row(shapes[*shape].0, result));
        }

        out.push_str("\nFig 15b: FCT tail vs number of failed core links\n");
        out.push_str(HEADER);
        let d = scale.duration();
        let counts = failure_counts();
        let jobs: Vec<(usize, Scheme)> = counts
            .iter()
            .flat_map(|&k| schemes().into_iter().map(move |s| (k, s)))
            .collect();
        let results = runner().run_all(&jobs, |(k, scheme)| {
            let mut spec = ScenarioSpec::new();
            for link in 0..*k {
                let tor = format!("tor{link}");
                let spine = format!("spine{link}");
                spec = spec
                    .down(d / 4, tor.clone(), spine.clone())
                    .up(d * 3 / 5, tor, spine);
            }
            let schedule = spec
                .resolve(&topo)
                .expect("swept links exist in the sweep topology");
            let config = config_for(scale, scheme.clone()).with_dynamics(schedule);
            run_experiment_auto(&topo, &trace, &config)
        });
        for ((k, _), result) in jobs.iter().zip(&results) {
            out.push_str(&result_row(&format!("{k} links down"), result));
        }
        out.push_str(
            "(p99 FCT slowdown over non-incast flows; blackholed = packets lost to dead \
             links/routes; ttr = goodput recovery time after the last fault)\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests run every figure at quick scale: they are the end-to-end
    // regression suite for the whole evaluation pipeline.

    #[test]
    fn fig01_static_table() {
        let t = fig01::run();
        assert!(t.contains("Tomahawk3"));
        // Buffer-per-capacity must be falling across generations.
        assert!(t.lines().count() >= 6);
    }

    #[test]
    fn fig04_byte_weighted_cdfs() {
        let t = fig04::run();
        for name in ["Google", "FB_Hadoop", "WebSearch"] {
            assert!(t.contains(name));
        }
    }

    #[test]
    fn fig05_panel_runs_and_contains_all_schemes() {
        let t = fig05::run_google_incast(&Scale::quick());
        for scheme in ["BFC", "Ideal-FQ", "DCQCN", "DCQCN+Win", "HPCC", "DCQCN+Win+SFQ"] {
            assert!(t.contains(scheme), "missing {scheme} in:\n{t}");
        }
    }

    #[test]
    fn fig08_reports_all_fan_ins() {
        let scale = Scale::quick();
        let t = fig08::run(&scale);
        for f in fig08::fan_ins(&scale) {
            assert!(t.contains(&format!("{f:>6}")), "fan-in {f} missing:\n{t}");
        }
    }

    #[test]
    fn fig10_reports_both_variants() {
        let t = fig10::run(&Scale::quick());
        assert!(t.contains("BFC-BufferOpt"));
        assert!(t.contains("BFC "));
    }

    #[test]
    fn sweeps_accept_bursty_and_clustered_incast_scales() {
        let mut scale = Scale::quick();
        scale.arrivals = ArrivalShape::bursty_default();
        scale.incast_schedule = IncastSchedule::LogNormalGaps { sigma: 1.0 };
        let t = fig05::run_google_incast(&scale);
        assert!(t.contains("BFC"), "bursty sweep must still run:\n{t}");
    }

    #[test]
    fn fig12_and_fig13_sweeps_run() {
        let scale = Scale::quick();
        let t12 = fig12::run(&scale);
        assert!(t12.contains("queues"));
        let t13 = fig13::run(&scale);
        assert!(t13.contains("vfids"));
    }
}
