//! # bfc-experiments — the paper's evaluation harness
//!
//! This crate glues the whole reproduction together:
//!
//! * [`scheme`] — the registry of evaluated schemes (BFC, BFC-VFID, Ideal-FQ,
//!   DCQCN, DCQCN+Win, DCQCN+Win+SFQ, HPCC, SFQ+InfBuffer) mapping each to a
//!   switch configuration, a queue policy and a host configuration.
//! * [`runner`] — the end-to-end simulation driver: it instantiates the
//!   topology, switches, hosts and trace, dispatches events, and collects
//!   FCT records, buffer occupancy samples, utilization, PFC pause time and
//!   policy statistics into an [`runner::ExperimentResult`]. Each run is a
//!   pure, `Send` unit of work.
//! * [`parallel`] — the [`parallel::ParallelRunner`]: fans independent
//!   (scheme, sweep-point, seed) runs across `std::thread` workers with
//!   order-preserving result collection, so every figure is bit-identical
//!   at any thread count (`BFC_THREADS` controls the worker pool).
//! * [`sharded`] — within-run parallelism: one large fabric's switches and
//!   hosts split across shards advancing in conservative lockstep epochs
//!   ([`sharded::run_experiment_sharded`]), bit-identical to the serial
//!   engine at any shard count (`BFC_SHARDS` / `--shards` select it).
//! * [`replay`] — the [`replay::ReplayTrace`] path: imported CSV traces
//!   (see `bfc_workloads::io`) validated against a topology and replayed
//!   through the same driver with bit-identical results; the `trace-tool`
//!   binary (`synth` / `stats` / `replay` / `scenario`) is its CLI front end.
//! * [`scenario`] — the [`scenario::ScenarioSpec`] layer over
//!   `bfc_net::dynamics`: link-fault scenarios written by label (builder API
//!   or a small text format) and resolved into executable fault schedules
//!   that thread through `run_experiment` / `ParallelRunner` / `ReplayTrace`
//!   via `ExperimentConfig::dynamics`.
//! * [`fuzz`] — the adversarial scenario fuzzer: a seeded random search over
//!   (topology, workload, fault schedule) scored by tail latency, goodput
//!   dip, recovery time or safety violations, with greedy shrinking to
//!   minimal text reproducers (`trace-tool fuzz` is its CLI front end).
//! * [`service`] — service mode: deterministic snapshot/restore of complete
//!   runs ([`service::snapshot_experiment`] / [`service::resume_experiment`],
//!   bit-identical resumes for both engines) and streaming ingest under an
//!   inflight cap ([`service::serve_experiment`]); `trace-tool`'s
//!   `snapshot` / `resume` / `serve` subcommands are its CLI front end.
//! * [`figures`] — one module per paper table/figure. Each `run` function
//!   regenerates the corresponding rows/series; the `src/bin/figNN_*`
//!   binaries are thin wrappers that print them, and the Criterion benches in
//!   `bfc-bench` call the same functions with scaled-down parameters.
//!
//! Absolute numbers differ from the paper (different simulator, synthetic
//! CDFs, scaled-down run lengths by default) but the comparisons the paper
//! makes — who wins, by roughly what factor, and where behaviour crosses
//! over — are preserved. See `EXPERIMENTS.md` at the repository root.

pub mod figures;
pub mod fuzz;
pub mod parallel;
pub mod replay;
pub mod runner;
pub mod scenario;
pub mod scheme;
pub mod service;
pub mod sharded;

pub use fuzz::{FuzzConfig, FuzzOutcome, Objective, Reproducer};
pub use parallel::ParallelRunner;
pub use replay::{ReplayError, ReplayTrace};
pub use bfc_sim::shard::{BatchPolicy, EpochStats};
pub use runner::{run_experiment, ExperimentConfig, ExperimentResult, RankMode};
pub use scenario::{ScenarioError, ScenarioSpec};
pub use scheme::Scheme;
pub use service::{
    resume_experiment, serve_experiment, serve_experiment_with, snapshot_experiment, MetricsHub,
    ServeReport, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use sharded::{run_experiment_auto, run_experiment_sharded, ShardError, ShardPlan};
