//! The sharded fabric engine: within-run parallelism with bit-identical
//! results.
//!
//! [`run_experiment_sharded`] partitions one topology's switches and hosts
//! into N shards ([`ShardPlan::partition`]), gives each shard its own
//! calendar event queue and its own slice of the fabric (switches, hosts,
//! link-state and routing replicas), and advances all shards in conservative
//! lockstep epochs ([`bfc_sim::shard::run_conservative`]) bounded by the
//! minimum cross-shard link propagation delay. Cross-shard traffic — data
//! packets, ACKs/CNPs, PFC and BFC pause frames — travels through per-epoch
//! mailboxes that are exchanged at each barrier in deterministic
//! `(timestamp, canonical rank, source shard)` order.
//!
//! # Why results are bit-identical to [`run_experiment`]
//!
//! Both engines order events by `(time, canonical rank, emission order)`
//! (see [`bfc_net::event::NetEvent::canon_rank`]). The rank discriminates
//! every pair of simultaneous events except pairs emitted by one sequential
//! stream — and those reach any queue in emission order in both engines. A
//! shard therefore pops exactly the subsequence of the serial engine's pop
//! sequence that targets its nodes; since per-event handlers only touch the
//! target node's state (plus per-shard replicas recomputed from identical
//! inputs), every switch, host and flow evolves identically. Metrics merge
//! by disjoint union / exact integer arithmetic in
//! [`crate::runner::assemble_result`].
//!
//! The epoch lookahead is safe because every cross-node interaction in this
//! simulator is a scheduled packet delivery at least one link propagation
//! delay in the future; the partitioner keeps hosts in their ToR's shard, so
//! only switch-switch (and gateway) cables ever cross shards.

use std::fmt;

use bfc_net::event::{NetEvent, NetSink};
use bfc_net::topology::Topology;
use bfc_net::types::NodeId;
use bfc_sim::shard::{run_conservative, Boundary, ShardHandler};
use bfc_sim::{EventQueue, SimDuration, SimTime};
use bfc_workloads::TraceFlow;

use std::sync::Arc;

use crate::runner::{
    assemble_result, build_flow_metas, build_sim, run_experiment, ExperimentConfig,
    ExperimentResult, FabricSim, FlowMeta, Frame,
};

/// Why a topology could not be partitioned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A cable between two shards has zero propagation delay, so no positive
    /// conservative lookahead exists.
    ZeroLookahead {
        /// One endpoint of the offending cable.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::ZeroLookahead { a, b } => write!(
                f,
                "cable {a:?} <-> {b:?} crosses shards with zero propagation delay; \
                 no conservative lookahead exists"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// A deterministic assignment of every node to one shard, plus the epoch
/// lookahead the assignment admits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shard_of: Vec<u32>,
    num_shards: usize,
    lookahead: Option<SimDuration>,
}

impl ShardPlan {
    /// Partitions `topo` into (up to) `requested` shards.
    ///
    /// The assignment is a pure function of `(topology, requested)`:
    /// switches are round-robined over the shards in node-id order — for the
    /// built-in fat trees that spreads both the ToR layer and the spine
    /// layer evenly — and every host lands in the shard of its uplink
    /// switch, so the latency-free host<->ToR hop never crosses a shard
    /// boundary. The shard count is clamped to the number of switches.
    pub fn partition(topo: &Topology, requested: usize) -> Result<ShardPlan, ShardError> {
        let switches = topo.switches();
        let num_shards = requested.clamp(1, switches.len().max(1));
        let mut shard_of = vec![0u32; topo.num_nodes()];
        for (k, sw) in switches.iter().enumerate() {
            shard_of[sw.index()] = (k % num_shards) as u32;
        }
        for h in topo.hosts() {
            shard_of[h.index()] = shard_of[topo.host_uplink(h).peer.index()];
        }

        // The conservative lookahead: the fastest any shard can influence
        // another is one cross-shard cable's propagation delay.
        let mut lookahead: Option<SimDuration> = None;
        for idx in 0..topo.num_nodes() {
            let node = NodeId(idx as u32);
            for spec in topo.ports(node) {
                if shard_of[idx] == shard_of[spec.peer.index()] {
                    continue;
                }
                if spec.link.propagation.is_zero() {
                    return Err(ShardError::ZeroLookahead { a: node, b: spec.peer });
                }
                lookahead = Some(match lookahead {
                    Some(l) => l.min(spec.link.propagation),
                    None => spec.link.propagation,
                });
            }
        }
        Ok(ShardPlan {
            shard_of,
            num_shards,
            lookahead,
        })
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> u32 {
        self.shard_of[node.index()]
    }

    /// Number of shards in the plan.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The epoch lookahead: the minimum propagation delay over cross-shard
    /// cables. `None` when no cable crosses shards (single-shard plans), in
    /// which case any window size is safe.
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }
}

/// Routes scheduled events: events targeting a node of this shard go into
/// the local calendar queue, events for another shard's nodes into that
/// shard's epoch outbox. Driver-level events without a target node
/// (samples, flow bookkeeping, dynamics) are always shard-local — each shard
/// schedules its own copies up front.
struct ShardSink<'b> {
    local: &'b mut EventQueue<NetEvent>,
    outbox: &'b mut [Vec<Boundary<NetEvent>>],
    plan: &'b ShardPlan,
    me: u32,
}

impl NetSink for ShardSink<'_> {
    #[inline]
    fn send(&mut self, time: SimTime, event: NetEvent) {
        let rank = event.canon_rank();
        match event.target_node() {
            Some(node) if self.plan.shard_of(node) != self.me => {
                self.outbox[self.plan.shard_of(node) as usize].push((time, rank, event));
            }
            _ => self.local.push_ranked(time, rank, event),
        }
    }
}

/// One shard: its slice of the fabric, its event queue, and its outboxes.
/// Crate-visible so the snapshot/service layer ([`crate::service`]) can
/// save and overlay per-shard state at epoch barriers.
pub(crate) struct ShardWorker<'a> {
    pub(crate) sim: FabricSim<'a>,
    pub(crate) queue: EventQueue<NetEvent>,
    pub(crate) outbox: Vec<Vec<Boundary<NetEvent>>>,
    pub(crate) plan: &'a ShardPlan,
    pub(crate) me: u32,
    pub(crate) last: SimTime,
}

impl ShardHandler for ShardWorker<'_> {
    type Event = NetEvent;

    fn next_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    fn run_window(&mut self, window_end: SimTime, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t >= window_end || t > deadline {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked event exists");
            debug_assert!(now >= self.last, "shard queue delivered out of order");
            self.last = now;
            let mut sink = ShardSink {
                local: &mut self.queue,
                outbox: &mut self.outbox,
                plan: self.plan,
                me: self.me,
            };
            self.sim.dispatch(now, event, &mut sink);
        }
    }

    fn take_outboxes(&mut self) -> Vec<Vec<Boundary<NetEvent>>> {
        let n = self.outbox.len();
        std::mem::replace(&mut self.outbox, vec![Vec::new(); n])
    }

    fn deliver(&mut self, batch: Vec<Boundary<NetEvent>>) {
        for (time, rank, event) in batch {
            debug_assert!(time >= self.last, "boundary event violates lookahead");
            self.queue.push_ranked(time, rank, event);
        }
    }

    fn last_processed(&self) -> SimTime {
        self.last
    }
}

/// Validates inputs and produces the shard plan for a run: checks the fault
/// schedule, asserts the packed event-rank layout fits, and partitions the
/// topology. Panics on invalid inputs, exactly like the run entry points.
pub(crate) fn plan_for(
    topo: &Topology,
    trace: &[TraceFlow],
    config: &ExperimentConfig,
    num_shards: usize,
) -> ShardPlan {
    if let Err(e) = config.dynamics.validate(topo) {
        panic!("invalid fault schedule for this topology: {e}");
    }
    let max_ports = (0..topo.num_nodes())
        .map(|idx| topo.ports(NodeId(idx as u32)).len())
        .max()
        .unwrap_or(0);
    assert!(
        NetEvent::rank_layout_fits(topo.num_nodes(), max_ports, trace.len()),
        "topology/trace exceed the packed event-rank layout; \
         run serially or widen NetEvent::canon_rank"
    );
    match ShardPlan::partition(topo, num_shards) {
        Ok(plan) => plan,
        Err(e) => panic!("cannot shard this topology: {e}"),
    }
}

/// The epoch window for a plan under `config`. With no cross-shard cable any
/// window is safe; one window spanning the whole run degenerates to the
/// serial loop.
pub(crate) fn epoch_lookahead(plan: &ShardPlan, config: &ExperimentConfig) -> SimDuration {
    plan.lookahead()
        .unwrap_or(config.horizon + config.drain + SimDuration::from_micros(1))
}

/// Builds the per-shard workers for a run, each with its slice of the fabric
/// and its fully seeded event queue (flow arrivals, sampling, dynamics).
pub(crate) fn build_workers<'a>(
    topo: &'a Topology,
    trace: &[TraceFlow],
    config: &'a ExperimentConfig,
    frame: &Frame,
    flows: &Arc<Vec<FlowMeta>>,
    plan: &'a ShardPlan,
) -> Vec<ShardWorker<'a>> {
    (0..plan.num_shards())
        .map(|s| {
            let me = s as u32;
            let sim = build_sim(
                topo,
                Arc::clone(flows),
                config,
                frame,
                |node| plan.shard_of(node) == me,
                // Exactly one shard records the schedule-derived recovery
                // metrics; see `FabricSim::record_dynamics_metrics`.
                s == 0,
            );
            let mut queue = EventQueue::with_capacity(trace.len() / plan.num_shards() * 4 + 16);
            for (index, t) in trace.iter().enumerate() {
                // The arrival event fans out to the sender's shard (which
                // starts the flow) and the receiver's shard (which registers
                // the expected flow); `FabricSim::dispatch` does whichever
                // half is local.
                if plan.shard_of(t.src) == me || plan.shard_of(t.dst) == me {
                    queue.send(t.start, NetEvent::FlowArrival { index });
                }
            }
            // Full tick schedule up front (the handler no longer
            // reschedules); the sharded engine always keys by canonical
            // rank, so `fifo` is false here.
            crate::runner::seed_samples(&mut queue, false, config);
            for (index, event) in config.dynamics.events().iter().enumerate() {
                // Every shard replays the whole fault schedule against its
                // own link-state / routing replica.
                queue.send(event.at, NetEvent::NetworkDynamics { index });
            }
            ShardWorker {
                sim,
                queue,
                outbox: vec![Vec::new(); plan.num_shards()],
                plan,
                me,
                last: SimTime::ZERO,
            }
        })
        .collect()
}

/// Runs one experiment across `num_shards` shards (clamped to the number of
/// switches), with one thread per shard. The result is **bit-identical** to
/// [`run_experiment`] on the same inputs, at any shard count.
pub fn run_experiment_sharded(
    topo: &Topology,
    trace: &[TraceFlow],
    config: &ExperimentConfig,
    num_shards: usize,
) -> ExperimentResult {
    let plan = plan_for(topo, trace, config, num_shards);
    let frame = Frame::new(topo, config);
    // Immutable flow metadata is computed once and shared: shards only need
    // private completion state.
    let flows = Arc::new(build_flow_metas(topo, trace, config, &frame));
    let deadline = SimTime::ZERO + config.horizon + config.drain;
    let lookahead = epoch_lookahead(&plan, config);

    let mut workers = build_workers(topo, trace, config, &frame, &flows, &plan);
    let parallel = workers.len() > 1;
    let (end_time, epochs) = run_conservative(
        &mut workers,
        lookahead,
        deadline,
        parallel,
        config.batch_policy(),
    );
    let overflow_pushes: u64 = workers.iter().map(|w| w.queue.overflow_pushes()).sum();
    let sims: Vec<FabricSim<'_>> = workers.into_iter().map(|w| w.sim).collect();
    let mut result = assemble_result(topo, trace, config, &frame, sims, end_time);
    result.epochs = epochs;
    result.record_engine_counters(overflow_pushes);
    result
}

/// Shard count from the `BFC_SHARDS` environment variable (default 1; the
/// figure binaries' `--shards N` flag sets the variable for the process).
pub fn shards_from_env() -> usize {
    std::env::var("BFC_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Parses a `--shards` flag value and installs it as `BFC_SHARDS` for this
/// process, so every run dispatched later (figures, replay, scenario) goes
/// through the sharded engine. The flag and the variable are deliberately
/// the same mechanism — mirroring `BFC_THREADS` — so scripts can use either.
/// Rejects zero and non-numeric values. Binaries call this during argument
/// parsing, before any worker thread exists.
pub fn set_shards_env(value: &str) -> Result<(), String> {
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => {
            std::env::set_var("BFC_SHARDS", n.to_string());
            Ok(())
        }
        Ok(_) => Err("--shards requires a positive shard count, got 0".to_string()),
        Err(_) => Err(format!("--shards: not a valid number: {value}")),
    }
}

/// Runs through the sharded engine when `BFC_SHARDS` asks for more than one
/// shard, and through the serial engine otherwise — bit-identical either
/// way. This is the entry point [`crate::ParallelRunner`] uses, so every
/// figure, replay and scenario path honours `BFC_SHARDS` / `--shards`.
pub fn run_experiment_auto(
    topo: &Topology,
    trace: &[TraceFlow],
    config: &ExperimentConfig,
) -> ExperimentResult {
    let shards = shards_from_env();
    if shards > 1 {
        run_experiment_sharded(topo, trace, config, shards)
    } else {
        run_experiment(topo, trace, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfc_net::topology::{fat_tree, FatTreeParams};
    use bfc_workloads::{synthesize, TraceParams, Workload};

    use crate::scheme::Scheme;

    #[test]
    fn partition_covers_every_node_exactly_once() {
        let topo = fat_tree(FatTreeParams::tiny());
        for shards in 1..=6 {
            let plan = ShardPlan::partition(&topo, shards).expect("partitionable");
            assert_eq!(plan.num_shards(), shards.min(topo.switches().len()));
            for idx in 0..topo.num_nodes() {
                assert!((plan.shard_of(NodeId(idx as u32)) as usize) < plan.num_shards());
            }
        }
    }

    #[test]
    fn hosts_are_colocated_with_their_tor() {
        let topo = fat_tree(FatTreeParams::t2());
        let plan = ShardPlan::partition(&topo, 4).expect("partitionable");
        for h in topo.hosts() {
            assert_eq!(plan.shard_of(h), plan.shard_of(topo.host_uplink(h).peer));
        }
    }

    #[test]
    fn lookahead_is_the_minimum_cross_shard_propagation() {
        let topo = fat_tree(FatTreeParams::tiny());
        let plan = ShardPlan::partition(&topo, 2).expect("partitionable");
        // All fabric links have 1 us propagation in the tiny topology.
        assert_eq!(plan.lookahead(), Some(SimDuration::from_micros(1)));
        let single = ShardPlan::partition(&topo, 1).expect("partitionable");
        assert_eq!(single.lookahead(), None);
    }

    #[test]
    fn sharded_engine_matches_serial_quick() {
        let topo = fat_tree(FatTreeParams::tiny());
        let trace = synthesize(
            &topo.hosts(),
            &TraceParams::background_only(
                Workload::Google,
                0.3,
                SimDuration::from_micros(100),
                17,
            ),
        );
        let config = ExperimentConfig::new(Scheme::bfc(), SimDuration::from_micros(100));
        let serial = run_experiment(&topo, &trace, &config);
        for shards in [1, 2, 4] {
            let sharded = run_experiment_sharded(&topo, &trace, &config, shards);
            assert_eq!(serial.records, sharded.records, "{shards} shards");
            assert_eq!(serial.fct, sharded.fct, "{shards} shards");
            assert_eq!(serial.end_time, sharded.end_time, "{shards} shards");
            assert_eq!(serial.drops, sharded.drops);
            assert_eq!(
                serial.utilization.to_bits(),
                sharded.utilization.to_bits(),
                "{shards} shards"
            );
        }
    }
}
