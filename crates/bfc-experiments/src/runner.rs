//! The end-to-end simulation driver.
//!
//! [`run_experiment`] builds switches and hosts for a topology according to a
//! [`Scheme`], injects a workload trace, runs the discrete-event loop to
//! completion (bounded by a drain deadline) and collects every metric the
//! paper reports into an [`ExperimentResult`].

use bfc_metrics::fct::{FctRecord, FctSummary};
use bfc_metrics::recovery::{RecoveryMetrics, RecoveryTracker};
use bfc_metrics::series::{OccupancySeries, UtilizationTracker};
use bfc_net::dynamics::{FaultEvent, FaultSchedule, LinkAction, LinkStateMap};
use bfc_net::event::NetEvent;
use bfc_net::packet::vfid_for_flow;
use bfc_net::policy::PolicyStats;
use bfc_net::routing::RoutingTables;
use bfc_net::switch::Switch;
use bfc_net::topology::Topology;
use bfc_net::types::FlowId;
use bfc_sim::{run_until, EventQueue, SimDuration, SimTime, Simulation};
use bfc_transport::{FlowSpec, Host};
use bfc_workloads::TraceFlow;

use crate::scheme::Scheme;

/// Experiment parameters independent of the workload trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Seed controlling every random choice (ECN marking, queue picks).
    pub seed: u64,
    /// MTU in bytes (the paper uses 1 KB).
    pub mtu: u32,
    /// Physical queues per egress port (ignored by Ideal-FQ, which uses
    /// 1000).
    pub queues_per_port: usize,
    /// Shared buffer per switch in bytes.
    pub buffer_bytes: u64,
    /// Measurement window: the span covered by the trace.
    pub horizon: SimDuration,
    /// Extra time after the last arrival to let flows finish.
    pub drain: SimDuration,
    /// Buffer-occupancy sampling interval.
    pub sample_interval: SimDuration,
    /// Scheduled link faults / repairs / rate changes. Empty (the default)
    /// is bit-identical to a run of this build with no dynamics at all — the
    /// link-state checks short-circuit and nothing else changes.
    pub dynamics: FaultSchedule,
}

impl ExperimentConfig {
    /// Paper defaults for a given scheme and trace length.
    pub fn new(scheme: Scheme, horizon: SimDuration) -> Self {
        ExperimentConfig {
            scheme,
            seed: 1,
            mtu: 1_000,
            queues_per_port: 32,
            buffer_bytes: 12_000_000,
            horizon,
            drain: horizon * 4,
            sample_interval: SimDuration::from_micros(10),
            dynamics: FaultSchedule::default(),
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the switch buffer size.
    pub fn with_buffer_bytes(mut self, bytes: u64) -> Self {
        self.buffer_bytes = bytes;
        self
    }

    /// Overrides the number of physical queues per port.
    pub fn with_queues_per_port(mut self, queues: usize) -> Self {
        self.queues_per_port = queues;
        self
    }

    /// Installs a fault schedule (link down/up, degradation, flapping).
    pub fn with_dynamics(mut self, dynamics: FaultSchedule) -> Self {
        self.dynamics = dynamics;
        self
    }
}

/// Everything measured in one run.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Scheme name (paper legend).
    pub scheme: String,
    /// Per-size-bucket FCT slowdown summary (non-incast flows).
    pub fct: FctSummary,
    /// Raw per-flow records (including incast flows).
    pub records: Vec<FctRecord>,
    /// Switch buffer occupancy samples (one per switch per sample tick).
    pub occupancy: OccupancySeries,
    /// Largest single physical-queue occupancy seen at each sample tick
    /// (bytes) — the quantity of Fig. 10.
    pub peak_queue_samples: Vec<f64>,
    /// Highest number of occupied physical queues on any port, per sample
    /// tick — the quantity of Fig. 11a.
    pub occupied_queue_samples: Vec<f64>,
    /// Network utilization (goodput / aggregate host capacity).
    pub utilization: f64,
    /// Average fraction of time switch egresses spent PFC-paused.
    pub pfc_pause_fraction: f64,
    /// Aggregated queue-policy statistics across all switches.
    pub policy_stats: PolicyStats,
    /// Packets dropped at switch buffers.
    pub drops: u64,
    /// Flows that completed before the drain deadline.
    pub completed_flows: usize,
    /// Flows in the trace.
    pub total_flows: usize,
    /// Simulated time at which the run ended.
    pub end_time: SimTime,
    /// Fault-recovery metrics (all zero / `None` for a run without dynamics).
    pub recovery: RecoveryMetrics,
}

impl ExperimentResult {
    /// Fraction of trace flows that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.total_flows == 0 {
            1.0
        } else {
            self.completed_flows as f64 / self.total_flows as f64
        }
    }
}

struct FlowMeta {
    spec: FlowSpec,
    start: SimTime,
    ideal_fct: SimDuration,
    is_incast: bool,
    completed: Option<SimTime>,
}

/// Node dispatch table: every `NodeId` is dense, so switches and hosts live
/// in vectors indexed by node id — per-event dispatch is a bounds-checked
/// array access instead of a hash lookup, and iteration order for metrics is
/// the (deterministic) node order.
struct FabricSim<'a> {
    topo: &'a Topology,
    routes: RoutingTables,
    link_state: LinkStateMap,
    dynamics: &'a [FaultEvent],
    switches: Vec<Option<Switch>>,
    hosts: Vec<Option<Host>>,
    flows: Vec<FlowMeta>,
    occupancy: OccupancySeries,
    peak_queue_samples: Vec<f64>,
    occupied_queue_samples: Vec<f64>,
    sample_interval: SimDuration,
    sample_until: SimTime,
    /// Goodput sampling for the recovery metrics keeps running through the
    /// drain window (faults late in the horizon recover during drain); the
    /// occupancy/queue series stop at `sample_until` as before.
    goodput_until: SimTime,
    completed: usize,
    recovery: RecoveryTracker,
}

impl FabricSim<'_> {
    fn take_samples(&mut self, now: SimTime) {
        if now <= self.sample_until {
            let mut max_queue = 0u64;
            let mut max_occupied = 0usize;
            for sw in self.switches.iter().flatten() {
                self.occupancy.record(sw.buffer().occupancy());
                for p in 0..sw.num_ports() {
                    let port = sw.port(p as u32);
                    max_occupied = max_occupied.max(port.occupied_queue_count());
                    for q in 0..port.num_queues() {
                        max_queue = max_queue.max(port.queue_bytes(q));
                    }
                }
            }
            self.peak_queue_samples.push(max_queue as f64);
            self.occupied_queue_samples.push(max_occupied as f64);
        }
        if !self.dynamics.is_empty() {
            let delivered: u64 = self
                .hosts
                .iter()
                .flatten()
                .map(|h| h.counters().rx_data_bytes)
                .sum();
            self.recovery.record_goodput(now, delivered);
        }
    }

    /// Applies one fault-schedule event: mutates the live link state, updates
    /// the affected switch/host ports (flushing dead egresses), and recomputes
    /// routing over the surviving links.
    fn apply_dynamics(
        &mut self,
        now: SimTime,
        action: LinkAction,
        queue: &mut EventQueue<NetEvent>,
    ) {
        let endpoints = self
            .link_state
            .apply(self.topo, &action)
            .expect("fault schedule was validated against the topology");
        for ep in endpoints {
            let idx = ep.node.index();
            match action {
                LinkAction::Down { .. } => {
                    if let Some(sw) = self.switches[idx].as_mut() {
                        // Flushed data packets are counted in the switch's
                        // own `blackholed` counter, folded into the recovery
                        // metrics at the end of the run.
                        let _ = sw.handle_link_down(now, ep.port, queue);
                    } else if let Some(host) = self.hosts[idx].as_mut() {
                        host.set_uplink_up(now, false, queue);
                    }
                }
                LinkAction::Up { .. } => {
                    if let Some(sw) = self.switches[idx].as_mut() {
                        sw.handle_link_up(now, ep.port, queue);
                    } else if let Some(host) = self.hosts[idx].as_mut() {
                        host.set_uplink_up(now, true, queue);
                    }
                }
                LinkAction::SetRate { gbps, .. } => {
                    if let Some(sw) = self.switches[idx].as_mut() {
                        sw.set_port_rate(ep.port, gbps);
                    } else if let Some(host) = self.hosts[idx].as_mut() {
                        host.set_uplink_rate(gbps);
                    }
                }
            }
        }
        // Deterministic re-convergence: recompute shortest paths over the
        // surviving links. Rendezvous-hash ECMP keeps surviving flows on
        // their old paths (stable rehash). Rate changes leave the up/down
        // graph — and therefore the tables — untouched, so only down/up
        // events pay the recompute (and count as reroutes).
        if !matches!(action, LinkAction::SetRate { .. }) {
            let link_state = &self.link_state;
            self.routes =
                RoutingTables::compute_filtered(self.topo, |n, p| link_state.is_up(n, p));
            self.recovery.record_reroute();
        }
        self.recovery.record_fault(now);
    }
}

impl Simulation for FabricSim<'_> {
    type Event = NetEvent;

    fn handle(&mut self, now: SimTime, event: NetEvent, queue: &mut EventQueue<NetEvent>) {
        match event {
            NetEvent::FlowArrival { index } => {
                let meta = &self.flows[index];
                let spec = meta.spec;
                self.hosts[spec.dst.index()]
                    .as_mut()
                    .expect("destination host exists")
                    .expect_flow(spec);
                self.hosts[spec.src.index()]
                    .as_mut()
                    .expect("source host exists")
                    .start_flow(now, spec, queue);
            }
            NetEvent::PacketArrive { node, port, packet } => {
                // In-flight packets are blackholed if the cable they crossed
                // is down at their delivery instant.
                if !self.link_state.all_up() && !self.link_state.is_up(node, port) {
                    if packet.is_data() {
                        self.recovery.add_blackholed(1);
                    }
                    return;
                }
                let routes = &self.routes;
                if let Some(sw) = self.switches[node.index()].as_mut() {
                    sw.handle_packet(now, port, packet, routes, queue);
                } else if let Some(host) = self.hosts[node.index()].as_mut() {
                    host.handle_packet(now, packet, queue);
                }
            }
            NetEvent::TxComplete { node, port } => {
                if let Some(sw) = self.switches[node.index()].as_mut() {
                    sw.handle_tx_complete(now, port, queue);
                } else if let Some(host) = self.hosts[node.index()].as_mut() {
                    host.handle_tx_complete(now, queue);
                }
            }
            NetEvent::PauseFrameTimer { node, port } => {
                if let Some(sw) = self.switches[node.index()].as_mut() {
                    sw.handle_pause_timer(now, port, queue);
                }
            }
            NetEvent::HostTimer { node, timer } => {
                if let Some(host) = self.hosts[node.index()].as_mut() {
                    host.handle_timer(now, timer, queue);
                }
            }
            NetEvent::FlowCompleted { flow } => {
                let meta = &mut self.flows[flow.index()];
                if meta.completed.is_none() {
                    meta.completed = Some(now);
                    self.completed += 1;
                }
            }
            NetEvent::Sample => {
                self.take_samples(now);
                if now + self.sample_interval <= self.goodput_until {
                    queue.push(now + self.sample_interval, NetEvent::Sample);
                }
            }
            NetEvent::NetworkDynamics { index } => {
                let action = self.dynamics[index].action;
                self.apply_dynamics(now, action, queue);
            }
        }
    }
}

/// Runs one experiment: the given trace over `topo` under `config.scheme`.
///
/// This is a **pure, `Send` unit of work**: every switch, host, event queue
/// and RNG is built from the inputs (all randomness derives from
/// `config.seed`), nothing global is touched, and the result is a plain
/// owned value — which is what lets [`crate::ParallelRunner`] fan
/// independent runs across threads with bit-identical output.
pub fn run_experiment(
    topo: &Topology,
    trace: &[TraceFlow],
    config: &ExperimentConfig,
) -> ExperimentResult {
    if let Err(e) = config.dynamics.validate(topo) {
        panic!("invalid fault schedule for this topology: {e}");
    }
    let routes = RoutingTables::compute(topo);
    let hosts_list = topo.hosts();
    assert!(hosts_list.len() >= 2, "need at least two hosts");

    // Base RTT: take the farthest-apart host pair we can cheaply identify
    // (first and last host, which sit in different racks / data centers in
    // every built-in topology).
    let far_a = hosts_list[0];
    let far_b = *hosts_list.last().expect("non-empty");
    let base_rtt = routes.base_rtt(topo, far_a, far_b, config.mtu);
    let host_gbps = topo.host_uplink(far_a).link.rate_gbps;
    let bdp_bytes = (host_gbps * 1e9 / 8.0 * base_rtt.as_secs_f64()) as u64;

    // Switches.
    let switch_config =
        config
            .scheme
            .switch_config(config.queues_per_port, config.buffer_bytes, config.mtu);
    let mut switches: Vec<Option<Switch>> = (0..topo.num_nodes()).map(|_| None).collect();
    for sw_id in topo.switches() {
        let policy = config.scheme.make_policy(config.seed ^ sw_id.0 as u64);
        switches[sw_id.index()] = Some(Switch::new(
            sw_id,
            switch_config.clone(),
            topo.ports(sw_id),
            policy,
            config.seed,
        ));
    }

    // Hosts.
    let host_config = config.scheme.host_config(config.mtu, base_rtt, bdp_bytes);
    let mut hosts: Vec<Option<Host>> = (0..topo.num_nodes()).map(|_| None).collect();
    for h in &hosts_list {
        let uplink = topo.host_uplink(*h);
        hosts[h.index()] = Some(Host::new(
            *h,
            uplink.link,
            (uplink.peer, uplink.peer_port),
            host_config,
        ));
    }

    // Flow metadata and arrival events.
    let num_vfids = config.scheme.num_vfids();
    let mut queue = EventQueue::with_capacity(trace.len() * 4 + 16);
    let mut flows = Vec::with_capacity(trace.len());
    for (i, t) in trace.iter().enumerate() {
        let flow_id = FlowId(i as u32);
        let spec = FlowSpec {
            flow: flow_id,
            src: t.src,
            dst: t.dst,
            size_bytes: t.size_bytes,
            vfid: vfid_for_flow(flow_id, config.seed, num_vfids),
        };
        let ideal_fct = routes.ideal_fct(
            topo,
            t.src,
            t.dst,
            t.size_bytes,
            config.mtu,
            flow_id.0 as u64,
        );
        flows.push(FlowMeta {
            spec,
            start: t.start,
            ideal_fct,
            is_incast: t.is_incast,
            completed: None,
        });
        queue.push(t.start, NetEvent::FlowArrival { index: i });
    }
    queue.push(SimTime::ZERO + config.sample_interval, NetEvent::Sample);
    for (index, event) in config.dynamics.events().iter().enumerate() {
        queue.push(event.at, NetEvent::NetworkDynamics { index });
    }

    let sample_until = SimTime::ZERO + config.horizon;
    let deadline = SimTime::ZERO + config.horizon + config.drain;
    let mut sim = FabricSim {
        topo,
        routes,
        link_state: LinkStateMap::new(topo),
        dynamics: config.dynamics.events(),
        switches,
        hosts,
        flows,
        occupancy: OccupancySeries::new(),
        peak_queue_samples: Vec::new(),
        occupied_queue_samples: Vec::new(),
        sample_interval: config.sample_interval,
        sample_until,
        goodput_until: if config.dynamics.is_empty() {
            sample_until
        } else {
            deadline
        },
        completed: 0,
        recovery: RecoveryTracker::new(),
    };
    let end_time = run_until(&mut sim, &mut queue, deadline);

    // Assemble results.
    let records: Vec<FctRecord> = sim
        .flows
        .iter()
        .filter_map(|m| {
            m.completed.map(|done| FctRecord {
                flow: m.spec.flow,
                size_bytes: m.spec.size_bytes,
                fct: done.saturating_since(m.start),
                ideal_fct: m.ideal_fct,
                is_incast: m.is_incast,
            })
        })
        .collect();
    let fct = FctSummary::from_records(&records);

    let elapsed = if end_time > SimTime::ZERO {
        end_time.saturating_since(SimTime::ZERO)
    } else {
        config.horizon
    };
    let measured = if elapsed < config.horizon {
        config.horizon
    } else {
        elapsed
    };
    let mut tracker = UtilizationTracker::new(hosts_list.len(), host_gbps, measured);
    for host in sim.hosts.iter().flatten() {
        tracker.add_delivered_bytes(host.counters().rx_data_bytes);
    }
    let mut policy_stats = PolicyStats::default();
    let mut drops = 0;
    for sw in sim.switches.iter().flatten() {
        policy_stats.merge(&sw.policy_stats());
        drops += sw.counters().drops;
        // Switch-local blackholes (dead-egress flushes, unroutable arrivals)
        // join the driver's in-flight drops in the recovery metrics.
        sim.recovery.add_blackholed(sw.counters().blackholed);
        for p in 0..sw.num_ports() {
            tracker.add_pfc_paused(sw.port(p as u32).pfc_paused_time(end_time));
        }
    }
    let recovery = sim.recovery.finish();

    ExperimentResult {
        scheme: config.scheme.name(),
        fct,
        records,
        occupancy: sim.occupancy,
        peak_queue_samples: sim.peak_queue_samples,
        occupied_queue_samples: sim.occupied_queue_samples,
        utilization: tracker.utilization(),
        pfc_pause_fraction: tracker.pfc_pause_fraction(),
        policy_stats,
        drops,
        completed_flows: sim.completed,
        total_flows: trace.len(),
        end_time,
        recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfc_net::topology::{fat_tree, FatTreeParams};
    use bfc_workloads::{synthesize, TraceParams, Workload};

    fn tiny_trace(topo: &Topology, seed: u64) -> Vec<TraceFlow> {
        let params = TraceParams::background_only(
            Workload::Google,
            0.3,
            SimDuration::from_micros(200),
            seed,
        );
        synthesize(&topo.hosts(), &params)
    }

    fn quick_config(scheme: Scheme) -> ExperimentConfig {
        ExperimentConfig::new(scheme, SimDuration::from_micros(200))
    }

    #[test]
    fn every_scheme_completes_a_small_trace() {
        let topo = fat_tree(FatTreeParams::tiny());
        let trace = tiny_trace(&topo, 3);
        assert!(!trace.is_empty());
        let mut schemes = Scheme::paper_lineup();
        schemes.push(Scheme::bfc_vfid());
        schemes.push(Scheme::SfqInfBuffer);
        for scheme in schemes {
            let name = scheme.name();
            let result = run_experiment(&topo, &trace, &quick_config(scheme));
            assert_eq!(
                result.completed_flows, result.total_flows,
                "{name}: all flows must finish ({} of {})",
                result.completed_flows, result.total_flows
            );
            assert!(result.utilization > 0.0, "{name}: some goodput");
            assert!(
                result.fct.overall.is_some(),
                "{name}: summary must be non-empty"
            );
            let overall = result.fct.overall.as_ref().unwrap();
            assert!(overall.p99 >= 1.0, "{name}: slowdown is at least 1");
            assert!(
                overall.p99 < 1_000.0,
                "{name}: slowdown should be sane, got {}",
                overall.p99
            );
        }
    }

    #[test]
    fn bfc_generates_pauses_under_incast_pressure() {
        let topo = fat_tree(FatTreeParams::tiny());
        // A 16-to-1 incast of 1 MB into host 0 forces per-flow pauses.
        let hosts = topo.hosts();
        let trace = bfc_workloads::concurrent_long_flows(&hosts, hosts[0], 7, 200_000);
        let config = quick_config(Scheme::bfc());
        let result = run_experiment(&topo, &trace, &config);
        assert_eq!(result.completed_flows, result.total_flows);
        assert!(
            result.policy_stats.pauses > 0,
            "an incast must trigger per-flow pauses"
        );
        assert!(result.policy_stats.resumes > 0);
        assert_eq!(result.drops, 0, "BFC with PFC backstop must not drop");
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let topo = fat_tree(FatTreeParams::tiny());
        let trace = tiny_trace(&topo, 9);
        let a = run_experiment(&topo, &trace, &quick_config(Scheme::bfc()));
        let b = run_experiment(&topo, &trace, &quick_config(Scheme::bfc()));
        assert_eq!(a.completed_flows, b.completed_flows);
        assert_eq!(a.end_time, b.end_time);
        let pa: Vec<f64> = a.fct.p99_series().iter().map(|(_, y)| *y).collect();
        let pb: Vec<f64> = b.fct.p99_series().iter().map(|(_, y)| *y).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn occupancy_is_sampled() {
        let topo = fat_tree(FatTreeParams::tiny());
        let trace = tiny_trace(&topo, 5);
        let result = run_experiment(&topo, &trace, &quick_config(Scheme::Dcqcn { window: true, sfq: false }));
        assert!(!result.occupancy.is_empty());
        assert_eq!(
            result.peak_queue_samples.len(),
            result.occupied_queue_samples.len()
        );
        assert!(result.completion_rate() > 0.99);
    }
}
