//! The end-to-end simulation driver.
//!
//! [`run_experiment`] builds switches and hosts for a topology according to a
//! [`Scheme`], injects a workload trace, runs the discrete-event loop to
//! completion (bounded by a drain deadline) and collects every metric the
//! paper reports into an [`ExperimentResult`].

use bfc_metrics::fct::{FctRecord, FctSummary};
use bfc_metrics::recovery::{RecoveryMetrics, RecoveryTracker};
use bfc_metrics::registry::{labeled, MetricsRegistry};
use bfc_metrics::safety::{SafetyConfig, SafetyReport, SafetyTracker};
use bfc_metrics::series::{OccupancySeries, UtilizationTracker};
use bfc_metrics::Hist;
use bfc_net::config::SwitchConfig;
use bfc_net::dynamics::{FaultEvent, FaultSchedule, LinkAction, LinkStateMap};
use bfc_net::event::{FifoSink, NetEvent, NetSink};
use bfc_net::packet::{vfid_for_flow, PacketKind};
use bfc_net::policy::{PolicyStats, ProbeStats};
use bfc_net::trace::{FlightRecorder, FlightTrace, Recording, TraceEvent, TraceFilter};
use bfc_net::routing::RoutingTables;
use bfc_net::switch::Switch;
use bfc_net::topology::Topology;
use bfc_net::types::{FlowId, NodeId};
use bfc_sim::shard::{BatchPolicy, EpochStats};
use bfc_sim::{run_until, EventQueue, SimDuration, SimTime, Simulation};
use bfc_transport::{FlowSpec, Host, HostConfig};
use bfc_workloads::TraceFlow;

use std::sync::Arc;

use crate::scheme::Scheme;

/// How the **serial** engine keys simultaneous events.
///
/// [`RankMode::Ranked`] attaches [`NetEvent::canon_rank`] to every push, the
/// order the sharded engine reproduces; [`RankMode::Fifo`] pushes rank 0 and
/// lets `(time, push order)` decide — skipping the rank computation and
/// keeping the calendar queue on its scalar-sort fast path. The two modes
/// produce bit-identical `ExperimentResult`s (pinned by
/// `tests/determinism.rs`); the sharded engine always uses ranked keys
/// regardless of this setting.
///
/// The build-time default is `Ranked`; compiling `bfc-experiments` with the
/// `fifo-rank` feature flips the default to `Fifo` for rank-free single-core
/// builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankMode {
    /// Content-derived canonical rank on every event (the sharded order).
    Ranked,
    /// Rank elision: `(time, push order)` FIFO keys, serial engine only.
    Fifo,
}

impl RankMode {
    /// True for [`RankMode::Fifo`].
    pub fn is_fifo(self) -> bool {
        matches!(self, RankMode::Fifo)
    }
}

impl Default for RankMode {
    fn default() -> Self {
        if cfg!(feature = "fifo-rank") {
            RankMode::Fifo
        } else {
            RankMode::Ranked
        }
    }
}

/// Experiment parameters independent of the workload trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Seed controlling every random choice (ECN marking, queue picks).
    pub seed: u64,
    /// MTU in bytes (the paper uses 1 KB).
    pub mtu: u32,
    /// Physical queues per egress port (ignored by Ideal-FQ, which uses
    /// 1000).
    pub queues_per_port: usize,
    /// Shared buffer per switch in bytes.
    pub buffer_bytes: u64,
    /// Measurement window: the span covered by the trace.
    pub horizon: SimDuration,
    /// Extra time after the last arrival to let flows finish.
    pub drain: SimDuration,
    /// Buffer-occupancy sampling interval.
    pub sample_interval: SimDuration,
    /// Scheduled link faults / repairs / rate changes. Empty (the default)
    /// is bit-identical to a run of this build with no dynamics at all — the
    /// link-state checks short-circuit and nothing else changes.
    pub dynamics: FaultSchedule,
    /// Event key mode for the serial engine (see [`RankMode`]). Ignored by
    /// the sharded engine, which always uses ranked keys.
    pub rank_mode: RankMode,
    /// Whether the sharded engine's conservative driver may batch multiple
    /// epoch windows between leader decisions (see
    /// [`bfc_sim::shard::BatchPolicy`]). On or off, results are
    /// bit-identical; batching only collapses barrier crossings in
    /// cross-shard-quiescent stretches of the run.
    pub epoch_batching: bool,
    /// Thresholds for the safety detectors (PFC deadlock hold, livelock
    /// horizon, pause-storm window). Analysis-only — judging the run's
    /// observations differently never changes the run itself.
    pub safety: SafetyConfig,
    /// Flight-recorder capacity: `Some(n)` records the last `n` trace
    /// events (per shard, under sharding); `None` (the default) disables
    /// tracing entirely. Observability-only — on or off, results are
    /// bit-identical, and the setting is deliberately excluded from the
    /// snapshot fingerprint so resume works across a tracing toggle.
    pub trace_capacity: Option<usize>,
    /// Record-time trace filter: only events the filter admits enter the
    /// flight-recorder ring (filtered events are not ring drops — they were
    /// never candidates). `None` records everything. Meaningless without
    /// [`ExperimentConfig::trace_capacity`]. Observability-only and excluded
    /// from the snapshot fingerprint, like the capacity itself.
    pub trace_filter: Option<TraceFilter>,
}

impl ExperimentConfig {
    /// Paper defaults for a given scheme and trace length.
    pub fn new(scheme: Scheme, horizon: SimDuration) -> Self {
        ExperimentConfig {
            scheme,
            seed: 1,
            mtu: 1_000,
            queues_per_port: 32,
            buffer_bytes: 12_000_000,
            horizon,
            drain: horizon * 4,
            sample_interval: SimDuration::from_micros(10),
            dynamics: FaultSchedule::default(),
            rank_mode: RankMode::default(),
            epoch_batching: true,
            safety: SafetyConfig::default(),
            trace_capacity: None,
            trace_filter: None,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the switch buffer size.
    pub fn with_buffer_bytes(mut self, bytes: u64) -> Self {
        self.buffer_bytes = bytes;
        self
    }

    /// Overrides the number of physical queues per port.
    pub fn with_queues_per_port(mut self, queues: usize) -> Self {
        self.queues_per_port = queues;
        self
    }

    /// Installs a fault schedule (link down/up, degradation, flapping).
    pub fn with_dynamics(mut self, dynamics: FaultSchedule) -> Self {
        self.dynamics = dynamics;
        self
    }

    /// Overrides the serial engine's event key mode.
    pub fn with_rank_mode(mut self, mode: RankMode) -> Self {
        self.rank_mode = mode;
        self
    }

    /// Enables or disables adaptive epoch batching in the sharded engine.
    pub fn with_epoch_batching(mut self, on: bool) -> Self {
        self.epoch_batching = on;
        self
    }

    /// Overrides the safety-detector thresholds.
    pub fn with_safety(mut self, safety: SafetyConfig) -> Self {
        self.safety = safety;
        self
    }

    /// Enables the flight recorder with the given ring capacity.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Installs a record-time trace filter (see [`TraceFilter`]).
    pub fn with_trace_filter(mut self, filter: TraceFilter) -> Self {
        self.trace_filter = Some(filter);
        self
    }

    /// The epoch driver policy this config selects.
    pub fn batch_policy(&self) -> BatchPolicy {
        if self.epoch_batching {
            BatchPolicy::default()
        } else {
            BatchPolicy::Off
        }
    }
}

/// Everything measured in one run.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Scheme name (paper legend).
    pub scheme: String,
    /// Per-size-bucket FCT slowdown summary (non-incast flows).
    pub fct: FctSummary,
    /// Raw per-flow records (including incast flows).
    pub records: Vec<FctRecord>,
    /// Switch buffer occupancy samples (one per switch per sample tick).
    pub occupancy: OccupancySeries,
    /// Largest single physical-queue occupancy seen at each sample tick
    /// (bytes) — the quantity of Fig. 10.
    pub peak_queue_samples: Vec<f64>,
    /// Highest number of occupied physical queues on any port, per sample
    /// tick — the quantity of Fig. 11a.
    pub occupied_queue_samples: Vec<f64>,
    /// Network utilization (goodput / aggregate host capacity).
    pub utilization: f64,
    /// Average fraction of time switch egresses spent PFC-paused.
    pub pfc_pause_fraction: f64,
    /// Aggregated queue-policy statistics across all switches.
    pub policy_stats: PolicyStats,
    /// Packets dropped at switch buffers.
    pub drops: u64,
    /// Flows that completed before the drain deadline.
    pub completed_flows: usize,
    /// Flows in the trace.
    pub total_flows: usize,
    /// Simulated time at which the run ended.
    pub end_time: SimTime,
    /// Fault-recovery metrics (all zero / `None` for a run without dynamics).
    pub recovery: RecoveryMetrics,
    /// Safety analysis: PFC deadlocks, pause-storm metrics, livelock.
    pub safety: SafetyReport,
    /// Epoch-driver counters (all zero for a serial run): batches, windows,
    /// barriers, widened batches and boundary events. Observability only —
    /// never part of any bit-identity comparison, since a resumed run only
    /// counts its post-snapshot epochs.
    pub epochs: EpochStats,
    /// The unified counter/gauge registry: per-switch, per-port, per-scheme
    /// and engine-internal series, merged deterministically across shards.
    /// Observability only — never part of any bit-identity comparison.
    pub registry: MetricsRegistry,
    /// Flight-recorder trace in canonical `(time, rank, seq)` order, or
    /// `None` when tracing was off. Observability only — never part of any
    /// bit-identity comparison.
    pub flight: Option<FlightTrace>,
}

impl ExperimentResult {
    /// Fraction of trace flows that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.total_flows == 0 {
            1.0
        } else {
            self.completed_flows as f64 / self.total_flows as f64
        }
    }

    /// Folds engine-level counters into the registry once they are known:
    /// the event queue's calendar-overflow count and the epoch-driver stats
    /// (zeros for serial runs, recorded all the same so output is uniform).
    pub(crate) fn record_engine_counters(&mut self, queue_overflow_pushes: u64) {
        self.registry
            .add_counter("bfc_engine_queue_overflow_pushes", queue_overflow_pushes);
        self.registry
            .add_counter("bfc_engine_epoch_batches", self.epochs.batches);
        self.registry
            .add_counter("bfc_engine_epoch_windows", self.epochs.windows);
        self.registry
            .add_counter("bfc_engine_epoch_barriers", self.epochs.barriers);
        self.registry
            .add_counter("bfc_engine_epoch_widened", self.epochs.widened);
        self.registry
            .add_counter("bfc_engine_epoch_boundary_events", self.epochs.boundary_events);
        // Epoch widths are powers of two under the driver's doubling policy,
        // so replaying each width bucket as `count` observations of `2^i`
        // reconstructs the exact distribution.
        let mut widths = Hist::new();
        for (i, &count) in self.epochs.width_hist.iter().enumerate() {
            if count > 0 {
                widths.observe_n(1u64 << i, count);
            }
        }
        self.registry.merge_hist("bfc_engine_epoch_width", &widths);
    }
}

pub(crate) struct FlowMeta {
    pub(crate) spec: FlowSpec,
    pub(crate) start: SimTime,
    pub(crate) ideal_fct: SimDuration,
    pub(crate) is_incast: bool,
}

/// Node dispatch table: every `NodeId` is dense, so switches and hosts live
/// in vectors indexed by node id — per-event dispatch is a bounds-checked
/// array access instead of a hash lookup, and iteration order for metrics is
/// the (deterministic) node order.
///
/// The same struct serves both engines: the serial engine builds one
/// `FabricSim` holding every node, the sharded engine builds one per shard
/// with `None` in every slot the shard does not own. All handler code is
/// locality-agnostic — it simply skips `None` slots — so the two engines
/// execute identical per-event logic.
pub(crate) struct FabricSim<'a> {
    pub(crate) topo: &'a Topology,
    pub(crate) routes: RoutingTables,
    pub(crate) link_state: LinkStateMap,
    pub(crate) dynamics: &'a [FaultEvent],
    pub(crate) switches: Vec<Option<Switch>>,
    pub(crate) hosts: Vec<Option<Host>>,
    /// Immutable per-flow metadata, computed once per run and shared by
    /// every shard (`Arc`: N shards must not multiply the O(trace)
    /// ideal-FCT route walks or the table's memory).
    pub(crate) flows: Arc<Vec<FlowMeta>>,
    /// Per-flow completion instants observed by *this* sim — a flow
    /// completes in the one sim owning its destination host.
    pub(crate) flow_completed: Vec<Option<SimTime>>,
    /// FCT slowdown histogram (units: slowdown × 1000, so the floor of 1.0
    /// lands at bucket value 1000) over non-incast completions observed by
    /// this sim. Each flow completes in exactly one sim, so the cross-shard
    /// merge is an exact disjoint union.
    pub(crate) fct_hist: Hist,
    pub(crate) occupancy: OccupancySeries,
    pub(crate) peak_queue_samples: Vec<f64>,
    pub(crate) occupied_queue_samples: Vec<f64>,
    pub(crate) sample_until: SimTime,
    pub(crate) completed: usize,
    pub(crate) recovery: RecoveryTracker,
    /// Safety observations (PFC wait-for edges, unconditional goodput
    /// ticks). Each sim records pause edges only for nodes it owns, so the
    /// per-edge log order is the engine's deterministic processing order and
    /// shard merges reproduce the serial log exactly.
    pub(crate) safety: SafetyTracker,
    /// Whether this sim records the schedule-derived recovery metrics
    /// (fault instants, reroute count). Every shard applies dynamics to its
    /// own link-state/routing replica, but only one may *count* them, or the
    /// merged metrics would multiply by the shard count. True for the serial
    /// engine and shard 0.
    pub(crate) record_dynamics_metrics: bool,
    /// Serial-engine rank elision (see [`RankMode`]): when true, the
    /// [`Simulation`] impl wraps the global queue in a [`FifoSink`] so
    /// events carry rank 0. The sharded engine never consults this flag —
    /// it dispatches through its own ranked boundary-routing sink.
    pub(crate) fifo_rank: bool,
    /// Flight recorder capturing this sim's trace events, or `None` when
    /// tracing is off. [`FabricSim::dispatch`] wraps the sink in a
    /// [`Recording`] only when this is `Some`, so the off path stays
    /// zero-cost.
    pub(crate) recorder: Option<FlightRecorder>,
}

impl FabricSim<'_> {
    fn take_samples(&mut self, now: SimTime) {
        if now <= self.sample_until {
            let mut max_queue = 0u64;
            let mut max_occupied = 0usize;
            for sw in self.switches.iter().flatten() {
                self.occupancy.record(sw.buffer().occupancy());
                for p in 0..sw.num_ports() {
                    let port = sw.port(p as u32);
                    max_occupied = max_occupied.max(port.occupied_queue_count());
                    for q in 0..port.num_queues() {
                        max_queue = max_queue.max(port.queue_bytes(q));
                    }
                }
            }
            self.peak_queue_samples.push(max_queue as f64);
            self.occupied_queue_samples.push(max_occupied as f64);
        }
        let delivered: u64 = self
            .hosts
            .iter()
            .flatten()
            .map(|h| h.counters().rx_data_bytes)
            .sum();
        // The livelock detector needs goodput on every run; the recovery
        // tracker keeps its historical dynamics-only gating.
        self.safety.record_goodput(now, delivered);
        if !self.dynamics.is_empty() {
            self.recovery.record_goodput(now, delivered);
        }
    }

    /// Applies one fault-schedule event: mutates the live link state, updates
    /// the affected switch/host ports (flushing dead egresses), and recomputes
    /// routing over the surviving links.
    fn apply_dynamics(&mut self, now: SimTime, action: LinkAction, queue: &mut impl NetSink) {
        let endpoints = self
            .link_state
            .apply(self.topo, &action)
            .expect("fault schedule was validated against the topology");
        for ep in endpoints {
            let idx = ep.node.index();
            match action {
                LinkAction::Down { .. } => {
                    if let Some(sw) = self.switches[idx].as_mut() {
                        // Flushed data packets are counted in the switch's
                        // own `blackholed` counter, folded into the recovery
                        // metrics at the end of the run.
                        let _ = sw.handle_link_down(now, ep.port, queue);
                    } else if let Some(host) = self.hosts[idx].as_mut() {
                        host.set_uplink_up(now, false, queue);
                    }
                }
                LinkAction::Up { .. } => {
                    if let Some(sw) = self.switches[idx].as_mut() {
                        sw.handle_link_up(now, ep.port, queue);
                    } else if let Some(host) = self.hosts[idx].as_mut() {
                        host.set_uplink_up(now, true, queue);
                    }
                }
                LinkAction::SetRate { gbps, .. } => {
                    if let Some(sw) = self.switches[idx].as_mut() {
                        sw.set_port_rate(ep.port, gbps);
                    } else if let Some(host) = self.hosts[idx].as_mut() {
                        host.set_uplink_rate(gbps);
                    }
                }
            }
        }
        // Deterministic re-convergence: recompute shortest paths over the
        // surviving links. Rendezvous-hash ECMP keeps surviving flows on
        // their old paths (stable rehash). Rate changes leave the up/down
        // graph — and therefore the tables — untouched, so only down/up
        // events pay the recompute (and count as reroutes).
        if !matches!(action, LinkAction::SetRate { .. }) {
            let link_state = &self.link_state;
            self.routes =
                RoutingTables::compute_filtered(self.topo, |n, p| link_state.is_up(n, p));
            if self.record_dynamics_metrics {
                self.recovery.record_reroute();
            }
        }
        if self.record_dynamics_metrics {
            self.recovery.record_fault(now);
        }
    }

    /// Handles one event. Generic over the sink so the serial engine passes
    /// the global queue and the sharded engine passes its boundary router.
    /// With tracing on, the sink is wrapped in a [`Recording`] first so
    /// every emission seam below reports into the flight recorder.
    pub(crate) fn dispatch(&mut self, now: SimTime, event: NetEvent, queue: &mut impl NetSink) {
        match self.recorder.take() {
            Some(mut rec) => {
                let mut sink = Recording {
                    inner: queue,
                    recorder: &mut rec,
                };
                self.dispatch_inner(now, event, &mut sink);
                self.recorder = Some(rec);
            }
            None => self.dispatch_inner(now, event, queue),
        }
    }

    fn dispatch_inner(&mut self, now: SimTime, event: NetEvent, queue: &mut impl NetSink) {
        match event {
            NetEvent::FlowArrival { index } => {
                let meta = &self.flows[index];
                let spec = meta.spec;
                // Receiver registration and sender start touch disjoint
                // state; under sharding each half runs in the shard owning
                // that host (both shards see the same `FlowArrival`).
                if let Some(dst) = self.hosts[spec.dst.index()].as_mut() {
                    dst.expect_flow(spec);
                }
                if let Some(src) = self.hosts[spec.src.index()].as_mut() {
                    src.start_flow(now, spec, queue);
                }
            }
            NetEvent::PacketArrive { node, port, packet } => {
                // In-flight packets are blackholed if the cable they crossed
                // is down at their delivery instant.
                if !self.link_state.all_up() && !self.link_state.is_up(node, port) {
                    if packet.is_data() {
                        self.recovery.add_blackholed(1);
                    }
                    return;
                }
                // A delivered PFC frame from `packet.src` pauses/resumes
                // this node's egress toward it: a wait-for edge
                // `node → packet.src` for the deadlock detector.
                if let PacketKind::PfcPause { pause } = &packet.kind {
                    self.safety.record_pause(now, node, packet.src, *pause);
                    queue.trace(
                        now,
                        TraceEvent::PfcDelivered {
                            node,
                            src: packet.src,
                            pause: *pause,
                        },
                    );
                }
                let routes = &self.routes;
                if let Some(sw) = self.switches[node.index()].as_mut() {
                    sw.handle_packet(now, port, packet, routes, queue);
                } else if let Some(host) = self.hosts[node.index()].as_mut() {
                    host.handle_packet(now, packet, queue);
                }
            }
            NetEvent::TxComplete { node, port } => {
                if let Some(sw) = self.switches[node.index()].as_mut() {
                    sw.handle_tx_complete(now, port, queue);
                } else if let Some(host) = self.hosts[node.index()].as_mut() {
                    host.handle_tx_complete(now, queue);
                }
            }
            NetEvent::PauseFrameTimer { node, port } => {
                if let Some(sw) = self.switches[node.index()].as_mut() {
                    sw.handle_pause_timer(now, port, queue);
                }
            }
            NetEvent::HostTimer { node, timer } => {
                if let Some(host) = self.hosts[node.index()].as_mut() {
                    host.handle_timer(now, timer, queue);
                }
            }
            NetEvent::FlowCompleted { flow } => {
                let done = &mut self.flow_completed[flow.index()];
                if done.is_none() {
                    *done = Some(now);
                    self.completed += 1;
                    let meta = &self.flows[flow.index()];
                    if !meta.is_incast {
                        // Integer milli-slowdown keeps floats off the hot
                        // path; the 1000 floor mirrors `FctRecord`'s
                        // slowdown-is-at-least-1 convention.
                        let fct = now.saturating_since(meta.start).as_picos() as u128;
                        let ideal = meta.ideal_fct.as_picos().max(1) as u128;
                        let milli = (fct * 1000 / ideal).max(1000);
                        self.fct_hist.observe(milli.min(u64::MAX as u128) as u64);
                    }
                }
            }
            NetEvent::Sample => {
                // The whole tick schedule is seeded up front (see
                // `seed_samples`), so the handler only records; rescheduling
                // here would give later ticks run-time sequence numbers and
                // break the FIFO-keying tie order against pre-seeded faults.
                self.take_samples(now);
            }
            NetEvent::NetworkDynamics { index } => {
                let action = self.dynamics[index].action;
                // Every shard applies dynamics to its own replica; only the
                // counting sim traces them, or merged traces would hold one
                // copy per shard.
                if self.record_dynamics_metrics {
                    match action {
                        LinkAction::Down { a, b } => {
                            queue.trace(now, TraceEvent::LinkDown { a, b });
                        }
                        LinkAction::Up { a, b } => {
                            queue.trace(now, TraceEvent::LinkUp { a, b });
                        }
                        LinkAction::SetRate { a, b, .. } => {
                            queue.trace(now, TraceEvent::LinkRate { a, b });
                        }
                    }
                    if !matches!(action, LinkAction::SetRate { .. }) {
                        queue.trace(now, TraceEvent::Reroute { index: index as u32 });
                    }
                }
                self.apply_dynamics(now, action, queue);
            }
        }
    }
}

impl Simulation for FabricSim<'_> {
    type Event = NetEvent;

    fn handle(&mut self, now: SimTime, event: NetEvent, queue: &mut EventQueue<NetEvent>) {
        if self.fifo_rank {
            self.dispatch(now, event, &mut FifoSink(queue));
        } else {
            self.dispatch(now, event, queue);
        }
    }
}

/// Pushes a driver seed event (flow arrival, sample tick, fault) through the
/// sink matching the serial engine's rank mode, so seeds and in-run events
/// share one keying scheme.
#[inline]
pub(crate) fn seed_send(
    queue: &mut EventQueue<NetEvent>,
    fifo: bool,
    time: SimTime,
    event: NetEvent,
) {
    if fifo {
        FifoSink(queue).send(time, event);
    } else {
        queue.send(time, event);
    }
}

/// The last instant the goodput/occupancy sampler runs to: the horizon for
/// plain runs, through the drain for fault runs so recovery stays visible in
/// the sampled series.
pub(crate) fn goodput_until(config: &ExperimentConfig) -> SimTime {
    let sample_until = SimTime::ZERO + config.horizon;
    if config.dynamics.is_empty() {
        sample_until
    } else {
        sample_until + config.drain
    }
}

/// Seeds the complete sample-tick schedule up front. Seeding order is part
/// of the determinism contract for `RankMode::Fifo`: every control event
/// (flow arrivals, then sample ticks, then faults) is pushed before the run
/// starts, in canonical-rank-tag order, so FIFO sequence numbers break
/// same-timestamp ties exactly like the canonical rank does.
pub(crate) fn seed_samples(queue: &mut EventQueue<NetEvent>, fifo: bool, config: &ExperimentConfig) {
    let until = goodput_until(config);
    let mut t = SimTime::ZERO + config.sample_interval;
    seed_send(queue, fifo, t, NetEvent::Sample);
    while t + config.sample_interval <= until {
        t = t + config.sample_interval;
        seed_send(queue, fifo, t, NetEvent::Sample);
    }
}

/// Per-run values shared by every node regardless of which engine (serial or
/// sharded) — or which shard — builds it.
pub(crate) struct Frame {
    pub(crate) routes: RoutingTables,
    pub(crate) hosts_list: Vec<NodeId>,
    pub(crate) host_gbps: f64,
    pub(crate) switch_config: SwitchConfig,
    pub(crate) host_config: HostConfig,
}

impl Frame {
    /// Derives the shared per-run values from the experiment inputs.
    pub(crate) fn new(topo: &Topology, config: &ExperimentConfig) -> Frame {
        let routes = RoutingTables::compute(topo);
        let hosts_list = topo.hosts();
        assert!(hosts_list.len() >= 2, "need at least two hosts");

        // Base RTT: take the farthest-apart host pair we can cheaply identify
        // (first and last host, which sit in different racks / data centers
        // in every built-in topology).
        let far_a = hosts_list[0];
        let far_b = *hosts_list.last().expect("non-empty");
        let base_rtt = routes.base_rtt(topo, far_a, far_b, config.mtu);
        let host_gbps = topo.host_uplink(far_a).link.rate_gbps;
        let bdp_bytes = (host_gbps * 1e9 / 8.0 * base_rtt.as_secs_f64()) as u64;

        Frame {
            switch_config: config.scheme.switch_config(
                config.queues_per_port,
                config.buffer_bytes,
                config.mtu,
            ),
            host_config: config.scheme.host_config(config.mtu, base_rtt, bdp_bytes),
            routes,
            hosts_list,
            host_gbps,
        }
    }
}

/// Builds the switches whose node id satisfies `keep` (dense node-indexed
/// table, `None` elsewhere). Seeds derive from the node id alone, so a shard
/// building a subset gets byte-identical switches to the serial engine.
pub(crate) fn build_switches(
    topo: &Topology,
    config: &ExperimentConfig,
    frame: &Frame,
    keep: impl Fn(NodeId) -> bool,
) -> Vec<Option<Switch>> {
    let mut switches: Vec<Option<Switch>> = (0..topo.num_nodes()).map(|_| None).collect();
    for sw_id in topo.switches() {
        if !keep(sw_id) {
            continue;
        }
        let policy = config.scheme.make_policy(config.seed ^ sw_id.0 as u64);
        switches[sw_id.index()] = Some(Switch::new(
            sw_id,
            frame.switch_config.clone(),
            topo.ports(sw_id),
            policy,
            config.seed,
        ));
    }
    switches
}

/// Builds the hosts whose node id satisfies `keep`.
pub(crate) fn build_hosts(
    topo: &Topology,
    frame: &Frame,
    keep: impl Fn(NodeId) -> bool,
) -> Vec<Option<Host>> {
    let mut hosts: Vec<Option<Host>> = (0..topo.num_nodes()).map(|_| None).collect();
    for h in &frame.hosts_list {
        if !keep(*h) {
            continue;
        }
        let uplink = topo.host_uplink(*h);
        hosts[h.index()] = Some(Host::new(
            *h,
            uplink.link,
            (uplink.peer, uplink.peer_port),
            frame.host_config,
        ));
    }
    hosts
}

/// Builds the per-flow metadata (spec, ideal FCT) for the whole trace — pure
/// per-flow computation, identical in every engine and shard.
pub(crate) fn build_flow_metas(
    topo: &Topology,
    trace: &[TraceFlow],
    config: &ExperimentConfig,
    frame: &Frame,
) -> Vec<FlowMeta> {
    trace
        .iter()
        .enumerate()
        .map(|(i, t)| build_flow_meta(topo, i, t, config, frame))
        .collect()
}

/// Builds the metadata for one trace flow at position `index`. Also used by
/// the streaming ingest path ([`crate::service::serve_experiment`]), which
/// admits flows one at a time.
pub(crate) fn build_flow_meta(
    topo: &Topology,
    index: usize,
    t: &TraceFlow,
    config: &ExperimentConfig,
    frame: &Frame,
) -> FlowMeta {
    let flow_id = FlowId(index as u32);
    // Fail loudly on malformed hand-built traces (the CSV replay path
    // validates earlier); a switch endpoint would otherwise be silently
    // skipped by the locality-tolerant FlowArrival handler.
    assert!(
        topo.is_host(t.src) && topo.is_host(t.dst),
        "trace flow {index} endpoints must be hosts ({:?} -> {:?})",
        t.src,
        t.dst
    );
    FlowMeta {
        spec: FlowSpec {
            flow: flow_id,
            src: t.src,
            dst: t.dst,
            size_bytes: t.size_bytes,
            vfid: vfid_for_flow(flow_id, config.seed, config.scheme.num_vfids()),
        },
        start: t.start,
        ideal_fct: frame.routes.ideal_fct(
            topo,
            t.src,
            t.dst,
            t.size_bytes,
            config.mtu,
            flow_id.0 as u64,
        ),
        is_incast: t.is_incast,
    }
}

/// Builds one `FabricSim` covering the nodes that satisfy `keep`.
pub(crate) fn build_sim<'a>(
    topo: &'a Topology,
    flows: Arc<Vec<FlowMeta>>,
    config: &'a ExperimentConfig,
    frame: &Frame,
    keep: impl Fn(NodeId) -> bool,
    record_dynamics_metrics: bool,
) -> FabricSim<'a> {
    let sample_until = SimTime::ZERO + config.horizon;
    FabricSim {
        topo,
        routes: frame.routes.clone(),
        link_state: LinkStateMap::new(topo),
        dynamics: config.dynamics.events(),
        switches: build_switches(topo, config, frame, &keep),
        hosts: build_hosts(topo, frame, &keep),
        flow_completed: vec![None; flows.len()],
        fct_hist: Hist::new(),
        flows,
        occupancy: OccupancySeries::new(),
        peak_queue_samples: Vec::new(),
        occupied_queue_samples: Vec::new(),
        sample_until,
        completed: 0,
        recovery: RecoveryTracker::new(),
        safety: SafetyTracker::new(),
        record_dynamics_metrics,
        fifo_rank: config.rank_mode.is_fifo(),
        recorder: config.trace_capacity.map(|cap| match &config.trace_filter {
            Some(filter) => FlightRecorder::with_filter(cap, filter.clone()),
            None => FlightRecorder::new(cap),
        }),
    }
}

/// Folds one switch's forwarding counters into `registry` under
/// `bfc_switch_*{node="..."}` series. Shared by the end-of-run assembly and
/// the live exposition in service mode.
pub(crate) fn record_switch_counters(registry: &mut MetricsRegistry, sw: &Switch) {
    let node = sw.id.0.to_string();
    let by_node: &[(&str, &str)] = &[("node", node.as_str())];
    let c = sw.counters();
    registry.add_counter(labeled("bfc_switch_rx_packets", by_node), c.rx_packets);
    registry.add_counter(labeled("bfc_switch_drops", by_node), c.drops);
    registry.add_counter(labeled("bfc_switch_ecn_marked", by_node), c.ecn_marked);
    registry.add_counter(labeled("bfc_switch_pfc_pauses_sent", by_node), c.pfc_pauses_sent);
    registry.add_counter(
        labeled("bfc_switch_flow_pause_frames_sent", by_node),
        c.flow_pause_frames_sent,
    );
    registry.add_counter(labeled("bfc_switch_blackholed", by_node), c.blackholed);
    // Queue-depth-at-enqueue distribution. Switches that never forwarded a
    // data packet stay out, matching the paused-port gauge policy of not
    // drowning big fabrics in all-zero series.
    if !sw.depth_hist().is_empty() {
        registry.merge_hist(labeled("bfc_switch_queue_depth_bytes", by_node), sw.depth_hist());
    }
}

/// Merges one or more finished `FabricSim`s (one from the serial engine, one
/// per shard from the sharded engine) into an [`ExperimentResult`]. Every
/// merge is either a disjoint union over nodes/flows in deterministic node
/// order or an exact integer sum/max, so N sims produce bit-identical output
/// to the single serial sim covering the same run.
pub(crate) fn assemble_result(
    topo: &Topology,
    trace: &[TraceFlow],
    config: &ExperimentConfig,
    frame: &Frame,
    mut sims: Vec<FabricSim<'_>>,
    end_time: SimTime,
) -> ExperimentResult {
    assert!(!sims.is_empty(), "at least one sim");

    // Per-flow completion: each flow completes in exactly one sim (the one
    // owning its destination host).
    let records: Vec<FctRecord> = (0..trace.len())
        .filter_map(|i| {
            let done = sims.iter().find_map(|s| s.flow_completed[i])?;
            let meta = &sims[0].flows[i];
            Some(FctRecord {
                flow: meta.spec.flow,
                size_bytes: meta.spec.size_bytes,
                fct: done.saturating_since(meta.start),
                ideal_fct: meta.ideal_fct,
                is_incast: meta.is_incast,
            })
        })
        .collect();
    let fct = FctSummary::from_records(&records);
    let completed: usize = sims.iter().map(|s| s.completed).sum();

    let elapsed = if end_time > SimTime::ZERO {
        end_time.saturating_since(SimTime::ZERO)
    } else {
        config.horizon
    };
    let measured = if elapsed < config.horizon {
        config.horizon
    } else {
        elapsed
    };

    // Scalar per-node metrics, iterated in node order (each node lives in
    // exactly one sim). The registry is built in the same pass and in the
    // same order, so serial and sharded runs produce equal registries.
    let mut tracker = UtilizationTracker::new(frame.hosts_list.len(), frame.host_gbps, measured);
    let mut policy_stats = PolicyStats::default();
    let mut drops = 0;
    let mut switch_blackholed = 0;
    let mut registry = MetricsRegistry::new();
    let mut probe = ProbeStats::default();
    for idx in 0..topo.num_nodes() {
        for sim in &sims {
            if let Some(host) = &sim.hosts[idx] {
                tracker.add_delivered_bytes(host.counters().rx_data_bytes);
            }
            if let Some(sw) = &sim.switches[idx] {
                policy_stats.merge(&sw.policy_stats());
                drops += sw.counters().drops;
                // Switch-local blackholes (dead-egress flushes, unroutable
                // arrivals) join the driver's in-flight drops in the
                // recovery metrics.
                switch_blackholed += sw.counters().blackholed;
                record_switch_counters(&mut registry, sw);
                let node = sw.id.0.to_string();
                let ps = sw.probe_stats();
                probe.lookups += ps.lookups;
                probe.probe_steps += ps.probe_steps;
                probe.max_probe = probe.max_probe.max(ps.max_probe);
                for p in 0..sw.num_ports() {
                    let paused = sw.port(p as u32).pfc_paused_time(end_time);
                    tracker.add_pfc_paused(paused);
                    // Ports that never paused stay out of the registry, or
                    // big fabrics would drown in all-zero series.
                    if paused.as_secs_f64() > 0.0 {
                        let port = p.to_string();
                        registry.set_gauge(
                            labeled(
                                "bfc_port_pfc_paused_seconds",
                                &[("node", node.as_str()), ("port", port.as_str())],
                            ),
                            paused.as_secs_f64(),
                        );
                    }
                }
            }
        }
    }

    // Per-scheme policy counters (the quantities behind Figs. 7, 12 and 13).
    let scheme_name = config.scheme.name();
    let by_scheme: &[(&str, &str)] = &[("scheme", scheme_name.as_str())];
    registry.add_counter(
        labeled("bfc_policy_flow_assignments", by_scheme),
        policy_stats.flow_assignments,
    );
    registry.add_counter(
        labeled("bfc_policy_collisions", by_scheme),
        policy_stats.collisions,
    );
    registry.add_counter(
        labeled("bfc_policy_table_overflows", by_scheme),
        policy_stats.table_overflows,
    );
    registry.add_counter(labeled("bfc_policy_pauses", by_scheme), policy_stats.pauses);
    registry.add_counter(labeled("bfc_policy_resumes", by_scheme), policy_stats.resumes);

    // Flow-table probe behavior, aggregated across every switch.
    registry.add_counter("bfc_flow_table_lookups", probe.lookups);
    registry.add_counter("bfc_flow_table_probe_steps", probe.probe_steps);
    registry.set_gauge("bfc_flow_table_max_probe", probe.max_probe as f64);

    // Recovery accumulators merge exactly: blackhole counts sum, the fault /
    // reroute log lives in the one sim with `record_dynamics_metrics`, and
    // per-tick goodput deltas sum across shards.
    let recovery_parts: Vec<RecoveryTracker> = sims
        .iter_mut()
        .map(|s| std::mem::take(&mut s.recovery))
        .collect();

    // Safety observations merge the same way: pause edges are recorded by
    // the owning sim only, goodput ticks sum per instant, and the replay in
    // `finish` sorts canonically — bit-identical at any shard count.
    let safety_parts: Vec<SafetyTracker> = sims
        .iter_mut()
        .map(|s| std::mem::take(&mut s.safety))
        .collect();

    // FCT slowdown histogram: each flow completes in exactly one sim, so
    // merging per-sim histograms is an exact disjoint union (must happen
    // before the sampled-series block below may consume `sims`).
    let mut fct_hist = Hist::new();
    for s in &sims {
        fct_hist.merge(&s.fct_hist);
    }

    // Flight traces: concatenating the per-shard rings and restoring
    // canonical `(time, rank, seq)` order reproduces exactly the stream one
    // serial recorder would have captured (same merge argument as above —
    // equal `(time, rank)` implies one owning shard). A serial run's single
    // trace goes through the same canonicalization.
    let flight_parts: Vec<FlightTrace> = sims
        .iter_mut()
        .filter_map(|s| s.recorder.take())
        .map(|r| r.finish())
        .collect();
    let flight = if flight_parts.is_empty() {
        None
    } else {
        Some(FlightTrace::merge(flight_parts))
    };

    // Sampled series. Each sim records one occupancy value per owned switch
    // per tick (in node order) and one peak/occupied maximum per tick;
    // interleaving by switch owner / taking elementwise maxima reconstructs
    // exactly what one sim covering all switches would have recorded.
    let ticks = sims[0].peak_queue_samples.len();
    let (occupancy, peak_queue_samples, occupied_queue_samples) = if sims.len() == 1 {
        let s = sims
            .into_iter()
            .next()
            .expect("non-empty sims");
        (s.occupancy, s.peak_queue_samples, s.occupied_queue_samples)
    } else {
        for s in &sims {
            assert_eq!(s.peak_queue_samples.len(), ticks, "shards sample in lockstep");
            assert_eq!(s.occupied_queue_samples.len(), ticks);
        }
        let owner_of: Vec<usize> = topo
            .switches()
            .iter()
            .map(|sw| {
                sims.iter()
                    .position(|s| s.switches[sw.index()].is_some())
                    .expect("every switch is owned by exactly one shard")
            })
            .collect();
        let occupancy = OccupancySeries::merge_interleaved(
            &sims.iter().map(|s| &s.occupancy).collect::<Vec<_>>(),
            &owner_of,
            ticks,
        );
        let mut peak = vec![0.0f64; ticks];
        let mut occupied = vec![0.0f64; ticks];
        for s in &sims {
            for (acc, v) in peak.iter_mut().zip(&s.peak_queue_samples) {
                *acc = acc.max(*v);
            }
            for (acc, v) in occupied.iter_mut().zip(&s.occupied_queue_samples) {
                *acc = acc.max(*v);
            }
        }
        (occupancy, peak, occupied)
    };

    let mut recovery_tracker = RecoveryTracker::merge(recovery_parts);
    recovery_tracker.add_blackholed(switch_blackholed);
    let recovery = recovery_tracker.finish();
    let merged_safety = SafetyTracker::merge(safety_parts);
    // Pause-duration histogram: close any still-open pauses at the run's end
    // so a deadlocked edge contributes its full hold time.
    let pause_hist = merged_safety.pause_durations(end_time);
    let safety = merged_safety.finish(&config.safety, end_time, trace.len() - completed);

    // Run-level rollups and the safety verdict.
    registry.add_counter("bfc_flows_completed", completed as u64);
    registry.add_counter("bfc_flows_total", trace.len() as u64);
    registry.add_counter("bfc_safety_pause_frames", safety.pause_frames);
    registry.add_counter("bfc_safety_cycles_formed", safety.cycles_formed);
    registry.add_counter("bfc_safety_deadlocks", safety.deadlocks);
    registry.add_counter("bfc_safety_violations", safety.violations());
    registry.add_counter("bfc_recovery_blackholed_packets", recovery.blackholed_packets);
    registry.add_counter("bfc_recovery_reroutes", recovery.reroutes);
    registry.set_gauge("bfc_utilization", tracker.utilization());
    registry.set_gauge("bfc_pfc_pause_fraction", tracker.pfc_pause_fraction());
    registry.set_gauge("bfc_safety_max_pause_depth", f64::from(safety.max_pause_depth));

    // Native distribution metrics: recorded even when empty so the family
    // set is uniform across runs.
    registry.merge_hist("bfc_fct_slowdown_milli", &fct_hist);
    registry.merge_hist("bfc_pause_duration_ns", &pause_hist);

    ExperimentResult {
        scheme: config.scheme.name(),
        fct,
        records,
        occupancy,
        peak_queue_samples,
        occupied_queue_samples,
        utilization: tracker.utilization(),
        pfc_pause_fraction: tracker.pfc_pause_fraction(),
        policy_stats,
        drops,
        completed_flows: completed,
        total_flows: trace.len(),
        end_time,
        recovery,
        safety,
        epochs: EpochStats::default(),
        registry,
        flight,
    }
}

/// Runs one experiment: the given trace over `topo` under `config.scheme`.
///
/// This is a **pure, `Send` unit of work**: every switch, host, event queue
/// and RNG is built from the inputs (all randomness derives from
/// `config.seed`), nothing global is touched, and the result is a plain
/// owned value — which is what lets [`crate::ParallelRunner`] fan
/// independent runs across threads with bit-identical output. For within-run
/// parallelism over one large fabric, see
/// [`crate::sharded::run_experiment_sharded`], which produces bit-identical
/// results to this function at any shard count.
pub fn run_experiment(
    topo: &Topology,
    trace: &[TraceFlow],
    config: &ExperimentConfig,
) -> ExperimentResult {
    if let Err(e) = config.dynamics.validate(topo) {
        panic!("invalid fault schedule for this topology: {e}");
    }
    let frame = Frame::new(topo, config);
    let flows = Arc::new(build_flow_metas(topo, trace, config, &frame));
    let mut sim = build_sim(topo, flows, config, &frame, |_| true, true);

    let fifo = config.rank_mode.is_fifo();
    let mut queue = EventQueue::with_capacity(trace.len() * 4 + 16);
    for (i, t) in trace.iter().enumerate() {
        seed_send(&mut queue, fifo, t.start, NetEvent::FlowArrival { index: i });
    }
    seed_samples(&mut queue, fifo, config);
    for (index, event) in config.dynamics.events().iter().enumerate() {
        seed_send(&mut queue, fifo, event.at, NetEvent::NetworkDynamics { index });
    }

    let deadline = SimTime::ZERO + config.horizon + config.drain;
    let end_time = run_until(&mut sim, &mut queue, deadline);
    let mut result = assemble_result(topo, trace, config, &frame, vec![sim], end_time);
    result.record_engine_counters(queue.overflow_pushes());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfc_net::topology::{fat_tree, FatTreeParams};
    use bfc_workloads::{synthesize, TraceParams, Workload};

    fn tiny_trace(topo: &Topology, seed: u64) -> Vec<TraceFlow> {
        let params = TraceParams::background_only(
            Workload::Google,
            0.3,
            SimDuration::from_micros(200),
            seed,
        );
        synthesize(&topo.hosts(), &params)
    }

    fn quick_config(scheme: Scheme) -> ExperimentConfig {
        ExperimentConfig::new(scheme, SimDuration::from_micros(200))
    }

    #[test]
    fn every_scheme_completes_a_small_trace() {
        let topo = fat_tree(FatTreeParams::tiny());
        let trace = tiny_trace(&topo, 3);
        assert!(!trace.is_empty());
        let mut schemes = Scheme::paper_lineup();
        schemes.push(Scheme::bfc_vfid());
        schemes.push(Scheme::SfqInfBuffer);
        for scheme in schemes {
            let name = scheme.name();
            let result = run_experiment(&topo, &trace, &quick_config(scheme));
            assert_eq!(
                result.completed_flows, result.total_flows,
                "{name}: all flows must finish ({} of {})",
                result.completed_flows, result.total_flows
            );
            assert!(result.utilization > 0.0, "{name}: some goodput");
            assert!(
                result.fct.overall.is_some(),
                "{name}: summary must be non-empty"
            );
            let overall = result.fct.overall.as_ref().unwrap();
            assert!(overall.p99 >= 1.0, "{name}: slowdown is at least 1");
            assert!(
                overall.p99 < 1_000.0,
                "{name}: slowdown should be sane, got {}",
                overall.p99
            );
        }
    }

    #[test]
    fn bfc_generates_pauses_under_incast_pressure() {
        let topo = fat_tree(FatTreeParams::tiny());
        // A 16-to-1 incast of 1 MB into host 0 forces per-flow pauses.
        let hosts = topo.hosts();
        let trace = bfc_workloads::concurrent_long_flows(&hosts, hosts[0], 7, 200_000);
        let config = quick_config(Scheme::bfc());
        let result = run_experiment(&topo, &trace, &config);
        assert_eq!(result.completed_flows, result.total_flows);
        assert!(
            result.policy_stats.pauses > 0,
            "an incast must trigger per-flow pauses"
        );
        assert!(result.policy_stats.resumes > 0);
        assert_eq!(result.drops, 0, "BFC with PFC backstop must not drop");
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let topo = fat_tree(FatTreeParams::tiny());
        let trace = tiny_trace(&topo, 9);
        let a = run_experiment(&topo, &trace, &quick_config(Scheme::bfc()));
        let b = run_experiment(&topo, &trace, &quick_config(Scheme::bfc()));
        assert_eq!(a.completed_flows, b.completed_flows);
        assert_eq!(a.end_time, b.end_time);
        let pa: Vec<f64> = a.fct.p99_series().iter().map(|(_, y)| *y).collect();
        let pb: Vec<f64> = b.fct.p99_series().iter().map(|(_, y)| *y).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn occupancy_is_sampled() {
        let topo = fat_tree(FatTreeParams::tiny());
        let trace = tiny_trace(&topo, 5);
        let result = run_experiment(&topo, &trace, &quick_config(Scheme::Dcqcn { window: true, sfq: false }));
        assert!(!result.occupancy.is_empty());
        assert_eq!(
            result.peak_queue_samples.len(),
            result.occupied_queue_samples.len()
        );
        assert!(result.completion_rate() > 0.99);
    }
}
