//! Adversarial scenario search: a seeded random fuzzer over (topology,
//! workload, fault schedule) that hunts for the run a congestion-control
//! scheme handles *worst*, then greedily shrinks the offender to a minimal
//! reproducer.
//!
//! The search space is a [`FuzzCase`]: one of the built-in fat-tree
//! topologies, a synthetic [`TraceParams`] workload (flow-size CDF, load,
//! optional incast) and one to three structured link faults (down/up pulse,
//! flapping cable, rate degradation) on fabric cables. Cases are drawn with
//! the `bfc-testkit` generator machinery — one deterministic
//! [`SimRng`](bfc_sim::SimRng) stream per case index via
//! [`case_seed`](bfc_testkit::case_seed) — so a (seed, budget) pair always
//! explores the same cases and `fuzz` is a pure function.
//!
//! Each case is scored by an [`Objective`]: worst tail slowdown (p99 or
//! p99.9), deepest goodput dip, slowest recovery, or any safety violation
//! from the [`bfc_metrics::safety`] detectors (PFC deadlock, livelock). The
//! argmax case is then shrunk: candidates that drop faults, disable incast,
//! shorten the trace or simplify the workload are accepted while they retain
//! at least 90% of the offending score (and, for the safety objective, remain
//! violating). The result is a [`Reproducer`] — a small self-contained text
//! file (key-value header plus `at …` scenario directives, round-tripping
//! through [`ScenarioSpec`]'s parser) that replays the exact run, serially or
//! sharded, bit-identically.

use std::fmt;

use bfc_metrics::percentile;
use bfc_net::topology::{fat_tree, FatTreeParams, Topology};
use bfc_sim::{SimDuration, SimRng};
use bfc_testkit::{case_seed, Gen};
use bfc_workloads::{synthesize, ArrivalShape, IncastSchedule, TraceParams, Workload};

use crate::runner::{run_experiment, ExperimentConfig, ExperimentResult};
use crate::scenario::ScenarioSpec;
use crate::scheme::Scheme;
use crate::sharded::{run_experiment_auto, run_experiment_sharded};

/// Score assigned when a run completes no measurable flows at all — worse
/// than any finite slowdown, so "the network delivered nothing" wins the
/// argmax over merely slow runs.
const NO_COMPLETIONS_SCORE: f64 = 1e9;

/// Score floor for one safety violation. Dominates every latency-derived
/// tiebreak term so a violating case always outranks a non-violating one.
const VIOLATION_SCORE: f64 = 1e6;

/// Fraction of the original offender's score a shrink candidate must retain
/// to be adopted.
const SHRINK_KEEP: f64 = 0.9;

/// What the fuzzer maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Worst 99th-percentile FCT slowdown over non-incast flows.
    TailP99,
    /// Worst 99.9th-percentile FCT slowdown over non-incast flows.
    TailP999,
    /// Deepest relative goodput dip after a fault.
    GoodputDip,
    /// Slowest goodput recovery after the last fault (a run that never
    /// recovers scores the whole measurement window).
    RecoveryTime,
    /// Any safety violation (PFC deadlock, livelock), with pause-propagation
    /// depth as the tiebreak among non-violating runs.
    Safety,
}

impl Objective {
    /// All objectives, for CLI help and exhaustive tests.
    pub fn all() -> [Objective; 5] {
        [
            Objective::TailP99,
            Objective::TailP999,
            Objective::GoodputDip,
            Objective::RecoveryTime,
            Objective::Safety,
        ]
    }

    /// The stable key used on command lines and in reproducer files.
    pub fn cli_key(&self) -> &'static str {
        match self {
            Objective::TailP99 => "p99",
            Objective::TailP999 => "p999",
            Objective::GoodputDip => "dip",
            Objective::RecoveryTime => "recovery",
            Objective::Safety => "safety",
        }
    }

    /// Parses a [`Objective::cli_key`] back into an objective.
    pub fn from_cli_key(key: &str) -> Option<Objective> {
        Objective::all().into_iter().find(|o| o.cli_key() == key)
    }

    /// Scores one run; higher is worse-for-the-network (better for the
    /// fuzzer). `window` is the full measurement window (horizon + drain),
    /// used to score runs that never recover.
    pub fn score(&self, result: &ExperimentResult, window: SimDuration) -> f64 {
        match self {
            Objective::TailP99 => result
                .fct
                .overall
                .as_ref()
                .map(|o| o.p99)
                .unwrap_or(NO_COMPLETIONS_SCORE),
            Objective::TailP999 => {
                let slowdowns: Vec<f64> = result
                    .records
                    .iter()
                    .filter(|r| !r.is_incast)
                    .map(|r| r.slowdown())
                    .collect();
                percentile(&slowdowns, 99.9).unwrap_or(NO_COMPLETIONS_SCORE)
            }
            Objective::GoodputDip => result.recovery.goodput_dip_depth,
            Objective::RecoveryTime => match result.recovery.time_to_recover {
                Some(ttr) => ttr.as_secs_f64(),
                // Faults were injected but goodput never came back: as slow
                // as a recovery can be within the window.
                None if result.recovery.faults > 0 => window.as_secs_f64(),
                None => 0.0,
            },
            Objective::Safety => {
                result.safety.violations() as f64 * VIOLATION_SCORE
                    + f64::from(result.safety.max_pause_depth)
            }
        }
    }
}

/// One structured link fault. Fields are kept in repair-friendly integer
/// units (`cable` is an index into the topology's fabric-cable list modulo
/// its length; times are microseconds) so shrinking can lower them freely
/// without ever producing an unresolvable scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Cable dies at `at_us`, repaired `dur_us` later.
    DownUp {
        /// Fabric-cable index (taken modulo the cable count).
        cable: u64,
        /// Fault instant, microseconds into the run.
        at_us: u64,
        /// Outage duration in microseconds.
        dur_us: u64,
    },
    /// Cable flaps: down at `from_us`, toggling every `period_us`, for
    /// `toggles` periods.
    Flap {
        /// Fabric-cable index (taken modulo the cable count).
        cable: u64,
        /// First down instant, microseconds into the run.
        from_us: u64,
        /// Toggle period in microseconds.
        period_us: u64,
        /// Number of toggle periods in the flap window.
        toggles: u64,
    },
    /// Cable degrades to `gbps10 / 10` Gbps at `at_us`, restored to its
    /// native rate `hold_us` later.
    Rate {
        /// Fabric-cable index (taken modulo the cable count).
        cable: u64,
        /// Degradation instant, microseconds into the run.
        at_us: u64,
        /// Degraded rate in tenths of Gbps (clamped below the native rate).
        gbps10: u64,
        /// How long the degradation holds, in microseconds.
        hold_us: u64,
    },
}

/// One point of the search space: a topology, a synthetic workload and a
/// small set of link faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Index into [`FuzzConfig::topos`] (modulo its length; shrinks toward
    /// the first, smallest entry).
    pub topo_idx: usize,
    /// Flow-size CDF of the background traffic.
    pub workload: Workload,
    /// Background offered load.
    pub load: f64,
    /// Extra incast load; `0.0` disables incast entirely.
    pub incast_load: f64,
    /// Senders per incast event.
    pub fan_in: usize,
    /// Aggregate bytes per incast event.
    pub incast_bytes: u64,
    /// Trace duration (the experiment horizon) in microseconds.
    pub duration_us: u64,
    /// Seed for both the trace synthesizer and the experiment.
    pub trace_seed: u64,
    /// The injected faults (always at least one).
    pub faults: Vec<Fault>,
}

/// One fabric cable: endpoint labels plus the native link rate (used to
/// restore after a rate-degradation fault).
#[derive(Debug, Clone, PartialEq)]
struct Cable {
    a: String,
    b: String,
    gbps: f64,
}

/// Builds the topology a fuzz case or reproducer names. The names match
/// `trace-tool`'s `--topo` values.
pub fn topology_by_name(name: &str) -> Option<Topology> {
    let params = match name {
        "tiny" => FatTreeParams::tiny(),
        "t1" => FatTreeParams::t1(),
        "t2" => FatTreeParams::t2(),
        _ => return None,
    };
    Some(fat_tree(params))
}

/// Enumerates the switch-to-switch cables of a topology, each once, in
/// deterministic (node id, peer id) order.
fn fabric_cables(topo: &Topology) -> Vec<Cable> {
    let mut cables = Vec::new();
    for node in topo.switches() {
        for port in topo.ports(node) {
            if !topo.is_host(port.peer) && node < port.peer {
                cables.push(Cable {
                    a: topo.label(node).to_string(),
                    b: topo.label(port.peer).to_string(),
                    gbps: port.link.rate_gbps,
                });
            }
        }
    }
    cables
}

fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

impl FuzzCase {
    /// The synthetic-trace parameters this case describes. `host_gbps` comes
    /// from the topology's access links.
    fn trace_params(&self, host_gbps: f64) -> TraceParams {
        TraceParams {
            workload: self.workload,
            load: self.load,
            incast_load: self.incast_load,
            incast_fan_in: self.fan_in,
            incast_total_bytes: self.incast_bytes,
            duration: us(self.duration_us),
            host_gbps,
            seed: self.trace_seed,
            arrivals: ArrivalShape::paper_default(),
            incast_schedule: IncastSchedule::paper_default(),
        }
    }

    /// Expands the structured faults into a [`ScenarioSpec`] against the
    /// given topology's fabric cables. Every field combination yields a
    /// resolvable scenario: indices wrap, times clamp inside the run and
    /// degraded rates clamp below the native rate.
    fn scenario(&self, cables: &[Cable]) -> ScenarioSpec {
        let dur = self.duration_us.max(2);
        let clamp_at = |at: u64| at.clamp(1, dur - 1);
        let mut spec = ScenarioSpec::new();
        for fault in &self.faults {
            match *fault {
                Fault::DownUp { cable, at_us, dur_us } => {
                    let c = &cables[(cable as usize) % cables.len()];
                    let at = clamp_at(at_us);
                    spec = spec
                        .down(us(at), c.a.clone(), c.b.clone())
                        .up(us(at + dur_us.max(1)), c.a.clone(), c.b.clone());
                }
                Fault::Flap { cable, from_us, period_us, toggles } => {
                    let c = &cables[(cable as usize) % cables.len()];
                    let from = clamp_at(from_us);
                    let period = period_us.max(1);
                    let until = from + period * toggles.clamp(2, 16);
                    spec = spec.flap(c.a.clone(), c.b.clone(), us(from), us(period), us(until));
                }
                Fault::Rate { cable, at_us, gbps10, hold_us } => {
                    let c = &cables[(cable as usize) % cables.len()];
                    let at = clamp_at(at_us);
                    let degraded = (gbps10.max(1) as f64 / 10.0).min(c.gbps / 2.0);
                    spec = spec
                        .rate(us(at), c.a.clone(), c.b.clone(), degraded)
                        .rate(us(at + hold_us.max(1)), c.a.clone(), c.b.clone(), c.gbps);
                }
            }
        }
        spec
    }
}

/// The deterministic [`FuzzCase`] generator (a `bfc-testkit` [`Gen`]):
/// `generate` draws a case from one RNG stream, `shrink` proposes strictly
/// simpler variants — fewer faults, no incast, pulses instead of flaps,
/// shorter runs, lighter load, the smallest topology — best first.
pub struct CaseGen {
    num_topos: usize,
}

impl CaseGen {
    /// A generator over `num_topos` topology choices (index 0 should be the
    /// smallest — shrinking moves toward it).
    pub fn new(num_topos: usize) -> CaseGen {
        assert!(num_topos > 0, "CaseGen requires at least one topology");
        CaseGen { num_topos }
    }

    fn gen_fault(&self, rng: &mut SimRng, dur: u64) -> Fault {
        let cable = rng.next_below(1 << 16);
        match rng.next_index(3) {
            0 => Fault::DownUp {
                cable,
                at_us: 5 + rng.next_below(dur * 3 / 4),
                dur_us: 5 + rng.next_below(75),
            },
            1 => Fault::Flap {
                cable,
                from_us: 5 + rng.next_below(dur / 2),
                period_us: 5 + rng.next_below(25),
                toggles: 2 + rng.next_below(4),
            },
            _ => Fault::Rate {
                cable,
                at_us: 5 + rng.next_below(dur * 3 / 4),
                gbps10: 5 + rng.next_below(245),
                hold_us: 10 + rng.next_below(90),
            },
        }
    }
}

impl Gen for CaseGen {
    type Value = FuzzCase;

    fn generate(&self, rng: &mut SimRng) -> FuzzCase {
        let duration_us = 60 + rng.next_below(181);
        let incast = rng.next_f64() < 0.5;
        let faults = (0..1 + rng.next_index(3))
            .map(|_| self.gen_fault(rng, duration_us))
            .collect();
        FuzzCase {
            topo_idx: rng.next_index(self.num_topos),
            workload: *rng.choose(&[Workload::Google, Workload::FbHadoop, Workload::WebSearch]),
            load: 0.2 + rng.next_f64() * 0.7,
            incast_load: if incast { 0.05 + rng.next_f64() * 0.45 } else { 0.0 },
            fan_in: 2 + rng.next_below(15) as usize,
            incast_bytes: 20_000 + rng.next_below(480_000),
            duration_us,
            trace_seed: 1 + rng.next_below(1_000_000),
            faults,
        }
    }

    fn shrink(&self, case: &FuzzCase) -> Vec<FuzzCase> {
        let mut out = Vec::new();
        // Fewer faults first: the dominant simplification.
        if case.faults.len() > 1 {
            for drop in 0..case.faults.len() {
                let mut c = case.clone();
                c.faults.remove(drop);
                out.push(c);
            }
        }
        // A flap is a pulse train; try the single pulse.
        for (i, fault) in case.faults.iter().enumerate() {
            if let Fault::Flap { cable, from_us, period_us, .. } = *fault {
                let mut c = case.clone();
                c.faults[i] = Fault::DownUp {
                    cable,
                    at_us: from_us,
                    dur_us: period_us,
                };
                out.push(c);
            }
        }
        if case.incast_load > 0.0 {
            let mut c = case.clone();
            c.incast_load = 0.0;
            out.push(c);
        }
        if case.duration_us > 60 {
            for target in [60, (60 + case.duration_us) / 2] {
                if target < case.duration_us {
                    let mut c = case.clone();
                    c.duration_us = target;
                    out.push(c);
                }
            }
        }
        if case.load - 0.2 > 0.05 {
            for target in [0.2, (0.2 + case.load) / 2.0] {
                let mut c = case.clone();
                c.load = target;
                out.push(c);
            }
        }
        if case.topo_idx > 0 {
            let mut c = case.clone();
            c.topo_idx = 0;
            out.push(c);
        }
        if case.incast_load > 0.0 && case.fan_in > 2 {
            let mut c = case.clone();
            c.fan_in = 2;
            out.push(c);
        }
        out.dedup();
        out
    }
}

/// Fuzzer settings: the seed and evaluation budgets, what to maximize, the
/// scheme under test, and which topologies the search may draw.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; (seed, budget, objective, scheme, topos) fully determines
    /// the outcome.
    pub seed: u64,
    /// Number of random cases to evaluate in the search phase.
    pub budget: usize,
    /// Maximum extra evaluations the shrink phase may spend.
    pub shrink_evals: usize,
    /// What to maximize.
    pub objective: Objective,
    /// Scheme under test.
    pub scheme: Scheme,
    /// Topology names the search draws from, smallest first (shrinking moves
    /// toward index 0).
    pub topos: Vec<String>,
}

impl FuzzConfig {
    /// Defaults: seed 1, budget 24, shrink budget 24, p99 objective, BFC on
    /// the tiny fat-tree.
    pub fn new() -> FuzzConfig {
        FuzzConfig {
            seed: 1,
            budget: 24,
            shrink_evals: 24,
            objective: Objective::TailP99,
            scheme: Scheme::bfc(),
            topos: vec!["tiny".to_string()],
        }
    }
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig::new()
    }
}

/// What `fuzz` found: the shrunk worst case, its reproducer form, and the
/// search accounting.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// The shrunk offender.
    pub case: FuzzCase,
    /// Its reproducer form (what gets written to disk).
    pub reproducer: Reproducer,
    /// The shrunk offender's score under the configured objective.
    pub score: f64,
    /// The pre-shrink argmax score.
    pub original_score: f64,
    /// Total experiment evaluations spent (search + shrink).
    pub evals: usize,
    /// How many shrink candidates were adopted.
    pub shrink_steps: usize,
}

/// Evaluates one case under the config's scheme and objective. Honors
/// `BFC_SHARDS` like the rest of the experiment paths.
pub fn evaluate(cfg: &FuzzConfig, case: &FuzzCase) -> Result<(f64, ExperimentResult), String> {
    let repro = Reproducer::from_case(cfg, case)?;
    let result = repro.replay_auto()?;
    let window = us(repro.duration_us) * 5;
    Ok((cfg.objective.score(&result, window), result))
}

/// Runs the seeded random search and greedy shrink. Deterministic: the same
/// config always returns the same outcome, byte-for-byte.
pub fn fuzz(cfg: &FuzzConfig) -> Result<FuzzOutcome, String> {
    if cfg.budget == 0 {
        return Err("fuzz: budget must be at least 1".to_string());
    }
    if cfg.topos.is_empty() {
        return Err("fuzz: at least one topology is required".to_string());
    }
    for name in &cfg.topos {
        if topology_by_name(name).is_none() {
            return Err(format!("fuzz: unknown topology `{name}`"));
        }
    }

    let gen = CaseGen::new(cfg.topos.len());
    let mut evals = 0usize;
    let mut best: Option<(f64, FuzzCase)> = None;
    for i in 0..cfg.budget {
        let mut rng = SimRng::new(case_seed(cfg.seed, i as u32));
        let case = gen.generate(&mut rng);
        let (score, _) = evaluate(cfg, &case)?;
        evals += 1;
        // Strict `>`: ties keep the earliest case, so the outcome does not
        // depend on enumeration quirks.
        if best.as_ref().is_none_or(|(b, _)| score > *b) {
            best = Some((score, case));
        }
    }
    let (original_score, mut cur) = best.expect("budget >= 1 evaluated at least one case");

    // Greedy shrink: adopt any simpler candidate retaining SHRINK_KEEP of
    // the offending score; for the safety objective the candidate must also
    // still violate, otherwise "smaller but harmless" would be accepted.
    let mut bar = original_score * SHRINK_KEEP;
    if cfg.objective == Objective::Safety && original_score >= VIOLATION_SCORE {
        bar = bar.max(VIOLATION_SCORE);
    }
    let mut score = original_score;
    let mut remaining = cfg.shrink_evals;
    let mut shrink_steps = 0usize;
    'restart: loop {
        for cand in gen.shrink(&cur) {
            if remaining == 0 {
                break 'restart;
            }
            remaining -= 1;
            let (s, _) = evaluate(cfg, &cand)?;
            evals += 1;
            if s >= bar {
                cur = cand;
                score = s;
                shrink_steps += 1;
                continue 'restart;
            }
        }
        break;
    }

    let reproducer = Reproducer::from_case(cfg, &cur)?;
    Ok(FuzzOutcome {
        case: cur,
        reproducer,
        score,
        original_score,
        evals,
        shrink_steps,
    })
}

/// The CLI key of a workload, as written in reproducer files.
pub fn workload_cli_key(w: Workload) -> &'static str {
    match w {
        Workload::Google => "google",
        Workload::FbHadoop => "fb-hadoop",
        Workload::WebSearch => "websearch",
    }
}

/// Parses a [`workload_cli_key`] back into a workload.
pub fn workload_from_cli_key(key: &str) -> Option<Workload> {
    [Workload::Google, Workload::FbHadoop, Workload::WebSearch]
        .into_iter()
        .find(|w| workload_cli_key(*w) == key)
}

/// A fully resolved, self-contained worst-case reproducer: everything needed
/// to replay the run, in a small text format (`key value` header lines plus
/// the scenario's own `at …` directives) that round-trips through
/// [`Reproducer::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct Reproducer {
    /// Topology name (`tiny` / `t1` / `t2`).
    pub topo: String,
    /// Scheme under test.
    pub scheme: Scheme,
    /// Objective the case was found under (informational for replays).
    pub objective: Objective,
    /// Background flow-size CDF.
    pub workload: Workload,
    /// Background offered load.
    pub load: f64,
    /// Extra incast load (`0` = no incast).
    pub incast_load: f64,
    /// Senders per incast event.
    pub fan_in: usize,
    /// Aggregate bytes per incast event.
    pub incast_bytes: u64,
    /// Trace duration / experiment horizon in microseconds.
    pub duration_us: u64,
    /// Seed for the trace synthesizer and the experiment.
    pub trace_seed: u64,
    /// The resolved fault scenario.
    pub scenario: ScenarioSpec,
}

impl Reproducer {
    /// Resolves a fuzz case against its topology into reproducer form.
    pub fn from_case(cfg: &FuzzConfig, case: &FuzzCase) -> Result<Reproducer, String> {
        let topo_name = &cfg.topos[case.topo_idx % cfg.topos.len()];
        let topo = topology_by_name(topo_name)
            .ok_or_else(|| format!("fuzz: unknown topology `{topo_name}`"))?;
        let cables = fabric_cables(&topo);
        if cables.is_empty() {
            return Err(format!("fuzz: topology `{topo_name}` has no fabric cables"));
        }
        Ok(Reproducer {
            topo: topo_name.clone(),
            scheme: cfg.scheme.clone(),
            objective: cfg.objective,
            workload: case.workload,
            load: case.load,
            incast_load: case.incast_load,
            fan_in: case.fan_in,
            incast_bytes: case.incast_bytes,
            duration_us: case.duration_us,
            trace_seed: case.trace_seed,
            scenario: case.scenario(&cables),
        })
    }

    /// Parses the text form written by [`Display`](fmt::Display). Header
    /// keys may appear in any order; every line whose first word is not a
    /// known key is handed to the scenario parser.
    pub fn parse(text: &str) -> Result<Reproducer, String> {
        let mut repro = Reproducer {
            topo: "tiny".to_string(),
            scheme: Scheme::bfc(),
            objective: Objective::TailP99,
            workload: Workload::Google,
            load: 0.6,
            incast_load: 0.0,
            fan_in: 2,
            incast_bytes: 20_000,
            duration_us: 300,
            trace_seed: 1,
            scenario: ScenarioSpec::new(),
        };
        let mut scenario_text = String::new();
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let content = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if content.is_empty() {
                continue;
            }
            let (key, value) = content.split_once(char::is_whitespace).unwrap_or((content, ""));
            let value = value.trim();
            let bad = |what: &str| format!("line {line}: bad {what} `{value}`");
            match key {
                "topo" => {
                    topology_by_name(value).ok_or_else(|| bad("topology"))?;
                    repro.topo = value.to_string();
                }
                "scheme" => {
                    repro.scheme = Scheme::from_cli_key(value).ok_or_else(|| bad("scheme"))?;
                }
                "objective" => {
                    repro.objective =
                        Objective::from_cli_key(value).ok_or_else(|| bad("objective"))?;
                }
                "workload" => {
                    repro.workload =
                        workload_from_cli_key(value).ok_or_else(|| bad("workload"))?;
                }
                "load" => repro.load = value.parse().map_err(|_| bad("load"))?,
                "incast-load" => {
                    repro.incast_load = value.parse().map_err(|_| bad("incast-load"))?;
                }
                "fan-in" => repro.fan_in = value.parse().map_err(|_| bad("fan-in"))?,
                "incast-bytes" => {
                    repro.incast_bytes = value.parse().map_err(|_| bad("incast-bytes"))?;
                }
                "duration-us" => {
                    repro.duration_us = value.parse().map_err(|_| bad("duration-us"))?;
                }
                "trace-seed" => {
                    repro.trace_seed = value.parse().map_err(|_| bad("trace-seed"))?;
                }
                // Not a header key: a scenario directive (`at …` / `flap …`).
                _ => {
                    scenario_text.push_str(content);
                    scenario_text.push('\n');
                }
            }
        }
        repro.scenario = ScenarioSpec::parse(&scenario_text).map_err(|e| e.to_string())?;
        Ok(repro)
    }

    /// The trace this reproducer synthesizes and the topology it runs over.
    /// Public so CLI front ends (e.g. `trace-tool scenario` on a committed
    /// reproducer) can run the exact case through their own drivers.
    pub fn materialize(&self) -> Result<(Topology, Vec<bfc_workloads::TraceFlow>, ExperimentConfig), String> {
        let topo = topology_by_name(&self.topo)
            .ok_or_else(|| format!("reproducer: unknown topology `{}`", self.topo))?;
        let hosts = topo.hosts();
        let params = FuzzCase {
            topo_idx: 0,
            workload: self.workload,
            load: self.load,
            incast_load: self.incast_load,
            fan_in: self.fan_in,
            incast_bytes: self.incast_bytes,
            duration_us: self.duration_us,
            trace_seed: self.trace_seed,
            faults: Vec::new(),
        }
        .trace_params(topo.host_uplink(hosts[0]).link.rate_gbps);
        let trace = synthesize(&hosts, &params);
        let schedule = self.scenario.resolve(&topo).map_err(|e| e.to_string())?;
        let config = ExperimentConfig::new(self.scheme.clone(), us(self.duration_us))
            .with_seed(self.trace_seed)
            .with_dynamics(schedule);
        Ok((topo, trace, config))
    }

    /// Replays the reproducer serially (`num_shards <= 1`) or on the sharded
    /// engine. Results are bit-identical across shard counts.
    pub fn replay(&self, num_shards: usize) -> Result<ExperimentResult, String> {
        let (topo, trace, config) = self.materialize()?;
        Ok(if num_shards <= 1 {
            run_experiment(&topo, &trace, &config)
        } else {
            run_experiment_sharded(&topo, &trace, &config, num_shards)
        })
    }

    /// Replays honoring `BFC_SHARDS`, like the other experiment paths.
    pub fn replay_auto(&self) -> Result<ExperimentResult, String> {
        let (topo, trace, config) = self.materialize()?;
        Ok(run_experiment_auto(&topo, &trace, &config))
    }
}

impl fmt::Display for Reproducer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "objective {}", self.objective.cli_key())?;
        writeln!(f, "topo {}", self.topo)?;
        writeln!(f, "scheme {}", self.scheme.cli_key())?;
        writeln!(f, "workload {}", workload_cli_key(self.workload))?;
        writeln!(f, "load {}", self.load)?;
        writeln!(f, "incast-load {}", self.incast_load)?;
        writeln!(f, "fan-in {}", self.fan_in)?;
        writeln!(f, "incast-bytes {}", self.incast_bytes)?;
        writeln!(f, "duration-us {}", self.duration_us)?;
        writeln!(f, "trace-seed {}", self.trace_seed)?;
        write!(f, "{}", self.scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfc_testkit::{int_range, property};

    #[test]
    fn objective_cli_keys_round_trip() {
        for o in Objective::all() {
            assert_eq!(Objective::from_cli_key(o.cli_key()), Some(o));
        }
        assert_eq!(Objective::from_cli_key("p42"), None);
    }

    #[test]
    fn tiny_fat_tree_has_fabric_cables() {
        let topo = topology_by_name("tiny").expect("tiny always builds");
        let cables = fabric_cables(&topo);
        assert!(!cables.is_empty());
        for c in &cables {
            assert!(!c.a.starts_with("host") && !c.b.starts_with("host"));
            assert!(c.gbps > 0.0);
        }
    }

    property! {
        /// Every generated case expands into a scenario that resolves
        /// against its topology — the fuzzer can never draw an unrunnable
        /// point.
        fn generated_cases_always_resolve(seed in int_range(0u64..1_000)) {
            let topo = topology_by_name("tiny").expect("tiny always builds");
            let cables = fabric_cables(&topo);
            let gen = CaseGen::new(1);
            let mut rng = SimRng::new(seed);
            let case = gen.generate(&mut rng);
            assert!(!case.faults.is_empty());
            let spec = case.scenario(&cables);
            assert!(!spec.is_empty());
            spec.resolve(&topo).expect("repaired scenario must resolve");
        }

        /// Shrink candidates stay resolvable and are never identical to the
        /// input case.
        fn shrink_candidates_stay_valid(seed in int_range(0u64..500)) {
            let topo = topology_by_name("tiny").expect("tiny always builds");
            let cables = fabric_cables(&topo);
            let gen = CaseGen::new(1);
            let mut rng = SimRng::new(seed);
            let case = gen.generate(&mut rng);
            for cand in gen.shrink(&case) {
                assert_ne!(cand, case);
                cand.scenario(&cables).resolve(&topo).expect("shrunk scenario must resolve");
            }
        }
    }

    #[test]
    fn reproducer_text_round_trips() {
        let cfg = FuzzConfig::new();
        let gen = CaseGen::new(cfg.topos.len());
        let mut rng = SimRng::new(7);
        let case = gen.generate(&mut rng);
        let repro = Reproducer::from_case(&cfg, &case).expect("tiny case resolves");
        let text = repro.to_string();
        let parsed = Reproducer::parse(&text).expect("display output must parse");
        assert_eq!(parsed, repro);
        // Comments and blank lines are tolerated, like scenario files.
        let commented = format!("# found by fuzz\n\n{text}# trailing note\n");
        assert_eq!(Reproducer::parse(&commented).expect("comments ignored"), repro);
    }

    #[test]
    fn reproducer_rejects_bad_headers() {
        assert!(Reproducer::parse("scheme warp-speed\n").is_err());
        assert!(Reproducer::parse("objective p42\n").is_err());
        assert!(Reproducer::parse("load not-a-number\n").is_err());
        assert!(Reproducer::parse("at nonsense down tor0 spine0\n").is_err());
    }
}
