//! Scenario specifications: human-writable fault schedules.
//!
//! A [`ScenarioSpec`] names links by node *labels* (`"tor0"`, `"spine1"`,
//! `"host17"` — or numeric node ids) and times by human units, and resolves
//! against a concrete [`Topology`] into the [`FaultSchedule`] the experiment
//! driver executes. Build one with the fluent API, or parse the small
//! std-only text format:
//!
//! ```text
//! # one directive per line; blank lines and #-comments are ignored
//! at 100us down tor0 spine0        # cable dies
//! at 300us up   tor0 spine0        # cable repaired
//! at 150us rate tor1 spine1 25     # degrade to 25 Gbps
//! flap tor0 spine1 from 80us every 40us until 280us
//! ```
//!
//! Times are `<integer><unit>` with unit `ps`, `ns`, `us`, `ms` or `s`. A
//! `flap` expands to alternating `down`/`up` events every period, starting
//! down at `from`; a toggle landing exactly on `until` is excluded (the
//! window is half-open), and if the expansion would leave the link down at
//! `until`, a final `up` is appended there, so a flapped link always ends
//! the scenario up. Steps at identical timestamps are applied in spec order
//! ([`FaultSchedule`] sorts stably).
//!
//! The format also round-trips: [`ScenarioSpec`] implements [`Display`],
//! emitting one `at` directive per (expanded) step using the largest time
//! unit that is exact, so `parse(spec.to_string())` reconstructs the same
//! spec. This is what the fuzzer uses to serialize shrunk reproducers.
//!
//! [`Display`]: fmt::Display
//!
//! Canonical shapes used by the failure-sweep figure and the tier-1 tests
//! are provided as constructors: [`ScenarioSpec::single_link_down_up`],
//! [`ScenarioSpec::degraded_link`] and [`ScenarioSpec::flapping_link`].

use std::collections::HashMap;
use std::fmt;

use bfc_net::dynamics::{DynamicsError, FaultEvent, FaultSchedule, LinkAction};
use bfc_net::topology::Topology;
use bfc_net::types::NodeId;
use bfc_sim::{SimDuration, SimTime};

/// What one scenario step does to its link.
#[derive(Debug, Clone, Copy, PartialEq)]
enum StepAction {
    Down,
    Up,
    Rate(f64),
}

/// One resolved-later scenario step: an action on the cable between two
/// named endpoints at a relative instant.
#[derive(Debug, Clone, PartialEq)]
struct Step {
    at: SimDuration,
    a: String,
    b: String,
    action: StepAction,
}

/// A link-dynamics scenario with endpoints still referred to by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioSpec {
    steps: Vec<Step>,
}

/// A line-numbered scenario parse / resolve error.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioError {
    /// 1-based line of the offending directive (0 for builder/resolve errors
    /// not tied to a line).
    pub line: usize,
    /// What went wrong.
    pub kind: ScenarioErrorKind,
}

/// The ways a scenario can be malformed.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioErrorKind {
    /// A directive did not match any known form.
    BadDirective {
        /// The offending text.
        found: String,
    },
    /// A time field failed to parse.
    BadTime {
        /// The offending text.
        value: String,
    },
    /// A rate field failed to parse or was not positive.
    BadRate {
        /// The offending text.
        value: String,
    },
    /// A flap's period was zero or its window was empty.
    BadFlap,
    /// An endpoint name matched no node label or id of the topology.
    UnknownEndpoint {
        /// The name that failed to resolve.
        name: String,
    },
    /// The resolved endpoints are not connected by a cable.
    Dynamics(DynamicsError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        match &self.kind {
            ScenarioErrorKind::BadDirective { found } => write!(
                f,
                "unrecognized directive `{found}` (expected `at <time> down|up|rate <a> <b> [gbps]` \
                 or `flap <a> <b> from <time> every <period> until <time>`)"
            ),
            ScenarioErrorKind::BadTime { value } => write!(
                f,
                "bad time `{value}`: expected <integer><ps|ns|us|ms|s>"
            ),
            ScenarioErrorKind::BadRate { value } => {
                write!(f, "bad rate `{value}`: expected a positive Gbps number")
            }
            ScenarioErrorKind::BadFlap => {
                write!(f, "flap needs a positive period and `from` before `until`")
            }
            ScenarioErrorKind::UnknownEndpoint { name } => {
                write!(f, "`{name}` is neither a node label nor a node id of the topology")
            }
            ScenarioErrorKind::Dynamics(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Parses `<integer><ps|ns|us|ms|s>` into a duration. All arithmetic is
/// checked against the picosecond clock domain, so absurd values are a parse
/// error, never an overflow.
fn parse_time(text: &str) -> Option<SimDuration> {
    let split = text.find(|c: char| !c.is_ascii_digit())?;
    let (digits, unit) = text.split_at(split);
    if digits.is_empty() {
        return None;
    }
    let value: u64 = digits.parse().ok()?;
    let ps_per_unit: u64 = match unit {
        "ps" => 1,
        "ns" => 1_000,
        "us" => 1_000_000,
        "ms" => 1_000_000_000,
        "s" => 1_000_000_000_000,
        _ => return None,
    };
    Some(SimDuration::from_picos(value.checked_mul(ps_per_unit)?))
}

/// Formats a duration as `<integer><unit>` with the largest unit that is
/// exact, the inverse of [`parse_time`]. The `ps` unit makes every
/// representable duration serializable, so `Display` → `parse` is lossless.
fn format_time(d: SimDuration) -> String {
    let ps = d.as_picos();
    let (per, unit) = [
        (1_000_000_000_000u64, "s"),
        (1_000_000_000, "ms"),
        (1_000_000, "us"),
        (1_000, "ns"),
        (1, "ps"),
    ]
    .into_iter()
    .find(|(per, _)| ps % per == 0)
    .expect("everything divides by 1ps");
    format!("{}{unit}", ps / per)
}

/// Serializes back to the text format: one `at` directive per (expanded)
/// step, in spec order. Flaps were expanded at build time, so they reappear
/// as their constituent `down`/`up` steps; parsing the output reconstructs
/// an equal [`ScenarioSpec`]. Rates round-trip exactly (Rust's shortest
/// float repr re-parses to the same bits).
impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            let at = format_time(step.at);
            match step.action {
                StepAction::Down => writeln!(f, "at {at} down {} {}", step.a, step.b)?,
                StepAction::Up => writeln!(f, "at {at} up {} {}", step.a, step.b)?,
                StepAction::Rate(gbps) => {
                    writeln!(f, "at {at} rate {} {} {gbps}", step.a, step.b)?
                }
            }
        }
        Ok(())
    }
}

impl ScenarioSpec {
    /// An empty scenario.
    pub fn new() -> Self {
        ScenarioSpec::default()
    }

    /// Number of (expanded) steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the scenario has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    fn push(mut self, at: SimDuration, a: impl Into<String>, b: impl Into<String>, action: StepAction) -> Self {
        self.steps.push(Step {
            at,
            a: a.into(),
            b: b.into(),
            action,
        });
        self
    }

    /// Takes the `a`–`b` cable down at `at`.
    pub fn down(self, at: SimDuration, a: impl Into<String>, b: impl Into<String>) -> Self {
        self.push(at, a, b, StepAction::Down)
    }

    /// Brings the `a`–`b` cable back up at `at`.
    pub fn up(self, at: SimDuration, a: impl Into<String>, b: impl Into<String>) -> Self {
        self.push(at, a, b, StepAction::Up)
    }

    /// Sets the `a`–`b` cable rate to `gbps` at `at`.
    pub fn rate(
        self,
        at: SimDuration,
        a: impl Into<String>,
        b: impl Into<String>,
        gbps: f64,
    ) -> Self {
        self.push(at, a, b, StepAction::Rate(gbps))
    }

    /// Flaps the `a`–`b` cable: down at `from`, then alternating up/down
    /// every `period` while strictly before `until`; a final `up` at `until`
    /// is appended if the expansion would end with the link down.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `from >= until` — programmer error in
    /// the builder API, like every zero-rate `Link`. The text-format parse
    /// path validates the same condition first and reports
    /// [`ScenarioErrorKind::BadFlap`] instead.
    pub fn flap(
        mut self,
        a: impl Into<String>,
        b: impl Into<String>,
        from: SimDuration,
        period: SimDuration,
        until: SimDuration,
    ) -> Self {
        let (a, b) = (a.into(), b.into());
        assert!(!period.is_zero() && from < until, "flap needs a positive period and a non-empty window");
        let mut at = from;
        let mut down = true;
        while at < until {
            let action = if down { StepAction::Down } else { StepAction::Up };
            self.steps.push(Step {
                at,
                a: a.clone(),
                b: b.clone(),
                action,
            });
            down = !down;
            at += period;
        }
        if down {
            // The loop ended right after an `up`: nothing to repair.
        } else {
            self.steps.push(Step {
                at: until,
                a,
                b,
                action: StepAction::Up,
            });
        }
        self
    }

    /// Canonical shape 1: one cable dies at `down_at` and is repaired at
    /// `up_at`.
    pub fn single_link_down_up(
        a: impl Into<String>,
        b: impl Into<String>,
        down_at: SimDuration,
        up_at: SimDuration,
    ) -> Self {
        let (a, b) = (a.into(), b.into());
        ScenarioSpec::new()
            .down(down_at, a.clone(), b.clone())
            .up(up_at, a, b)
    }

    /// Canonical shape 2: one cable degrades to `gbps` at `at` and is
    /// restored to `restore_gbps` at `restore_at`.
    pub fn degraded_link(
        a: impl Into<String>,
        b: impl Into<String>,
        at: SimDuration,
        gbps: f64,
        restore_at: SimDuration,
        restore_gbps: f64,
    ) -> Self {
        let (a, b) = (a.into(), b.into());
        ScenarioSpec::new()
            .rate(at, a.clone(), b.clone(), gbps)
            .rate(restore_at, a, b, restore_gbps)
    }

    /// Canonical shape 3: one cable flaps from `from` every `period` until
    /// `until` (ending up).
    pub fn flapping_link(
        a: impl Into<String>,
        b: impl Into<String>,
        from: SimDuration,
        period: SimDuration,
        until: SimDuration,
    ) -> Self {
        ScenarioSpec::new().flap(a, b, from, period, until)
    }

    /// Parses the text format (see the module docs). Errors carry the
    /// 1-based line number; malformed input never panics.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let mut spec = ScenarioSpec::new();
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let content = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if content.is_empty() {
                continue;
            }
            let fields: Vec<&str> = content.split_whitespace().collect();
            let bad = |kind| ScenarioError { line, kind };
            let time = |value: &str| {
                parse_time(value).ok_or_else(|| bad(ScenarioErrorKind::BadTime {
                    value: value.to_string(),
                }))
            };
            match fields.as_slice() {
                ["at", t, "down", a, b] => {
                    spec = spec.down(time(t)?, *a, *b);
                }
                ["at", t, "up", a, b] => {
                    spec = spec.up(time(t)?, *a, *b);
                }
                ["at", t, "rate", a, b, gbps] => {
                    let rate: f64 = gbps.parse().map_err(|_| bad(ScenarioErrorKind::BadRate {
                        value: gbps.to_string(),
                    }))?;
                    if !(rate > 0.0) {
                        return Err(bad(ScenarioErrorKind::BadRate {
                            value: gbps.to_string(),
                        }));
                    }
                    spec = spec.rate(time(t)?, *a, *b, rate);
                }
                ["flap", a, b, "from", t0, "every", p, "until", t1] => {
                    let (from, period, until) = (time(t0)?, time(p)?, time(t1)?);
                    if period.is_zero() || from >= until {
                        return Err(bad(ScenarioErrorKind::BadFlap));
                    }
                    spec = spec.flap(*a, *b, from, period, until);
                }
                _ => {
                    return Err(bad(ScenarioErrorKind::BadDirective {
                        found: content.to_string(),
                    }))
                }
            }
        }
        Ok(spec)
    }

    /// Resolves endpoint names against `topo` (labels first, then numeric
    /// ids), checks adjacency and rates, and returns the executable
    /// time-sorted [`FaultSchedule`].
    pub fn resolve(&self, topo: &Topology) -> Result<FaultSchedule, ScenarioError> {
        let mut by_label: HashMap<&str, NodeId> = HashMap::new();
        for node in 0..topo.num_nodes() {
            let id = NodeId(node as u32);
            by_label.insert(topo.label(id), id);
        }
        let lookup = |name: &str| -> Result<NodeId, ScenarioError> {
            if let Some(&id) = by_label.get(name) {
                return Ok(id);
            }
            if let Ok(raw) = name.parse::<u32>() {
                if (raw as usize) < topo.num_nodes() {
                    return Ok(NodeId(raw));
                }
            }
            Err(ScenarioError {
                line: 0,
                kind: ScenarioErrorKind::UnknownEndpoint {
                    name: name.to_string(),
                },
            })
        };
        let mut events = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let a = lookup(&step.a)?;
            let b = lookup(&step.b)?;
            let action = match step.action {
                StepAction::Down => LinkAction::Down { a, b },
                StepAction::Up => LinkAction::Up { a, b },
                StepAction::Rate(gbps) => LinkAction::SetRate { a, b, gbps },
            };
            events.push(FaultEvent {
                at: SimTime::ZERO + step.at,
                action,
            });
        }
        let schedule = FaultSchedule::new(events);
        schedule.validate(topo).map_err(|e| ScenarioError {
            line: 0,
            kind: ScenarioErrorKind::Dynamics(e),
        })?;
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfc_net::topology::{fat_tree, FatTreeParams};

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn text_round_trip_resolves_against_labels() {
        let text = "\
# single failure with repair, a degrade, and a flap
at 100us down tor0 spine0
at 300us up   tor0 spine0   # repaired
at 150us rate tor1 spine1 25

flap tor0 spine1 from 80us every 40us until 200us
";
        let spec = ScenarioSpec::parse(text).expect("valid scenario");
        let topo = fat_tree(FatTreeParams::tiny());
        let schedule = spec.resolve(&topo).expect("labels resolve");
        assert!(!schedule.is_empty());
        // flap 80..200 every 40: down@80 up@120 down@160 + final up@200 = 4.
        assert_eq!(schedule.len(), 3 + 4);
        // Events come out time-sorted.
        let times: Vec<_> = schedule.events().iter().map(|e| e.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(times[0], SimTime::from_micros(80));
    }

    #[test]
    fn numeric_ids_are_accepted() {
        let topo = fat_tree(FatTreeParams::tiny());
        let tor = topo.switches()[0];
        let host = topo.hosts()[0];
        let spec = ScenarioSpec::new().down(us(10), host.0.to_string(), tor.0.to_string());
        let schedule = spec.resolve(&topo).expect("ids resolve");
        assert_eq!(schedule.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = ScenarioSpec::parse("at 10us down tor0 spine0\nat banana down a b\n")
            .expect_err("bad time");
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ScenarioErrorKind::BadTime { .. }));
        assert!(err.to_string().contains("line 2"));

        let err = ScenarioSpec::parse("at 10us explode tor0 spine0\n").expect_err("bad verb");
        assert!(matches!(err.kind, ScenarioErrorKind::BadDirective { .. }));

        let err = ScenarioSpec::parse("at 10us rate tor0 spine0 -3\n").expect_err("bad rate");
        assert!(matches!(err.kind, ScenarioErrorKind::BadRate { .. }));

        let err =
            ScenarioSpec::parse("flap a b from 90us every 0us until 100us\n").expect_err("bad flap");
        assert!(matches!(err.kind, ScenarioErrorKind::BadFlap));
    }

    #[test]
    fn resolve_rejects_unknown_names_and_non_adjacent_links() {
        let topo = fat_tree(FatTreeParams::tiny());
        let err = ScenarioSpec::new()
            .down(us(1), "tor0", "nonsuch")
            .resolve(&topo)
            .expect_err("unknown label");
        assert!(matches!(err.kind, ScenarioErrorKind::UnknownEndpoint { .. }));

        let err = ScenarioSpec::new()
            .down(us(1), "host0", "host1")
            .resolve(&topo)
            .expect_err("hosts are not adjacent");
        assert!(matches!(
            err.kind,
            ScenarioErrorKind::Dynamics(DynamicsError::NotAdjacent { .. })
        ));
    }

    #[test]
    fn flap_always_ends_up() {
        // Expansion ends after a down (down@80 up@120 down@160): a final up
        // is appended at `until`.
        let spec = ScenarioSpec::flapping_link("a", "b", us(80), us(40), us(200));
        assert_eq!(spec.len(), 4);
        let last = spec.steps.last().expect("non-empty");
        assert_eq!((last.at, last.action), (us(200), StepAction::Up));
        // Expansion ends right after an up (down@80 up@120): nothing
        // appended, and no up-after-up pair is produced.
        let spec = ScenarioSpec::flapping_link("a", "b", us(80), us(40), us(160));
        assert_eq!(spec.len(), 2);
        let actions: Vec<StepAction> = spec.steps.iter().map(|s| s.action).collect();
        assert_eq!(actions, vec![StepAction::Down, StepAction::Up]);
        // Window cut mid-down: final up appended at `until`.
        let spec = ScenarioSpec::flapping_link("a", "b", us(80), us(40), us(170));
        let last = spec.steps.last().expect("non-empty");
        assert_eq!((last.at, last.action), (us(170), StepAction::Up));
    }

    #[test]
    fn display_round_trips_losslessly() {
        // Mix of units, a non-integral-unit time (odd picoseconds), a float
        // rate that needs shortest-repr printing, and a flap.
        let spec = ScenarioSpec::new()
            .down(SimDuration::from_picos(1_234_567), "tor0", "spine0")
            .rate(us(150), "tor1", "spine1", 12.625)
            .rate(us(151), "tor1", "spine1", 0.1)
            .up(SimDuration::from_nanos(300), "tor0", "spine0")
            .flap("tor0", "spine1", us(80), us(40), us(200));
        let text = spec.to_string();
        let reparsed = ScenarioSpec::parse(&text).expect("display output parses");
        assert_eq!(spec, reparsed);
        // The largest exact unit is chosen per step.
        assert!(text.contains("at 1234567ps down"), "{text}");
        assert!(text.contains("at 150us rate tor1 spine1 12.625"), "{text}");
        assert!(text.contains("at 300ns up"), "{text}");
    }

    #[test]
    fn flap_toggle_on_until_is_excluded() {
        // 80 + 2*40 = 160 lands exactly on `until`: the window is half-open,
        // so the toggle at 160 is *not* emitted and no repair is needed
        // (expansion already ends up).
        let spec = ScenarioSpec::flapping_link("a", "b", us(80), us(40), us(160));
        let times: Vec<SimDuration> = spec.steps.iter().map(|s| s.at).collect();
        assert_eq!(times, vec![us(80), us(120)]);
        let actions: Vec<StepAction> = spec.steps.iter().map(|s| s.action).collect();
        assert_eq!(actions, vec![StepAction::Down, StepAction::Up]);
        // One period exactly: a single down, repaired at `until`.
        let spec = ScenarioSpec::flapping_link("a", "b", us(80), us(40), us(120));
        let steps: Vec<(SimDuration, StepAction)> =
            spec.steps.iter().map(|s| (s.at, s.action)).collect();
        assert_eq!(
            steps,
            vec![(us(80), StepAction::Down), (us(120), StepAction::Up)]
        );
        // Both survive the serializer round trip.
        assert_eq!(ScenarioSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn identical_timestamps_keep_spec_order() {
        // Two actions on the same cable at the same instant: the stable sort
        // in `FaultSchedule::new` must keep spec order, so the later `up`
        // wins and the link ends the scenario alive.
        let topo = fat_tree(FatTreeParams::tiny());
        let spec = ScenarioSpec::new()
            .down(us(50), "tor0", "spine0")
            .up(us(50), "tor0", "spine0");
        let schedule = spec.resolve(&topo).expect("resolves");
        let kinds: Vec<bool> = schedule
            .events()
            .iter()
            .map(|e| matches!(e.action, LinkAction::Down { .. }))
            .collect();
        assert_eq!(kinds, vec![true, false], "down first, then up");
        // Reversed spec order reverses the outcome — and the serializer
        // preserves it, because Display emits steps in spec order.
        let spec = ScenarioSpec::new()
            .up(us(50), "tor0", "spine0")
            .down(us(50), "tor0", "spine0");
        let reparsed = ScenarioSpec::parse(&spec.to_string()).expect("parses");
        assert_eq!(reparsed, spec);
        let schedule = reparsed.resolve(&topo).expect("resolves");
        let kinds: Vec<bool> = schedule
            .events()
            .iter()
            .map(|e| matches!(e.action, LinkAction::Down { .. }))
            .collect();
        assert_eq!(kinds, vec![false, true], "up first, then down");
    }

    #[test]
    fn picosecond_times_parse() {
        let spec = ScenarioSpec::parse("at 1500ps down tor0 spine0\n").expect("ps unit");
        assert_eq!(spec.steps[0].at, SimDuration::from_picos(1500));
    }

    #[test]
    fn oversized_times_are_parse_errors_not_overflows() {
        let err = ScenarioSpec::parse("at 99999999999999999s down tor0 spine0\n")
            .expect_err("beyond the picosecond clock domain");
        assert!(matches!(err.kind, ScenarioErrorKind::BadTime { .. }));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn canonical_shapes_have_expected_steps() {
        let s = ScenarioSpec::single_link_down_up("tor0", "spine0", us(10), us(50));
        assert_eq!(s.len(), 2);
        let s = ScenarioSpec::degraded_link("tor0", "spine0", us(10), 25.0, us(50), 100.0);
        assert_eq!(s.len(), 2);
        let topo = fat_tree(FatTreeParams::tiny());
        assert!(s.resolve(&topo).is_ok());
    }
}
