//! The virtual-flow hash table (§3.8 "Bookkeeping").
//!
//! BFC keeps state only for flows that currently have packets queued at the
//! switch. The state is stored in a hash table indexed by VFID with 4-entry
//! buckets; the VFID key itself need not be stored because the number of
//! buckets equals the number of VFIDs. Entries are disambiguated within a
//! bucket by their (ingress, egress) pair — two 5-tuples that hash to the
//! same VFID and share ingress and egress are deliberately treated as one
//! flow, exactly as the paper specifies.
//!
//! When a bucket fills up, entries spill into a small associative overflow
//! cache (100 entries by default). When that is also full, the flow cannot be
//! tracked at all and its packets are directed to the per-egress overflow
//! queue; the caller counts these events (they are the "overflows" series of
//! Fig. 13).

use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};

/// Identity of a tracked flow at one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Virtual flow ID (`hash(5-tuple) mod num_vfids`).
    pub vfid: u32,
    /// Local ingress port the flow arrives on.
    pub ingress: u32,
    /// Local egress port the flow leaves from.
    pub egress: u32,
}

/// Per-flow state held while the flow has packets queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEntry {
    /// The flow's identity.
    pub key: FlowKey,
    /// Physical queue assigned at the egress port, if any. A flow whose only
    /// packet rode the high-priority queue has no assignment yet.
    pub queue: Option<usize>,
    /// Packets of this flow currently queued at the switch.
    pub packets_queued: u32,
    /// True if the switch has paused this flow toward its upstream.
    pub paused: bool,
    /// True if the flow is waiting on the to-be-resumed list.
    pub resume_pending: bool,
}

impl FlowEntry {
    fn new(key: FlowKey) -> Self {
        FlowEntry {
            key,
            queue: None,
            packets_queued: 0,
            paused: false,
            resume_pending: false,
        }
    }
}

/// Result of [`FlowTable::lookup_or_insert`].
#[derive(Debug, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The flow was already tracked (index handle for subsequent access).
    Found(EntrySlot),
    /// A new entry was created.
    Inserted(EntrySlot),
    /// Neither the bucket nor the overflow cache had room; the packet must
    /// use the untracked overflow queue.
    TableFull,
}

/// Opaque handle to a table slot, valid until the entry is removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntrySlot {
    /// Entry lives in `bucket[vfid][index]`.
    Bucket {
        /// Bucket index (the VFID).
        vfid: u32,
        /// Slot within the bucket.
        index: usize,
    },
    /// Entry lives in the associative overflow cache at `index`.
    Cache {
        /// Slot within the overflow cache.
        index: usize,
    },
}

/// The flow hash table plus overflow cache.
#[derive(Debug)]
pub struct FlowTable {
    buckets: Vec<Vec<FlowEntry>>,
    bucket_size: usize,
    cache: Vec<FlowEntry>,
    cache_capacity: usize,
    tracked: usize,
    peak_tracked: usize,
}

impl FlowTable {
    /// Creates a table with `num_vfids` buckets of `bucket_size` entries and
    /// an overflow cache of `cache_capacity` entries.
    pub fn new(num_vfids: u32, bucket_size: usize, cache_capacity: usize) -> Self {
        assert!(num_vfids > 0 && bucket_size > 0);
        FlowTable {
            buckets: vec![Vec::new(); num_vfids as usize],
            bucket_size,
            cache: Vec::new(),
            cache_capacity,
            tracked: 0,
            peak_tracked: 0,
        }
    }

    /// Number of flows currently tracked.
    pub fn len(&self) -> usize {
        self.tracked
    }

    /// True if no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.tracked == 0
    }

    /// Highest number of simultaneously tracked flows observed.
    pub fn peak_len(&self) -> usize {
        self.peak_tracked
    }

    /// Finds the slot of `key` if it is tracked.
    pub fn find(&self, key: FlowKey) -> Option<EntrySlot> {
        let bucket = &self.buckets[key.vfid as usize];
        if let Some(index) = bucket.iter().position(|e| e.key == key) {
            return Some(EntrySlot::Bucket {
                vfid: key.vfid,
                index,
            });
        }
        self.cache
            .iter()
            .position(|e| e.key == key)
            .map(|index| EntrySlot::Cache { index })
    }

    /// Looks the flow up, inserting a fresh entry if there is room.
    pub fn lookup_or_insert(&mut self, key: FlowKey) -> LookupOutcome {
        if let Some(slot) = self.find(key) {
            return LookupOutcome::Found(slot);
        }
        if self.buckets[key.vfid as usize].len() < self.bucket_size {
            self.buckets[key.vfid as usize].push(FlowEntry::new(key));
            self.note_insert();
            return LookupOutcome::Inserted(EntrySlot::Bucket {
                vfid: key.vfid,
                index: self.buckets[key.vfid as usize].len() - 1,
            });
        }
        if self.cache.len() < self.cache_capacity {
            self.cache.push(FlowEntry::new(key));
            self.note_insert();
            return LookupOutcome::Inserted(EntrySlot::Cache {
                index: self.cache.len() - 1,
            });
        }
        LookupOutcome::TableFull
    }

    fn note_insert(&mut self) {
        self.tracked += 1;
        self.peak_tracked = self.peak_tracked.max(self.tracked);
    }

    /// Immutable access to a slot.
    pub fn entry(&self, slot: EntrySlot) -> &FlowEntry {
        match slot {
            EntrySlot::Bucket { vfid, index } => &self.buckets[vfid as usize][index],
            EntrySlot::Cache { index } => &self.cache[index],
        }
    }

    /// Mutable access to a slot.
    pub fn entry_mut(&mut self, slot: EntrySlot) -> &mut FlowEntry {
        match slot {
            EntrySlot::Bucket { vfid, index } => &mut self.buckets[vfid as usize][index],
            EntrySlot::Cache { index } => &mut self.cache[index],
        }
    }

    /// Removes a tracked flow (its last packet left the switch). Note that
    /// removal may shift other entries' slots, so callers must not hold
    /// `EntrySlot`s across a removal.
    pub fn remove(&mut self, key: FlowKey) {
        let bucket = &mut self.buckets[key.vfid as usize];
        if let Some(index) = bucket.iter().position(|e| e.key == key) {
            bucket.swap_remove(index);
            self.tracked -= 1;
            return;
        }
        if let Some(index) = self.cache.iter().position(|e| e.key == key) {
            self.cache.swap_remove(index);
            self.tracked -= 1;
        }
    }

    /// Iterates over all tracked entries.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.buckets.iter().flatten().chain(self.cache.iter())
    }

    /// Memory footprint estimate in bytes, assuming the paper's 16-byte
    /// per-entry encoding (used to check the "2% of buffer" claim of §3.8).
    pub fn hardware_size_bytes(&self) -> usize {
        self.buckets.len() * self.bucket_size * 16 + self.cache_capacity * 16
    }

    /// Serializes the tracked entries for snapshot/restore. In-bucket order
    /// is preserved verbatim: `remove` uses `swap_remove`, so slot positions
    /// are part of the observable state.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.buckets.len());
        for bucket in &self.buckets {
            w.put_usize(bucket.len());
            for e in bucket {
                save_entry(w, e);
            }
        }
        w.put_usize(self.cache.len());
        for e in &self.cache {
            save_entry(w, e);
        }
        w.put_usize(self.tracked);
        w.put_usize(self.peak_tracked);
    }

    /// Restores state captured by [`FlowTable::save_state`] into this table,
    /// which must have been built with the same geometry.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let num_buckets = r.get_usize()?;
        if num_buckets != self.buckets.len() {
            return Err(SnapError::Corrupt("flow-table bucket count mismatch"));
        }
        for bucket in &mut self.buckets {
            let n = r.get_count(15)?;
            if n > self.bucket_size {
                return Err(SnapError::Corrupt("flow-table bucket overflow"));
            }
            bucket.clear();
            for _ in 0..n {
                bucket.push(restore_entry(r)?);
            }
        }
        let n = r.get_count(15)?;
        if n > self.cache_capacity {
            return Err(SnapError::Corrupt("flow-table cache overflow"));
        }
        self.cache.clear();
        for _ in 0..n {
            self.cache.push(restore_entry(r)?);
        }
        self.tracked = r.get_usize()?;
        self.peak_tracked = r.get_usize()?;
        if self.tracked != self.buckets.iter().map(Vec::len).sum::<usize>() + self.cache.len() {
            return Err(SnapError::Corrupt("flow-table tracked count mismatch"));
        }
        Ok(())
    }
}

fn save_entry(w: &mut SnapWriter, e: &FlowEntry) {
    w.put_u32(e.key.vfid);
    w.put_u32(e.key.ingress);
    w.put_u32(e.key.egress);
    match e.queue {
        Some(q) => {
            w.put_bool(true);
            w.put_usize(q);
        }
        None => w.put_bool(false),
    }
    w.put_u32(e.packets_queued);
    w.put_bool(e.paused);
    w.put_bool(e.resume_pending);
}

fn restore_entry(r: &mut SnapReader<'_>) -> Result<FlowEntry, SnapError> {
    let key = FlowKey {
        vfid: r.get_u32()?,
        ingress: r.get_u32()?,
        egress: r.get_u32()?,
    };
    let queue = if r.get_bool()? {
        Some(r.get_usize()?)
    } else {
        None
    };
    Ok(FlowEntry {
        key,
        queue,
        packets_queued: r.get_u32()?,
        paused: r.get_bool()?,
        resume_pending: r.get_bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vfid: u32, ingress: u32, egress: u32) -> FlowKey {
        FlowKey {
            vfid,
            ingress,
            egress,
        }
    }

    #[test]
    fn insert_find_remove() {
        let mut t = FlowTable::new(64, 4, 10);
        let k = key(5, 1, 2);
        let slot = match t.lookup_or_insert(k) {
            LookupOutcome::Inserted(s) => s,
            other => panic!("expected insert, got {other:?}"),
        };
        t.entry_mut(slot).packets_queued = 3;
        match t.lookup_or_insert(k) {
            LookupOutcome::Found(s) => assert_eq!(t.entry(s).packets_queued, 3),
            other => panic!("expected found, got {other:?}"),
        }
        assert_eq!(t.len(), 1);
        t.remove(k);
        assert!(t.is_empty());
        assert!(t.find(k).is_none());
        assert_eq!(t.peak_len(), 1);
    }

    #[test]
    fn same_vfid_different_ports_are_distinct() {
        let mut t = FlowTable::new(64, 4, 10);
        let a = key(5, 1, 2);
        let b = key(5, 3, 2);
        let c = key(5, 1, 4);
        assert!(matches!(t.lookup_or_insert(a), LookupOutcome::Inserted(_)));
        assert!(matches!(t.lookup_or_insert(b), LookupOutcome::Inserted(_)));
        assert!(matches!(t.lookup_or_insert(c), LookupOutcome::Inserted(_)));
        assert_eq!(t.len(), 3);
        // Same vfid + same ports is the same entry (the paper's deliberate
        // aliasing of colliding 5-tuples).
        assert!(matches!(t.lookup_or_insert(a), LookupOutcome::Found(_)));
    }

    #[test]
    fn bucket_overflow_spills_to_cache_then_fails() {
        let mut t = FlowTable::new(8, 2, 2);
        // Four flows with the same VFID but distinct ingresses: two fit in the
        // bucket, two in the cache, the fifth cannot be tracked.
        for ingress in 0..4 {
            assert!(matches!(
                t.lookup_or_insert(key(3, ingress, 0)),
                LookupOutcome::Inserted(_)
            ));
        }
        assert_eq!(t.lookup_or_insert(key(3, 9, 0)), LookupOutcome::TableFull);
        assert_eq!(t.len(), 4);
        // Freeing a bucket slot lets new flows in again.
        t.remove(key(3, 0, 0));
        assert!(matches!(
            t.lookup_or_insert(key(3, 9, 0)),
            LookupOutcome::Inserted(_)
        ));
    }

    #[test]
    fn cache_entries_are_found_after_bucket_search() {
        let mut t = FlowTable::new(4, 1, 4);
        let first = key(2, 0, 0);
        let second = key(2, 1, 0);
        t.lookup_or_insert(first);
        t.lookup_or_insert(second); // goes to cache
        match t.find(second) {
            Some(EntrySlot::Cache { .. }) => {}
            other => panic!("expected cache slot, got {other:?}"),
        }
        t.remove(second);
        assert!(t.find(second).is_none());
        assert!(t.find(first).is_some());
    }

    #[test]
    fn iter_and_hardware_size() {
        let mut t = FlowTable::new(16_384, 4, 100);
        for v in 0..10 {
            t.lookup_or_insert(key(v, 0, 1));
        }
        assert_eq!(t.iter().count(), 10);
        // 16K buckets * 4 entries * 16 B ≈ 1 MB in this straightforward
        // encoding; the paper's 256 KB packs entries tighter, but the table
        // is still a tiny fraction of the 12 MB packet buffer.
        assert!(t.hardware_size_bytes() >= 16_384 * 4 * 16);
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut t = FlowTable::new(64, 4, 10);
        for v in 0..20 {
            t.lookup_or_insert(key(v, 0, 0));
        }
        for v in 0..20 {
            t.remove(key(v, 0, 0));
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.peak_len(), 20);
    }
}
