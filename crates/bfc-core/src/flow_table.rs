//! The virtual-flow hash table (§3.8 "Bookkeeping").
//!
//! BFC keeps state only for flows that currently have packets queued at the
//! switch. The *hardware* model is a hash table indexed by VFID with 4-entry
//! buckets plus a small associative overflow cache (100 entries by default):
//! a flow is admitted while its VFID's bucket has a free entry, spills to the
//! cache when the bucket is full, and cannot be tracked at all once both are
//! exhausted — its packets are then directed to the per-egress overflow queue
//! and the caller counts the event (the "overflows" series of Fig. 13).
//! Entries are disambiguated within a bucket by their (ingress, egress) pair;
//! two 5-tuples that hash to the same VFID and share ingress and egress are
//! deliberately treated as one flow, exactly as the paper specifies.
//!
//! The *software* representation is decoupled from that model. Admission is
//! tracked with per-VFID and cache residency counters (which is all the
//! hardware quotas observe), while the entries themselves live in one
//! open-addressed, power-of-two, linearly probed store: a hot lookup is a
//! short probe run over a flat array instead of a `Vec<Vec<_>>` double
//! indirection. Deletion uses backward shifting, so the store never
//! accumulates tombstones, and whole-table clears (on snapshot restore) are
//! O(1): every slot carries a generation stamp and is considered empty unless
//! it matches the table's current generation.

use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};

/// Identity of a tracked flow at one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Virtual flow ID (`hash(5-tuple) mod num_vfids`).
    pub vfid: u32,
    /// Local ingress port the flow arrives on.
    pub ingress: u32,
    /// Local egress port the flow leaves from.
    pub egress: u32,
}

/// Per-flow state held while the flow has packets queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEntry {
    /// The flow's identity.
    pub key: FlowKey,
    /// Physical queue assigned at the egress port, if any. A flow whose only
    /// packet rode the high-priority queue has no assignment yet.
    pub queue: Option<usize>,
    /// Packets of this flow currently queued at the switch.
    pub packets_queued: u32,
    /// True if the switch has paused this flow toward its upstream.
    pub paused: bool,
    /// True if the flow is waiting on the to-be-resumed list.
    pub resume_pending: bool,
}

impl FlowEntry {
    fn new(key: FlowKey) -> Self {
        FlowEntry {
            key,
            queue: None,
            packets_queued: 0,
            paused: false,
            resume_pending: false,
        }
    }
}

/// Result of [`FlowTable::lookup_or_insert`].
#[derive(Debug, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The flow was already tracked (index handle for subsequent access).
    Found(EntrySlot),
    /// A new entry was created.
    Inserted(EntrySlot),
    /// Neither the bucket nor the overflow cache had room; the packet must
    /// use the untracked overflow queue.
    TableFull,
}

/// Opaque handle to a table slot, valid until the next removal.
///
/// The variant records which hardware quota the entry was admitted under:
/// its VFID's bucket or the shared overflow cache. `index` is a position in
/// the unified open-addressed store (not a within-bucket offset), valid for
/// [`FlowTable::entry`] / [`FlowTable::entry_mut`] until a removal shifts
/// entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntrySlot {
    /// Entry counted against `bucket[vfid]`'s quota.
    Bucket {
        /// Bucket index (the VFID).
        vfid: u32,
        /// Slot within the open-addressed store.
        index: usize,
    },
    /// Entry counted against the associative overflow cache's quota.
    Cache {
        /// Slot within the open-addressed store.
        index: usize,
    },
}

impl EntrySlot {
    fn index(self) -> usize {
        match self {
            EntrySlot::Bucket { index, .. } | EntrySlot::Cache { index } => index,
        }
    }
}

/// One slot of the open-addressed store. Occupied iff `gen` equals the
/// table's current generation; any other value (including the 0 that fresh
/// allocations carry) means empty, which is what makes clears O(1).
#[derive(Debug, Clone)]
struct Slot {
    gen: u64,
    /// True if the entry was admitted under the shared cache quota rather
    /// than its VFID's bucket quota. The class is fixed at insertion — the
    /// hardware does not migrate cache entries back into buckets.
    cached: bool,
    entry: FlowEntry,
}

const EMPTY_KEY: FlowKey = FlowKey {
    vfid: 0,
    ingress: 0,
    egress: 0,
};

impl Slot {
    fn empty() -> Self {
        Slot {
            gen: 0,
            cached: false,
            entry: FlowEntry::new(EMPTY_KEY),
        }
    }
}

/// Deterministic 64-bit mix of the key fields (splitmix64 finalizer). The
/// three fields are packed disjointly first so nearby VFIDs / port pairs do
/// not collide before mixing.
fn hash_key(key: FlowKey) -> u64 {
    let mut x =
        (u64::from(key.vfid) << 40) ^ (u64::from(key.ingress) << 20) ^ u64::from(key.egress);
    x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Smallest store allocated; growth doubles from here. Kept well below any
/// hardware geometry so idle switches stay cheap.
const MIN_SLOTS: usize = 16;

/// Minimum serialized bytes per saved entry (class byte + key + flags),
/// used to validate snapshot length prefixes.
const ENTRY_MIN_BYTES: usize = 19;

/// The flow table: hardware-model quotas over an open-addressed store.
#[derive(Debug)]
pub struct FlowTable {
    slots: Vec<Slot>,
    /// Current generation; slots stamped with older generations are empty.
    gen: u64,
    /// Entries currently admitted under each VFID's bucket quota.
    bucket_residents: Vec<u32>,
    bucket_size: usize,
    /// Entries currently admitted under the shared cache quota.
    cache_residents: usize,
    cache_capacity: usize,
    tracked: usize,
    peak_tracked: usize,
    /// Observability counters over [`FlowTable::lookup_or_insert`] probes
    /// (the hot path; `find` and snapshot restore do not count). Never read
    /// back by the table itself — they feed the metrics registry.
    lookups: u64,
    probe_steps: u64,
    max_probe: u64,
}

impl FlowTable {
    /// Creates a table modelling `num_vfids` buckets of `bucket_size` entries
    /// and an overflow cache of `cache_capacity` entries.
    pub fn new(num_vfids: u32, bucket_size: usize, cache_capacity: usize) -> Self {
        assert!(num_vfids > 0 && bucket_size > 0);
        FlowTable {
            slots: vec![Slot::empty(); MIN_SLOTS],
            gen: 1,
            bucket_residents: vec![0; num_vfids as usize],
            bucket_size,
            cache_residents: 0,
            cache_capacity,
            tracked: 0,
            peak_tracked: 0,
            lookups: 0,
            probe_steps: 0,
            max_probe: 0,
        }
    }

    /// Number of flows currently tracked.
    pub fn len(&self) -> usize {
        self.tracked
    }

    /// True if no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.tracked == 0
    }

    /// Highest number of simultaneously tracked flows observed.
    pub fn peak_len(&self) -> usize {
        self.peak_tracked
    }

    /// Probing counters over [`FlowTable::lookup_or_insert`]:
    /// `(lookups, total probe steps, longest single probe)`.
    pub fn probe_counters(&self) -> (u64, u64, u64) {
        (self.lookups, self.probe_steps, self.max_probe)
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    fn home(&self, key: FlowKey) -> usize {
        (hash_key(key) as usize) & self.mask()
    }

    fn occupied(&self, i: usize) -> bool {
        self.slots[i].gen == self.gen
    }

    fn slot_handle(&self, i: usize) -> EntrySlot {
        if self.slots[i].cached {
            EntrySlot::Cache { index: i }
        } else {
            EntrySlot::Bucket {
                vfid: self.slots[i].entry.key.vfid,
                index: i,
            }
        }
    }

    /// Probes for `key`. Returns the slot holding it, or the first empty
    /// slot of its probe run. Terminates because the load factor is capped
    /// below 1 (there is always an empty slot).
    fn probe(&self, key: FlowKey) -> Result<usize, usize> {
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            if !self.occupied(i) {
                return Err(i);
            }
            if self.slots[i].entry.key == key {
                return Ok(i);
            }
            i = (i + 1) & mask;
        }
    }

    /// Finds the slot of `key` if it is tracked.
    pub fn find(&self, key: FlowKey) -> Option<EntrySlot> {
        match self.probe(key) {
            Ok(i) => Some(self.slot_handle(i)),
            Err(_) => None,
        }
    }

    /// Looks the flow up, inserting a fresh entry if the hardware quotas
    /// admit it. The store itself never fills — it grows before probe runs
    /// get long — so `TableFull` is purely a quota decision.
    pub fn lookup_or_insert(&mut self, key: FlowKey) -> LookupOutcome {
        let probed = self.probe(key);
        let end = match probed {
            Ok(i) | Err(i) => i,
        };
        let steps = ((end + self.slots.len() - self.home(key)) & self.mask()) as u64 + 1;
        self.lookups += 1;
        self.probe_steps += steps;
        self.max_probe = self.max_probe.max(steps);
        if let Ok(i) = probed {
            return LookupOutcome::Found(self.slot_handle(i));
        }
        let cached = if (self.bucket_residents[key.vfid as usize] as usize) < self.bucket_size {
            false
        } else if self.cache_residents < self.cache_capacity {
            true
        } else {
            return LookupOutcome::TableFull;
        };
        let i = self.place(cached, FlowEntry::new(key));
        if cached {
            self.cache_residents += 1;
        } else {
            self.bucket_residents[key.vfid as usize] += 1;
        }
        self.tracked += 1;
        self.peak_tracked = self.peak_tracked.max(self.tracked);
        LookupOutcome::Inserted(self.slot_handle(i))
    }

    /// Writes a new entry into the store, growing first if the load factor
    /// would exceed 3/4. Returns the slot used. The key must be absent. The
    /// generation is stamped here, after any growth — `grow` rebuilds the
    /// store at generation 1.
    fn place(&mut self, cached: bool, entry: FlowEntry) -> usize {
        if (self.tracked + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let i = match self.probe(entry.key) {
            Err(i) => i,
            Ok(_) => unreachable!("place() requires an absent key"),
        };
        self.slots[i] = Slot {
            gen: self.gen,
            cached,
            entry,
        };
        i
    }

    /// Doubles the store and re-places every live entry. Rebuilding resets
    /// the generation to 1: stale slots from older generations are dropped
    /// rather than copied.
    fn grow(&mut self) {
        let gen = self.gen;
        let mut live = std::mem::take(&mut self.slots);
        live.retain(|s| s.gen == gen);
        self.slots = vec![Slot::empty(); (live.len().max(MIN_SLOTS / 2) * 2).next_power_of_two()];
        self.gen = 1;
        for mut slot in live {
            slot.gen = 1;
            let i = match self.probe(slot.entry.key) {
                Err(i) => i,
                Ok(_) => unreachable!("duplicate key during rehash"),
            };
            self.slots[i] = slot;
        }
    }

    /// Immutable access to a slot.
    pub fn entry(&self, slot: EntrySlot) -> &FlowEntry {
        let i = slot.index();
        debug_assert!(self.occupied(i), "stale EntrySlot");
        &self.slots[i].entry
    }

    /// Mutable access to a slot.
    pub fn entry_mut(&mut self, slot: EntrySlot) -> &mut FlowEntry {
        let i = slot.index();
        debug_assert!(self.occupied(i), "stale EntrySlot");
        &mut self.slots[i].entry
    }

    /// Removes a tracked flow (its last packet left the switch). Removal
    /// backward-shifts later entries of the probe run into the gap, so
    /// callers must not hold `EntrySlot`s across a removal.
    pub fn remove(&mut self, key: FlowKey) {
        let Ok(mut i) = self.probe(key) else {
            return;
        };
        if self.slots[i].cached {
            self.cache_residents -= 1;
        } else {
            self.bucket_residents[key.vfid as usize] -= 1;
        }
        self.tracked -= 1;
        // Backward-shift deletion: walk the probe run past `i`; any entry
        // whose home slot does not lie cyclically in (i, j] may fill the
        // gap, which then moves to that entry's old slot.
        let mask = self.mask();
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            if !self.occupied(j) {
                break;
            }
            let h = self.home(self.slots[j].entry.key);
            let blocked = if i <= j {
                h > i && h <= j
            } else {
                h > i || h <= j
            };
            if !blocked {
                self.slots[i] = self.slots[j].clone();
                i = j;
            }
        }
        self.slots[i].gen = 0;
    }

    /// Iterates over all tracked entries in store-scan order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.slots
            .iter()
            .filter(move |s| s.gen == self.gen)
            .map(|s| &s.entry)
    }

    /// Memory footprint estimate in bytes of the *hardware* table being
    /// modelled, assuming the paper's 16-byte per-entry encoding (used to
    /// check the "2% of buffer" claim of §3.8). A property of the modelled
    /// geometry, not of the open-addressed store's allocation.
    pub fn hardware_size_bytes(&self) -> usize {
        self.bucket_residents.len() * self.bucket_size * 16 + self.cache_capacity * 16
    }

    /// Serializes the tracked entries with their admission classes. Entries
    /// are emitted in store-scan order *starting at an empty slot*, so no
    /// probe run straddles the scan origin and each run appears home-side
    /// first. Re-inserting in that order therefore reproduces the probe
    /// layout slot-for-slot, which keeps save → restore → save byte-stable.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u32(u32::try_from(self.bucket_residents.len()).expect("vfid count fits u32"));
        w.put_usize(self.tracked);
        // The store size is part of the layout (it fixes the hash mask), so
        // it is serialized too: a restore target's own store may have grown
        // differently before the restore.
        w.put_usize(self.slots.len());
        let start = self
            .slots
            .iter()
            .position(|s| s.gen != self.gen)
            .expect("load factor below 1 guarantees an empty slot");
        for k in 0..self.slots.len() {
            let slot = &self.slots[(start + k) & self.mask()];
            if slot.gen == self.gen {
                w.put_bool(slot.cached);
                save_entry(w, &slot.entry);
            }
        }
        w.put_usize(self.peak_tracked);
        w.put_u64(self.lookups);
        w.put_u64(self.probe_steps);
        w.put_u64(self.max_probe);
    }

    /// Restores state captured by [`FlowTable::save_state`] into this table,
    /// which must have been built with the same geometry. The previous
    /// contents are discarded by bumping the generation — no slot is
    /// touched until re-insertion overwrites it.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.get_u32()? as usize != self.bucket_residents.len() {
            return Err(SnapError::Corrupt("flow-table vfid count mismatch"));
        }
        let n = r.get_count(ENTRY_MIN_BYTES)?;
        let store = r.get_usize()?;
        if !store.is_power_of_two() || store < MIN_SLOTS || n * 4 > store * 3 {
            return Err(SnapError::Corrupt("flow-table store size invalid"));
        }
        if store == self.slots.len() {
            // O(1) clear: outdate every slot instead of touching them.
            self.gen += 1;
        } else {
            self.slots = vec![Slot::empty(); store];
            self.gen = 1;
        }
        self.bucket_residents.iter_mut().for_each(|c| *c = 0);
        self.cache_residents = 0;
        self.tracked = 0;
        for _ in 0..n {
            let cached = r.get_bool()?;
            let entry = restore_entry(r)?;
            if (entry.key.vfid as usize) >= self.bucket_residents.len() {
                return Err(SnapError::Corrupt("flow-table vfid out of range"));
            }
            if cached {
                if self.cache_residents == self.cache_capacity {
                    return Err(SnapError::Corrupt("flow-table cache overflow"));
                }
                self.cache_residents += 1;
            } else {
                if self.bucket_residents[entry.key.vfid as usize] as usize == self.bucket_size {
                    return Err(SnapError::Corrupt("flow-table bucket overflow"));
                }
                self.bucket_residents[entry.key.vfid as usize] += 1;
            }
            if self.probe(entry.key).is_ok() {
                return Err(SnapError::Corrupt("flow-table duplicate key"));
            }
            self.place(cached, entry);
            self.tracked += 1;
        }
        self.peak_tracked = r.get_usize()?;
        if self.peak_tracked < self.tracked {
            return Err(SnapError::Corrupt("flow-table peak below current"));
        }
        self.lookups = r.get_u64()?;
        self.probe_steps = r.get_u64()?;
        self.max_probe = r.get_u64()?;
        Ok(())
    }
}

fn save_entry(w: &mut SnapWriter, e: &FlowEntry) {
    w.put_u32(e.key.vfid);
    w.put_u32(e.key.ingress);
    w.put_u32(e.key.egress);
    match e.queue {
        Some(q) => {
            w.put_bool(true);
            w.put_usize(q);
        }
        None => w.put_bool(false),
    }
    w.put_u32(e.packets_queued);
    w.put_bool(e.paused);
    w.put_bool(e.resume_pending);
}

fn restore_entry(r: &mut SnapReader<'_>) -> Result<FlowEntry, SnapError> {
    let key = FlowKey {
        vfid: r.get_u32()?,
        ingress: r.get_u32()?,
        egress: r.get_u32()?,
    };
    let queue = if r.get_bool()? {
        Some(r.get_usize()?)
    } else {
        None
    };
    Ok(FlowEntry {
        key,
        queue,
        packets_queued: r.get_u32()?,
        paused: r.get_bool()?,
        resume_pending: r.get_bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vfid: u32, ingress: u32, egress: u32) -> FlowKey {
        FlowKey {
            vfid,
            ingress,
            egress,
        }
    }

    #[test]
    fn insert_find_remove() {
        let mut t = FlowTable::new(64, 4, 10);
        let k = key(5, 1, 2);
        let slot = match t.lookup_or_insert(k) {
            LookupOutcome::Inserted(s) => s,
            other => panic!("expected insert, got {other:?}"),
        };
        t.entry_mut(slot).packets_queued = 3;
        match t.lookup_or_insert(k) {
            LookupOutcome::Found(s) => assert_eq!(t.entry(s).packets_queued, 3),
            other => panic!("expected found, got {other:?}"),
        }
        assert_eq!(t.len(), 1);
        t.remove(k);
        assert!(t.is_empty());
        assert!(t.find(k).is_none());
        assert_eq!(t.peak_len(), 1);
    }

    #[test]
    fn same_vfid_different_ports_are_distinct() {
        let mut t = FlowTable::new(64, 4, 10);
        let a = key(5, 1, 2);
        let b = key(5, 3, 2);
        let c = key(5, 1, 4);
        assert!(matches!(t.lookup_or_insert(a), LookupOutcome::Inserted(_)));
        assert!(matches!(t.lookup_or_insert(b), LookupOutcome::Inserted(_)));
        assert!(matches!(t.lookup_or_insert(c), LookupOutcome::Inserted(_)));
        assert_eq!(t.len(), 3);
        // Same vfid + same ports is the same entry (the paper's deliberate
        // aliasing of colliding 5-tuples).
        assert!(matches!(t.lookup_or_insert(a), LookupOutcome::Found(_)));
    }

    #[test]
    fn bucket_overflow_spills_to_cache_then_fails() {
        let mut t = FlowTable::new(8, 2, 2);
        // Four flows with the same VFID but distinct ingresses: two fit in the
        // bucket, two in the cache, the fifth cannot be tracked.
        for ingress in 0..4 {
            assert!(matches!(
                t.lookup_or_insert(key(3, ingress, 0)),
                LookupOutcome::Inserted(_)
            ));
        }
        assert_eq!(t.lookup_or_insert(key(3, 9, 0)), LookupOutcome::TableFull);
        assert_eq!(t.len(), 4);
        // Freeing a bucket slot lets new flows in again.
        t.remove(key(3, 0, 0));
        assert!(matches!(
            t.lookup_or_insert(key(3, 9, 0)),
            LookupOutcome::Inserted(_)
        ));
    }

    #[test]
    fn cache_entries_are_found_after_bucket_search() {
        let mut t = FlowTable::new(4, 1, 4);
        let first = key(2, 0, 0);
        let second = key(2, 1, 0);
        t.lookup_or_insert(first);
        t.lookup_or_insert(second); // bucket quota exhausted: cache class
        match t.find(second) {
            Some(EntrySlot::Cache { .. }) => {}
            other => panic!("expected cache slot, got {other:?}"),
        }
        t.remove(second);
        assert!(t.find(second).is_none());
        assert!(t.find(first).is_some());
    }

    #[test]
    fn iter_and_hardware_size() {
        let mut t = FlowTable::new(16_384, 4, 100);
        for v in 0..10 {
            t.lookup_or_insert(key(v, 0, 1));
        }
        assert_eq!(t.iter().count(), 10);
        // 16K buckets * 4 entries * 16 B ≈ 1 MB in this straightforward
        // encoding; the paper's 256 KB packs entries tighter, but the table
        // is still a tiny fraction of the 12 MB packet buffer.
        assert!(t.hardware_size_bytes() >= 16_384 * 4 * 16);
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut t = FlowTable::new(64, 4, 10);
        for v in 0..20 {
            t.lookup_or_insert(key(v, 0, 0));
        }
        for v in 0..20 {
            t.remove(key(v, 0, 0));
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.peak_len(), 20);
    }

    #[test]
    fn growth_keeps_every_entry_findable() {
        // Push well past the initial 16-slot store so it rehashes several
        // times, then thin it out to exercise backward shifts on the grown
        // store.
        let mut t = FlowTable::new(4_096, 4, 100);
        for v in 0..600 {
            assert!(matches!(
                t.lookup_or_insert(key(v, v % 7, v % 5)),
                LookupOutcome::Inserted(_)
            ));
        }
        for v in (0..600).step_by(3) {
            t.remove(key(v, v % 7, v % 5));
        }
        assert_eq!(t.len(), 400);
        for v in 0..600u32 {
            let k = key(v, v % 7, v % 5);
            match t.find(k) {
                Some(slot) => {
                    assert!(v % 3 != 0, "removed vfid {v} still present");
                    assert_eq!(t.entry(slot).key, k);
                }
                None => assert!(v % 3 == 0, "live vfid {v} lost"),
            }
        }
    }

    #[test]
    fn removal_shifts_keep_probe_runs_intact() {
        // Many keys sharing one VFID force long probe runs through both
        // quota classes; deleting from the middle of runs must never orphan
        // a later entry of the same run.
        let mut t = FlowTable::new(2, 64, 64);
        for ingress in 0..100 {
            assert!(matches!(
                t.lookup_or_insert(key(1, ingress, 0)),
                LookupOutcome::Inserted(_)
            ));
        }
        for ingress in (0..100).step_by(2) {
            t.remove(key(1, ingress, 0));
        }
        for ingress in 0..100 {
            assert_eq!(t.find(key(1, ingress, 0)).is_some(), ingress % 2 == 1);
        }
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn quotas_survive_growth_and_churn() {
        let mut t = FlowTable::new(2, 2, 3);
        // VFID 0 admits 2 bucket entries; the next 3 spill to the cache;
        // the 6th is untrackable.
        for ingress in 0..5 {
            assert!(matches!(
                t.lookup_or_insert(key(0, ingress, 0)),
                LookupOutcome::Inserted(_)
            ));
        }
        assert_eq!(t.lookup_or_insert(key(0, 9, 0)), LookupOutcome::TableFull);
        // VFID 1's bucket quota is independent of VFID 0's, but the cache
        // is shared and still full.
        assert!(matches!(
            t.lookup_or_insert(key(1, 0, 0)),
            LookupOutcome::Inserted(_)
        ));
        assert!(matches!(
            t.lookup_or_insert(key(1, 1, 0)),
            LookupOutcome::Inserted(_)
        ));
        assert_eq!(t.lookup_or_insert(key(1, 2, 0)), LookupOutcome::TableFull);
        // Removing a cache-class entry frees cache room for either VFID.
        let cache_key = (0..5)
            .map(|i| key(0, i, 0))
            .find(|&k| matches!(t.find(k), Some(EntrySlot::Cache { .. })))
            .unwrap();
        t.remove(cache_key);
        assert!(matches!(
            t.lookup_or_insert(key(1, 2, 0)),
            LookupOutcome::Inserted(_)
        ));
    }

    #[test]
    fn save_restore_round_trips_contents_and_layout() {
        let mut t = FlowTable::new(64, 4, 10);
        for v in 0..30 {
            let slot = match t.lookup_or_insert(key(v, v % 3, v % 2)) {
                LookupOutcome::Inserted(s) => s,
                other => panic!("expected insert, got {other:?}"),
            };
            t.entry_mut(slot).packets_queued = v;
            t.entry_mut(slot).paused = v % 2 == 0;
        }
        for v in (0..30).step_by(4) {
            t.remove(key(v, v % 3, v % 2));
        }
        let mut w = SnapWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut u = FlowTable::new(64, 4, 10);
        // Pre-populate the target with unrelated state to prove the
        // generation bump discards it without an explicit clear.
        for v in 40..60 {
            u.lookup_or_insert(key(v, 9, 9));
        }
        let mut r = SnapReader::new(&bytes);
        u.restore_state(&mut r).unwrap();
        assert_eq!(u.len(), t.len());
        assert_eq!(u.peak_len(), t.peak_len());
        for v in 40..60 {
            assert!(u.find(key(v, 9, 9)).is_none(), "stale entry survived");
        }
        for v in 0..30 {
            let k = key(v, v % 3, v % 2);
            assert_eq!(t.find(k), u.find(k), "layout diverged for vfid {v}");
            if let Some(slot) = t.find(k) {
                assert_eq!(t.entry(slot), u.entry(slot));
            }
        }
        // Re-saving the restored table reproduces the snapshot bytes:
        // restore is layout-exact, not merely content-exact.
        let mut w2 = SnapWriter::new();
        u.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
    }

    #[test]
    fn restore_rejects_quota_violations() {
        let mut t = FlowTable::new(8, 2, 1);
        t.lookup_or_insert(key(3, 0, 0));
        t.lookup_or_insert(key(3, 1, 0));
        t.lookup_or_insert(key(3, 2, 0)); // cache class
        let mut w = SnapWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();

        // The same snapshot into a smaller-bucket geometry must fail
        // cleanly rather than over-admit.
        let mut small = FlowTable::new(8, 1, 1);
        let mut r = SnapReader::new(&bytes);
        assert!(small.restore_state(&mut r).is_err());
        // And into a different VFID count as well.
        let mut narrow = FlowTable::new(4, 2, 1);
        let mut r = SnapReader::new(&bytes);
        assert!(narrow.restore_state(&mut r).is_err());
    }
}
