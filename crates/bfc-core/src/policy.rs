//! The BFC switch policy.
//!
//! [`BfcPolicy`] implements [`bfc_net::SwitchPolicy`] and contains the whole
//! per-switch control plane of the paper: the flow table, dynamic queue
//! assignment, pause-threshold evaluation, the counting bloom filters and the
//! resume pacing. One instance serves one switch (or the NIC-facing ToR
//! ports); the data plane (queues, DRR, buffer, PFC) stays in `bfc-net`.

use std::collections::VecDeque;

use bfc_net::packet::Packet;
use bfc_net::policy::{
    DequeueCtx, EnqueueCtx, EnqueueDecision, PauseTick, PolicyStats, ProbeStats, QueueTarget,
    SwitchPolicy,
};
use bfc_sim::rng::mix64;
use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};
use bfc_sim::{FastHashMap, SimRng, SimTime};

use crate::config::BfcConfig;
use crate::counting_bloom::CountingBloom;
use crate::flow_table::{FlowKey, FlowTable, LookupOutcome};

/// A flow waiting to be resumed on one ingress link.
#[derive(Debug, Clone, Copy)]
struct ResumeItem {
    vfid: u32,
    egress: u32,
    /// Physical queue the flow was assigned to (for the per-queue resume
    /// limit). Flows that never got a physical queue use `usize::MAX`.
    queue: usize,
}

/// Per-ingress-link pause state.
#[derive(Debug)]
struct IngressState {
    counting: CountingBloom,
    to_be_resumed: VecDeque<ResumeItem>,
    dirty: bool,
}

impl IngressState {
    fn new(config: &BfcConfig) -> Self {
        IngressState {
            counting: CountingBloom::new(config.bloom_bytes, config.bloom_hashes),
            to_be_resumed: VecDeque::new(),
            dirty: false,
        }
    }
}

/// Extra BFC-specific counters beyond [`PolicyStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BfcCounters {
    /// Packets that used the high-priority queue.
    pub high_priority_packets: u64,
    /// Peak number of simultaneously tracked flows across the switch.
    pub peak_tracked_flows: usize,
    /// Pause frames whose bloom filter was non-empty when snapshotted.
    pub nonempty_frames: u64,
}

/// The Backpressure Flow Control policy for one switch.
pub struct BfcPolicy {
    config: BfcConfig,
    table: FlowTable,
    ingress: Vec<IngressState>,
    /// Number of tracked flows assigned to each (egress port, physical queue).
    assigned: FastHashMap<u32, Vec<u32>>,
    rng: SimRng,
    stats: PolicyStats,
    counters: BfcCounters,
}

impl BfcPolicy {
    /// Creates a policy instance with the given configuration. `seed` only
    /// affects the random choice among free physical queues.
    pub fn new(config: BfcConfig, seed: u64) -> Self {
        BfcPolicy {
            table: FlowTable::new(config.num_vfids, config.bucket_size, config.overflow_cache_size),
            ingress: Vec::new(),
            assigned: FastHashMap::default(),
            rng: SimRng::new(seed ^ 0xbfc0_bfc0_bfc0_bfc0),
            stats: PolicyStats::default(),
            counters: BfcCounters::default(),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BfcConfig {
        &self.config
    }

    /// BFC-specific counters.
    pub fn counters(&self) -> BfcCounters {
        let mut c = self.counters;
        c.peak_tracked_flows = self.table.peak_len();
        c
    }

    /// Number of flows currently tracked at this switch.
    pub fn tracked_flows(&self) -> usize {
        self.table.len()
    }

    fn ingress_mut(&mut self, ingress: u32) -> &mut IngressState {
        let idx = ingress as usize;
        while self.ingress.len() <= idx {
            self.ingress.push(IngressState::new(&self.config));
        }
        &mut self.ingress[idx]
    }

    fn assigned_mut(&mut self, egress: u32, num_queues: usize) -> &mut Vec<u32> {
        self.assigned
            .entry(egress)
            .or_insert_with(|| vec![0; num_queues])
    }

    /// Picks a physical queue for a newly tracked flow (§3.3).
    fn choose_queue(&mut self, ctx: &EnqueueCtx<'_>, vfid: u32) -> usize {
        let num_queues = ctx.port.num_queues();
        if !self.config.dynamic_assignment {
            // BFC-VFID straw proposal: static hash, identical at every switch.
            return (mix64(vfid as u64) % num_queues as u64) as usize;
        }
        let assigned = self.assigned_mut(ctx.egress, num_queues);
        let free: Vec<usize> = (0..num_queues).filter(|&q| assigned[q] == 0).collect();
        if free.is_empty() {
            // All queues allocated: HoL blocking is unavoidable; pick at random
            // as the paper's prototype does.
            self.rng.next_index(num_queues)
        } else {
            free[self.rng.next_index(free.len())]
        }
    }

    fn release_queue(&mut self, egress: u32, queue: usize) {
        if let Some(assigned) = self.assigned.get_mut(&egress) {
            if queue < assigned.len() && assigned[queue] > 0 {
                assigned[queue] -= 1;
            }
        }
    }
}

impl SwitchPolicy for BfcPolicy {
    fn on_enqueue(&mut self, ctx: &EnqueueCtx<'_>, pkt: &Packet) -> EnqueueDecision {
        let key = FlowKey {
            vfid: pkt.vfid,
            ingress: ctx.ingress,
            egress: ctx.egress,
        };
        let slot = match self.table.lookup_or_insert(key) {
            LookupOutcome::Found(slot) | LookupOutcome::Inserted(slot) => slot,
            LookupOutcome::TableFull => {
                // Untracked flow: send it through the overflow queue; it will
                // not participate in per-flow pausing (§3.8).
                self.stats.table_overflows += 1;
                return EnqueueDecision::queue(QueueTarget::Overflow);
            }
        };

        let (paused, packets_queued, assigned_queue) = {
            let e = self.table.entry(slot);
            (e.paused, e.packets_queued, e.queue)
        };

        // First packet of a flow goes to the high-priority queue when the
        // flow is neither paused nor already backlogged here (§3.7).
        if self.config.use_high_priority_queue
            && pkt.first_of_flow
            && !paused
            && packets_queued == 0
        {
            self.table.entry_mut(slot).packets_queued += 1;
            self.counters.high_priority_packets += 1;
            return EnqueueDecision::queue(QueueTarget::HighPriority);
        }

        // Make sure the flow has a physical queue.
        let queue = match assigned_queue {
            Some(q) => q,
            None => {
                let q = self.choose_queue(ctx, pkt.vfid);
                self.stats.flow_assignments += 1;
                let assigned = self.assigned_mut(ctx.egress, ctx.port.num_queues());
                let collided = assigned[q] > 0;
                assigned[q] += 1;
                if collided {
                    self.stats.collisions += 1;
                }
                self.table.entry_mut(slot).queue = Some(q);
                q
            }
        };

        // Pause decision (§3.4): pause the flow toward its upstream if its
        // physical queue, including this packet, exceeds the threshold that
        // keeps the link busy across the feedback delay.
        let mut start_pause_timer = false;
        if !paused {
            let queue_was_empty = ctx.port.queue_is_empty(queue);
            let n_active = ctx.port.active_queue_count() + usize::from(queue_was_empty);
            let threshold = self
                .config
                .pause_threshold_bytes(ctx.port.link.rate_gbps, n_active);
            let bytes_after = ctx.port.queue_bytes(queue) + pkt.size_bytes as u64;
            if bytes_after > threshold {
                self.table.entry_mut(slot).paused = true;
                self.stats.pauses += 1;
                let st = self.ingress_mut(ctx.ingress);
                st.counting.insert(pkt.vfid);
                st.dirty = true;
                start_pause_timer = true;
            }
        } else {
            // The flow is already paused; the timer chain for this ingress is
            // alive as long as the counting filter is non-empty, so nothing
            // more to do. Keep the chain going for safety if it had stopped.
            start_pause_timer = true;
        }

        self.table.entry_mut(slot).packets_queued += 1;
        EnqueueDecision {
            target: QueueTarget::Phys(queue),
            start_pause_timer,
        }
    }

    fn on_dequeue(&mut self, ctx: &DequeueCtx<'_>, pkt: &Packet) {
        let key = FlowKey {
            vfid: pkt.vfid,
            ingress: ctx.ingress,
            egress: ctx.egress,
        };
        let Some(slot) = self.table.find(key) else {
            // Overflow-queue packet of an untracked flow.
            return;
        };
        let (packets_left, paused, resume_pending, queue) = {
            let e = self.table.entry_mut(slot);
            debug_assert!(e.packets_queued > 0, "dequeue without matching enqueue");
            e.packets_queued -= 1;
            (e.packets_queued, e.paused, e.resume_pending, e.queue)
        };

        // Resume evaluation (§3.4/§3.5): a paused flow becomes eligible for
        // resuming once its physical queue has drained below the threshold,
        // or unconditionally once its last packet leaves this switch.
        if paused && !resume_pending {
            let eligible = match queue {
                Some(q) => {
                    let n_active = ctx.port.active_queue_count().max(1);
                    let threshold = self
                        .config
                        .pause_threshold_bytes(ctx.port.link.rate_gbps, n_active);
                    ctx.port.queue_bytes(q) <= threshold
                }
                None => true,
            };
            if eligible || packets_left == 0 {
                self.table.entry_mut(slot).resume_pending = true;
                let egress = ctx.egress;
                self.ingress_mut(ctx.ingress).to_be_resumed.push_back(ResumeItem {
                    vfid: pkt.vfid,
                    egress,
                    queue: queue.unwrap_or(usize::MAX),
                });
            }
        }

        if packets_left == 0 {
            if let Some(q) = queue {
                self.release_queue(ctx.egress, q);
            }
            self.table.remove(key);
        }
    }

    fn pause_frame_tick(&mut self, _now: SimTime, ingress: u32) -> PauseTick {
        let limit = if self.config.limit_resumes {
            Some(self.config.resumes_per_tick_per_queue)
        } else {
            None
        };

        // Phase 1: decide which queued resumes are released this interval
        // (at most `limit` per physical queue, §3.5) and refresh the bloom
        // filter snapshot.
        let (resumed, frame, outstanding) = {
            let st = self.ingress_mut(ingress);
            let mut per_queue: FastHashMap<usize, usize> = FastHashMap::default();
            let mut kept = VecDeque::new();
            let mut resumed = Vec::new();
            while let Some(item) = st.to_be_resumed.pop_front() {
                let served = per_queue.entry(item.queue).or_insert(0);
                if limit.is_none_or(|l| *served < l) {
                    *served += 1;
                    st.counting.remove(item.vfid);
                    st.dirty = true;
                    resumed.push(item);
                } else {
                    kept.push_back(item);
                }
            }
            st.to_be_resumed = kept;
            let frame = if st.dirty {
                Some(st.counting.snapshot())
            } else {
                None
            };
            st.dirty = false;
            let outstanding = !st.counting.is_empty() || !st.to_be_resumed.is_empty();
            (resumed, frame, outstanding)
        };

        // Phase 2: clear the pause flags of the resumed flows.
        for item in resumed {
            self.stats.resumes += 1;
            let key = FlowKey {
                vfid: item.vfid,
                ingress,
                egress: item.egress,
            };
            if let Some(slot) = self.table.find(key) {
                let e = self.table.entry_mut(slot);
                e.paused = false;
                e.resume_pending = false;
            }
        }
        if let Some(f) = &frame {
            if !f.is_empty() {
                self.counters.nonempty_frames += 1;
            }
        }

        PauseTick {
            frame,
            reschedule: outstanding,
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn probe_stats(&self) -> ProbeStats {
        let (lookups, probe_steps, max_probe) = self.table.probe_counters();
        ProbeStats {
            lookups,
            probe_steps,
            max_probe,
        }
    }

    fn name(&self) -> &'static str {
        if self.config.dynamic_assignment {
            "bfc"
        } else {
            "bfc-vfid"
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        for word in self.rng.state() {
            w.put_u64(word);
        }
        self.stats.save_state(w);
        w.put_u64(self.counters.high_priority_packets);
        w.put_usize(self.counters.peak_tracked_flows);
        w.put_u64(self.counters.nonempty_frames);
        self.table.save_state(w);
        w.put_usize(self.ingress.len());
        for st in &self.ingress {
            st.counting.save_state(w);
            w.put_usize(st.to_be_resumed.len());
            for item in &st.to_be_resumed {
                w.put_u32(item.vfid);
                w.put_u32(item.egress);
                w.put_usize(item.queue);
            }
            w.put_bool(st.dirty);
        }
        // Iteration order of the map is not deterministic; key order is.
        let mut egresses: Vec<u32> = self.assigned.keys().copied().collect();
        egresses.sort_unstable();
        w.put_usize(egresses.len());
        for egress in egresses {
            let counts = &self.assigned[&egress];
            w.put_u32(egress);
            w.put_usize(counts.len());
            for &c in counts {
                w.put_u32(c);
            }
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let state = [r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?];
        self.rng = SimRng::from_state(state);
        self.stats = PolicyStats::restore_state(r)?;
        self.counters.high_priority_packets = r.get_u64()?;
        self.counters.peak_tracked_flows = r.get_usize()?;
        self.counters.nonempty_frames = r.get_u64()?;
        self.table.restore_state(r)?;
        let num_ingress = r.get_count(10)?;
        self.ingress.clear();
        for _ in 0..num_ingress {
            let mut st = IngressState::new(&self.config);
            st.counting.restore_state(r)?;
            let n = r.get_count(17)?;
            for _ in 0..n {
                st.to_be_resumed.push_back(ResumeItem {
                    vfid: r.get_u32()?,
                    egress: r.get_u32()?,
                    queue: r.get_usize()?,
                });
            }
            st.dirty = r.get_bool()?;
            self.ingress.push(st);
        }
        let num_egress = r.get_count(16)?;
        self.assigned.clear();
        for _ in 0..num_egress {
            let egress = r.get_u32()?;
            let n = r.get_count(4)?;
            let mut counts = Vec::with_capacity(n);
            for _ in 0..n {
                counts.push(r.get_u32()?);
            }
            if self.assigned.insert(egress, counts).is_some() {
                return Err(SnapError::Corrupt("duplicate egress in assignment map"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfc_net::link::Link;
    use bfc_net::port::Port;
    use bfc_net::types::{FlowId, NodeId};
    use bfc_sim::SimDuration;

    const MTU: u32 = 1000;

    fn port() -> Port {
        port_with(32)
    }

    fn port_with(num_queues: usize) -> Port {
        Port::new(Link::datacenter_default(), Some((NodeId(9), 0)), num_queues, MTU)
    }

    fn ectx<'a>(port: &'a Port, ingress: u32, egress: u32) -> EnqueueCtx<'a> {
        EnqueueCtx {
            now: SimTime::ZERO,
            switch: NodeId(0),
            ingress,
            egress,
            port,
        }
    }

    fn dctx<'a>(port: &'a Port, ingress: u32, egress: u32, queue: QueueTarget) -> DequeueCtx<'a> {
        DequeueCtx {
            now: SimTime::ZERO,
            switch: NodeId(0),
            ingress,
            egress,
            port,
            queue,
        }
    }

    fn pkt(flow: u32, vfid: u32, seq: u64, first: bool) -> Packet {
        Packet::data(FlowId(flow), NodeId(0), NodeId(1), seq, MTU, vfid, first)
    }

    /// Drives `n` packets of one flow through enqueue + port enqueue so the
    /// port state stays consistent with what the policy believes.
    fn push_packets(
        policy: &mut BfcPolicy,
        port: &mut Port,
        flow: u32,
        vfid: u32,
        n: u64,
        ingress: u32,
    ) -> Vec<QueueTarget> {
        let mut targets = Vec::new();
        for seq in 0..n {
            let p = pkt(flow, vfid, seq, seq == 0);
            let decision = policy.on_enqueue(&ectx(port, ingress, 7), &p);
            port.enqueue(decision.target, p, ingress);
            targets.push(decision.target);
        }
        targets
    }

    #[test]
    fn first_packet_uses_high_priority_queue() {
        let mut policy = BfcPolicy::new(BfcConfig::default(), 1);
        let mut port = port();
        let targets = push_packets(&mut policy, &mut port, 1, 10, 3, 0);
        assert_eq!(targets[0], QueueTarget::HighPriority);
        assert!(matches!(targets[1], QueueTarget::Phys(_)));
        assert_eq!(targets[1], targets[2], "same flow keeps its queue");
        assert_eq!(policy.counters().high_priority_packets, 1);
    }

    #[test]
    fn high_priority_queue_disabled_by_ablation() {
        let mut policy = BfcPolicy::new(BfcConfig::without_high_priority_queue(), 1);
        let mut port = port();
        let targets = push_packets(&mut policy, &mut port, 1, 10, 1, 0);
        assert!(matches!(targets[0], QueueTarget::Phys(_)));
    }

    #[test]
    fn distinct_flows_get_distinct_queues_when_available() {
        let mut policy = BfcPolicy::new(BfcConfig::default(), 1);
        let mut port = port();
        let mut queues = std::collections::HashSet::new();
        for flow in 0..16u32 {
            let targets = push_packets(&mut policy, &mut port, flow, 100 + flow, 2, 0);
            if let QueueTarget::Phys(q) = targets[1] {
                queues.insert(q);
            }
        }
        assert_eq!(queues.len(), 16, "no collisions with free queues available");
        assert_eq!(policy.stats().collisions, 0);
    }

    #[test]
    fn static_assignment_collides_like_the_straw_proposal() {
        let mut dynamic_collisions = 0;
        let mut static_collisions = 0;
        for seed in 0..5u64 {
            let mut dynamic = BfcPolicy::new(BfcConfig::default(), seed);
            let mut straw = BfcPolicy::new(BfcConfig::vfid_straw(), seed);
            let mut port_a = port();
            let mut port_b = port();
            for flow in 0..20u32 {
                let vfid = 1000 + flow * 17;
                push_packets(&mut dynamic, &mut port_a, flow, vfid, 2, 0);
                push_packets(&mut straw, &mut port_b, flow, vfid, 2, 0);
            }
            dynamic_collisions += dynamic.stats().collisions;
            static_collisions += straw.stats().collisions;
        }
        assert_eq!(dynamic_collisions, 0);
        assert!(
            static_collisions > 0,
            "hashing 20 flows into 32 queues must collide sometimes (birthday paradox)"
        );
    }

    #[test]
    fn queue_reclaimed_after_last_packet_leaves() {
        let mut policy = BfcPolicy::new(BfcConfig::default(), 1);
        let mut port = port();
        push_packets(&mut policy, &mut port, 1, 10, 2, 0);
        assert_eq!(policy.tracked_flows(), 1);
        // Drain both packets through the port and notify the policy.
        while let Some((qp, target)) = port.dequeue_next() {
            policy.on_dequeue(&dctx(&port, 0, 7, target), &qp.packet);
        }
        assert_eq!(policy.tracked_flows(), 0);
        // The queue is free again: a later flow can take any queue without
        // colliding.
        push_packets(&mut policy, &mut port, 2, 20, 2, 0);
        assert_eq!(policy.stats().collisions, 0);
    }

    #[test]
    fn flow_is_paused_once_queue_exceeds_threshold() {
        let config = BfcConfig::default();
        let mut policy = BfcPolicy::new(config, 1);
        let mut port = port();
        // Threshold with one active queue: (2us+1us)*12.5GB/s = 37.5 KB, i.e.
        // 37 MTU packets; the 38th arrival must trigger a pause.
        let targets = push_packets(&mut policy, &mut port, 1, 10, 60, 0);
        assert!(targets.len() == 60);
        assert_eq!(policy.stats().pauses, 1, "exactly one pause for one flow");
        // The pause frame appears on the next tick and names the VFID.
        let tick = policy.pause_frame_tick(SimTime::from_micros(1), 0);
        let frame = tick.frame.expect("dirty state must emit a frame");
        assert!(frame.contains(10));
        assert!(tick.reschedule);
    }

    #[test]
    fn resume_follows_drain_and_is_rate_limited() {
        // Force both flows to share one physical queue so the ≤1 resume per
        // queue per tick limit is exercised.
        let mut policy = BfcPolicy::new(BfcConfig::default(), 1);
        let mut port = port_with(1);
        push_packets(&mut policy, &mut port, 1, 10, 60, 0);
        push_packets(&mut policy, &mut port, 2, 20, 60, 0);
        assert_eq!(policy.stats().pauses, 2);
        let _ = policy.pause_frame_tick(SimTime::from_micros(1), 0);
        // Drain everything: both flows become resume-eligible, but the
        // to-be-resumed list releases only one per tick for a shared queue.
        while let Some((qp, target)) = port.dequeue_next() {
            policy.on_dequeue(&dctx(&port, 0, 7, target), &qp.packet);
        }
        let t1 = policy.pause_frame_tick(SimTime::from_micros(2), 0);
        assert!(t1.frame.is_some());
        assert_eq!(policy.stats().resumes, 1, "one resume per queue per tick");
        assert!(t1.reschedule);
        let t2 = policy.pause_frame_tick(SimTime::from_micros(3), 0);
        assert!(t2.frame.is_some());
        assert_eq!(policy.stats().resumes, 2);
        // After both resumes the filter is empty and the chain stops.
        let t3 = policy.pause_frame_tick(SimTime::from_micros(4), 0);
        assert!(!t3.reschedule);
        let final_frame = t2.frame.expect("second resume emits a frame");
        assert!(final_frame.is_empty(), "all pauses cleared");
    }

    #[test]
    fn buffer_opt_ablation_resumes_everything_at_once() {
        let mut policy = BfcPolicy::new(BfcConfig::without_resume_limit(), 1);
        // Same single-queue setup as the rate-limited test above: without the
        // limit, both flows sharing the queue resume in a single tick.
        let mut port = port_with(1);
        push_packets(&mut policy, &mut port, 1, 10, 60, 0);
        push_packets(&mut policy, &mut port, 2, 20, 60, 0);
        while let Some((qp, target)) = port.dequeue_next() {
            policy.on_dequeue(&dctx(&port, 0, 7, target), &qp.packet);
        }
        let _ = policy.pause_frame_tick(SimTime::from_micros(1), 0);
        assert_eq!(policy.stats().resumes, 2, "no pacing without the limit");
    }

    #[test]
    fn paused_flows_do_not_use_high_priority_queue() {
        let mut policy = BfcPolicy::new(BfcConfig::default(), 1);
        let mut port = port();
        push_packets(&mut policy, &mut port, 1, 10, 60, 0);
        assert_eq!(policy.stats().pauses, 1);
        // A "first" packet arriving for the same (paused) VFID must not be
        // allowed to bypass the pause via the high-priority queue.
        let p = pkt(1, 10, 60, true);
        let d = policy.on_enqueue(&ectx(&port, 0, 7), &p);
        assert!(matches!(d.target, QueueTarget::Phys(_)));
    }

    #[test]
    fn table_overflow_routes_to_overflow_queue() {
        let mut config = BfcConfig::default();
        config.num_vfids = 2;
        config.bucket_size = 1;
        config.overflow_cache_size = 1;
        let mut policy = BfcPolicy::new(config, 1);
        let port = port();
        // Three flows with the same VFID but different ingress ports: the
        // third cannot be tracked.
        for ingress in 0..2u32 {
            let d = policy.on_enqueue(&ectx(&port, ingress, 7), &pkt(ingress, 1, 0, false));
            assert!(matches!(d.target, QueueTarget::Phys(_)));
        }
        let d = policy.on_enqueue(&ectx(&port, 5, 7), &pkt(9, 1, 0, false));
        assert_eq!(d.target, QueueTarget::Overflow);
        assert_eq!(policy.stats().table_overflows, 1);
    }

    #[test]
    fn pause_threshold_scales_with_active_queues() {
        // With many active queues the per-queue threshold shrinks, so flows
        // pause earlier. Verify through the config helper (the policy test
        // above covers the single-queue case).
        let c = BfcConfig::default();
        assert!(c.pause_threshold_bytes(100.0, 8) < c.pause_threshold_bytes(100.0, 1));
        assert_eq!(
            c.pause_threshold_bytes(100.0, 8),
            c.pause_threshold_bytes(100.0, 1) / 8
        );
    }

    #[test]
    fn hop_rtt_override_changes_threshold() {
        let c = BfcConfig::default().with_hop_rtt(SimDuration::from_micros(4));
        // (4us + 2us) * 12.5 GB/s = 75 KB.
        assert_eq!(c.pause_threshold_bytes(100.0, 1), 75_000);
    }

    #[test]
    fn name_reflects_assignment_mode() {
        assert_eq!(SwitchPolicy::name(&BfcPolicy::new(BfcConfig::default(), 0)), "bfc");
        assert_eq!(
            SwitchPolicy::name(&BfcPolicy::new(BfcConfig::vfid_straw(), 0)),
            "bfc-vfid"
        );
    }
}
