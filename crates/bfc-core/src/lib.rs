//! # bfc-core — Backpressure Flow Control
//!
//! The paper's contribution: per-hop, per-flow flow control implemented as a
//! [`bfc_net::SwitchPolicy`]. A switch running [`BfcPolicy`]
//!
//! * tracks every flow that has packets queued in a compact **flow table**
//!   keyed by virtual flow ID (VFID = `hash(5-tuple) mod N`), with 4-entry
//!   buckets, a small associative **overflow cache** and a per-egress
//!   overflow queue for the rare flows that fit in neither (§3.8);
//! * **dynamically assigns** each flow to a free physical queue at its egress
//!   port, reclaiming the queue when the flow's last packet departs (§3.3);
//! * **pauses** a flow toward its upstream as soon as its physical queue
//!   exceeds `(HRTT + τ) · µ / Nactive` bytes — just enough buffering to keep
//!   the link busy across the pause/resume feedback delay (§3.4);
//! * communicates pauses with a periodic, idempotent **multistage bloom
//!   filter** per ingress link, backed by a counting bloom filter so resumes
//!   do not clear bits still needed by other paused flows (§3.6);
//! * **limits resumes** to a small number per physical queue per hop RTT so a
//!   resumed crowd cannot blow up downstream buffers (§3.5); and
//! * sends the **first packet of every flow through a high-priority queue**
//!   so single-packet flows never suffer head-of-line blocking (§3.7).
//!
//! Ablation switches reproduce the paper's variants: `BFC-VFID` (static
//! hashed queue assignment, §4.2 Fig. 7), `BFC-BufferOpt` (no resume
//! limiting, Fig. 10) and `BFC-HighPriorityQ` (no high-priority queue,
//! Fig. 11).
//!
//! ```
//! use bfc_core::{BfcConfig, BfcPolicy};
//!
//! let config = BfcConfig::default();          // 32 queues, 16K VFIDs, 128 B bloom
//! let policy = BfcPolicy::new(config, 42);
//! assert_eq!(bfc_net::SwitchPolicy::name(&policy), "bfc");
//! ```

pub mod config;
pub mod counting_bloom;
pub mod flow_table;
pub mod policy;

pub use config::BfcConfig;
pub use counting_bloom::CountingBloom;
pub use flow_table::{FlowEntry, FlowKey, FlowTable, LookupOutcome};
pub use policy::BfcPolicy;
