//! Counting bloom filter kept at the downstream switch (§3.6).
//!
//! The paper sends pauses as a plain multistage bloom filter but keeps a
//! *counting* version internally: each bit position has a small counter so
//! that when two paused VFIDs share a bit, resuming one of them leaves the
//! bit set for the other. The on-the-wire [`PauseFrame`] is a snapshot of the
//! positions whose count is non-zero.

use bfc_net::packet::PauseFrame;
use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};

/// A counting bloom filter over the VFID space.
#[derive(Debug, Clone)]
pub struct CountingBloom {
    counts: Vec<u32>,
    num_bits: u32,
    num_hashes: u32,
    size_bytes: usize,
    members: u64,
}

impl CountingBloom {
    /// Creates a filter whose snapshot is `size_bytes` long and that uses
    /// `num_hashes` hash functions.
    pub fn new(size_bytes: usize, num_hashes: u32) -> Self {
        assert!(size_bytes > 0 && num_hashes > 0);
        let num_bits = (size_bytes * 8) as u32;
        CountingBloom {
            counts: vec![0; num_bits as usize],
            num_bits,
            num_hashes,
            size_bytes,
            members: 0,
        }
    }

    /// Records one pause of `vfid` (increments its bit positions).
    pub fn insert(&mut self, vfid: u32) {
        for i in 0..self.num_hashes {
            let pos = PauseFrame::bit_position(vfid, i, self.num_bits) as usize;
            self.counts[pos] += 1;
        }
        self.members += 1;
    }

    /// Records one resume of `vfid` (decrements its bit positions). Every
    /// `remove` must match an earlier `insert`; the policy maintains that
    /// invariant by pairing each pause with exactly one eventual resume.
    pub fn remove(&mut self, vfid: u32) {
        for i in 0..self.num_hashes {
            let pos = PauseFrame::bit_position(vfid, i, self.num_bits) as usize;
            debug_assert!(self.counts[pos] > 0, "counting bloom underflow for vfid {vfid}");
            self.counts[pos] = self.counts[pos].saturating_sub(1);
        }
        debug_assert!(self.members > 0);
        self.members = self.members.saturating_sub(1);
    }

    /// True if `vfid` currently matches on all hash positions (it, or a
    /// colliding VFID, is paused).
    pub fn contains(&self, vfid: u32) -> bool {
        (0..self.num_hashes).all(|i| {
            self.counts[PauseFrame::bit_position(vfid, i, self.num_bits) as usize] > 0
        })
    }

    /// Number of outstanding pauses (inserts minus removes).
    pub fn members(&self) -> u64 {
        self.members
    }

    /// True if no pauses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.members == 0
    }

    /// Builds the on-the-wire pause frame: a plain bloom filter with a bit
    /// set wherever the count is non-zero.
    pub fn snapshot(&self) -> PauseFrame {
        let mut frame = PauseFrame::new(self.size_bytes, self.num_hashes);
        for (pos, &count) in self.counts.iter().enumerate() {
            if count > 0 {
                frame.set_bit(pos as u32);
            }
        }
        frame
    }

    /// Serializes counts and membership for snapshot/restore. The geometry
    /// (bit and hash counts) is derived from configuration at construction
    /// time and is validated, not duplicated.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.counts.len());
        for &c in &self.counts {
            w.put_u32(c);
        }
        w.put_u64(self.members);
    }

    /// Restores state captured by [`CountingBloom::save_state`] into this
    /// filter, which must have been built with the same geometry.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        if n != self.counts.len() {
            return Err(SnapError::Corrupt("counting-bloom geometry mismatch"));
        }
        for c in &mut self.counts {
            *c = r.get_u32()?;
        }
        self.members = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_round_trip() {
        let mut cb = CountingBloom::new(128, 4);
        cb.insert(5);
        cb.insert(9);
        assert!(cb.contains(5) && cb.contains(9));
        assert_eq!(cb.members(), 2);
        cb.remove(5);
        assert!(!cb.contains(5));
        assert!(cb.contains(9));
        cb.remove(9);
        assert!(cb.is_empty());
        assert!(cb.snapshot().is_empty());
    }

    #[test]
    fn shared_bits_survive_one_resume() {
        // Force two VFIDs to collide by using a tiny filter; removing one
        // must keep the other paused because counts, not bits, are tracked.
        let mut cb = CountingBloom::new(1, 2);
        cb.insert(1);
        cb.insert(2);
        cb.remove(1);
        assert!(cb.contains(2), "the other flow must stay paused");
    }

    #[test]
    fn snapshot_matches_membership() {
        let mut cb = CountingBloom::new(64, 4);
        for v in [3u32, 14, 159, 2653] {
            cb.insert(v);
        }
        let frame = cb.snapshot();
        for v in [3u32, 14, 159, 2653] {
            assert!(frame.contains(v));
        }
        assert_eq!(frame.size_bytes(), 64);
    }

    #[test]
    fn saturated_filter_matches_everything_until_drained() {
        // A 1-byte filter (8 bit positions) saturates quickly: once every
        // position has a non-zero count, *any* VFID reads as paused (the
        // expected bloom false-positive regime) and the snapshot is all-ones.
        let mut cb = CountingBloom::new(1, 2);
        for v in 0..64u32 {
            cb.insert(v);
        }
        assert_eq!(cb.members(), 64);
        for probe in [0u32, 7, 1_000, u32::MAX] {
            assert!(cb.contains(probe), "saturated filter must match {probe}");
        }
        assert_eq!(cb.snapshot().popcount(), 8, "snapshot is fully set");
        // Draining restores exact emptiness: counts, membership and snapshot
        // all return to zero even from deep saturation.
        for v in 0..64u32 {
            cb.remove(v);
        }
        assert!(cb.is_empty());
        assert_eq!(cb.members(), 0);
        assert_eq!(cb.snapshot().popcount(), 0);
        assert!(!cb.contains(0));
    }

    #[test]
    fn heavy_reinsertion_of_one_vfid_counts_correctly() {
        // Pausing the same flow many times must require exactly as many
        // resumes — counters, not bits, carry the state.
        let mut cb = CountingBloom::new(16, 4);
        let n = 10_000u32;
        for _ in 0..n {
            cb.insert(77);
        }
        assert_eq!(cb.members(), n as u64);
        for _ in 0..n - 1 {
            cb.remove(77);
        }
        assert!(cb.contains(77), "one outstanding pause remains");
        cb.remove(77);
        assert!(!cb.contains(77));
        assert!(cb.is_empty());
    }

    #[test]
    fn double_pause_requires_double_resume() {
        let mut cb = CountingBloom::new(128, 4);
        cb.insert(7);
        cb.insert(7);
        cb.remove(7);
        assert!(cb.contains(7), "still one outstanding pause");
        cb.remove(7);
        assert!(!cb.contains(7));
    }
}
