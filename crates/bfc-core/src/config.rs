//! BFC configuration.

use bfc_sim::SimDuration;

/// Configuration of the BFC switch policy.
///
/// The defaults are the paper's evaluation settings (§4.1): 16 K VFIDs,
/// 128-byte bloom filters with 4 hash functions, a 2 µs one-hop RTT with
/// pause frames every half hop-RTT, and dynamic queue assignment with the
/// high-priority queue and resume limiting enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BfcConfig {
    /// Size of the VFID space and of the flow hash table (one 4-entry bucket
    /// per VFID).
    pub num_vfids: u32,
    /// Entries in the flow hash table's associative overflow cache.
    pub overflow_cache_size: usize,
    /// Entries per hash-table bucket.
    pub bucket_size: usize,
    /// Bloom-filter pause frame size in bytes.
    pub bloom_bytes: usize,
    /// Number of bloom-filter hash functions.
    pub bloom_hashes: u32,
    /// One-hop round-trip time (HRTT): the time for a pause to reach the
    /// upstream and its effect to arrive back.
    pub hop_rtt: SimDuration,
    /// Pause-frame emission interval τ (the paper uses HRTT / 2). Must match
    /// the switch's `pause_frame_interval`.
    pub pause_interval: SimDuration,
    /// Dynamic queue assignment (true = BFC, false = the BFC-VFID straw
    /// proposal that statically hashes flows to queues).
    pub dynamic_assignment: bool,
    /// Steer the first packet of each flow to the high-priority queue
    /// (false = the BFC-HighPriorityQ ablation).
    pub use_high_priority_queue: bool,
    /// Limit resumes to `resumes_per_tick_per_queue` per physical queue per
    /// pause interval (false = the BFC-BufferOpt ablation that resumes every
    /// eligible flow immediately).
    pub limit_resumes: bool,
    /// Flows resumed per physical queue per pause-frame interval when
    /// `limit_resumes` is on. The paper resumes one per interval, i.e. two
    /// per hop RTT.
    pub resumes_per_tick_per_queue: usize,
}

impl Default for BfcConfig {
    fn default() -> Self {
        BfcConfig {
            num_vfids: 16_384,
            overflow_cache_size: 100,
            bucket_size: 4,
            bloom_bytes: 128,
            bloom_hashes: 4,
            hop_rtt: SimDuration::from_micros(2),
            pause_interval: SimDuration::from_micros(1),
            dynamic_assignment: true,
            use_high_priority_queue: true,
            limit_resumes: true,
            resumes_per_tick_per_queue: 1,
        }
    }
}

impl BfcConfig {
    /// The straw proposal of §3.2: static hashed queue assignment
    /// (everything else identical to BFC, including the high-priority queue,
    /// matching the Fig. 7 comparison).
    pub fn vfid_straw() -> Self {
        BfcConfig {
            dynamic_assignment: false,
            ..BfcConfig::default()
        }
    }

    /// The BFC-BufferOpt ablation of Fig. 10: resume every eligible flow as
    /// soon as its queue drops below the threshold.
    pub fn without_resume_limit() -> Self {
        BfcConfig {
            limit_resumes: false,
            ..BfcConfig::default()
        }
    }

    /// The BFC-HighPriorityQ ablation of Fig. 11: first packets share the
    /// ordinary physical queues.
    pub fn without_high_priority_queue() -> Self {
        BfcConfig {
            use_high_priority_queue: false,
            ..BfcConfig::default()
        }
    }

    /// Overrides the VFID-space size (Fig. 13 sensitivity sweep).
    pub fn with_num_vfids(mut self, num_vfids: u32) -> Self {
        self.num_vfids = num_vfids;
        self
    }

    /// Overrides the bloom-filter size in bytes (Fig. 14 sensitivity sweep).
    ///
    /// Panics for sizes beyond [`bfc_net::packet::MAX_PAUSE_FRAME_BYTES`]
    /// (128, the paper's default and the top of the Fig. 14 sweep): pause
    /// frames store their bits inline at that capacity, and failing here
    /// beats a delayed panic on the first pause-frame tick mid-simulation.
    pub fn with_bloom_bytes(mut self, bytes: usize) -> Self {
        assert!(
            bytes > 0 && bytes <= bfc_net::packet::MAX_PAUSE_FRAME_BYTES,
            "bloom filter must be 1..={} bytes, got {bytes}",
            bfc_net::packet::MAX_PAUSE_FRAME_BYTES
        );
        self.bloom_bytes = bytes;
        self
    }

    /// Overrides the hop RTT (and scales the pause interval to half of it),
    /// used by the cross-DC and reduced-link-speed experiments.
    pub fn with_hop_rtt(mut self, hop_rtt: SimDuration) -> Self {
        self.hop_rtt = hop_rtt;
        self.pause_interval = hop_rtt / 2;
        self
    }

    /// The pause threshold in bytes for an egress link of `link_gbps` with
    /// `n_active` active (unpaused, backlogged) queues:
    /// `(HRTT + τ) · µ / Nactive` (§3.4).
    pub fn pause_threshold_bytes(&self, link_gbps: f64, n_active: usize) -> u64 {
        let horizon = self.hop_rtt + self.pause_interval;
        let bytes_per_sec = link_gbps * 1e9 / 8.0;
        let n = n_active.max(1) as f64;
        (horizon.as_secs_f64() * bytes_per_sec / n) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = BfcConfig::default();
        assert_eq!(c.num_vfids, 16_384);
        assert_eq!(c.bloom_bytes, 128);
        assert_eq!(c.bloom_hashes, 4);
        assert_eq!(c.hop_rtt, SimDuration::from_micros(2));
        assert_eq!(c.pause_interval, SimDuration::from_micros(1));
        assert!(c.dynamic_assignment && c.use_high_priority_queue && c.limit_resumes);
    }

    #[test]
    fn threshold_formula() {
        let c = BfcConfig::default();
        // (2us + 1us) * 12.5 GB/s = 37500 bytes with one active queue.
        assert_eq!(c.pause_threshold_bytes(100.0, 1), 37_500);
        assert_eq!(c.pause_threshold_bytes(100.0, 3), 12_500);
        // Zero active queues is clamped to one.
        assert_eq!(c.pause_threshold_bytes(100.0, 0), 37_500);
        // Lower link speeds shrink the threshold proportionally.
        assert_eq!(c.pause_threshold_bytes(10.0, 1), 3_750);
    }

    #[test]
    fn ablation_constructors() {
        assert!(!BfcConfig::vfid_straw().dynamic_assignment);
        assert!(!BfcConfig::without_resume_limit().limit_resumes);
        assert!(!BfcConfig::without_high_priority_queue().use_high_priority_queue);
        let c = BfcConfig::default()
            .with_num_vfids(1024)
            .with_bloom_bytes(16)
            .with_hop_rtt(SimDuration::from_micros(4));
        assert_eq!(c.num_vfids, 1024);
        assert_eq!(c.bloom_bytes, 16);
        assert_eq!(c.pause_interval, SimDuration::from_micros(2));
    }

    #[test]
    #[should_panic(expected = "bloom filter must be 1..=128 bytes")]
    fn oversized_bloom_is_rejected_at_configuration_time() {
        // Pause frames store their bits inline with a 128-byte capacity;
        // an oversized filter must fail here, not on the first pause tick.
        let _ = BfcConfig::default().with_bloom_bytes(256);
    }
}
