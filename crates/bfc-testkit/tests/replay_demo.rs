//! End-to-end demonstration of the replay workflow the runner advertises:
//! capture a failure's printed seed, then rerun with `BFC_TESTKIT_SEED` set
//! and observe the identical failing case.
//!
//! Setting an env var is process-global, so this lives in its own
//! integration-test binary rather than the crate's unit tests.

use bfc_testkit::{check_result, int_range, vec_of, Config};

#[test]
fn env_seed_replays_the_reported_failing_case() {
    let gen = vec_of(int_range(0u64..1_000), 1..50);
    let prop = |v: &Vec<u64>| assert!(v.iter().sum::<u64>() < 2_000, "sum too large");

    let first = check_result("sum_bounded", Config::default(), &gen, prop)
        .expect_err("property must fail");

    // What a user would do: export BFC_TESTKIT_SEED=<printed seed> and rerun
    // (the `property!` macro builds its config with `Config::from_env`).
    std::env::set_var("BFC_TESTKIT_SEED", format!("{:#x}", first.seed));
    let replayed = check_result("sum_bounded", Config::from_env(), &gen, prop)
        .expect_err("replay must fail the same way");
    std::env::remove_var("BFC_TESTKIT_SEED");

    assert_eq!(replayed.seed, first.seed);
    assert_eq!(replayed.case, 0, "replay mode runs exactly the one requested case");
    assert_eq!(replayed.original_input, first.original_input);
    assert_eq!(replayed.shrunk_input, first.shrunk_input);
}
