//! # bfc-testkit — miniature property-testing harness
//!
//! A dependency-free replacement for the slice of `proptest` this repository
//! uses, layered on `bfc-sim`'s deterministic [`SimRng`](bfc_sim::SimRng) so
//! the whole workspace builds and tests offline:
//!
//! * [`gen`] — composable generators: integer/float ranges, `vec_of`,
//!   `hash_set_of`, `one_of`, and tuple combinators, each with greedy shrink
//!   candidates.
//! * [`runner`] — the seeded case runner: N deterministic cases per property,
//!   `catch_unwind`-based failure capture, greedy input shrinking, and a
//!   failure report that prints the per-case seed. `BFC_TESTKIT_SEED=<seed>`
//!   replays exactly the failing case; `BFC_TESTKIT_CASES=<n>` changes the
//!   case count.
//! * [`property!`] — a `proptest!`-style macro that wraps a property body in
//!   a `#[test]` function.
//!
//! ```
//! use bfc_testkit::{property, int_range, vec_of};
//!
//! property! {
//!     /// Reversing a vector twice is the identity.
//!     fn double_reverse_is_identity(v in vec_of(int_range(0u64..1000), 1..50)) {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         assert_eq!(v, w);
//!     }
//! }
//! ```
//!
//! (`#[test]` items are omitted outside test builds, so the doctest only
//! checks that the macro expands; the crate's unit tests execute it.)

pub mod gen;
pub mod runner;

pub use gen::{
    f64_range, hash_set_of, int_range, one_of, pair, triple, vec_of, Gen, SampleInt,
};
pub use runner::{case_seed, check, check_result, Config, Failure};

/// Declares property tests in the style of `proptest!`: each `fn` becomes a
/// `#[test]` that runs [`Config::from_env`]`.cases` seeded cases, shrinking
/// and reporting the failing seed on error. Arguments are drawn from the
/// generator after `in`; the body uses plain `assert!`/`assert_eq!`.
///
/// For a non-default case count call [`check`] directly with a custom
/// [`Config`].
#[macro_export]
macro_rules! property {
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)+) => {
        $($crate::__property_one! { $(#[$meta])* fn $name($($args)*) $body })+
    };
}

/// Implementation detail of [`property!`]: one arm per supported arity.
#[doc(hidden)]
#[macro_export]
macro_rules! __property_one {
    ($(#[$meta:meta])* fn $name:ident($a:ident in $ga:expr $(,)?) $body:block) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::check(
                stringify!($name),
                $crate::Config::from_env(),
                $ga,
                |__value| {
                    let $a = ::std::clone::Clone::clone(__value);
                    $body
                },
            );
        }
    };
    ($(#[$meta:meta])* fn $name:ident($a:ident in $ga:expr, $b:ident in $gb:expr $(,)?) $body:block) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::check(
                stringify!($name),
                $crate::Config::from_env(),
                $crate::pair($ga, $gb),
                |__value| {
                    let ($a, $b) = ::std::clone::Clone::clone(__value);
                    $body
                },
            );
        }
    };
    ($(#[$meta:meta])* fn $name:ident($a:ident in $ga:expr, $b:ident in $gb:expr, $c:ident in $gc:expr $(,)?) $body:block) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::check(
                stringify!($name),
                $crate::Config::from_env(),
                $crate::triple($ga, $gb, $gc),
                |__value| {
                    let ($a, $b, $c) = ::std::clone::Clone::clone(__value);
                    $body
                },
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::{f64_range, int_range, one_of, vec_of};

    property! {
        /// The macro wires generators, runner and assertions together.
        fn macro_single_argument(x in int_range(0u64..100)) {
            assert!(x < 100);
        }

        /// Two-argument properties receive an implicit pair generator.
        fn macro_two_arguments(a in int_range(1u32..50), b in one_of(&[2u32, 4, 8])) {
            assert!(a * b >= 2);
            assert!([2, 4, 8].contains(&b));
        }

        /// Three-argument properties receive an implicit triple generator.
        fn macro_three_arguments(
            a in int_range(0u64..10),
            xs in vec_of(int_range(0u64..5), 1..10),
            f in f64_range(0.5..2.0),
        ) {
            assert!(a < 10 && !xs.is_empty() && f >= 0.5 && f < 2.0);
        }
    }
}
