//! The property runner: executes N seeded cases, shrinks failures greedily,
//! and reports the failing seed so the exact case can be replayed.
//!
//! Each case gets its own seed derived from the base seed and the case index
//! with a strong mixer, the value is drawn from a fresh `SimRng::new(seed)`,
//! and the property is run under `catch_unwind` so plain `assert!` failures
//! are captured. On failure the runner greedily walks the generator's shrink
//! candidates to a local minimum and panics with a report containing the
//! case seed; setting `BFC_TESTKIT_SEED=<seed>` reruns exactly that case.

use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use bfc_sim::rng::mix64;
use bfc_sim::SimRng;

use crate::gen::Gen;

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed; each case derives its own seed from this and its index.
    pub seed: u64,
    /// Cap on property evaluations spent shrinking a failure.
    pub max_shrink_evals: u32,
    /// Replay mode: run exactly one case with this per-case seed instead of
    /// the full seeded sweep. [`Config::from_env`] fills it from
    /// `BFC_TESTKIT_SEED`; a `Config::default()` is never affected by the
    /// environment, so programmatic callers stay deterministic.
    pub replay_seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            seed: 0x5EED_0BFC,
            max_shrink_evals: 2_000,
            replay_seed: None,
        }
    }
}

impl Config {
    /// Default configuration, honouring the `BFC_TESTKIT_CASES` (case count)
    /// and `BFC_TESTKIT_SEED` (single-case replay) environment variables.
    pub fn from_env() -> Self {
        let mut config = Config::default();
        if let Some(cases) = read_env_u64("BFC_TESTKIT_CASES") {
            config.cases = cases.clamp(1, 1_000_000) as u32;
        }
        config.replay_seed = read_env_u64("BFC_TESTKIT_SEED");
        config
    }

    /// Overrides the number of cases.
    pub fn with_cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Overrides the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

fn read_env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("could not parse {name}={raw:?} as a u64 (decimal or 0x-hex)"),
    }
}

/// A captured property failure (used by [`check_result`]; [`check`] turns it
/// into a panic report).
#[derive(Debug, Clone)]
pub struct Failure {
    /// Name of the property that failed.
    pub property: String,
    /// Index of the failing case within the run.
    pub case: u32,
    /// The per-case seed: `SimRng::new(seed)` regenerates the input exactly.
    pub seed: u64,
    /// Debug rendering of the originally generated failing input.
    pub original_input: String,
    /// Panic message of the original failure.
    pub original_error: String,
    /// Debug rendering of the shrunk (locally minimal) failing input.
    pub shrunk_input: String,
    /// Panic message of the shrunk failure.
    pub shrunk_error: String,
    /// Number of successful shrink steps taken.
    pub shrink_steps: u32,
}

impl Failure {
    /// The human-readable report [`check`] panics with.
    pub fn report(&self) -> String {
        format!(
            "property '{}' failed at case {} (seed {:#018x})\n\
             \x20 shrunk input ({} shrink steps): {}\n\
             \x20 shrunk error: {}\n\
             \x20 original input: {}\n\
             \x20 original error: {}\n\
             \x20 replay exactly this case with: BFC_TESTKIT_SEED={:#x} cargo test {}\n",
            self.property,
            self.case,
            self.seed,
            self.shrink_steps,
            self.shrunk_input,
            self.shrunk_error,
            self.original_input,
            self.original_error,
            self.seed,
            self.property,
        )
    }
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that suppresses printing for
/// panics the runner is catching on purpose, and forwards everything else to
/// the previous hook. Without this every probed shrink candidate would spam
/// the test output with an expected panic message.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs the property on one value, capturing an `assert!`/`panic!` failure as
/// `Err(message)`.
fn run_case<V, P: Fn(&V)>(prop: &P, value: &V) -> Result<(), String> {
    QUIET_PANICS.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    QUIET_PANICS.with(|q| q.set(false));
    outcome.map_err(panic_message)
}

/// Greedy shrink: repeatedly adopt the first candidate that still fails.
fn shrink_failure<G: Gen, P: Fn(&G::Value)>(
    gen: &G,
    mut current: G::Value,
    mut current_error: String,
    prop: &P,
    max_evals: u32,
) -> (G::Value, String, u32) {
    let mut evals = 0u32;
    let mut steps = 0u32;
    'outer: loop {
        for candidate in gen.shrink(&current) {
            if evals >= max_evals {
                break 'outer;
            }
            evals += 1;
            if let Err(error) = run_case(prop, &candidate) {
                current = candidate;
                current_error = error;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, current_error, steps)
}

/// The per-case seed for `case` under `base_seed`.
pub fn case_seed(base_seed: u64, case: u32) -> u64 {
    mix64(base_seed ^ mix64(case as u64 + 1))
}

/// Like [`check`] but returns the failure instead of panicking. This is the
/// testable core; property tests should use [`check`] or the
/// [`property!`](crate::property) macro.
pub fn check_result<G, P>(name: &str, config: Config, gen: &G, prop: P) -> Result<(), Failure>
where
    G: Gen,
    P: Fn(&G::Value),
{
    install_quiet_hook();
    // Replay mode: a single explicit case seed.
    let cases = if config.replay_seed.is_some() {
        1
    } else {
        config.cases
    };
    for case in 0..cases {
        let seed = config
            .replay_seed
            .unwrap_or_else(|| case_seed(config.seed, case));
        let value = gen.generate(&mut SimRng::new(seed));
        if let Err(error) = run_case(&prop, &value) {
            let original_input = format!("{value:?}");
            let (shrunk, shrunk_error, shrink_steps) =
                shrink_failure(gen, value, error.clone(), &prop, config.max_shrink_evals);
            return Err(Failure {
                property: name.to_string(),
                case,
                seed,
                original_input,
                original_error: error,
                shrunk_input: format!("{shrunk:?}"),
                shrunk_error,
                shrink_steps,
            });
        }
    }
    Ok(())
}

/// Runs `config.cases` seeded cases of `prop` against values drawn from
/// `gen`, panicking with a full report (failing seed, original and shrunk
/// inputs) on the first failure.
pub fn check<G, P>(name: &str, config: Config, gen: G, prop: P)
where
    G: Gen,
    P: Fn(&G::Value),
{
    if let Err(failure) = check_result(name, config, &gen, prop) {
        panic!("{}", failure.report());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{int_range, pair, vec_of};

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        let result = check_result(
            "always_true",
            Config::default().with_cases(37),
            &int_range(0u64..100),
            |_| counter.set(counter.get() + 1),
        );
        assert!(result.is_ok());
        assert_eq!(counter.get(), 37);
    }

    #[test]
    fn failing_property_reports_and_replays_from_seed() {
        let gen = vec_of(int_range(0u64..1000), 1..50);
        let prop = |v: &Vec<u64>| assert!(v.iter().all(|&x| x < 700), "saw a large element");
        let failure = check_result("has_no_large_elements", Config::default(), &gen, prop)
            .expect_err("property must fail: ~30% of elements are >= 700");

        // The printed seed regenerates the exact failing input.
        let replayed = gen.generate(&mut SimRng::new(failure.seed));
        assert_eq!(format!("{replayed:?}"), failure.original_input);
        assert!(run_case(&prop, &replayed).is_err());

        // The report names the property, the seed, and the replay recipe.
        let report = failure.report();
        assert!(report.contains("has_no_large_elements"));
        assert!(report.contains(&format!("BFC_TESTKIT_SEED={:#x}", failure.seed)));
        assert!(report.contains("saw a large element"));
    }

    #[test]
    fn shrinking_reaches_the_minimal_counterexample() {
        // The minimal failing input for "no element >= 700" under
        // vec(0..1000, len 1..50) is the single-element vector [700].
        let gen = vec_of(int_range(0u64..1000), 1..50);
        let failure = check_result("shrinks_to_700", Config::default(), &gen, |v: &Vec<u64>| {
            assert!(v.iter().all(|&x| x < 700))
        })
        .expect_err("property must fail");
        assert_eq!(failure.shrunk_input, "[700]");
        assert!(failure.shrink_steps > 0);
    }

    #[test]
    fn shrinking_tuples_minimizes_each_component() {
        let gen = pair(int_range(0u32..100), int_range(0u32..100));
        let failure = check_result("sum_small", Config::default(), &gen, |&(a, b): &(u32, u32)| {
            assert!(a + b < 50)
        })
        .expect_err("property must fail");
        // Minimal counterexamples have a + b == 50 with one component 0.
        assert!(failure.shrunk_input == "(50, 0)" || failure.shrunk_input == "(0, 50)");
    }

    #[test]
    fn case_seeds_are_distinct_and_deterministic() {
        let seeds: Vec<u64> = (0..1000).map(|c| case_seed(1, c)).collect();
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len());
        assert_eq!(case_seed(1, 5), case_seed(1, 5));
        assert_ne!(case_seed(1, 5), case_seed(2, 5));
    }

    #[test]
    fn same_config_is_fully_deterministic() {
        let gen = vec_of(int_range(0u64..1_000_000), 1..30);
        let config = Config::default().with_cases(16).with_seed(77);
        let mut first: Vec<String> = Vec::new();
        let result = check_result("record_inputs", config, &gen, |v| {
            let _ = v;
        });
        assert!(result.is_ok());
        for case in 0..16 {
            first.push(format!(
                "{:?}",
                gen.generate(&mut SimRng::new(case_seed(77, case)))
            ));
        }
        let second: Vec<String> = (0..16)
            .map(|case| {
                format!(
                    "{:?}",
                    gen.generate(&mut SimRng::new(case_seed(77, case)))
                )
            })
            .collect();
        assert_eq!(first, second);
    }
}
