//! Composable value generators.
//!
//! A [`Gen`] produces random values from a [`SimRng`] and proposes *simpler*
//! variants of a failing value for greedy shrinking. Generators compose:
//! [`vec_of`] and [`hash_set_of`] lift an element generator into a collection
//! generator, [`pair`] / [`triple`] build tuples, and [`one_of`] picks from a
//! fixed menu. All generation is deterministic given the RNG state, which is
//! what lets the runner replay a failing case from its printed seed.

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::Range;

use bfc_sim::SimRng;

/// A composable generator of test values.
pub trait Gen {
    /// The type of value produced.
    type Value: Clone + Debug;

    /// Draws one value. Must be a pure function of the RNG state so failing
    /// cases can be replayed from a seed.
    fn generate(&self, rng: &mut SimRng) -> Self::Value;

    /// Proposes strictly "simpler" candidates derived from `value`, best
    /// candidates first. The runner keeps any candidate that still fails the
    /// property and iterates to a local minimum. An empty vector ends
    /// shrinking for this value.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Integer types that [`int_range`] can sample.
pub trait SampleInt: Copy + Clone + Debug + Ord + Eq + Hash {
    /// Widens to u64 (all supported types fit).
    fn to_u64(self) -> u64;
    /// Narrows from u64; callers guarantee the value is in range.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),+) => {$(
        impl SampleInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )+};
}

impl_sample_int!(u8, u16, u32, u64, usize);

/// Uniform integer in the half-open range `lo..hi`.
pub struct IntRange<T> {
    lo: T,
    hi: T,
}

/// Uniform integer generator over `range` (half-open, like `0u32..256`).
pub fn int_range<T: SampleInt>(range: Range<T>) -> IntRange<T> {
    assert!(range.start < range.end, "int_range requires a non-empty range");
    IntRange {
        lo: range.start,
        hi: range.end,
    }
}

impl<T: SampleInt> Gen for IntRange<T> {
    type Value = T;

    fn generate(&self, rng: &mut SimRng) -> T {
        let span = self.hi.to_u64() - self.lo.to_u64();
        T::from_u64(self.lo.to_u64() + rng.next_below(span))
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        let (lo, v) = (self.lo.to_u64(), value.to_u64());
        if v <= lo {
            return Vec::new();
        }
        // Halving-distance sequence toward the lower bound: lo, then v - d for
        // d = span/2, span/4, ..., 1. Greedy adoption of the first failing
        // candidate converges to the exact boundary in O(log span) rounds.
        let mut out = vec![lo];
        let mut d = v - lo;
        while d > 1 {
            d /= 2;
            out.push(v - d);
        }
        out.dedup();
        out.into_iter().map(T::from_u64).collect()
    }
}

/// Uniform float in the half-open range `lo..hi`.
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` generator over `range` (half-open, like `1.0..400.0`).
pub fn f64_range(range: Range<f64>) -> F64Range {
    assert!(range.start < range.end, "f64_range requires a non-empty range");
    F64Range {
        lo: range.start,
        hi: range.end,
    }
}

impl Gen for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut SimRng) -> f64 {
        self.lo + rng.next_f64() * (self.hi - self.lo)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value > self.lo {
            out.push(self.lo);
            let mid = self.lo + (value - self.lo) / 2.0;
            if mid < *value {
                out.push(mid);
            }
        }
        out
    }
}

/// Fixed-menu generator: picks one of the given values uniformly.
pub struct OneOf<T> {
    choices: Vec<T>,
}

/// Picks uniformly from `choices`; shrinking moves toward earlier entries, so
/// list the simplest choice first.
pub fn one_of<T: Clone + Debug + PartialEq>(choices: &[T]) -> OneOf<T> {
    assert!(!choices.is_empty(), "one_of requires at least one choice");
    OneOf {
        choices: choices.to_vec(),
    }
}

impl<T: Clone + Debug + PartialEq> Gen for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut SimRng) -> T {
        self.choices[rng.next_index(self.choices.len())].clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        match self.choices.iter().position(|c| c == value) {
            Some(idx) => self.choices[..idx].to_vec(),
            None => Vec::new(),
        }
    }
}

/// Vector generator with a length drawn from a half-open range.
pub struct VecOf<G> {
    elem: G,
    min_len: usize,
    max_len: usize,
}

/// Vector of values from `elem`, with length in `len` (half-open, like
/// `1..200`).
pub fn vec_of<G: Gen>(elem: G, len: Range<usize>) -> VecOf<G> {
    assert!(len.start < len.end, "vec_of requires a non-empty length range");
    VecOf {
        elem,
        min_len: len.start,
        max_len: len.end,
    }
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut SimRng) -> Vec<G::Value> {
        let len = self.min_len + rng.next_index(self.max_len - self.min_len);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        // Structural shrinks first: big cuts, then dropping single elements.
        if len > self.min_len {
            let half = (len / 2).max(self.min_len);
            if half < len {
                out.push(value[..half].to_vec());
            }
            out.push(value[..len - 1].to_vec());
            out.push(value[1..].to_vec());
        }
        // Element-wise shrinks: replace one element at a time with each of
        // its candidates (the runner's eval cap bounds the total work).
        for (i, elem) in value.iter().enumerate() {
            for cand in self.elem.shrink(elem) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

/// Hash-set generator with a size drawn from a half-open range.
pub struct HashSetOf<G> {
    elem: G,
    min_size: usize,
    max_size: usize,
}

/// Hash set of values from `elem`, with size in `size` (half-open). The
/// element space must be large enough to reach the minimum size.
pub fn hash_set_of<G>(elem: G, size: Range<usize>) -> HashSetOf<G>
where
    G: Gen,
    G::Value: Eq + Hash + Ord,
{
    assert!(size.start < size.end, "hash_set_of requires a non-empty size range");
    HashSetOf {
        elem,
        min_size: size.start,
        max_size: size.end,
    }
}

impl<G> Gen for HashSetOf<G>
where
    G: Gen,
    G::Value: Eq + Hash + Ord,
{
    type Value = HashSet<G::Value>;

    fn generate(&self, rng: &mut SimRng) -> HashSet<G::Value> {
        let target = self.min_size + rng.next_index(self.max_size - self.min_size);
        let mut set = HashSet::with_capacity(target);
        // Cap the attempts so a tiny element space cannot loop forever.
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(100) + 100 {
            set.insert(self.elem.generate(rng));
            attempts += 1;
        }
        set
    }

    fn shrink(&self, value: &HashSet<G::Value>) -> Vec<HashSet<G::Value>> {
        if value.len() <= self.min_size {
            return Vec::new();
        }
        // Sort for deterministic candidate ordering (HashSet iteration order
        // is randomized per process).
        let mut sorted: Vec<&G::Value> = value.iter().collect();
        sorted.sort();
        let mut out = Vec::new();
        let half = (value.len() / 2).max(self.min_size);
        if half < value.len() {
            out.push(sorted[..half].iter().map(|v| (*v).clone()).collect());
        }
        for i in 0..sorted.len() {
            let cand: HashSet<G::Value> = sorted
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| (*v).clone())
                .collect();
            out.push(cand);
        }
        out
    }
}

/// Two-generator tuple.
pub struct Pair<A, B>(A, B);

/// Tuple generator `(a, b)`; shrinks one component at a time.
pub fn pair<A: Gen, B: Gen>(a: A, b: B) -> Pair<A, B> {
    Pair(a, b)
}

impl<A: Gen, B: Gen> Gen for Pair<A, B> {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut SimRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for a in self.0.shrink(&value.0) {
            out.push((a, value.1.clone()));
        }
        for b in self.1.shrink(&value.1) {
            out.push((value.0.clone(), b));
        }
        out
    }
}

/// Three-generator tuple.
pub struct Triple<A, B, C>(A, B, C);

/// Tuple generator `(a, b, c)`; shrinks one component at a time.
pub fn triple<A: Gen, B: Gen, C: Gen>(a: A, b: B, c: C) -> Triple<A, B, C> {
    Triple(a, b, c)
}

impl<A: Gen, B: Gen, C: Gen> Gen for Triple<A, B, C> {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut SimRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for a in self.0.shrink(&value.0) {
            out.push((a, value.1.clone(), value.2.clone()));
        }
        for b in self.1.shrink(&value.1) {
            out.push((value.0.clone(), b, value.2.clone()));
        }
        for c in self.2.shrink(&value.2) {
            out.push((value.0.clone(), value.1.clone(), c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_stays_in_bounds_and_shrinks_down() {
        let g = int_range(5u32..50);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let v = g.generate(&mut rng);
            assert!((5..50).contains(&v));
        }
        for cand in g.shrink(&40) {
            assert!(cand < 40 && cand >= 5);
        }
        assert!(g.shrink(&5).is_empty());
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let g = f64_range(1.0..400.0);
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            let v = g.generate(&mut rng);
            assert!((1.0..400.0).contains(&v));
        }
        for cand in g.shrink(&100.0) {
            assert!(cand < 100.0 && cand >= 1.0);
        }
    }

    #[test]
    fn one_of_only_yields_choices_and_shrinks_toward_front() {
        let g = one_of(&[16usize, 32, 64, 128]);
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let v = g.generate(&mut rng);
            assert!([16, 32, 64, 128].contains(&v));
        }
        assert_eq!(g.shrink(&64), vec![16, 32]);
        assert!(g.shrink(&16).is_empty());
    }

    #[test]
    fn vec_of_respects_length_range_and_never_shrinks_below_min() {
        let g = vec_of(int_range(0u64..1000), 3..20);
        let mut rng = SimRng::new(4);
        for _ in 0..1000 {
            let v = g.generate(&mut rng);
            assert!((3..20).contains(&v.len()));
        }
        let v = g.generate(&mut rng);
        for cand in g.shrink(&v) {
            assert!(cand.len() >= 3);
        }
    }

    #[test]
    fn hash_set_of_reaches_target_sizes() {
        let g = hash_set_of(int_range(0u32..16_384), 1..64);
        let mut rng = SimRng::new(5);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert!((1..64).contains(&s.len()));
        }
        let s = g.generate(&mut rng);
        for cand in g.shrink(&s) {
            assert!(!cand.is_empty());
            assert!(cand.len() < s.len());
            assert!(cand.is_subset(&s));
        }
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let g = pair(int_range(0u32..100), int_range(0u32..100));
        for (a, b) in g.shrink(&(10, 20)) {
            assert!((a == 10) ^ (b == 20) || (a < 10 && b == 20) || (a == 10 && b < 20));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = vec_of(pair(int_range(0u32..256), int_range(1usize..4)), 1..50);
        let a = g.generate(&mut SimRng::new(99));
        let b = g.generate(&mut SimRng::new(99));
        assert_eq!(a, b);
    }
}
