//! Fast, deterministic hashing for simulation-internal maps.
//!
//! `std`'s default `SipHash` is keyed per `HashMap` instance from process
//! randomness — robust against adversarial keys, but slow for the small
//! integer keys (flow IDs, port indices) the simulator looks up on every
//! packet, and a source of run-to-run iteration-order variation. The
//! simulator's keys are trusted, so [`FastHasher`] trades DoS resistance for
//! a multiply-rotate mix (FxHash-style) with a [`mix64`] finalizer: hot-path
//! lookups drop from ~25 ns to a few ns and hashing is bit-stable across
//! processes, which keeps every run of the engine exactly reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use crate::rng::mix64;

/// A `HashMap` using the deterministic [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;
/// A `HashSet` using the deterministic [`FastHasher`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

/// Multiplicative hasher for trusted simulation keys. See the module docs
/// for the trade-offs; use it via [`FastHashMap`] / [`FastHashSet`].
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    /// Odd multiplier (π's fractional bits, as used by FxHash).
    const K: u64 = 0x517c_c1b7_2722_0a95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(Self::K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // hashbrown derives both its bucket index and its 7-bit control tag
        // from different regions of the hash, so a full-avalanche finalizer
        // matters more than raw mixing speed.
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(value: &T) -> u64 {
        let mut h = FastHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(&42u32), hash_one(&42u32));
        assert_eq!(hash_one(&(7u32, 9usize)), hash_one(&(7u32, 9usize)));
        assert_ne!(hash_one(&1u32), hash_one(&2u32));
    }

    #[test]
    fn small_keys_spread_over_the_hash_space() {
        // Sequential small integers must not collide in the top bits
        // (hashbrown's control tag) or the low bits (bucket index).
        let hashes: Vec<u64> = (0..1024u32).map(|v| hash_one(&v)).collect();
        let top7: std::collections::HashSet<u8> =
            hashes.iter().map(|h| (h >> 57) as u8).collect();
        assert!(top7.len() > 100, "top bits are degenerate: {}", top7.len());
        let low10: std::collections::HashSet<u16> =
            hashes.iter().map(|h| (h & 1023) as u16).collect();
        assert!(low10.len() > 600, "low bits are degenerate: {}", low10.len());
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FastHashMap<u32, u64> = FastHashMap::default();
        for i in 0..10_000u32 {
            m.insert(i, i as u64 * 3);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u32 {
            assert_eq!(m.get(&i), Some(&(i as u64 * 3)));
        }
        let mut s: FastHashSet<(u32, usize)> = FastHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn variable_length_bytes_hash_consistently() {
        assert_eq!(hash_one(&"abcdefghij"), hash_one(&"abcdefghij"));
        assert_ne!(hash_one(&"abcdefghij"), hash_one(&"abcdefghik"));
    }
}
