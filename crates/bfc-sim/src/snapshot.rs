//! Binary snapshot encoding: a tiny std-only codec plus a versioned,
//! length-prefixed, checksummed container.
//!
//! Every piece of simulator state that participates in checkpoint/restore
//! serializes itself through [`SnapWriter`] / [`SnapReader`]. The encoding is
//! deliberately boring: little-endian fixed-width integers, floats by their
//! IEEE-754 bits (restore must be *bit*-identical, so floats never go through
//! text), `u64` length prefixes for variable-size data. What makes a stream a
//! *snapshot file* is the outer container written by [`finalize`] and checked
//! by [`open`]:
//!
//! ```text
//! magic (8 bytes) | version (u32) | payload length (u64) | payload | FNV-1a-64 checksum (u64)
//! ```
//!
//! The checksum covers everything before it, so truncation, bit rot and
//! foreign files are all rejected before any payload byte is interpreted.
//! The version is checked against the reader's expected version so future
//! PRs can evolve the payload layout without silently misparsing old files.

use std::fmt;

/// Errors produced while opening or decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before the decoder got the bytes it needed.
    UnexpectedEof,
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The container's format version is not the one this reader supports.
    BadVersion(u32),
    /// The FNV-1a checksum over the container does not match.
    BadChecksum,
    /// The payload decoded to something structurally impossible.
    Corrupt(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof => write!(f, "snapshot truncated (unexpected end of input)"),
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapError::BadChecksum => write!(f, "snapshot checksum mismatch (file corrupted)"),
            SnapError::Corrupt(what) => write!(f, "snapshot payload corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit hash; the container checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An append-only byte buffer with fixed-width little-endian encoders.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the raw payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` by its IEEE-754 bits — exact, no text round-trip.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u64` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// A cursor over a snapshot payload with decoders mirroring [`SnapWriter`].
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Wraps a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless the payload was consumed exactly to the end.
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::Corrupt("trailing bytes after payload"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is corruption.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool byte out of range")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a `u64` and narrows it to `usize`, guarding against payloads
    /// that claim more elements than the input could possibly hold.
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt("length exceeds usize"))
    }

    /// Reads a length prefix that counts items of at least `min_item_bytes`
    /// each, rejecting counts the remaining input cannot contain.
    pub fn get_count(&mut self, min_item_bytes: usize) -> Result<usize, SnapError> {
        let n = self.get_usize()?;
        if min_item_bytes > 0 && n > self.remaining() / min_item_bytes {
            return Err(SnapError::UnexpectedEof);
        }
        Ok(n)
    }

    /// Reads an `f64` from its IEEE-754 bits.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64`-length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.get_count(1)?;
        self.take(n)
    }

    /// Reads a `u64`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| SnapError::Corrupt("invalid UTF-8"))
    }
}

/// Container header size: magic + version + payload length.
const HEADER_LEN: usize = 8 + 4 + 8;
/// Trailing checksum size.
const CHECKSUM_LEN: usize = 8;

/// Wraps a payload in the snapshot container: magic, version, length prefix
/// and trailing FNV-1a-64 checksum over everything before it.
pub fn finalize(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates a snapshot container and returns its payload. The magic and
/// version must match exactly; the length prefix must be consistent with the
/// input size; the checksum must verify. Errors are ordered so the most
/// specific diagnosis wins: wrong magic before wrong version before
/// truncation before corruption.
pub fn open<'a>(
    magic: &[u8; 8],
    expected_version: u32,
    bytes: &'a [u8],
) -> Result<&'a [u8], SnapError> {
    if bytes.len() < 8 {
        return Err(SnapError::UnexpectedEof);
    }
    if &bytes[..8] != magic {
        return Err(SnapError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(SnapError::UnexpectedEof);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    if version != expected_version {
        return Err(SnapError::BadVersion(version));
    }
    let payload_len =
        u64::from_le_bytes(bytes[12..HEADER_LEN].try_into().expect("8-byte slice")) as usize;
    let total = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(CHECKSUM_LEN))
        .ok_or(SnapError::Corrupt("payload length overflows"))?;
    if bytes.len() < total {
        return Err(SnapError::UnexpectedEof);
    }
    if bytes.len() > total {
        return Err(SnapError::Corrupt("trailing bytes after checksum"));
    }
    let body = &bytes[..total - CHECKSUM_LEN];
    let stored = u64::from_le_bytes(bytes[total - CHECKSUM_LEN..].try_into().expect("8 bytes"));
    if fnv1a64(body) != stored {
        return Err(SnapError::BadChecksum);
    }
    Ok(&bytes[HEADER_LEN..total - CHECKSUM_LEN])
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"TESTSNAP";

    #[test]
    fn scalars_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(12345);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bytes(b"abc");
        w.put_str("snapshot");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_usize().unwrap(), 12345);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_str().unwrap(), "snapshot");
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn reader_rejects_short_input() {
        let mut r = SnapReader::new(&[1, 2, 3]);
        assert_eq!(r.get_u64().unwrap_err(), SnapError::UnexpectedEof);
        // An enormous claimed length cannot silently allocate or wrap.
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn container_round_trips_and_validates() {
        let payload = b"hello payload".to_vec();
        let file = finalize(MAGIC, 3, &payload);
        assert_eq!(open(MAGIC, 3, &file).unwrap(), &payload[..]);

        // Wrong magic.
        assert_eq!(
            open(b"WRONG!!!", 3, &file).unwrap_err(),
            SnapError::BadMagic
        );
        // Wrong version.
        assert_eq!(open(MAGIC, 4, &file).unwrap_err(), SnapError::BadVersion(3));
        // Truncation at every prefix length.
        for n in 0..file.len() {
            assert!(open(MAGIC, 3, &file[..n]).is_err(), "prefix {n} accepted");
        }
        // Any single-byte flip is caught (by magic, version or checksum).
        for i in 0..file.len() {
            let mut bad = file.clone();
            bad[i] ^= 0x40;
            assert!(open(MAGIC, 3, &bad).is_err(), "flip at {i} accepted");
        }
    }
}
