//! Event queue and simulation driver.
//!
//! Events are ordered by `(time, rank, seq)`: timestamp first, then an
//! optional caller-supplied **rank** (see [`EventQueue::push_ranked`]), then
//! insertion order. Plain [`EventQueue::push`] uses rank 0, so events pushed
//! that way keep the original FIFO-on-equal-timestamp contract. Ranks exist
//! for the sharded engine: a rank derived from an event's *content* gives
//! simultaneous events a total order that does not depend on which shard —
//! or in which global interleaving — they were scheduled, which is what lets
//! a sharded run reproduce the serial engine's results bit for bit.
//!
//! The queue is a **bucketed calendar queue**: events in the near future are
//! spread over fixed-width time windows (one `Vec` per window, organized as a
//! ring), the current window is kept in a small binary heap, and events
//! beyond the calendar horizon wait in a sorted overflow heap. Most
//! simulation events are scheduled within a few microseconds of `now`, so
//! push is usually an O(1) append into a window bucket and pop works on a
//! heap holding one window's worth of events instead of the entire future —
//! in practice tens of entries instead of tens of thousands. Ordering is
//! always decided by the `(time, rank, seq)` triple, never by which internal
//! structure an event passed through ([`ReferenceEventQueue`] keeps the
//! original heap implementation around for differential tests).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::snapshot::{SnapError, SnapReader, SnapWriter};
use crate::time::SimTime;

/// A single scheduled entry: time, rank, insertion sequence number, payload.
struct Entry<E> {
    time: SimTime,
    rank: u32,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.rank == other.rank && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (then the
        // lowest rank, then the lowest sequence number) is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.rank.cmp(&self.rank))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Log2 of the calendar window width in picoseconds: 2^21 ps ≈ 2.1 µs — a
/// couple of microseconds of simulated time share one window, so the dense
/// near-future traffic (serialization, propagation, ACK turnaround) stays in
/// the current-window heap and only genuinely future events pay for bucket
/// hops.
const WINDOW_SHIFT: u32 = 21;
/// Width of one calendar window in picoseconds.
const WINDOW_WIDTH: u64 = 1 << WINDOW_SHIFT;
/// Number of future windows the calendar covers (beyond the current one).
/// 128 windows × 2.1 µs ≈ 268 µs of look-ahead before events spill into the
/// overflow heap — enough for transmission, propagation and pause timers;
/// only long retransmission timeouts routinely overflow.
const NUM_BUCKETS: usize = 128;
const BUCKET_MASK: usize = NUM_BUCKETS - 1;
const BITMAP_WORDS: usize = NUM_BUCKETS / 64;
/// A compact scheduling key: the payload lives in the queue's slab and is
/// referenced by `slot`, so heap sifts and bucket moves shuffle 24 bytes
/// instead of the full event. The rank is deliberately `u32` so the key
/// stays at 24 bytes — the size the calendar's sort/sift traffic was tuned
/// for before ranks existed.
#[derive(Clone, Copy)]
struct Key {
    time: SimTime,
    rank: u32,
    slot: u32,
    seq: u64,
}

impl Key {
    #[inline]
    fn ord_key(&self) -> (SimTime, u32, u64) {
        (self.time, self.rank, self.seq)
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.ord_key() == other.ord_key()
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (then the
        // lowest rank, then the lowest sequence number) is popped first.
        other.ord_key().cmp(&self.ord_key())
    }
}

/// A time-ordered queue of simulation events.
///
/// The queue never reorders events scheduled for the same instant: they come
/// back in the order they were pushed.
///
/// # Internal invariant
///
/// After every `push`/`pop`, the `current` heap is non-empty whenever the
/// queue as a whole is non-empty and its front is the global minimum
/// `(time, rank, seq)` (so `peek_time` is O(1)). The calendar ring only
/// holds keys at or beyond the current window's end, and the overflow heap
/// only holds keys that were beyond the calendar horizon when pushed;
/// [`EventQueue::settle`] restores the invariant by advancing the window to
/// the earliest pending source (comparing the first non-empty bucket's
/// window against the overflow minimum) whenever `current` drains. Ordering
/// is always decided by `(time, rank, seq)`, never by which internal
/// structure an event passed through.
pub struct EventQueue<E> {
    /// Sorted (ascending `(time, rank, seq)`) keys of the current window,
    /// consumed from `cursor` on. Refilled in bulk by `settle`, which sorts
    /// once — sequential, cache-friendly — instead of sifting a heap per key.
    sorted: Vec<Key>,
    /// Next unconsumed index into `sorted`.
    cursor: usize,
    /// Keys pushed *after* the window was last refilled that fall inside the
    /// current window (or before it): typically the handful of immediate
    /// follow-up events a handler schedules. Merged with `sorted` on pop.
    late: BinaryHeap<Key>,
    /// Start of the current window, picoseconds.
    window_start: u64,
    /// Physical ring index of logical bucket 0 (the window right after the
    /// current one).
    base: usize,
    /// The calendar ring: logical bucket `j` covers
    /// `[window_start + (j+1)·width, window_start + (j+2)·width)`. Bucket
    /// storage is recycled: each `Vec` keeps its capacity across dump/refill
    /// cycles, so steady-state operation does not allocate.
    buckets: Vec<Vec<Key>>,
    /// One bit per *physical* bucket: set iff that bucket is non-empty.
    occupied: [u64; BITMAP_WORDS],
    /// Total events currently stored in the ring.
    in_buckets: usize,
    /// Keys beyond the calendar horizon at push time, ordered by
    /// `(time, seq)`.
    overflow: BinaryHeap<Key>,
    /// Payload storage indexed by `Key::slot`. Slots are recycled through
    /// `free`, so each event is written once on push and read once on pop
    /// no matter how many times its key migrates between heaps and buckets
    /// — network events carry whole packets, and sifting 24-byte keys
    /// instead of ~300-byte events is what makes the calendar pay off.
    slab: Vec<Option<E>>,
    /// Free slots in `slab`.
    free: Vec<u32>,
    next_seq: u64,
    popped: u64,
    /// Lifetime count of keys pushed beyond the calendar horizon into the
    /// overflow heap (observability: calendar-geometry pressure).
    overflow_pushes: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            sorted: Vec::new(),
            cursor: 0,
            late: BinaryHeap::new(),
            window_start: 0,
            base: 0,
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            in_buckets: 0,
            overflow: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            popped: 0,
            overflow_pushes: 0,
        }
    }

    /// Creates an empty queue with space for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = Self::new();
        q.slab = Vec::with_capacity(capacity);
        q.sorted = Vec::with_capacity((capacity / NUM_BUCKETS).max(16));
        q
    }

    /// End of the current window (saturating so times near `SimTime::MAX`
    /// degrade gracefully into the current window instead of overflowing).
    #[inline]
    fn window_end(&self) -> u64 {
        self.window_start.saturating_add(WINDOW_WIDTH)
    }

    /// True if the current window (sorted backbone + late heap) is drained.
    #[inline]
    fn current_is_empty(&self) -> bool {
        self.cursor == self.sorted.len() && self.late.is_empty()
    }

    /// `(time, rank, seq)` of the earliest key in the current window, if any.
    #[inline]
    fn current_front(&self) -> Option<(SimTime, u32, u64)> {
        let backbone = self.sorted.get(self.cursor).map(Key::ord_key);
        let late = self.late.peek().map(Key::ord_key);
        match (backbone, late) {
            (Some(b), Some(l)) => Some(b.min(l)),
            (b, l) => b.or(l),
        }
    }

    /// Removes and returns the earliest key in the current window.
    #[inline]
    fn current_pop(&mut self) -> Option<Key> {
        let take_backbone = match (self.sorted.get(self.cursor), self.late.peek()) {
            (Some(b), Some(l)) => b.ord_key() < l.ord_key(),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_backbone {
            let k = self.sorted[self.cursor];
            self.cursor += 1;
            Some(k)
        } else {
            self.late.pop()
        }
    }

    /// Schedules `event` at absolute time `time` with rank 0 (pure FIFO
    /// among equal timestamps).
    pub fn push(&mut self, time: SimTime, event: E) {
        self.push_ranked(time, 0, event);
    }

    /// Schedules `event` at absolute time `time` with an explicit `rank`.
    /// Among equal timestamps, lower ranks pop first; equal `(time, rank)`
    /// pairs keep FIFO order. A rank derived from the event's content (rather
    /// than from scheduling order) makes the pop order independent of how
    /// concurrent events were interleaved at push time — the property the
    /// sharded engine's determinism rests on.
    pub fn push_ranked(&mut self, time: SimTime, rank: u32, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(time, rank, seq, event);
    }

    /// Places an entry with an explicit sequence number into the calendar.
    /// `push_ranked` is the only caller that mints sequence numbers;
    /// `restore_state` replays previously-minted ones.
    fn insert(&mut self, time: SimTime, rank: u32, seq: u64, event: E) {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = Some(event);
                slot
            }
            None => {
                self.slab.push(Some(event));
                (self.slab.len() - 1) as u32
            }
        };
        let key = Key {
            time,
            rank,
            slot,
            seq,
        };
        let t = time.as_picos();
        if t < self.window_end() {
            self.late.push(key);
            return;
        }
        if self.current_is_empty() && self.in_buckets == 0 && self.overflow.is_empty() {
            // The queue is idle and simulated time has moved past the
            // window: re-anchor at this event instead of walking the ring.
            self.window_start = t;
            self.late.push(key);
            return;
        }
        let logical = (((t - self.window_start) >> WINDOW_SHIFT) - 1) as usize;
        if logical < NUM_BUCKETS {
            let phys = (self.base + logical) & BUCKET_MASK;
            self.buckets[phys].push(key);
            self.occupied[phys / 64] |= 1u64 << (phys % 64);
            self.in_buckets += 1;
        } else {
            self.overflow.push(key);
            self.overflow_pushes += 1;
        }
        if self.current_is_empty() {
            // Keep the peek invariant: the earliest pending event must sit
            // in the current window.
            self.settle();
        }
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let key = self.current_pop()?;
        self.popped += 1;
        let event = self.slab[key.slot as usize]
            .take()
            .expect("scheduled slot holds an event");
        self.free.push(key.slot);
        if self.current_is_empty() {
            self.settle();
        }
        Some((key.time, event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.current_front().map(|(t, _, _)| t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        (self.sorted.len() - self.cursor) + self.late.len() + self.in_buckets + self.overflow.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events scheduled over the queue's lifetime.
    pub fn total_scheduled(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events delivered over the queue's lifetime.
    pub fn total_delivered(&self) -> u64 {
        self.popped
    }

    /// Lifetime number of keys that landed in the overflow heap because
    /// they were scheduled beyond the calendar horizon.
    pub fn overflow_pushes(&self) -> u64 {
        self.overflow_pushes
    }

    /// Serializes the queue's *logical* state: every pending entry's
    /// `(time, rank, seq)` key and payload (in pop order), plus the lifetime
    /// counters. The physical calendar layout — which bucket or heap a key
    /// happens to sit in, slab slot numbers, window anchoring — is not
    /// captured: ordering is decided solely by `(time, rank, seq)`, so a
    /// restored queue pops the identical sequence regardless of layout.
    pub fn save_state(&self, w: &mut SnapWriter, mut save_event: impl FnMut(&mut SnapWriter, &E)) {
        let mut keys: Vec<Key> = Vec::with_capacity(self.len());
        keys.extend_from_slice(&self.sorted[self.cursor..]);
        keys.extend(self.late.iter());
        for bucket in &self.buckets {
            keys.extend_from_slice(bucket);
        }
        keys.extend(self.overflow.iter());
        keys.sort_unstable_by_key(Key::ord_key);
        w.put_usize(keys.len());
        for k in &keys {
            w.put_u64(k.time.as_picos());
            w.put_u32(k.rank);
            w.put_u64(k.seq);
            let event = self.slab[k.slot as usize]
                .as_ref()
                .expect("pending key references a live slab slot");
            save_event(w, event);
        }
        w.put_u64(self.next_seq);
        w.put_u64(self.popped);
        w.put_u64(self.overflow_pushes);
    }

    /// Rebuilds a queue from [`EventQueue::save_state`] output. The restored
    /// queue is logically identical — same pending `(time, rank, seq)` keys,
    /// same payloads, same lifetime counters — even though the physical
    /// calendar layout is rebuilt from scratch.
    pub fn restore_state(
        r: &mut SnapReader<'_>,
        mut load_event: impl FnMut(&mut SnapReader<'_>) -> Result<E, SnapError>,
    ) -> Result<Self, SnapError> {
        let n = r.get_count(21)?; // 8 + 4 + 8 key bytes + ≥1 payload byte
        let mut q = Self::with_capacity(n);
        let mut max_seq = None;
        for _ in 0..n {
            let time = SimTime::from_picos(r.get_u64()?);
            let rank = r.get_u32()?;
            let seq = r.get_u64()?;
            let event = load_event(r)?;
            q.insert(time, rank, seq, event);
            max_seq = max_seq.max(Some(seq));
        }
        q.next_seq = r.get_u64()?;
        q.popped = r.get_u64()?;
        // Overwrite, not accumulate: the re-insertions above may themselves
        // have landed keys in the overflow heap, but the lifetime counter is
        // logical state owned by the snapshot.
        q.overflow_pushes = r.get_u64()?;
        if max_seq.is_some_and(|m| m >= q.next_seq) {
            return Err(SnapError::Corrupt("pending seq beyond next_seq"));
        }
        Ok(q)
    }

    /// Moves overflow keys that now fall inside the current window into
    /// the (empty) sorted backbone. Only called from `settle`, before the
    /// backbone is re-sorted. When the window end has saturated at
    /// `u64::MAX` the window covers all representable time, so everything
    /// drains (otherwise an event at exactly `SimTime::MAX` could never
    /// leave the overflow heap and `settle` would spin).
    fn drain_overflow(&mut self) {
        let end = self.window_end();
        while self
            .overflow
            .peek()
            .is_some_and(|k| k.time.as_picos() < end || end == u64::MAX)
        {
            let k = self.overflow.pop().expect("peeked key exists");
            self.sorted.push(k);
        }
    }

    /// Logical index of the first non-empty bucket. Caller guarantees
    /// `in_buckets > 0`.
    fn first_occupied_logical(&self) -> usize {
        let start_word = self.base / 64;
        let start_bit = self.base % 64;
        // First partial word: only bits at or after `base`.
        let mut word = self.occupied[start_word] & (!0u64 << start_bit);
        let mut widx = start_word;
        loop {
            if word != 0 {
                let phys = widx * 64 + word.trailing_zeros() as usize;
                return (phys + NUM_BUCKETS - self.base) & BUCKET_MASK;
            }
            widx = (widx + 1) % BITMAP_WORDS;
            word = self.occupied[widx];
            if widx == start_word {
                // Wrapped around: only bits strictly before `base` remain.
                word &= (1u64 << start_bit) - 1;
                if word != 0 {
                    let phys = widx * 64 + word.trailing_zeros() as usize;
                    return (phys + NUM_BUCKETS - self.base) & BUCKET_MASK;
                }
                unreachable!("in_buckets > 0 but the occupancy bitmap is empty");
            }
        }
    }

    /// Advances the window by `steps` widths, rotating the ring base. Every
    /// bucket passed over must already be empty.
    fn advance(&mut self, steps: usize) {
        self.window_start = self
            .window_start
            .saturating_add(steps as u64 * WINDOW_WIDTH);
        self.base = (self.base + steps) & BUCKET_MASK;
    }

    /// Restores the invariant that `current` holds the earliest pending
    /// events: advances the window to the next non-empty bucket (or
    /// re-anchors at the overflow minimum) and dumps that window into the
    /// current heap. No-op when the queue is empty.
    fn settle(&mut self) {
        debug_assert!(self.current_is_empty());
        self.sorted.clear();
        self.cursor = 0;
        while self.sorted.is_empty() {
            if self.in_buckets == 0 {
                let Some(top) = self.overflow.peek() else {
                    return; // queue is empty
                };
                // Every bucket is empty: the ring mapping is vacuous, so the
                // window can jump straight to the earliest overflow event.
                self.window_start = top.time.as_picos();
                self.drain_overflow();
                debug_assert!(!self.sorted.is_empty());
            } else {
                let j = self.first_occupied_logical();
                let bucket_window_start = self
                    .window_start
                    .saturating_add((j as u64 + 1) * WINDOW_WIDTH);
                match self.overflow.peek() {
                    // An overflow event precedes the earliest bucket: advance
                    // only up to the window containing it (crossing empty
                    // buckets exclusively) and pull it in.
                    Some(top) if top.time.as_picos() < bucket_window_start => {
                        let t = top.time.as_picos();
                        debug_assert!(t >= self.window_end());
                        let steps = ((t - self.window_start) >> WINDOW_SHIFT) as usize;
                        self.advance(steps);
                        self.drain_overflow();
                    }
                    _ => {
                        // Make bucket `j`'s window the current window and
                        // move its (unsorted) keys into the backbone.
                        let phys = (self.base + j) & BUCKET_MASK;
                        let mut keys = std::mem::take(&mut self.buckets[phys]);
                        self.occupied[phys / 64] &= !(1u64 << (phys % 64));
                        self.in_buckets -= keys.len();
                        self.advance(j + 1);
                        self.sorted.append(&mut keys);
                        // Hand the (now empty, capacity-retaining) Vec back
                        // to the ring slot so bucket storage is recycled.
                        self.buckets[phys] = keys;
                        self.drain_overflow();
                    }
                }
            }
        }
        // One contiguous sort restores (time, rank, seq) order for the
        // window. Rank-0 fast path: plain `push` traffic — the vast
        // majority; non-zero ranks only come from the sharded engine's
        // boundary events — packs `(time, seq)` into one `u128` so the sort
        // compares a single scalar instead of short-circuiting through a
        // three-field tuple. The pack is exact: `seq` occupies the low 64
        // bits, so the packed order equals the `(time, 0, seq)` order.
        if self.sorted.iter().all(|k| k.rank == 0) {
            self.sorted
                .sort_unstable_by_key(|k| ((k.time.as_picos() as u128) << 64) | k.seq as u128);
        } else {
            self.sorted.sort_unstable_by_key(Key::ord_key);
        }
    }
}

/// The original `BinaryHeap`-based event queue, kept as the executable
/// specification of the ordering contract. Differential tests (and anyone
/// suspicious of the calendar queue) can run the same schedule through both
/// implementations and compare pop sequences.
pub struct ReferenceEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for ReferenceEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReferenceEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` at absolute time `time` with rank 0 (pure FIFO
    /// among equal timestamps).
    pub fn push(&mut self, time: SimTime, event: E) {
        self.push_ranked(time, 0, event);
    }

    /// Schedules `event` at absolute time `time` with an explicit `rank`
    /// (see [`EventQueue::push_ranked`]).
    pub fn push_ranked(&mut self, time: SimTime, rank: u32, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            rank,
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            (e.time, e.event)
        })
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A simulation that consumes events of type `E` and may schedule more.
///
/// The driver ([`run`] / [`run_until`]) pops events in time order and hands
/// each one to [`Simulation::handle`] together with a mutable reference to
/// the queue so the handler can schedule follow-up events.
pub trait Simulation {
    /// The event payload type.
    type Event;

    /// Handles one event occurring at `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Runs the simulation until the event queue is empty. Returns the timestamp
/// of the last delivered event (or `SimTime::ZERO` if no event was delivered).
pub fn run<S: Simulation>(sim: &mut S, queue: &mut EventQueue<S::Event>) -> SimTime {
    run_until(sim, queue, SimTime::MAX)
}

/// Runs the simulation until the event queue is empty or the next event would
/// occur strictly after `deadline`. Events scheduled exactly at `deadline`
/// are delivered. Returns the timestamp of the last delivered event.
pub fn run_until<S: Simulation>(
    sim: &mut S,
    queue: &mut EventQueue<S::Event>,
    deadline: SimTime,
) -> SimTime {
    let mut last = SimTime::ZERO;
    while let Some(t) = queue.peek_time() {
        if t > deadline {
            break;
        }
        let (now, event) = queue.pop().expect("peeked event must exist");
        debug_assert!(now >= last, "event queue delivered events out of order");
        last = now;
        sim.handle(now, event, queue);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3u32);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100u32 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ranks_order_equal_timestamps_before_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        // Push in descending rank order; pops must come back ascending, with
        // FIFO only breaking (time, rank) ties.
        q.push_ranked(t, 3, 30u32);
        q.push_ranked(t, 1, 10);
        q.push_ranked(t, 2, 20);
        q.push_ranked(t, 1, 11);
        q.push_ranked(SimTime::from_nanos(1), 9, 0);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 10, 11, 20, 30]);
    }

    #[test]
    fn counters_track_scheduling() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.total_scheduled(), 2);
        assert_eq!(q.total_delivered(), 0);
        q.pop();
        assert_eq!(q.total_delivered(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_is_accurate_across_all_internal_structures() {
        let mut q = EventQueue::new();
        // Overflow first (far beyond the horizon), then a bucket event, then
        // a current-window event: peek must always name the true minimum.
        q.push(SimTime::from_micros(100_000), 3u32);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(100_000)));
        q.push(SimTime::from_micros(50), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(50)));
        q.push(SimTime::from_nanos(10), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10)));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn overflow_event_is_not_overtaken_by_later_bucket_event() {
        // Regression test for the subtle calendar-queue ordering case: an
        // event lands in overflow, the window then advances far enough that
        // a *later* event is pushed into a bucket whose window ends after
        // the overflow event's time. The overflow event must still pop first.
        let mut q = EventQueue::new();
        let horizon_ns = ((NUM_BUCKETS as u64 + 1) * WINDOW_WIDTH) / 1_000;
        q.push(SimTime::from_nanos(10), 1u32); // current window
        q.push(SimTime::from_nanos(horizon_ns + 100), 2); // overflow
        assert_eq!(q.pop().unwrap().1, 1);
        // The queue re-anchored at the overflow event; now schedule an event
        // slightly after it (same region, would have been a bucket event
        // under the old window).
        q.push(SimTime::from_nanos(horizon_ns + 200), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pushes_into_the_past_still_pop_in_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(500), 2u32);
        assert_eq!(q.pop().unwrap().1, 2);
        // The window has advanced to 500 µs; a push at an earlier absolute
        // time must still come out before later ones.
        q.push(SimTime::from_micros(400), 1);
        q.push(SimTime::from_micros(600), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn matches_reference_queue_on_random_interleaved_schedules() {
        // Differential test: random pushes (spanning current window, buckets
        // and overflow, with many equal timestamps) interleaved with pops
        // must produce byte-identical sequences from both implementations.
        let mut rng = SimRng::new(0xCA1E_17DA);
        for round in 0..50 {
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut reference: ReferenceEventQueue<u64> = ReferenceEventQueue::new();
            let ops = 400 + round * 13;
            let mut payload = 0u64;
            for _ in 0..ops {
                if rng.chance(0.6) || cal.is_empty() {
                    // Mix of near, far and duplicate timestamps.
                    let t = match rng.next_below(4) {
                        0 => rng.next_below(1_000),             // dense ties, ns
                        1 => rng.next_below(100_000),           // within calendar
                        2 => rng.next_below(1_000_000_000),     // far future
                        _ => 77,                                // constant tie
                    };
                    // A small rank universe so (time, rank) ties are common
                    // and the seq fallback is exercised in both queues.
                    let rank = rng.next_below(3) as u32;
                    cal.push_ranked(SimTime::from_nanos(t), rank, payload);
                    reference.push_ranked(SimTime::from_nanos(t), rank, payload);
                    payload += 1;
                } else {
                    assert_eq!(cal.pop(), reference.pop());
                }
                assert_eq!(cal.peek_time(), reference.peek_time());
                assert_eq!(cal.len(), reference.len());
            }
            loop {
                let (a, b) = (cal.pop(), reference.pop());
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_pop_order_and_counters() {
        // Fill the queue across all internal structures (current window,
        // buckets, overflow), pop some, snapshot, restore, and compare the
        // remaining pop sequence and lifetime counters exactly.
        let mut rng = SimRng::new(0x5AAF_E77E);
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..500u64 {
            let t = match rng.next_below(4) {
                0 => rng.next_below(1_000),
                1 => rng.next_below(100_000),
                2 => rng.next_below(1_000_000_000),
                _ => 77,
            };
            q.push_ranked(SimTime::from_nanos(t), rng.next_below(3) as u32, i);
        }
        for _ in 0..123 {
            q.pop();
        }
        let mut w = SnapWriter::new();
        q.save_state(&mut w, |w, e| w.put_u64(*e));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut restored = EventQueue::restore_state(&mut r, |r| r.get_u64()).expect("restores");
        r.expect_end().expect("payload fully consumed");
        assert_eq!(restored.len(), q.len());
        assert_eq!(restored.total_scheduled(), q.total_scheduled());
        assert_eq!(restored.total_delivered(), q.total_delivered());
        // The restored queue keeps minting fresh seq numbers correctly:
        // interleave new pushes with the drain on both queues.
        q.push(SimTime::from_nanos(50), 9_000);
        restored.push(SimTime::from_nanos(50), 9_000);
        loop {
            let (a, b) = (q.pop(), restored.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(restored.total_delivered(), q.total_delivered());
    }

    #[test]
    fn snapshot_restore_rejects_corrupt_payloads() {
        let mut q: EventQueue<u64> = EventQueue::new();
        q.push(SimTime::from_nanos(1), 1);
        let mut w = SnapWriter::new();
        q.save_state(&mut w, |w, e| w.put_u64(*e));
        let bytes = w.into_bytes();
        // Truncation at any point fails cleanly.
        for n in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..n]);
            let res = EventQueue::<u64>::restore_state(&mut r, |r| r.get_u64());
            assert!(
                res.is_err() || r.expect_end().is_err(),
                "truncated payload of {n} bytes accepted"
            );
        }
    }

    /// A simulation that re-schedules itself a fixed number of times.
    struct Ticker {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl Simulation for Ticker {
        type Event = ();
        fn handle(&mut self, now: SimTime, _e: (), queue: &mut EventQueue<()>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.push(now + SimDuration::from_nanos(10), ());
            }
        }
    }

    #[test]
    fn driver_runs_to_completion() {
        let mut sim = Ticker {
            remaining: 5,
            fired_at: Vec::new(),
        };
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let end = run(&mut sim, &mut q);
        assert_eq!(sim.fired_at.len(), 6);
        assert_eq!(end.as_nanos(), 50);
    }

    #[test]
    fn driver_respects_deadline() {
        let mut sim = Ticker {
            remaining: 1_000,
            fired_at: Vec::new(),
        };
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let end = run_until(&mut sim, &mut q, SimTime::from_nanos(35));
        // Events at 0, 10, 20, 30 are delivered; 40 exceeds the deadline.
        assert_eq!(sim.fired_at.len(), 4);
        assert_eq!(end.as_nanos(), 30);
        assert!(!q.is_empty());
    }
}
