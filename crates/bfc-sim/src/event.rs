//! Event queue and simulation driver.
//!
//! Events are ordered by timestamp; events with equal timestamps are
//! delivered in insertion (FIFO) order so simulations are fully
//! deterministic regardless of how the binary heap re-orders equal keys.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A single scheduled entry: time, insertion sequence number, payload.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (then the
        // lowest sequence number) is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// The queue never reorders events scheduled for the same instant: they come
/// back in the order they were pushed.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Creates an empty queue with space for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            (e.time, e.event)
        })
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events scheduled over the queue's lifetime.
    pub fn total_scheduled(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events delivered over the queue's lifetime.
    pub fn total_delivered(&self) -> u64 {
        self.popped
    }
}

/// A simulation that consumes events of type `E` and may schedule more.
///
/// The driver ([`run`] / [`run_until`]) pops events in time order and hands
/// each one to [`Simulation::handle`] together with a mutable reference to
/// the queue so the handler can schedule follow-up events.
pub trait Simulation {
    /// The event payload type.
    type Event;

    /// Handles one event occurring at `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Runs the simulation until the event queue is empty. Returns the timestamp
/// of the last delivered event (or `SimTime::ZERO` if no event was delivered).
pub fn run<S: Simulation>(sim: &mut S, queue: &mut EventQueue<S::Event>) -> SimTime {
    run_until(sim, queue, SimTime::MAX)
}

/// Runs the simulation until the event queue is empty or the next event would
/// occur strictly after `deadline`. Events scheduled exactly at `deadline`
/// are delivered. Returns the timestamp of the last delivered event.
pub fn run_until<S: Simulation>(
    sim: &mut S,
    queue: &mut EventQueue<S::Event>,
    deadline: SimTime,
) -> SimTime {
    let mut last = SimTime::ZERO;
    while let Some(t) = queue.peek_time() {
        if t > deadline {
            break;
        }
        let (now, event) = queue.pop().expect("peeked event must exist");
        debug_assert!(now >= last, "event queue delivered events out of order");
        last = now;
        sim.handle(now, event, queue);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3u32);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100u32 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn counters_track_scheduling() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.total_scheduled(), 2);
        assert_eq!(q.total_delivered(), 0);
        q.pop();
        assert_eq!(q.total_delivered(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    /// A simulation that re-schedules itself a fixed number of times.
    struct Ticker {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl Simulation for Ticker {
        type Event = ();
        fn handle(&mut self, now: SimTime, _e: (), queue: &mut EventQueue<()>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.push(now + SimDuration::from_nanos(10), ());
            }
        }
    }

    #[test]
    fn driver_runs_to_completion() {
        let mut sim = Ticker {
            remaining: 5,
            fired_at: Vec::new(),
        };
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let end = run(&mut sim, &mut q);
        assert_eq!(sim.fired_at.len(), 6);
        assert_eq!(end.as_nanos(), 50);
    }

    #[test]
    fn driver_respects_deadline() {
        let mut sim = Ticker {
            remaining: 1_000,
            fired_at: Vec::new(),
        };
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let end = run_until(&mut sim, &mut q, SimTime::from_nanos(35));
        // Events at 0, 10, 20, 30 are delivered; 40 exceeds the deadline.
        assert_eq!(sim.fired_at.len(), 4);
        assert_eq!(end.as_nanos(), 30);
        assert!(!q.is_empty());
    }
}
