//! Deterministic pseudo-random number generation.
//!
//! All randomness in the BFC reproduction flows through [`SimRng`] so that
//! every experiment is reproducible from a single seed. The generator is
//! xoshiro256++ seeded through SplitMix64 — the standard construction
//! recommended by the xoshiro authors — implemented here directly so the
//! simulation core has no external dependencies.

/// A small, fast, seedable PRNG (xoshiro256++) with the samplers the
/// workload generator needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step, used for seeding and for stateless hashing.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless 64-bit mixing function (Stafford variant 13). Used wherever the
/// simulator needs a hash that is consistent across switches, e.g. computing
/// virtual flow IDs and bloom-filter bit positions.
#[inline]
pub fn mix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not be seeded with all zeros; splitmix64 of any seed
        // cannot produce four zero outputs, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        SimRng { s }
    }

    /// Captures the raw xoshiro256++ state for snapshot/restore.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured state; the restored
    /// generator continues the exact output stream.
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }

    /// Derives an independent child generator; useful for giving each
    /// traffic source its own stream while preserving determinism.
    pub fn split(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ mix64(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize in `[0, bound)`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Avoid ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Standard normal sample (Box–Muller; uses one pair per call, no caching,
    /// which keeps the generator state trivially cloneable).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Log-normal sample parameterised by the *mean of the distribution*
    /// (not of the underlying normal) and the shape parameter `sigma`.
    ///
    /// The BFC paper draws flow inter-arrival times from a log-normal
    /// distribution with `sigma = 2`, scaled so that the mean matches the
    /// target offered load; this helper performs that scaling.
    pub fn lognormal_with_mean(&mut self, mean: f64, sigma: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
        let mu = mean.ln() - sigma * sigma / 2.0;
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Picks an element of `slice` uniformly at random.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        debug_assert!(!slice.is_empty());
        &slice[self.next_index(slice.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_is_in_range() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            let x = rng.next_below(13);
            assert!(x < 13);
            let y = rng.range_inclusive(5, 9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn next_below_covers_all_residues() {
        let mut rng = SimRng::new(11);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[rng.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(3);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn lognormal_mean_is_close() {
        let mut rng = SimRng::new(9);
        let n = 400_000;
        let mean: f64 = (0..n)
            .map(|_| rng.lognormal_with_mean(10.0, 2.0))
            .sum::<f64>()
            / n as f64;
        // sigma = 2 is heavy-tailed, so allow a generous tolerance.
        assert!((mean - 10.0).abs() < 1.5, "mean was {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::new(123);
        let mut parent2 = SimRng::new(123);
        let mut a = parent1.split(0);
        let mut b = parent2.split(0);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(123).split(1);
        let matches = (0..100)
            .filter(|_| SimRng::new(123).split(0).next_u64() == c.next_u64())
            .count();
        assert!(matches <= 1);
    }

    #[test]
    fn mix64_differs_on_nearby_inputs() {
        assert_ne!(mix64(1), mix64(2));
        assert_ne!(mix64(0), 0);
    }
}
