//! Simulated time.
//!
//! The clock has picosecond resolution stored in a `u64`. One picosecond is
//! fine enough to represent a single byte on a 100 Gbps link exactly
//! (80 ps/byte) while still covering more than five hours of simulated time,
//! far beyond anything the BFC evaluation needs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, measured in picoseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from raw picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Builds a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }
    /// Builds a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }
    /// Raw picoseconds since the start of the simulation.
    pub const fn as_picos(&self) -> u64 {
        self.0
    }
    /// Whole nanoseconds since the start of the simulation (truncating).
    pub const fn as_nanos(&self) -> u64 {
        self.0 / 1_000
    }
    /// Microseconds since the start of the simulation as a float.
    pub fn as_micros_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Seconds since the start of the simulation as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e12
    }
    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn saturating_since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
    /// Checked addition of a duration, `None` on overflow.
    pub fn checked_add(&self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimDuration(ps)
    }
    /// Builds a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }
    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }
    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }
    /// Builds a duration from a floating-point number of seconds (rounding to
    /// the nearest picosecond, saturating at the representable maximum).
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let ps = secs * 1e12;
        if ps >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ps.round() as u64)
        }
    }
    /// Raw picoseconds.
    pub const fn as_picos(&self) -> u64 {
        self.0
    }
    /// Whole nanoseconds (truncating).
    pub const fn as_nanos(&self) -> u64 {
        self.0 / 1_000
    }
    /// Microseconds as a float.
    pub fn as_micros_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e12
    }
    /// True if this is the zero duration.
    pub const fn is_zero(&self) -> bool {
        self.0 == 0
    }
    /// Saturating subtraction.
    pub fn saturating_sub(&self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
    /// Multiplies the duration by a non-negative float, rounding to the
    /// nearest picosecond.
    pub fn mul_f64(&self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        let ps = self.0 as f64 * factor;
        if ps >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ps.round() as u64)
        }
    }
    /// Time taken to serialize `bytes` bytes on a link of `gbps` gigabits per
    /// second.
    pub fn for_bytes_at_gbps(bytes: u64, gbps: f64) -> SimDuration {
        debug_assert!(gbps > 0.0, "link rate must be positive");
        // bits / (Gbit/s) = ns; convert to ps.
        let ps = (bytes as f64 * 8.0 * 1000.0) / gbps;
        SimDuration(ps.round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "subtracting a later time from an earlier one");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_nanos(5).as_picos(), 5_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs_f64(1e-6).as_nanos(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d).as_nanos(), 140);
        assert_eq!(((t + d) - t).as_nanos(), 40);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2.as_nanos(), 140);
        assert_eq!((d * 3).as_nanos(), 120);
        assert_eq!((d / 2).as_nanos(), 20);
    }

    #[test]
    fn serialization_delay_is_exact_at_100gbps() {
        // 1000 bytes at 100 Gbps = 80 ns.
        let d = SimDuration::for_bytes_at_gbps(1000, 100.0);
        assert_eq!(d.as_nanos(), 80);
        // 64 bytes at 10 Gbps = 51.2 ns = 51200 ps.
        let d = SimDuration::for_bytes_at_gbps(64, 10.0);
        assert_eq!(d.as_picos(), 51_200);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(30);
        assert_eq!(b.saturating_since(a).as_nanos(), 20);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d.mul_f64(0.5).as_nanos(), 50);
        assert_eq!(d.mul_f64(2.0).as_nanos(), 200);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimTime::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(1500)), "1.500us");
    }
}
