//! Epoch-based conservative synchronization for sharded simulations.
//!
//! A sharded simulation splits its state across N **shards**, each with its
//! own [`crate::EventQueue`]. Shards advance in lockstep **epochs**: given
//! the earliest pending event time `t0` across all shards and a **lookahead**
//! `L` (the minimum latency of any cross-shard interaction), every shard may
//! safely process all of its events in the window `[t0, t0 + L)` — any event
//! another shard could still send it lands at `t0 + L` or later. Events that
//! target another shard are collected into per-destination **outboxes**
//! during the window and exchanged at the epoch barrier.
//!
//! # Adaptive epoch batching
//!
//! Electing `t0` costs two barrier crossings (publish per-shard next-event
//! times, then distribute the leader's decision). Rather than pay that per
//! window, the driver elects once per **batch** and then runs windows on the
//! fixed grid `[t0 + i·L, t0 + (i+1)·L)` for `i < k`, exchanging boundary
//! events after each. The fixed grid is exactly as safe as re-electing: a
//! cross-shard event with time `T < t0 + (i+1)·L` was emitted while
//! processing some `t < t0 + i·L` — i.e. during an earlier window — and was
//! therefore exchanged before window `i` starts.
//!
//! Two mechanisms make the batch cheaper than `k` elections:
//!
//! * **One barrier per executed window.** Mailboxes and per-window stats are
//!   double-buffered by executed-window parity, so the slot a reader drains
//!   after barrier `i` is not rewritten until after barrier `i + 1`, which
//!   the reader necessarily crossed first.
//! * **Quiescent fast-forward.** After a window that exchanged nothing, no
//!   delivery can have changed any queue, so the shared pre-delivery
//!   `min_next` is exact — and every shard deterministically jumps to the
//!   grid window containing it, skipping the empty windows in between
//!   without a barrier each. If `min_next` lies at or beyond the batch (or
//!   past the deadline), the batch ends early and the driver re-elects.
//!
//! [`BatchPolicy::Adaptive`] doubles the batch width after a fully
//! quiescent batch (up to the cap) and halves it as soon as a batch carries
//! any cross-shard traffic, so dense regions degrade gracefully toward
//! per-window elections while quiescent stretches (think 10 µs sample gaps
//! over a sub-µs lookahead) collapse many elections into one: a width-`k`
//! batch covering `E` sparse events costs `2 + E` barriers instead of `3·E`.
//! [`BatchPolicy::Off`] pins the width to one window per election, which
//! reproduces the classic three-barriers-per-window schedule.
//!
//! # Determinism
//!
//! The driver is deterministic by construction, whether the epochs run on
//! one thread or on one thread per shard, batched or not:
//!
//! * the window grid is derived only from queue state (`min` of per-shard
//!   `next_time`) and the deterministic width schedule, never from thread
//!   timing;
//! * at each barrier, destination shards ingest boundary batches in **shard
//!   id order**, and each batch preserves its source's emission order;
//! * boundary events carry their scheduling `(time, rank)` key with them, so
//!   the destination queue orders them exactly as a global queue would have.
//!
//! With a content-derived rank (see [`crate::EventQueue::push_ranked`]) that
//! is unique among simultaneous events from different sources, the per-shard
//! pop order equals the serial engine's pop order restricted to that shard —
//! which is what makes sharded results bit-identical to serial ones, at any
//! shard count and under any batching policy.

use std::any::Any;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::time::{SimDuration, SimTime};

/// Locks a mutex, recovering the guard when a panicking sibling poisoned it.
/// Everything behind these mutexes is discarded wholesale once any worker
/// panics (the run is abandoned and the original payload re-raised by the
/// driver), so the poison flag carries no information — and honoring it
/// would replace the worker's own panic message with an unrelated "lock"
/// error at whichever thread touches the mutex next.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What one barrier crossing observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BarrierWait {
    /// This thread is the single designated leader of the crossing.
    Leader,
    /// Crossed normally, as a non-leader.
    Follower,
    /// The barrier was aborted — a sibling worker panicked. The caller must
    /// stop immediately; no further crossing will ever complete.
    Aborted,
}

/// A reusable rendezvous barrier like [`std::sync::Barrier`], plus
/// [`EpochBarrier::abort`]. The std barrier has no poisoning: a worker that
/// unwinds mid-epoch never makes its remaining arrivals, so its siblings
/// would block forever and the scope join would hang silently. `abort`
/// releases every current and future waiter with [`BarrierWait::Aborted`],
/// letting them unwind cleanly so the driver can re-raise the original
/// panic payload.
struct EpochBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    n: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    aborted: bool,
}

impl EpochBarrier {
    fn new(n: usize) -> Self {
        EpochBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
            n,
        }
    }

    fn wait(&self) -> BarrierWait {
        let mut s = lock(&self.state);
        if s.aborted {
            return BarrierWait::Aborted;
        }
        s.arrived += 1;
        if s.arrived == self.n {
            s.arrived = 0;
            s.generation += 1;
            self.cv.notify_all();
            return BarrierWait::Leader;
        }
        let generation = s.generation;
        while s.generation == generation && !s.aborted {
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if s.aborted {
            BarrierWait::Aborted
        } else {
            BarrierWait::Follower
        }
    }

    fn abort(&self) {
        lock(&self.state).aborted = true;
        self.cv.notify_all();
    }
}

/// A boundary event in flight between shards: `(time, rank, payload)`. The
/// scheduling key travels with the payload so the destination queue can slot
/// the event exactly where a global queue would have.
pub type Boundary<E> = (SimTime, u32, E);

/// One shard of a sharded simulation, as seen by the epoch driver.
///
/// Implementations own their local event queue and simulation state. The
/// driver only ever calls these methods in the fixed epoch sequence
/// (`next_time` → `run_window` → `take_outboxes` → `deliver`), with barriers
/// between phases when running threaded.
pub trait ShardHandler: Send {
    /// The event payload exchanged across shard boundaries.
    type Event: Send;

    /// Timestamp of this shard's earliest pending event, if any.
    fn next_time(&self) -> Option<SimTime>;

    /// Processes every local event with `time < window_end && time <=
    /// deadline`, buffering events for other shards in the outboxes.
    fn run_window(&mut self, window_end: SimTime, deadline: SimTime);

    /// Takes the boundary events buffered during the last window, indexed by
    /// destination shard (the returned vector has one entry per shard).
    fn take_outboxes(&mut self) -> Vec<Vec<Boundary<Self::Event>>>;

    /// Ingests one source shard's boundary batch, preserving its order.
    fn deliver(&mut self, batch: Vec<Boundary<Self::Event>>);

    /// Timestamp of the last event this shard processed (`SimTime::ZERO` if
    /// none yet).
    fn last_processed(&self) -> SimTime;
}

/// How the epoch driver amortizes window elections. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// One election per window: the classic conservative-lockstep schedule
    /// (three barrier crossings per executed window).
    Off,
    /// Elect once, then run up to `max_windows` grid windows at one barrier
    /// each with quiescent fast-forward; the width doubles after fully
    /// quiescent batches and halves after batches that carried cross-shard
    /// traffic.
    Adaptive {
        /// Upper bound on grid windows per election (≥ 1). Amortization
        /// needs the cap to span several inter-event gaps: a batch covering
        /// `E` sparse events costs `2 + E` barriers versus `3·E` unbatched.
        max_windows: u32,
    },
}

impl Default for BatchPolicy {
    /// `Adaptive { max_windows: 128 }`: wide enough that typical quiescent
    /// stretches (e.g. 10 µs sample gaps over a sub-µs lookahead, ten to
    /// twenty windows per gap) fit several events per election.
    fn default() -> Self {
        BatchPolicy::Adaptive { max_windows: 128 }
    }
}

impl BatchPolicy {
    fn cap(self) -> u32 {
        match self {
            BatchPolicy::Off => 1,
            BatchPolicy::Adaptive { max_windows } => max_windows.max(1),
        }
    }
}

/// Per-run counters from the epoch driver. The sequential driver counts the
/// synchronization points the threaded driver would have crossed, so the
/// numbers are identical for the same inputs whether or not threads ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Window elections that found work (one per batch of windows).
    pub batches: u64,
    /// Grid windows actually executed (quiescent-skipped windows are not
    /// counted — they cost nothing).
    pub windows: u64,
    /// Barrier crossings: two per election round — including the final
    /// round that detects termination — plus one per executed window.
    pub barriers: u64,
    /// Batches that ran widened (elected width > 1 window).
    pub widened: u64,
    /// Cross-shard boundary events exchanged.
    pub boundary_events: u64,
    /// Batches by elected width: bucket `i` counts elections at width in
    /// `[2^i, 2^(i+1))`, with bucket 7 open-ended. Feeds the registry's
    /// `bfc_engine_epoch_width` histogram.
    pub width_hist: [u64; 8],
}

impl EpochStats {
    /// Tallies one election at `width` into [`EpochStats::width_hist`].
    fn note_width(&mut self, width: u32) {
        let bucket = (width.max(1).ilog2() as usize).min(7);
        self.width_hist[bucket] += 1;
    }
}

/// Runs a sharded simulation to completion (all queues empty) or until the
/// next event would fall strictly after `deadline`. Returns the timestamp of
/// the last event any shard processed, plus the epoch counters.
///
/// `lookahead` must lower-bound the scheduling delay of every cross-shard
/// event: an event emitted while processing time `t` must be scheduled at
/// `t + lookahead` or later. `parallel` selects one thread per shard
/// (barrier-synchronized) versus a single-threaded epoch loop; all
/// combinations of `parallel` and `batch` produce identical results and
/// identical stats.
pub fn run_conservative<S: ShardHandler>(
    shards: &mut [S],
    lookahead: SimDuration,
    deadline: SimTime,
    parallel: bool,
    batch: BatchPolicy,
) -> (SimTime, EpochStats) {
    assert!(
        !lookahead.is_zero(),
        "conservative synchronization needs a positive lookahead"
    );
    let stats = if shards.len() > 1 && parallel {
        run_threaded(shards, lookahead, deadline, batch)
    } else {
        run_sequential(shards, lookahead, deadline, batch)
    };
    let end = shards
        .iter()
        .map(|s| s.last_processed())
        .max()
        .unwrap_or(SimTime::ZERO);
    (end, stats)
}

/// The deterministic width schedule plus the post-window decision, factored
/// out so the sequential and threaded drivers cannot drift apart. Every
/// thread runs its own copy from identical shared observations, so the
/// schedules stay in lockstep without extra communication.
struct BatchSchedule {
    width: u32,
    cap: u32,
}

/// What to do after one executed grid window.
#[derive(PartialEq, Eq, Debug)]
enum WindowOutcome {
    /// The window exchanged traffic: the very next grid window may receive
    /// deliveries, so run it.
    Next,
    /// No traffic, and the next event lies in a later window of this batch:
    /// jump straight to that window index.
    SkipTo(u32),
    /// No traffic and no event before the batch end (or the deadline): end
    /// the batch and re-elect.
    EndBatch,
}

impl BatchSchedule {
    fn new(policy: BatchPolicy) -> Self {
        BatchSchedule {
            width: 1,
            cap: policy.cap(),
        }
    }

    /// Decides the next step after grid window `w`. `min_next` must be the
    /// pre-delivery minimum next-event time across shards: when
    /// `total_sent == 0` no delivery happened, so it is exact — which is the
    /// only case where it steers anything.
    fn after_window(
        &self,
        w: u32,
        total_sent: u64,
        min_next: Option<SimTime>,
        t0: SimTime,
        lookahead: SimDuration,
        deadline: SimTime,
    ) -> WindowOutcome {
        if total_sent > 0 {
            return WindowOutcome::Next;
        }
        let Some(next) = min_next else {
            return WindowOutcome::EndBatch;
        };
        if next > deadline {
            return WindowOutcome::EndBatch;
        }
        // The grid window containing `next`. All events < window w's end
        // were processed, so `next >= t0 + (w+1)·L` and the index advances.
        let idx = (next.as_picos() - t0.as_picos()) / lookahead.as_picos();
        let idx = u32::try_from(idx).unwrap_or(u32::MAX);
        debug_assert!(idx > w, "fast-forward must advance the grid");
        if idx >= self.width {
            WindowOutcome::EndBatch
        } else {
            WindowOutcome::SkipTo(idx)
        }
    }

    /// Width for the next batch, from whether this batch saw any
    /// cross-shard traffic.
    fn adapt(&mut self, had_traffic: bool) {
        self.width = if had_traffic {
            (self.width / 2).max(1)
        } else {
            self.width.saturating_mul(2).min(self.cap)
        };
    }
}

fn run_sequential<S: ShardHandler>(
    shards: &mut [S],
    lookahead: SimDuration,
    deadline: SimTime,
    batch: BatchPolicy,
) -> EpochStats {
    let n = shards.len();
    let mut sched = BatchSchedule::new(batch);
    let mut stats = EpochStats::default();
    loop {
        // Election: two synchronization points in the threaded driver.
        stats.barriers += 2;
        let Some(t0) = shards.iter().filter_map(|s| s.next_time()).min() else {
            return stats;
        };
        if t0 > deadline {
            return stats;
        }
        stats.batches += 1;
        if sched.width > 1 {
            stats.widened += 1;
        }
        stats.note_width(sched.width);
        let mut had_traffic = false;
        let mut w = 0u32;
        while w < sched.width {
            let window_end = t0 + lookahead * u64::from(w + 1);
            for shard in shards.iter_mut() {
                shard.run_window(window_end, deadline);
            }
            let outboxes: Vec<Vec<Vec<Boundary<S::Event>>>> =
                shards.iter_mut().map(|s| s.take_outboxes()).collect();
            let total_sent: u64 = outboxes
                .iter()
                .flat_map(|rows| rows.iter())
                .map(|b| b.len() as u64)
                .sum();
            // Pre-delivery minimum, exactly what the threaded driver's
            // published per-window stats hold.
            let min_next = shards.iter().filter_map(|s| s.next_time()).min();
            stats.windows += 1;
            stats.barriers += 1;
            stats.boundary_events += total_sent;
            // Exchange boundary events: destinations ingest batches in
            // source shard id order, exactly like the threaded path.
            for (src, rows) in outboxes.into_iter().enumerate() {
                debug_assert_eq!(rows.len(), n, "outbox row per destination shard");
                for (dest, batch) in rows.into_iter().enumerate() {
                    debug_assert!(dest != src || batch.is_empty(), "no self-addressed batches");
                    if !batch.is_empty() {
                        shards[dest].deliver(batch);
                    }
                }
            }
            had_traffic |= total_sent > 0;
            match sched.after_window(w, total_sent, min_next, t0, lookahead, deadline) {
                WindowOutcome::Next => w += 1,
                WindowOutcome::SkipTo(idx) => w = idx,
                WindowOutcome::EndBatch => break,
            }
        }
        sched.adapt(had_traffic);
    }
}

/// Leader-computed per-batch decision shared between worker threads.
struct BatchCtl {
    t0: SimTime,
    done: bool,
}

/// Per-shard, per-parity counters published just before the window barrier:
/// how many boundary events this shard sent, and its next local event time
/// *before* any of this window's deliveries.
#[derive(Default, Clone, Copy)]
struct WindowStat {
    sent: u64,
    next: Option<SimTime>,
}

fn run_threaded<S: ShardHandler>(
    shards: &mut [S],
    lookahead: SimDuration,
    deadline: SimTime,
    batch: BatchPolicy,
) -> EpochStats {
    let n = shards.len();
    let barrier = EpochBarrier::new(n);
    let times: Vec<Mutex<Option<SimTime>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let ctl = Mutex::new(BatchCtl {
        t0: SimTime::ZERO,
        done: false,
    });
    // mailboxes[src][dest][parity]: written only by worker `src`, drained
    // only by worker `dest`. The executed-window parity double-buffer is
    // what lets one barrier per window suffice: the slot drained after
    // barrier `i` is next written while preparing window `i + 2`, i.e.
    // after barrier `i + 1`, which the drainer crossed first — the mutexes
    // are never contended.
    let mailboxes: Vec<Vec<[Mutex<Vec<Boundary<S::Event>>>; 2]>> = (0..n)
        .map(|_| {
            (0..n)
                .map(|_| [Mutex::new(Vec::new()), Mutex::new(Vec::new())])
                .collect()
        })
        .collect();
    // window_stats[shard][parity], double-buffered for the same reason.
    let window_stats: Vec<[Mutex<WindowStat>; 2]> = (0..n)
        .map(|_| {
            [
                Mutex::new(WindowStat::default()),
                Mutex::new(WindowStat::default()),
            ]
        })
        .collect();
    let out_stats: Mutex<EpochStats> = Mutex::new(EpochStats::default());
    // First panic payload from any worker; re-raised by the driver after the
    // scope joins, so a panicking `ShardHandler` surfaces its own message.
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for (i, shard) in shards.iter_mut().enumerate() {
            let barrier = &barrier;
            let times = &times;
            let ctl = &ctl;
            let mailboxes = &mailboxes;
            let window_stats = &window_stats;
            let out_stats = &out_stats;
            let panic_slot = &panic_slot;
            scope.spawn(move || {
                // A worker that unwinds mid-epoch can never make its
                // remaining barrier arrivals: catch the panic, park its
                // payload, and abort the barrier so the other n-1 workers
                // drain out instead of waiting forever.
                let body = std::panic::AssertUnwindSafe(|| {
                    let mut sched = BatchSchedule::new(batch);
                    let mut stats = EpochStats::default();
                    // Executed-window counter across the whole run; its
                    // parity selects the mailbox/stat buffers.
                    let mut executed = 0u64;
                    loop {
                        // Election phase 1: publish this shard's next event
                        // time.
                        *lock(&times[i]) = shard.next_time();
                        match barrier.wait() {
                            BarrierWait::Aborted => return,
                            BarrierWait::Leader => {
                                // Exactly one thread computes the batch
                                // anchor from the published times; which
                                // thread it is does not matter.
                                let t0 = times.iter().filter_map(|m| *lock(m)).min();
                                let mut c = lock(ctl);
                                match t0 {
                                    Some(t0) if t0 <= deadline => {
                                        c.t0 = t0;
                                        c.done = false;
                                    }
                                    _ => c.done = true,
                                }
                            }
                            BarrierWait::Follower => {}
                        }
                        if barrier.wait() == BarrierWait::Aborted {
                            return;
                        }
                        stats.barriers += 2;
                        // Election phase 2: read the leader's decision.
                        let t0 = {
                            let c = lock(ctl);
                            if c.done {
                                break;
                            }
                            c.t0
                        };
                        stats.batches += 1;
                        if sched.width > 1 {
                            stats.widened += 1;
                        }
                        stats.note_width(sched.width);
                        let mut had_traffic = false;
                        let mut w = 0u32;
                        while w < sched.width {
                            let p = (executed & 1) as usize;
                            executed += 1;
                            let window_end = t0 + lookahead * u64::from(w + 1);
                            shard.run_window(window_end, deadline);
                            let mut sent = 0u64;
                            for (dest, batch) in shard.take_outboxes().into_iter().enumerate() {
                                if !batch.is_empty() {
                                    sent += batch.len() as u64;
                                    lock(&mailboxes[i][dest][p]).extend(batch);
                                }
                            }
                            *lock(&window_stats[i][p]) = WindowStat {
                                sent,
                                next: shard.next_time(),
                            };
                            if barrier.wait() == BarrierWait::Aborted {
                                return;
                            }
                            stats.barriers += 1;
                            stats.windows += 1;
                            // Ingest batches in source shard id order.
                            for row in mailboxes.iter() {
                                let batch = std::mem::take(&mut *lock(&row[i][p]));
                                if !batch.is_empty() {
                                    shard.deliver(batch);
                                }
                            }
                            // Identical shared observations on every thread
                            // ⇒ identical fast-forward / end-batch / width
                            // decisions, keeping the barrier counts aligned.
                            let mut total_sent = 0u64;
                            let mut min_next: Option<SimTime> = None;
                            for s in window_stats.iter() {
                                let ws = *lock(&s[p]);
                                total_sent += ws.sent;
                                min_next = match (min_next, ws.next) {
                                    (Some(a), Some(b)) => Some(a.min(b)),
                                    (a, b) => a.or(b),
                                };
                            }
                            stats.boundary_events += total_sent;
                            had_traffic |= total_sent > 0;
                            match sched.after_window(
                                w, total_sent, min_next, t0, lookahead, deadline,
                            ) {
                                WindowOutcome::Next => w += 1,
                                WindowOutcome::SkipTo(idx) => w = idx,
                                WindowOutcome::EndBatch => break,
                            }
                        }
                        sched.adapt(had_traffic);
                    }
                    if i == 0 {
                        *lock(out_stats) = stats;
                    }
                });
                if let Err(payload) = std::panic::catch_unwind(body) {
                    {
                        let mut slot = lock(panic_slot);
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                    barrier.abort();
                }
            });
        }
    });
    if let Some(payload) = lock(&panic_slot).take() {
        std::panic::resume_unwind(payload);
    }
    out_stats
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    /// A toy sharded simulation: `count` tokens hop every `hop` ns. With
    /// `cross` set, a token processed at time `t` in shard `s` re-schedules
    /// itself in shard `(s + 1) % n` at `t + hop` (all cross-shard traffic);
    /// without it, tokens stay shard-local (a fully quiescent fabric). Every
    /// shard logs `(time, token)` in processing order, until `deadline`.
    struct Ring {
        me: usize,
        n: usize,
        hop: SimDuration,
        cross: bool,
        queue: EventQueue<u32>,
        outbox: Vec<Vec<Boundary<u32>>>,
        log: Vec<(SimTime, u32)>,
        last: SimTime,
    }

    const HOP: SimDuration = SimDuration::from_nanos(50);

    impl ShardHandler for Ring {
        type Event = u32;
        fn next_time(&self) -> Option<SimTime> {
            self.queue.peek_time()
        }
        fn run_window(&mut self, window_end: SimTime, deadline: SimTime) {
            while let Some(t) = self.queue.peek_time() {
                if t >= window_end || t > deadline {
                    break;
                }
                let (now, token) = self.queue.pop().expect("peeked");
                self.last = now;
                self.log.push((now, token));
                let dest = if self.cross { (self.me + 1) % self.n } else { self.me };
                let at = now + self.hop;
                if dest == self.me {
                    self.queue.push_ranked(at, token, token);
                } else {
                    self.outbox[dest].push((at, token, token));
                }
            }
        }
        fn take_outboxes(&mut self) -> Vec<Vec<Boundary<u32>>> {
            std::mem::replace(&mut self.outbox, vec![Vec::new(); self.n])
        }
        fn deliver(&mut self, batch: Vec<Boundary<u32>>) {
            for (t, rank, e) in batch {
                self.queue.push_ranked(t, rank, e);
            }
        }
        fn last_processed(&self) -> SimTime {
            self.last
        }
    }

    fn ring_full(n: usize, tokens: u32, hop: SimDuration, cross: bool) -> Vec<Ring> {
        let mut shards: Vec<Ring> = (0..n)
            .map(|me| Ring {
                me,
                n,
                hop,
                cross,
                queue: EventQueue::new(),
                outbox: vec![Vec::new(); n],
                log: Vec::new(),
                last: SimTime::ZERO,
            })
            .collect();
        for token in 0..tokens {
            // All tokens start in shard 0 at t=0, distinguished by rank.
            shards[0].queue.push_ranked(SimTime::ZERO, token, token);
        }
        shards
    }

    fn ring(n: usize, tokens: u32) -> Vec<Ring> {
        ring_full(n, tokens, HOP, true)
    }

    fn merged_log(shards: &[Ring]) -> Vec<(SimTime, u32)> {
        let mut all: Vec<(SimTime, u32)> =
            shards.iter().flat_map(|s| s.log.iter().copied()).collect();
        all.sort();
        all
    }

    #[test]
    fn ring_produces_identical_logs_at_any_shard_count_mode_and_policy() {
        let deadline = SimTime::from_nanos(1_000);
        let mut reference: Option<Vec<(SimTime, u32)>> = None;
        for n in [1usize, 2, 3, 5] {
            for parallel in [false, true] {
                for policy in [BatchPolicy::Off, BatchPolicy::default()] {
                    let mut shards = ring(n, 4);
                    let (end, _) = run_conservative(&mut shards, HOP, deadline, parallel, policy);
                    assert_eq!(end, SimTime::from_nanos(1_000));
                    let log = merged_log(&shards);
                    match &reference {
                        None => reference = Some(log),
                        Some(r) => assert_eq!(r, &log, "n={n} parallel={parallel} {policy:?}"),
                    }
                }
            }
        }
        let log = reference.expect("at least one run");
        // 4 tokens, hops at 0,50,...,1000 inclusive: 21 events per token.
        assert_eq!(log.len(), 4 * 21);
    }

    /// The sequential driver reports exactly the synchronization schedule
    /// the threaded driver executes — under both policies, for a
    /// traffic-heavy ring (width pinned at 1) and for a sparse shard-local
    /// workload (widening plus fast-forward, exercising the parity buffers
    /// across skips).
    #[test]
    fn epoch_stats_are_identical_sequential_vs_threaded() {
        for policy in [BatchPolicy::Off, BatchPolicy::default()] {
            for (hop, cross) in [(HOP, true), (SimDuration::from_nanos(650), false)] {
                let deadline = SimTime::from_nanos(10_000);
                let mut seq = ring_full(3, 2, hop, cross);
                let mut thr = ring_full(3, 2, hop, cross);
                let (end_a, stats_a) = run_conservative(&mut seq, HOP, deadline, false, policy);
                let (end_b, stats_b) = run_conservative(&mut thr, HOP, deadline, true, policy);
                assert_eq!(end_a, end_b, "{policy:?} hop={hop:?} cross={cross}");
                assert_eq!(stats_a, stats_b, "{policy:?} hop={hop:?} cross={cross}");
                assert_eq!(
                    merged_log(&seq),
                    merged_log(&thr),
                    "{policy:?} hop={hop:?} cross={cross}"
                );
                assert!(stats_a.windows >= stats_a.batches);
                assert_eq!(
                    stats_a.barriers,
                    2 * (stats_a.batches + 1) + stats_a.windows,
                    "two barriers per election round (plus the terminating \
                     round) and one per executed window"
                );
            }
        }
    }

    /// On a quiescent workload — events spaced at many lookaheads, no
    /// cross-shard traffic — adaptive batching collapses elections and cuts
    /// the barrier count at least 2× versus `BatchPolicy::Off`, while the
    /// processed logs stay identical.
    #[test]
    fn adaptive_batching_cuts_barriers_at_least_2x_when_quiescent() {
        // Shard-local hops every 650 ns over a 50 ns lookahead: thirteen
        // grid windows per event, so wide batches cover many events.
        let hop = SimDuration::from_nanos(650);
        let deadline = SimTime::from_nanos(100_000);
        let run = |policy: BatchPolicy| {
            let mut shards = ring_full(2, 1, hop, false);
            let (_, stats) = run_conservative(&mut shards, HOP, deadline, true, policy);
            (merged_log(&shards), stats)
        };
        let (log_off, off) = run(BatchPolicy::Off);
        let (log_on, on) = run(BatchPolicy::default());
        assert_eq!(log_off, log_on);
        assert_eq!(off.widened, 0);
        assert!(on.widened > 0, "adaptive policy never widened: {on:?}");
        assert!(
            off.barriers >= 2 * on.barriers,
            "expected ≥2× barrier reduction, got off={} on={}",
            off.barriers,
            on.barriers
        );
    }

    #[test]
    fn deadline_cuts_exactly_like_run_until() {
        // Events exactly at the deadline are processed; later ones are not.
        let mut shards = ring(2, 1);
        let (end, _) = run_conservative(
            &mut shards,
            HOP,
            SimTime::from_nanos(100),
            true,
            BatchPolicy::default(),
        );
        assert_eq!(end, SimTime::from_nanos(100));
        assert_eq!(merged_log(&shards).len(), 3); // t = 0, 50, 100
    }

    #[test]
    fn empty_queues_terminate_immediately() {
        let mut shards = ring(3, 0);
        let (end, stats) =
            run_conservative(&mut shards, HOP, SimTime::MAX, true, BatchPolicy::default());
        assert_eq!(end, SimTime::ZERO);
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.barriers, 2);
    }

    /// A ring shard that detonates once its window reaches the fuse time.
    struct Bomb {
        inner: Ring,
        fuse: Option<SimTime>,
    }

    impl ShardHandler for Bomb {
        type Event = u32;
        fn next_time(&self) -> Option<SimTime> {
            self.inner.next_time()
        }
        fn run_window(&mut self, window_end: SimTime, deadline: SimTime) {
            if let Some(fuse) = self.fuse {
                if window_end > fuse {
                    panic!("ring handler exploded in shard {}", self.inner.me);
                }
            }
            self.inner.run_window(window_end, deadline);
        }
        fn take_outboxes(&mut self) -> Vec<Vec<Boundary<u32>>> {
            self.inner.take_outboxes()
        }
        fn deliver(&mut self, batch: Vec<Boundary<u32>>) {
            self.inner.deliver(batch);
        }
        fn last_processed(&self) -> SimTime {
            self.inner.last_processed()
        }
    }

    /// A panicking handler must surface its *own* message through the
    /// threaded driver — not a poisoned-mutex error on another thread, and
    /// not a barrier hang.
    #[test]
    fn panicking_handler_surfaces_its_own_message() {
        let mut shards: Vec<Bomb> = ring(3, 2)
            .into_iter()
            .enumerate()
            .map(|(i, inner)| Bomb {
                inner,
                fuse: (i == 1).then(|| SimTime::from_nanos(200)),
            })
            .collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_conservative(
                &mut shards,
                HOP,
                SimTime::from_nanos(1_000),
                true,
                BatchPolicy::default(),
            );
        }))
        .expect_err("the worker panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| err.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string payload>");
        assert!(
            msg.contains("ring handler exploded in shard 1"),
            "expected the handler's own panic message, got: {msg}"
        );
    }

    /// An aborted barrier releases both current and future waiters.
    #[test]
    fn aborted_barrier_releases_waiters() {
        let barrier = EpochBarrier::new(2);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| barrier.wait());
            // Give the waiter a moment to park, then abort instead of
            // arriving.
            while lock(&barrier.state).arrived == 0 {
                std::thread::yield_now();
            }
            barrier.abort();
            assert_eq!(waiter.join().expect("no panic"), BarrierWait::Aborted);
        });
        // Post-abort waits return immediately.
        assert_eq!(barrier.wait(), BarrierWait::Aborted);
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_is_rejected() {
        let mut shards = ring(2, 1);
        run_conservative(
            &mut shards,
            SimDuration::ZERO,
            SimTime::MAX,
            false,
            BatchPolicy::Off,
        );
    }
}
