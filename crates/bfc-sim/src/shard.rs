//! Epoch-based conservative synchronization for sharded simulations.
//!
//! A sharded simulation splits its state across N **shards**, each with its
//! own [`crate::EventQueue`]. Shards advance in lockstep **epochs**: given
//! the earliest pending event time `t0` across all shards and a **lookahead**
//! `L` (the minimum latency of any cross-shard interaction), every shard may
//! safely process all of its events in the window `[t0, t0 + L)` — any event
//! another shard could still send it lands at `t0 + L` or later. Events that
//! target another shard are collected into per-destination **outboxes**
//! during the window and exchanged at the epoch barrier.
//!
//! # Determinism
//!
//! The driver is deterministic by construction, whether the epochs run on
//! one thread or on one thread per shard:
//!
//! * the window is derived only from queue state (`min` of per-shard
//!   `next_time`), never from thread timing;
//! * at each barrier, destination shards ingest boundary batches in **shard
//!   id order**, and each batch preserves its source's emission order;
//! * boundary events carry their scheduling `(time, rank)` key with them, so
//!   the destination queue orders them exactly as a global queue would have.
//!
//! With a content-derived rank (see [`crate::EventQueue::push_ranked`]) that
//! is unique among simultaneous events from different sources, the per-shard
//! pop order equals the serial engine's pop order restricted to that shard —
//! which is what makes sharded results bit-identical to serial ones.

use std::sync::{Barrier, Mutex};

use crate::time::{SimDuration, SimTime};

/// A boundary event in flight between shards: `(time, rank, payload)`. The
/// scheduling key travels with the payload so the destination queue can slot
/// the event exactly where a global queue would have.
pub type Boundary<E> = (SimTime, u32, E);

/// One shard of a sharded simulation, as seen by the epoch driver.
///
/// Implementations own their local event queue and simulation state. The
/// driver only ever calls these methods in the fixed epoch sequence
/// (`next_time` → `run_window` → `take_outboxes` → `deliver`), with barriers
/// between phases when running threaded.
pub trait ShardHandler: Send {
    /// The event payload exchanged across shard boundaries.
    type Event: Send;

    /// Timestamp of this shard's earliest pending event, if any.
    fn next_time(&self) -> Option<SimTime>;

    /// Processes every local event with `time < window_end && time <=
    /// deadline`, buffering events for other shards in the outboxes.
    fn run_window(&mut self, window_end: SimTime, deadline: SimTime);

    /// Takes the boundary events buffered during the last window, indexed by
    /// destination shard (the returned vector has one entry per shard).
    fn take_outboxes(&mut self) -> Vec<Vec<Boundary<Self::Event>>>;

    /// Ingests one source shard's boundary batch, preserving its order.
    fn deliver(&mut self, batch: Vec<Boundary<Self::Event>>);

    /// Timestamp of the last event this shard processed (`SimTime::ZERO` if
    /// none yet).
    fn last_processed(&self) -> SimTime;
}

/// Runs a sharded simulation to completion (all queues empty) or until the
/// next event would fall strictly after `deadline`. Returns the timestamp of
/// the last event any shard processed.
///
/// `lookahead` must lower-bound the scheduling delay of every cross-shard
/// event: an event emitted while processing time `t` must be scheduled at
/// `t + lookahead` or later. `parallel` selects one thread per shard
/// (barrier-synchronized) versus a single-threaded epoch loop; both produce
/// identical results.
pub fn run_conservative<S: ShardHandler>(
    shards: &mut [S],
    lookahead: SimDuration,
    deadline: SimTime,
    parallel: bool,
) -> SimTime {
    assert!(
        !lookahead.is_zero(),
        "conservative synchronization needs a positive lookahead"
    );
    if shards.len() > 1 && parallel {
        run_threaded(shards, lookahead, deadline);
    } else {
        run_sequential(shards, lookahead, deadline);
    }
    shards
        .iter()
        .map(|s| s.last_processed())
        .max()
        .unwrap_or(SimTime::ZERO)
}

fn run_sequential<S: ShardHandler>(shards: &mut [S], lookahead: SimDuration, deadline: SimTime) {
    let n = shards.len();
    loop {
        let Some(t0) = shards.iter().filter_map(|s| s.next_time()).min() else {
            return;
        };
        if t0 > deadline {
            return;
        }
        let window_end = t0 + lookahead;
        for shard in shards.iter_mut() {
            shard.run_window(window_end, deadline);
        }
        // Exchange boundary events: destinations ingest batches in source
        // shard id order, exactly like the threaded path.
        let outboxes: Vec<Vec<Vec<Boundary<S::Event>>>> =
            shards.iter_mut().map(|s| s.take_outboxes()).collect();
        for (src, rows) in outboxes.into_iter().enumerate() {
            debug_assert_eq!(rows.len(), n, "outbox row per destination shard");
            for (dest, batch) in rows.into_iter().enumerate() {
                debug_assert!(dest != src || batch.is_empty(), "no self-addressed batches");
                if !batch.is_empty() {
                    shards[dest].deliver(batch);
                }
            }
        }
    }
}

/// Leader-computed per-epoch decision shared between worker threads.
struct EpochCtl {
    window_end: SimTime,
    done: bool,
}

fn run_threaded<S: ShardHandler>(shards: &mut [S], lookahead: SimDuration, deadline: SimTime) {
    let n = shards.len();
    let barrier = Barrier::new(n);
    let times: Vec<Mutex<Option<SimTime>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let ctl = Mutex::new(EpochCtl {
        window_end: SimTime::ZERO,
        done: false,
    });
    // mailboxes[src][dest]: written only by worker `src`, read only by
    // worker `dest`, in disjoint phases separated by barriers — the mutexes
    // are never contended.
    let mailboxes: Vec<Vec<Mutex<Vec<Boundary<S::Event>>>>> = (0..n)
        .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
        .collect();

    std::thread::scope(|scope| {
        for (i, shard) in shards.iter_mut().enumerate() {
            let barrier = &barrier;
            let times = &times;
            let ctl = &ctl;
            let mailboxes = &mailboxes;
            scope.spawn(move || {
                // `Barrier` has no poisoning: if this worker unwound, the
                // other n-1 workers would wait forever for its n-th arrival
                // and the scope join would hang silently. Turn any panic
                // into a loud process abort instead.
                let body = std::panic::AssertUnwindSafe(|| loop {
                    // Phase 1: publish this shard's next event time.
                    *times[i].lock().expect("times lock") = shard.next_time();
                    if barrier.wait().is_leader() {
                        // Exactly one thread computes the epoch window from
                        // the published times; which thread it is does not
                        // matter.
                        let t0 = times
                            .iter()
                            .filter_map(|m| *m.lock().expect("times lock"))
                            .min();
                        let mut c = ctl.lock().expect("ctl lock");
                        match t0 {
                            Some(t0) if t0 <= deadline => {
                                c.window_end = t0 + lookahead;
                                c.done = false;
                            }
                            _ => c.done = true,
                        }
                    }
                    barrier.wait();
                    // Phase 2: run the window and publish boundary events.
                    let window_end = {
                        let c = ctl.lock().expect("ctl lock");
                        if c.done {
                            break;
                        }
                        c.window_end
                    };
                    shard.run_window(window_end, deadline);
                    for (dest, batch) in shard.take_outboxes().into_iter().enumerate() {
                        if !batch.is_empty() {
                            mailboxes[i][dest].lock().expect("mailbox lock").extend(batch);
                        }
                    }
                    barrier.wait();
                    // Phase 3: ingest batches in source shard id order.
                    for row in mailboxes.iter() {
                        let batch = std::mem::take(&mut *row[i].lock().expect("mailbox lock"));
                        if !batch.is_empty() {
                            shard.deliver(batch);
                        }
                    }
                    barrier.wait();
                });
                if std::panic::catch_unwind(body).is_err() {
                    eprintln!(
                        "shard worker {i} panicked inside a barrier epoch; \
                         aborting the process (a hung barrier cannot be recovered)"
                    );
                    std::process::abort();
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    /// A toy sharded simulation: `count` tokens bounce between shards. Each
    /// token processed at time `t` in shard `s` re-schedules itself in shard
    /// `(s + 1) % n` at `t + HOP`, until `deadline`. Every shard logs
    /// `(time, token)` in processing order.
    struct Ring {
        me: usize,
        n: usize,
        queue: EventQueue<u32>,
        outbox: Vec<Vec<Boundary<u32>>>,
        log: Vec<(SimTime, u32)>,
        last: SimTime,
    }

    const HOP: SimDuration = SimDuration::from_nanos(50);

    impl ShardHandler for Ring {
        type Event = u32;
        fn next_time(&self) -> Option<SimTime> {
            self.queue.peek_time()
        }
        fn run_window(&mut self, window_end: SimTime, deadline: SimTime) {
            while let Some(t) = self.queue.peek_time() {
                if t >= window_end || t > deadline {
                    break;
                }
                let (now, token) = self.queue.pop().expect("peeked");
                self.last = now;
                self.log.push((now, token));
                let dest = (self.me + 1) % self.n;
                let at = now + HOP;
                if dest == self.me {
                    self.queue.push_ranked(at, token, token);
                } else {
                    self.outbox[dest].push((at, token, token));
                }
            }
        }
        fn take_outboxes(&mut self) -> Vec<Vec<Boundary<u32>>> {
            std::mem::replace(&mut self.outbox, vec![Vec::new(); self.n])
        }
        fn deliver(&mut self, batch: Vec<Boundary<u32>>) {
            for (t, rank, e) in batch {
                self.queue.push_ranked(t, rank, e);
            }
        }
        fn last_processed(&self) -> SimTime {
            self.last
        }
    }

    fn ring(n: usize, tokens: u32) -> Vec<Ring> {
        let mut shards: Vec<Ring> = (0..n)
            .map(|me| Ring {
                me,
                n,
                queue: EventQueue::new(),
                outbox: vec![Vec::new(); n],
                log: Vec::new(),
                last: SimTime::ZERO,
            })
            .collect();
        for token in 0..tokens {
            // All tokens start in shard 0 at t=0, distinguished by rank.
            shards[0].queue.push_ranked(SimTime::ZERO, token, token);
        }
        shards
    }

    fn merged_log(shards: &[Ring]) -> Vec<(SimTime, u32)> {
        let mut all: Vec<(SimTime, u32)> = shards.iter().flat_map(|s| s.log.iter().copied()).collect();
        all.sort();
        all
    }

    #[test]
    fn ring_produces_identical_logs_at_any_shard_count_and_mode() {
        let deadline = SimTime::from_nanos(1_000);
        let mut reference: Option<Vec<(SimTime, u32)>> = None;
        for n in [1usize, 2, 3, 5] {
            for parallel in [false, true] {
                let mut shards = ring(n, 4);
                let end = run_conservative(&mut shards, HOP, deadline, parallel);
                assert_eq!(end, SimTime::from_nanos(1_000));
                let log = merged_log(&shards);
                match &reference {
                    None => reference = Some(log),
                    Some(r) => assert_eq!(r, &log, "n={n} parallel={parallel}"),
                }
            }
        }
        let log = reference.expect("at least one run");
        // 4 tokens, hops at 0,50,...,1000 inclusive: 21 events per token.
        assert_eq!(log.len(), 4 * 21);
    }

    #[test]
    fn deadline_cuts_exactly_like_run_until() {
        // Events exactly at the deadline are processed; later ones are not.
        let mut shards = ring(2, 1);
        let end = run_conservative(&mut shards, HOP, SimTime::from_nanos(100), true);
        assert_eq!(end, SimTime::from_nanos(100));
        assert_eq!(merged_log(&shards).len(), 3); // t = 0, 50, 100
    }

    #[test]
    fn empty_queues_terminate_immediately() {
        let mut shards = ring(3, 0);
        let end = run_conservative(&mut shards, HOP, SimTime::MAX, true);
        assert_eq!(end, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_is_rejected() {
        let mut shards = ring(2, 1);
        run_conservative(&mut shards, SimDuration::ZERO, SimTime::MAX, false);
    }
}
