//! # bfc-sim — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the Backpressure Flow Control (BFC)
//! reproduction: a small, dependency-free discrete-event engine with
//!
//! * a picosecond-resolution simulated clock ([`SimTime`] / [`SimDuration`]),
//! * a time-ordered [`EventQueue`] with deterministic `(time, rank, seq)`
//!   tie-breaking (plain pushes are FIFO; ranked pushes give simultaneous
//!   events a content-derived total order),
//! * a generic [`Simulation`] trait plus [`run`]/[`run_until`] drivers,
//! * the [`shard`] module: epoch-based conservative synchronization for
//!   splitting one simulation across threads with bit-identical results, and
//! * a seedable, splittable pseudo-random number generator ([`rng::SimRng`])
//!   with the samplers the workload generator needs (uniform, exponential,
//!   log-normal, empirical CDF).
//!
//! The core engine is synchronous: network simulation is CPU-bound and the
//! BFC evaluation depends on bit-for-bit reproducibility, so all randomness
//! is seeded and event ordering is total. Within-run parallelism is layered
//! on top via [`shard::run_conservative`], which preserves exactly that
//! total order across shard boundaries.
//!
//! ```
//! use bfc_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_nanos(20), "second");
//! q.push(SimTime::ZERO + SimDuration::from_nanos(10), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t.as_nanos(), 10);
//! ```

pub mod event;
pub mod hash;
pub mod hist;
pub mod rng;
pub mod shard;
pub mod snapshot;
pub mod time;

pub use event::{run, run_until, EventQueue, ReferenceEventQueue, Simulation};
pub use hash::{FastHashMap, FastHashSet};
pub use hist::Hist;
pub use rng::SimRng;
pub use snapshot::{SnapError, SnapReader, SnapWriter};
pub use time::{SimDuration, SimTime};
