//! # bfc-sim — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the Backpressure Flow Control (BFC)
//! reproduction: a small, dependency-free discrete-event engine with
//!
//! * a picosecond-resolution simulated clock ([`SimTime`] / [`SimDuration`]),
//! * a time-ordered [`EventQueue`] with deterministic FIFO tie-breaking,
//! * a generic [`Simulation`] trait plus [`run`]/[`run_until`] drivers, and
//! * a seedable, splittable pseudo-random number generator ([`rng::SimRng`])
//!   with the samplers the workload generator needs (uniform, exponential,
//!   log-normal, empirical CDF).
//!
//! The engine is intentionally synchronous and single-threaded: network
//! simulation is CPU-bound and the BFC evaluation depends on bit-for-bit
//! reproducibility, so all randomness is seeded and event ordering is total.
//!
//! ```
//! use bfc_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_nanos(20), "second");
//! q.push(SimTime::ZERO + SimDuration::from_nanos(10), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t.as_nanos(), 10);
//! ```

pub mod event;
pub mod hash;
pub mod rng;
pub mod time;

pub use event::{run, run_until, EventQueue, ReferenceEventQueue, Simulation};
pub use hash::{FastHashMap, FastHashSet};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
