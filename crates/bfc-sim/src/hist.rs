//! Deterministic log-bucketed histograms.
//!
//! A [`Hist`] buckets `u64` observations into *fixed* log-linear buckets:
//! values below 16 get one bucket each (exact), and every power-of-two
//! decade above that is split into 8 linear sub-buckets, so the bucket
//! width is at most 1/8th of the value — a relative quantile error bound
//! of 12.5%. The boundaries are a pure function of the value, never of
//! the data seen so far, which is what makes the cross-shard merge exact:
//! merging per-shard histograms bucket-by-bucket is *bit-identical* to
//! observing the union serially, in any order.
//!
//! The `sum` is tracked in `u128` so it cannot saturate (and therefore
//! cannot make merge order observable); snapshot encoding is sparse
//! `(bucket index, count)` pairs via [`bfc_sim::snapshot`]'s codec.

use crate::snapshot::{SnapError, SnapReader, SnapWriter};

/// Values below this threshold map to their own bucket (exact).
const LINEAR_MAX: u64 = 16;
/// Sub-buckets per power-of-two decade above the linear range.
const SUBBUCKETS: u64 = 8;
/// Total number of distinct buckets a `u64` can land in:
/// 16 linear + (64 - 4) decades × 8 sub-buckets.
pub const BUCKETS: usize = 16 + 60 * 8;

/// Bucket index for a value. Monotone in `value`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value < LINEAR_MAX {
        value as usize
    } else {
        // e = floor(log2 value) >= 4; top 3 bits below the leading bit
        // pick the sub-bucket.
        let e = 63 - value.leading_zeros() as u64;
        let sub = (value >> (e - 3)) & (SUBBUCKETS - 1);
        (LINEAR_MAX + (e - 4) * SUBBUCKETS + sub) as usize
    }
}

/// Inclusive upper bound of a bucket: the largest value that maps to it.
/// Used as the quantile estimate and as Prometheus' `le` label.
pub fn bucket_upper(index: usize) -> u64 {
    let i = index as u64;
    if i < LINEAR_MAX {
        i
    } else {
        let off = i - LINEAR_MAX;
        let e = off / SUBBUCKETS + 4;
        let sub = off % SUBBUCKETS;
        // Bucket holds [base + sub*width, base + (sub+1)*width - 1] where
        // base = 2^e and width = 2^(e-3).
        let width = 1u64 << (e - 3);
        (1u64 << e).wrapping_add((sub + 1).wrapping_mul(width)).wrapping_sub(1)
    }
}

/// A deterministic log-bucketed histogram of `u64` observations.
///
/// Equality is structural (bucket counts + sum + count), so two
/// histograms that saw the same multiset of values — in any order, on
/// any shard split — compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Hist {
    counts: Vec<u64>,
    sum: u128,
    count: u64,
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist::default()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.observe_n(value, 1);
    }

    /// Records `n` observations of `value` at once (used when folding
    /// pre-counted data, e.g. epoch-width counters, into a histogram).
    #[inline]
    pub fn observe_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = bucket_of(value);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += n;
        self.sum += u128::from(value) * u128::from(n);
        self.count += n;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observed values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self` bucket-by-bucket. Exact: the result is
    /// bit-identical to having observed both histograms' values serially.
    pub fn merge(&mut self, other: &Hist) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Estimates quantile `q` (in `[0, 1]`) as the upper bound of the
    /// bucket holding the `ceil(q * count)`-th smallest observation.
    /// The estimate is at most one bucket width above the exact value,
    /// i.e. within 12.5% relative error (exact below 16). Returns `None`
    /// on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_upper(i));
            }
        }
        None
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` in ascending
    /// bound order — the exposition and snapshot walk this.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != 0)
            .map(|(i, c)| (bucket_upper(i), *c))
    }

    /// Serializes as sparse `(bucket index, count)` pairs plus sum/count.
    pub fn save_state(&self, w: &mut SnapWriter) {
        let occupied = self.counts.iter().filter(|c| **c != 0).count();
        w.put_usize(occupied);
        for (i, c) in self.counts.iter().enumerate() {
            if *c != 0 {
                w.put_u32(i as u32);
                w.put_u64(*c);
            }
        }
        w.put_u64((self.sum >> 64) as u64);
        w.put_u64(self.sum as u64);
        w.put_u64(self.count);
    }

    /// Restores a histogram saved by [`Hist::save_state`]. Round-trips
    /// bit-identically: equal histograms serialize to equal bytes.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let occupied = r.get_count(12)?;
        let mut counts = Vec::new();
        let mut total = 0u64;
        for _ in 0..occupied {
            let i = r.get_u32()? as usize;
            if i >= BUCKETS {
                return Err(SnapError::Corrupt("histogram bucket index out of range"));
            }
            let c = r.get_u64()?;
            if counts.len() <= i {
                counts.resize(i + 1, 0);
            }
            if counts[i] != 0 {
                return Err(SnapError::Corrupt("duplicate histogram bucket"));
            }
            counts[i] = c;
            total = total
                .checked_add(c)
                .ok_or(SnapError::Corrupt("histogram count overflow"))?;
        }
        let hi = r.get_u64()?;
        let lo = r.get_u64()?;
        let sum = (u128::from(hi) << 64) | u128::from(lo);
        let count = r.get_u64()?;
        if count != total {
            return Err(SnapError::Corrupt("histogram count mismatch"));
        }
        Ok(Hist { counts, sum, count })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_bounds_are_inclusive() {
        // Every value maps into a bucket whose upper bound is >= the
        // value, and bucket indices never decrease as values grow.
        let mut prev = 0usize;
        for v in (0..4096u64).chain([u64::MAX / 3, u64::MAX - 1, u64::MAX]) {
            let b = bucket_of(v);
            assert!(b >= prev || v < 4096, "bucket regressed at {v}");
            if v < 4096 {
                prev = b;
            }
            assert!(b < BUCKETS);
            assert!(bucket_upper(b) >= v, "upper({b}) < {v}");
            if b > 0 {
                assert!(bucket_upper(b - 1) < v, "value {v} fits earlier bucket");
            }
        }
    }

    #[test]
    fn small_values_are_exact_and_error_is_bounded() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_upper(bucket_of(v)), v);
        }
        for v in [16u64, 100, 1000, 123_456, 1 << 40, u64::MAX / 7] {
            let upper = bucket_upper(bucket_of(v));
            let err = upper - v;
            // One bucket width: width = 2^(e-3) <= v / 8.
            assert!(err <= v / 8, "error {err} beyond 12.5% at {v}");
        }
    }

    #[test]
    fn merge_is_exact_and_order_independent() {
        let values: Vec<u64> = (0..500).map(|i| i * i * 37 + i).collect();
        let mut serial = Hist::new();
        for &v in &values {
            serial.observe(v);
        }
        // Split across 3 "shards" round-robin, merge in two orders.
        let mut shards = vec![Hist::new(), Hist::new(), Hist::new()];
        for (i, &v) in values.iter().enumerate() {
            shards[i % 3].observe(v);
        }
        let mut fwd = Hist::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = Hist::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, serial);
        assert_eq!(rev, serial);
        assert_eq!(fwd.sum(), values.iter().map(|&v| u128::from(v)).sum());
        assert_eq!(fwd.count(), values.len() as u64);
    }

    #[test]
    fn quantiles_are_within_one_bucket() {
        let mut h = Hist::new();
        let mut values: Vec<u64> = (1..=1000u64).map(|i| i * 13).collect();
        for &v in &values {
            h.observe(v);
        }
        values.sort_unstable();
        for &(q, idx) in &[(0.5, 499usize), (0.9, 899), (0.99, 989), (1.0, 999)] {
            let exact = values[idx];
            let est = h.quantile(q).unwrap();
            assert!(est >= exact, "estimate below exact at q={q}");
            assert!(est - exact <= exact / 8, "q={q}: {est} vs {exact}");
        }
        assert_eq!(Hist::new().quantile(0.5), None);
        assert_eq!(h.quantile(0.0), Some(bucket_upper(bucket_of(13))));
    }

    #[test]
    fn observe_n_matches_repeated_observe() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        for _ in 0..7 {
            a.observe(129);
        }
        b.observe_n(129, 7);
        b.observe_n(42, 0); // no-op
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let mut h = Hist::new();
        for v in [0u64, 1, 15, 16, 17, 1000, 1 << 30, u64::MAX] {
            h.observe_n(v, v % 5 + 1);
        }
        let mut w = SnapWriter::new();
        h.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = Hist::restore_state(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, h);
        // Re-serialize: byte-stable.
        let mut w2 = SnapWriter::new();
        back.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let mut h = Hist::new();
        h.observe(100);
        h.observe(200);
        let mut w = SnapWriter::new();
        h.save_state(&mut w);
        let bytes = w.into_bytes();
        // Truncations fail.
        for n in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..n]);
            assert!(
                Hist::restore_state(&mut r).and_then(|_| r.expect_end()).is_err(),
                "prefix {n} accepted"
            );
        }
        // A tampered total count fails the cross-check.
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 1] ^= 1;
        let mut r = SnapReader::new(&bad);
        assert!(Hist::restore_state(&mut r).is_err());
    }
}
