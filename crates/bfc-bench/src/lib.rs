//! Hand-rolled, dependency-free benchmark harness for the BFC reproduction.
//!
//! A tiny criterion replacement that works offline: each benchmark is warmed
//! up, calibrated so one sample takes a meaningful amount of wall-clock time,
//! then timed for K samples; the reported figure is the **median** ns/iter
//! (robust against scheduling noise). Results render as a text table and as
//! `BENCH.json` (std-only JSON writer) — the perf baseline later optimization
//! PRs are judged against.
//!
//! ```
//! use bfc_bench::Harness;
//!
//! let mut h = Harness::quick();
//! h.bench("sum_1k", || (0..1_000u64).sum::<u64>());
//! assert!(h.report().contains("sum_1k"));
//! assert!(h.to_json().contains("\"name\": \"sum_1k\""));
//! ```

use std::fmt::Write as _;
use std::hint::black_box;
use std::io;
use std::path::Path;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Timing results of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (stable across PRs; used as the JSON key).
    pub name: String,
    /// Iterations executed per timed sample.
    pub iters_per_sample: u64,
    /// Total wall-clock nanoseconds of each sample.
    pub sample_ns: Vec<u128>,
}

impl BenchResult {
    /// Per-iteration nanoseconds of each sample, sorted ascending.
    pub fn per_iter_ns(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .sample_ns
            .iter()
            .map(|&ns| ns as f64 / self.iters_per_sample as f64)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        v
    }

    /// Median ns/iter — the headline number.
    pub fn median_ns(&self) -> f64 {
        let v = self.per_iter_ns();
        let n = v.len();
        if n == 0 {
            return f64::NAN;
        }
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    }

    /// Fastest observed ns/iter.
    pub fn min_ns(&self) -> f64 {
        self.per_iter_ns().first().copied().unwrap_or(f64::NAN)
    }

    /// Slowest observed ns/iter.
    pub fn max_ns(&self) -> f64 {
        self.per_iter_ns().last().copied().unwrap_or(f64::NAN)
    }

    /// Mean ns/iter.
    pub fn mean_ns(&self) -> f64 {
        let v = self.per_iter_ns();
        if v.is_empty() {
            return f64::NAN;
        }
        v.iter().sum::<f64>() / v.len() as f64
    }

    /// Median absolute deviation of the per-iteration samples, in ns/iter —
    /// the robust spread estimate paired with the median headline. A
    /// comparison whose delta is inside the combined MAD band is noise, not
    /// a regression.
    pub fn mad_ns(&self) -> f64 {
        let v = self.per_iter_ns();
        if v.is_empty() {
            return f64::NAN;
        }
        let median = self.median_ns();
        let mut dev: Vec<f64> = v.iter().map(|x| (x - median).abs()).collect();
        dev.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let n = dev.len();
        if n % 2 == 1 {
            dev[n / 2]
        } else {
            (dev[n / 2 - 1] + dev[n / 2]) / 2.0
        }
    }

    /// Total iterations executed across all timed samples.
    pub fn iterations_total(&self) -> u64 {
        self.iters_per_sample * self.sample_ns.len() as u64
    }
}

/// The benchmark harness: registers and times benchmarks, renders reports.
pub struct Harness {
    warmup: Duration,
    min_sample: Duration,
    samples: usize,
    filter: Option<String>,
    verbose: bool,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Full-fidelity settings: ~150 ms warmup, >= 20 ms per sample, 11
    /// samples (median of 11).
    pub fn new() -> Self {
        Harness {
            warmup: Duration::from_millis(150),
            min_sample: Duration::from_millis(20),
            samples: 11,
            filter: None,
            verbose: false,
            results: Vec::new(),
        }
    }

    /// Smoke-run settings for CI / `scripts/verify.sh`: minimal warmup, 5
    /// samples. Numbers are noisier but the full suite finishes in seconds.
    pub fn quick() -> Self {
        Harness {
            warmup: Duration::from_millis(10),
            min_sample: Duration::from_millis(2),
            samples: 5,
            ..Harness::new()
        }
    }

    /// Only run benchmarks whose name contains `filter`.
    pub fn with_filter(mut self, filter: Option<String>) -> Self {
        self.filter = filter;
        self
    }

    /// Print one progress line per benchmark as it completes.
    pub fn with_verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    /// Number of timed samples taken per benchmark.
    pub fn samples_per_bench(&self) -> usize {
        self.samples
    }

    /// The results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Warm up, calibrate and time one benchmark. The closure's return value
    /// is passed through [`black_box`] so the work cannot be optimized away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warmup doubles as calibration: run until the warmup budget is
        // spent, counting iterations to estimate the per-iteration cost.
        let start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(f());
            warmup_iters += 1;
            if start.elapsed() >= self.warmup {
                break;
            }
        }
        let per_iter_ns = (start.elapsed().as_nanos() / warmup_iters as u128).max(1);
        let iters_per_sample = ((self.min_sample.as_nanos() / per_iter_ns) as u64).max(1);

        let mut sample_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            sample_ns.push(t.elapsed().as_nanos());
        }
        let result = BenchResult {
            name: name.to_string(),
            iters_per_sample,
            sample_ns,
        };
        if self.verbose {
            eprintln!(
                "  {:<34} {:>14.0} ns/iter (median of {}, {} iters/sample)",
                result.name,
                result.median_ns(),
                self.samples,
                iters_per_sample
            );
        }
        self.results.push(result);
    }

    /// Text table of all results.
    pub fn report(&self) -> String {
        let mut out = String::from(
            "benchmark                            median(ns/iter)     min(ns/iter)     max(ns/iter)     mad(ns/iter)\n",
        );
        for r in &self.results {
            let _ = writeln!(
                out,
                "{:<34} {:>16.0} {:>16.0} {:>16.0} {:>16.1}",
                r.name,
                r.median_ns(),
                r.min_ns(),
                r.max_ns(),
                r.mad_ns()
            );
        }
        out
    }

    /// Serializes all results as JSON (std-only writer).
    pub fn to_json(&self) -> String {
        let created = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"bfc-bench/v1\",");
        let _ = writeln!(out, "  \"created_unix_secs\": {created},");
        let _ = writeln!(out, "  \"samples_per_bench\": {},", self.samples);
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": \"{}\",", escape_json(&r.name));
            let _ = writeln!(out, "      \"iters_per_sample\": {},", r.iters_per_sample);
            let _ = writeln!(out, "      \"iterations_total\": {},", r.iterations_total());
            let _ = writeln!(out, "      \"median_ns_per_iter\": {},", json_f64(r.median_ns()));
            let _ = writeln!(out, "      \"mad_ns_per_iter\": {},", json_f64(r.mad_ns()));
            let _ = writeln!(out, "      \"mean_ns_per_iter\": {},", json_f64(r.mean_ns()));
            let _ = writeln!(out, "      \"min_ns_per_iter\": {},", json_f64(r.min_ns()));
            let _ = writeln!(out, "      \"max_ns_per_iter\": {},", json_f64(r.max_ns()));
            let samples: Vec<String> = r.sample_ns.iter().map(|ns| ns.to_string()).collect();
            let _ = writeln!(out, "      \"samples_total_ns\": [{}]", samples.join(", "));
            out.push_str(if i + 1 < self.results.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`Harness::to_json`] to `path`.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

/// One benchmark's median read back from a committed `BENCH.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Benchmark name.
    pub name: String,
    /// Median ns/iter recorded in the baseline.
    pub median_ns: f64,
    /// Median absolute deviation recorded in the baseline, when present
    /// (baselines written before the MAD field was added have `None`).
    pub mad_ns: Option<f64>,
}

/// Extracts `(name, median_ns_per_iter)` pairs from a `BENCH.json` document
/// produced by [`Harness::to_json`]. This is a purpose-built scanner, not a
/// general JSON parser (the workspace has zero dependencies): it walks the
/// `"name"` / `"median_ns_per_iter"` key-value lines in order, which is
/// exactly the shape this crate writes. A document that breaks that shape —
/// an unquoted name, a non-numeric median, or a name/median pairing that
/// doesn't alternate — is rejected rather than silently skipped, so a
/// truncated or hand-mangled baseline fails the comparison instead of
/// vacuously passing it.
pub fn parse_baseline(json: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries = Vec::new();
    let mut pending_name: Option<String> = None;
    for (lineno, line) in json.lines().enumerate() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\":") {
            if pending_name.is_some() {
                return Err(format!(
                    "line {}: \"name\" without a preceding median",
                    lineno + 1
                ));
            }
            let raw = rest.trim().trim_end_matches(',').trim();
            if raw.len() < 2 || !raw.starts_with('"') || !raw.ends_with('"') {
                return Err(format!("line {}: \"name\" value is not a string", lineno + 1));
            }
            pending_name = Some(unescape_json(&raw[1..raw.len() - 1]));
        } else if let Some(rest) = line.strip_prefix("\"median_ns_per_iter\":") {
            let Some(name) = pending_name.take() else {
                return Err(format!(
                    "line {}: median without a preceding \"name\"",
                    lineno + 1
                ));
            };
            let median_ns = rest
                .trim()
                .trim_end_matches(',')
                .parse::<f64>()
                .map_err(|_| format!("line {}: median is not a number", lineno + 1))?;
            entries.push(BaselineEntry {
                name,
                median_ns,
                mad_ns: None,
            });
        } else if let Some(rest) = line.strip_prefix("\"mad_ns_per_iter\":") {
            if pending_name.is_some() {
                return Err(format!(
                    "line {}: MAD between a \"name\" and its median",
                    lineno + 1
                ));
            }
            let Some(entry) = entries.last_mut() else {
                return Err(format!(
                    "line {}: MAD without a preceding benchmark",
                    lineno + 1
                ));
            };
            if entry.mad_ns.is_some() {
                return Err(format!(
                    "line {}: duplicate MAD for \"{}\"",
                    lineno + 1,
                    entry.name
                ));
            }
            let mad = rest
                .trim()
                .trim_end_matches(',')
                .parse::<f64>()
                .map_err(|_| format!("line {}: MAD is not a number", lineno + 1))?;
            entry.mad_ns = Some(mad);
        }
    }
    if pending_name.is_some() {
        return Err("trailing \"name\" without a median".to_string());
    }
    Ok(entries)
}

/// Outcome of comparing one fresh result against the committed baseline.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Benchmark name.
    pub name: String,
    /// Baseline median ns/iter.
    pub baseline_ns: f64,
    /// Freshly measured median ns/iter.
    pub current_ns: f64,
    /// Baseline MAD ns/iter, when the baseline recorded one.
    pub baseline_mad_ns: Option<f64>,
    /// Freshly measured MAD ns/iter.
    pub current_mad_ns: f64,
}

impl Comparison {
    /// Relative change: positive means slower than the baseline.
    pub fn change_fraction(&self) -> f64 {
        if self.baseline_ns <= 0.0 {
            return 0.0;
        }
        self.current_ns / self.baseline_ns - 1.0
    }

    /// True when the median delta is within the combined noise band of the
    /// two measurements (3 x the summed MADs) — the spread of the samples
    /// explains the difference, so a flagged regression is suspect and a
    /// re-run (or a quieter machine) is in order before believing it.
    pub fn is_noisy(&self) -> bool {
        let band = 3.0 * (self.baseline_mad_ns.unwrap_or(0.0) + self.current_mad_ns);
        (self.current_ns - self.baseline_ns).abs() <= band
    }
}

/// Compares fresh results against a parsed baseline. Returns every matched
/// pair, the subset whose median regressed by more than `max_regression`
/// (e.g. `0.25` = 25% slower), and the names of benchmarks with no baseline
/// entry (newly added ones). The missing names are excluded from the
/// comparison but reported, so a new benchmark is visible until the
/// baseline is refreshed rather than silently ignored.
pub fn compare_against_baseline(
    results: &[BenchResult],
    baseline: &[BaselineEntry],
    max_regression: f64,
) -> (Vec<Comparison>, Vec<Comparison>, Vec<String>) {
    let mut matched = Vec::new();
    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    for r in results {
        let Some(b) = baseline.iter().find(|b| b.name == r.name) else {
            missing.push(r.name.clone());
            continue;
        };
        let cmp = Comparison {
            name: r.name.clone(),
            baseline_ns: b.median_ns,
            current_ns: r.median_ns(),
            baseline_mad_ns: b.mad_ns,
            current_mad_ns: r.mad_ns(),
        };
        if cmp.change_fraction() > max_regression {
            regressions.push(cmp.clone());
        }
        matched.push(cmp);
    }
    (matched, regressions, missing)
}

/// Renders a comparison table (change vs baseline, regressions flagged).
pub fn comparison_report(matched: &[Comparison], max_regression: f64) -> String {
    let mut out = String::from(
        "benchmark                            baseline(ns)      current(ns)   change\n",
    );
    for c in matched {
        let flag = if c.change_fraction() > max_regression {
            if c.is_noisy() {
                "  << REGRESSION (within noise band — re-run before believing it)"
            } else {
                "  << REGRESSION"
            }
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{:<34} {:>15.0} {:>16.0} {:>+7.1}%{}",
            c.name,
            c.baseline_ns,
            c.current_ns,
            c.change_fraction() * 100.0,
            flag
        );
    }
    out
}

fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as a JSON number (JSON has no NaN/inf, so those become 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_known_samples() {
        let r = BenchResult {
            name: "x".into(),
            iters_per_sample: 10,
            sample_ns: vec![100, 300, 200],
        };
        // Per-iter samples are 10, 30, 20 -> median 20, min 10, max 30.
        assert_eq!(r.median_ns(), 20.0);
        assert_eq!(r.min_ns(), 10.0);
        assert_eq!(r.max_ns(), 30.0);
        assert_eq!(r.mean_ns(), 20.0);
        // Absolute deviations from 20 are 10, 10, 0 -> MAD 10.
        assert_eq!(r.mad_ns(), 10.0);
        assert_eq!(r.iterations_total(), 30);
    }

    #[test]
    fn median_of_even_sample_count_averages_the_middle() {
        let r = BenchResult {
            name: "x".into(),
            iters_per_sample: 1,
            sample_ns: vec![10, 20, 30, 40],
        };
        assert_eq!(r.median_ns(), 25.0);
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut h = Harness::quick();
        h.bench("count_to_1000", || {
            let mut s = 0u64;
            for i in 0..1000 {
                s = s.wrapping_add(i);
            }
            s
        });
        assert_eq!(h.results().len(), 1);
        let r = &h.results()[0];
        assert_eq!(r.sample_ns.len(), h.samples_per_bench());
        assert!(r.median_ns() > 0.0);
        assert!(h.report().contains("count_to_1000"));
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut h = Harness::quick().with_filter(Some("keep".into()));
        h.bench("keep_this", || 1u32);
        h.bench("drop_this", || 2u32);
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].name, "keep_this");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut h = Harness::quick();
        h.bench("a\"quoted\"name", || 1u32);
        let json = h.to_json();
        assert!(json.contains("\"schema\": \"bfc-bench/v1\""));
        assert!(json.contains("a\\\"quoted\\\"name"));
        assert!(json.contains("\"median_ns_per_iter\""));
        // Balanced braces / brackets (a cheap structural sanity check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count()
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count()
        );
    }

    #[test]
    fn json_f64_handles_non_finite() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(1.5), "1.500");
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let mut h = Harness::quick();
        h.bench("alpha", || 1u32);
        h.bench("beta \"quoted\"", || 2u32);
        let baseline = parse_baseline(&h.to_json()).expect("own output parses");
        assert_eq!(baseline.len(), 2);
        assert_eq!(baseline[0].name, "alpha");
        assert_eq!(baseline[1].name, "beta \"quoted\"");
        assert!((baseline[0].median_ns - h.results()[0].median_ns()).abs() < 1.0);
        // The MAD written alongside each median round-trips too.
        let mad = baseline[0].mad_ns.expect("fresh baselines carry a MAD");
        assert!((mad - h.results()[0].mad_ns()).abs() < 1.0);
    }

    #[test]
    fn pre_mad_baselines_still_parse() {
        // A baseline written before the MAD field existed: medians load,
        // the spread is simply unknown.
        let old = "\"name\": \"a\",\n\"median_ns_per_iter\": 10.0\n";
        let baseline = parse_baseline(old).expect("old baselines stay readable");
        assert_eq!(baseline.len(), 1);
        assert_eq!(baseline[0].mad_ns, None);
        // But a MAD in the wrong place is still malformed.
        let orphan = "\"mad_ns_per_iter\": 1.0\n";
        assert!(parse_baseline(orphan).is_err());
        let split = "\"name\": \"a\",\n\"mad_ns_per_iter\": 1.0\n\"median_ns_per_iter\": 10.0\n";
        assert!(parse_baseline(split).is_err());
        let doubled = "\"name\": \"a\",\n\"median_ns_per_iter\": 10.0,\n\
                       \"mad_ns_per_iter\": 1.0,\n\"mad_ns_per_iter\": 2.0\n";
        assert!(parse_baseline(doubled).is_err());
    }

    #[test]
    fn noisy_regressions_are_marked() {
        // Samples 100/200/300 -> median 200, MAD 100: the +100% "regression"
        // vs a baseline median of 100 sits inside the noise band.
        let noisy = BenchResult {
            name: "noisy".into(),
            iters_per_sample: 1,
            sample_ns: vec![100, 200, 300],
        };
        // Samples all 200 -> MAD 0: the same +100% delta is real.
        let steady = BenchResult {
            name: "steady".into(),
            iters_per_sample: 1,
            sample_ns: vec![200, 200, 200],
        };
        let baseline = vec![
            BaselineEntry { name: "noisy".into(), median_ns: 100.0, mad_ns: Some(10.0) },
            BaselineEntry { name: "steady".into(), median_ns: 100.0, mad_ns: Some(1.0) },
        ];
        let (matched, regressions, _) =
            compare_against_baseline(&[noisy, steady], &baseline, 0.25);
        assert_eq!(regressions.len(), 2, "noise does not excuse the gate");
        assert!(matched[0].is_noisy());
        assert!(!matched[1].is_noisy());
        let report = comparison_report(&matched, 0.25);
        assert!(report.contains("within noise band"));
    }

    #[test]
    fn comparison_flags_only_large_regressions() {
        let result = |name: &str, ns: u128| BenchResult {
            name: name.into(),
            iters_per_sample: 1,
            sample_ns: vec![ns, ns, ns],
        };
        let results = vec![
            result("fast_enough", 110),   // +10% vs 100: fine
            result("regressed", 200),     // +100% vs 100: flagged
            result("improved", 50),       // -50%: fine
            result("brand_new", 1_000),   // no baseline: skipped
        ];
        let baseline = vec![
            BaselineEntry { name: "fast_enough".into(), median_ns: 100.0, mad_ns: None },
            BaselineEntry { name: "regressed".into(), median_ns: 100.0, mad_ns: None },
            BaselineEntry { name: "improved".into(), median_ns: 100.0, mad_ns: None },
        ];
        let (matched, regressions, missing) = compare_against_baseline(&results, &baseline, 0.25);
        assert_eq!(matched.len(), 3, "new benchmarks are not compared");
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "regressed");
        assert_eq!(missing, vec!["brand_new".to_string()]);
        let report = comparison_report(&matched, 0.25);
        assert!(report.contains("<< REGRESSION"));
        assert!(report.contains("regressed"));
        assert!(!report.contains("brand_new"));
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        // A median with no preceding name (e.g. a truncated copy-paste).
        let orphan_median = "{\n\"median_ns_per_iter\": 12.0\n}\n";
        assert!(parse_baseline(orphan_median).is_err());
        // Two names in a row: the first lost its median line.
        let double_name = "\"name\": \"a\",\n\"name\": \"b\",\n\"median_ns_per_iter\": 1.0\n";
        assert!(parse_baseline(double_name).is_err());
        // A median that is not a number.
        let bad_median = "\"name\": \"a\",\n\"median_ns_per_iter\": fast\n";
        assert!(parse_baseline(bad_median).is_err());
        // A name cut off by truncation.
        let dangling = "\"name\": \"a\",\n";
        assert!(parse_baseline(dangling).is_err());
        // An unquoted name value.
        let unquoted = "\"name\": 17,\n\"median_ns_per_iter\": 1.0\n";
        assert!(parse_baseline(unquoted).is_err());
        // The error names the offending line.
        let err = parse_baseline(orphan_median).unwrap_err();
        assert!(err.contains("line 2"), "unhelpful error: {err}");
    }
}
