//! Criterion benchmark harness for the BFC reproduction.
//!
//! The crate has no library API of its own: each paper table/figure has a
//! corresponding bench target under `benches/`, built on top of the
//! `bfc-experiments` runner with scaled-down parameters so the full suite
//! completes in minutes. Run them with `cargo bench -p bfc-bench`.
