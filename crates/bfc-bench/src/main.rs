//! `cargo run --release -p bfc-bench` — microbenchmarks of the simulator's
//! hot paths: the event queue, the BFC data structures (bloom filters, flow
//! table), switch forwarding, and complete small experiments. Writes the
//! results to `BENCH.json` (see `--out`), the perf baseline later
//! optimization PRs are compared against.
//!
//! Options:
//!   --quick              fewer/shorter samples (for scripts/verify.sh)
//!   --out <path>         output JSON path (default BENCH.json)
//!   --filter <substr>    only run benchmarks whose name contains <substr>
//!   --no-json            skip writing the JSON file
//!   --compare <path>     diff medians against a committed BENCH.json and
//!                        exit non-zero if any benchmark regressed
//!   --max-regress <pct>  regression tolerance for --compare (default 25)

use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;

use bfc_bench::{compare_against_baseline, comparison_report, parse_baseline, Harness};
use bfc_core::{BfcConfig, BfcPolicy, CountingBloom, FlowKey, FlowTable};
use bfc_experiments::{run_experiment, run_experiment_sharded, ExperimentConfig, ParallelRunner, Scheme};
use bfc_net::packet::{Packet, PauseFrame};
use bfc_net::policy::{EnqueueCtx, FifoPolicy, SwitchPolicy};
use bfc_net::routing::RoutingTables;
use bfc_net::switch::Switch;
use bfc_net::topology::{fat_tree, FatTreeParams};
use bfc_net::types::{FlowId, NodeId};
use bfc_net::{Link, NetEvent, Port, SwitchConfig};
use bfc_sim::{EventQueue, SimDuration, SimTime};
use bfc_workloads::{export_csv, import_csv, synthesize, TraceParams, Workload};

const USAGE: &str = "usage: bfc-bench [--quick] [--out <path>] [--filter <substr>] \
[--no-json] [--compare <baseline.json>] [--max-regress <pct>]";

struct Args {
    quick: bool,
    out: Option<PathBuf>,
    filter: Option<String>,
    compare: Option<PathBuf>,
    max_regress_pct: f64,
}

enum Parsed {
    Run(Args),
    Help,
}

fn parse_args() -> Result<Parsed, String> {
    let mut args = Args {
        quick: false,
        out: Some(PathBuf::from("BENCH.json")),
        filter: None,
        compare: None,
        max_regress_pct: 25.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--no-json" => args.out = None,
            "--out" => {
                let path = it.next().ok_or("--out requires a path")?;
                args.out = Some(PathBuf::from(path));
            }
            "--filter" => {
                let f = it.next().ok_or("--filter requires a substring")?;
                args.filter = Some(f);
            }
            "--compare" => {
                let path = it.next().ok_or("--compare requires a path")?;
                args.compare = Some(PathBuf::from(path));
            }
            "--max-regress" => {
                let pct = it.next().ok_or("--max-regress requires a percentage")?;
                args.max_regress_pct = pct
                    .parse()
                    .map_err(|_| format!("--max-regress: not a number: {pct}"))?;
            }
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    Ok(Parsed::Run(args))
}

fn bench_event_queue(h: &mut Harness) {
    h.bench("event_queue_push_pop_10k", || {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(10_000);
        for i in 0..10_000u64 {
            q.push(SimTime::from_nanos((i * 7919) % 100_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum += v;
        }
        sum
    });
}

fn bench_bloom(h: &mut Harness) {
    h.bench("pause_frame_insert_contains", || {
        let mut f = PauseFrame::new(128, 4);
        for v in 0..32u32 {
            f.insert(v * 97);
        }
        let mut hits = 0;
        for v in 0..1_000u32 {
            if f.contains(v) {
                hits += 1;
            }
        }
        hits
    });
    h.bench("counting_bloom_cycle", || {
        let mut cb = CountingBloom::new(128, 4);
        for v in 0..64u32 {
            cb.insert(v);
        }
        let snap = cb.snapshot();
        for v in 0..64u32 {
            cb.remove(v);
        }
        (snap.popcount(), cb.is_empty())
    });
}

fn bench_flow_table(h: &mut Harness) {
    h.bench("flow_table_insert_lookup_remove_1k", || {
        let mut t = FlowTable::new(16_384, 4, 100);
        for v in 0..1_000u32 {
            let key = FlowKey {
                vfid: v * 13 % 16_384,
                ingress: v % 24,
                egress: (v * 7) % 24,
            };
            black_box(t.lookup_or_insert(key));
        }
        t.len()
    });
    // The data-path common case: the flow is already tracked and every
    // packet does one lookup. 64k hits against a resident population of
    // 4k flows (the paper's T1-scale concurrent-flow count), table built
    // outside the timed region.
    let mut t = FlowTable::new(16_384, 4, 100);
    let keys: Vec<FlowKey> = (0..4_096u32)
        .map(|v| FlowKey {
            vfid: v * 13 % 16_384,
            ingress: v % 24,
            egress: (v * 7) % 24,
        })
        .collect();
    for &key in &keys {
        t.lookup_or_insert(key);
    }
    h.bench("flow_table_hot_lookup_64k", || {
        let mut found = 0usize;
        for i in 0..65_536usize {
            found += usize::from(t.find(keys[(i * 31) % keys.len()]).is_some());
        }
        found
    });
}

fn bench_switch_forwarding(h: &mut Harness) {
    let topo = fat_tree(FatTreeParams::t2());
    let routes = RoutingTables::compute(&topo);
    let tor = topo.switches()[0];
    h.bench("switch_forward_1k_packets_fifo", || {
        let mut sw = Switch::new(
            tor,
            SwitchConfig::default(),
            topo.ports(tor),
            Box::new(FifoPolicy::new()),
            1,
        );
        let mut events: EventQueue<NetEvent> = EventQueue::new();
        for i in 0..1_000u64 {
            let pkt = Packet::data(
                FlowId((i % 64) as u32),
                NodeId(0),
                NodeId((1 + i % 15) as u32),
                i,
                1_000,
                (i % 64) as u32,
                false,
            );
            sw.handle_packet(SimTime::from_nanos(i * 10), 0, pkt, &routes, &mut events);
            while let Some((t, ev)) = events.pop() {
                if let NetEvent::TxComplete { port, .. } = ev {
                    sw.handle_tx_complete(t, port, &mut events);
                }
            }
        }
        sw.counters().rx_packets
    });
    let port = Port::new(Link::datacenter_default(), Some((NodeId(9), 0)), 32, 1000);
    h.bench("bfc_policy_enqueue_dequeue_1k", || {
        let mut policy = BfcPolicy::new(BfcConfig::default(), 3);
        let ctx = EnqueueCtx {
            now: SimTime::ZERO,
            switch: NodeId(0),
            ingress: 0,
            egress: 1,
            port: &port,
        };
        for i in 0..1_000u32 {
            let pkt = Packet::data(FlowId(i % 50), NodeId(0), NodeId(1), 0, 1_000, i % 50, false);
            black_box(policy.on_enqueue(&ctx, &pkt));
        }
        policy.tracked_flows()
    });
}

fn bench_calendar_queue(h: &mut Harness) {
    // Steady-state pattern: hold the population at 10k while simulated time
    // advances, so the calendar actually rotates through its windows (the
    // `event_queue_push_pop_10k` benchmark above measures the bulk
    // fill-then-drain shape instead). The queue persists across iterations —
    // one iteration is exactly 10k pops + 10k pushes, the same operation
    // count as the fill-then-drain baseline. (The previous shape rebuilt,
    // refilled and drained the queue inside the timed region, so it timed
    // 20k pushes + 20k pops against the baseline's 10k + 10k and read as a
    // phantom ~2x "regression" of the rotation path.)
    let mut q: EventQueue<u64> = EventQueue::with_capacity(10_000);
    for i in 0..10_000u64 {
        q.push(SimTime::from_nanos((i * 7919) % 100_000), i);
    }
    let mut i = 0u64;
    h.bench("calendar_queue_push_pop_10k", || {
        let mut sum = 0u64;
        for _ in 0..10_000 {
            let (t, v) = q.pop().expect("population is held at 10k");
            sum += v;
            q.push(t + SimDuration::from_nanos(100_000 + i % 977), i);
            i += 1;
        }
        sum
    });
}

fn bench_routing_recompute(h: &mut Harness) {
    // The dynamics subsystem recomputes routing on every link event; this is
    // the re-convergence cost on the paper's T1 fat tree (128 hosts, 16
    // switches) with one dead core link, as a fault schedule would leave it.
    let topo = fat_tree(FatTreeParams::t1());
    let tor0 = topo.switches()[0];
    let spine0 = topo.switches()[8];
    let dead_port = routes_port(&topo, tor0, spine0);
    let back_port = routes_port(&topo, spine0, tor0);
    h.bench("routing_recompute_fat_tree", || {
        let routes = RoutingTables::compute_filtered(&topo, |n, p| {
            !(n == tor0 && p == dead_port) && !(n == spine0 && p == back_port)
        });
        routes.hosts().len()
    });
}

fn routes_port(topo: &bfc_net::Topology, a: NodeId, b: NodeId) -> u32 {
    topo.port_towards(a, b).expect("adjacent in the fat tree")
}

fn bench_trace_io(h: &mut Harness) {
    // A few thousand flows: representative of the quick-scale traces the
    // figure sweeps import/export, large enough that per-row costs dominate.
    let hosts: Vec<NodeId> = (0..64).map(NodeId).collect();
    let trace = synthesize(
        &hosts,
        &TraceParams::background_only(Workload::Google, 0.6, SimDuration::from_micros(400), 9),
    );
    let csv = export_csv(&trace);
    h.bench("trace_csv_export", || export_csv(&trace).len());
    h.bench("trace_csv_import", || {
        import_csv(&csv).expect("exported traces always parse").len()
    });
}

fn bench_port_counters(h: &mut Harness) {
    // The BFC pause-threshold path calls `active_queue_count` on every
    // enqueue and dequeue. This drives a 32-queue port through the same
    // enqueue/query/dequeue/query pattern the policy produces; the counter
    // is maintained incrementally, so each query is O(1) instead of an O(Q)
    // scan.
    h.bench("port_active_queue_count_32q", || {
        let mut port = Port::new(Link::datacenter_default(), Some((NodeId(9), 0)), 32, 1_000);
        let mut probe = 0usize;
        for i in 0..1_000u64 {
            let q = (i % 32) as usize;
            let pkt = Packet::data(
                FlowId(q as u32),
                NodeId(0),
                NodeId(1),
                i,
                1_000,
                q as u32,
                false,
            );
            port.enqueue(bfc_net::policy::QueueTarget::Phys(q), pkt, 0);
            probe += black_box(port.active_queue_count());
            if i % 2 == 1 {
                let _ = port.dequeue_next();
                probe += black_box(port.active_queue_count());
            }
        }
        probe
    });
    // The dynamic PFC threshold: admit/release churn with a transition
    // check per buffer movement, plus the fault path's all-ingress sweep at
    // constant occupancy (where the per-occupancy cache pays off most).
    h.bench("shared_buffer_pfc_transitions", || {
        let pfc = bfc_net::config::PfcConfig::default();
        let mut buffer = bfc_net::buffer::SharedBuffer::new(1_000_000, 24);
        let mut transitions = 0usize;
        for i in 0..1_000u32 {
            let ingress = i % 24;
            buffer.admit(1_000, ingress);
            transitions += usize::from(buffer.pfc_transition(ingress, &pfc).is_some());
            if i % 3 == 2 {
                buffer.release(1_000, ingress);
                transitions += usize::from(buffer.pfc_transition(ingress, &pfc).is_some());
            }
            if i % 100 == 99 {
                for sweep in 0..24u32 {
                    transitions += usize::from(buffer.pfc_transition(sweep, &pfc).is_some());
                }
            }
        }
        transitions
    });
}

fn bench_parallel_runner(h: &mut Harness) {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = synthesize(
        &topo.hosts(),
        &TraceParams::background_only(Workload::Google, 0.4, SimDuration::from_micros(200), 5),
    );
    let configs: Vec<ExperimentConfig> = Scheme::paper_lineup()
        .into_iter()
        .map(|s| ExperimentConfig::new(s, SimDuration::from_micros(200)))
        .collect();
    // Serial vs 4 workers over the same paper lineup: the ratio is the
    // parallel speedup on this machine (bit-identical results either way).
    h.bench("paper_lineup_serial", || {
        ParallelRunner::serial()
            .run_experiments(&topo, &trace, &configs)
            .len()
    });
    h.bench("parallel_runner_4x", || {
        ParallelRunner::new(4)
            .run_experiments(&topo, &trace, &configs)
            .len()
    });
    // Within-run parallelism: the same lineup with each run split across 4
    // engine shards (bit-identical results; on a single-core container this
    // is ≈ serial wall-clock plus barrier overhead, on multicore the run
    // itself scales).
    h.bench("paper_lineup_sharded_4x", || {
        configs
            .iter()
            .map(|config| run_experiment_sharded(&topo, &trace, config, 4).completed_flows)
            .sum::<usize>()
    });
    // A cross-shard-quiescent run: sparse load over a long horizon, where
    // the adaptive epoch driver fast-forwards over empty grid windows and
    // collapses barrier crossings. Re-run with
    // `config.with_epoch_batching(false)` to see the barrier count (in
    // `result.epochs`) roughly triple.
    let quiet = synthesize(
        &topo.hosts(),
        &TraceParams::background_only(
            Workload::Google,
            0.005,
            SimDuration::from_micros(2_000),
            53,
        ),
    );
    let quiet_config = ExperimentConfig::new(Scheme::bfc(), SimDuration::from_micros(2_000));
    h.bench("sharded_epoch_quiescent", || {
        run_experiment_sharded(&topo, &quiet, &quiet_config, 2)
            .epochs
            .barriers
    });
}

fn bench_end_to_end(h: &mut Harness) {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = synthesize(
        &topo.hosts(),
        &TraceParams::background_only(Workload::Google, 0.4, SimDuration::from_micros(200), 5),
    );
    h.bench("bfc_small_fabric_200us", || {
        let config = ExperimentConfig::new(Scheme::bfc(), SimDuration::from_micros(200));
        run_experiment(&topo, &trace, &config).completed_flows
    });
    h.bench("dcqcn_small_fabric_200us", || {
        let config = ExperimentConfig::new(
            Scheme::Dcqcn {
                window: true,
                sfq: false,
            },
            SimDuration::from_micros(200),
        );
        run_experiment(&topo, &trace, &config).completed_flows
    });
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Parsed::Run(args)) => args,
        Ok(Parsed::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut h = if args.quick {
        Harness::quick()
    } else {
        Harness::new()
    }
    .with_filter(args.filter)
    .with_verbose(true);

    eprintln!(
        "bfc-bench: {} mode, {} samples per benchmark",
        if args.quick { "quick" } else { "full" },
        h.samples_per_bench()
    );
    bench_event_queue(&mut h);
    bench_calendar_queue(&mut h);
    bench_bloom(&mut h);
    bench_flow_table(&mut h);
    bench_switch_forwarding(&mut h);
    bench_port_counters(&mut h);
    bench_routing_recompute(&mut h);
    bench_trace_io(&mut h);
    bench_end_to_end(&mut h);
    bench_parallel_runner(&mut h);

    println!("\n{}", h.report());
    if h.results().is_empty() {
        eprintln!("no benchmarks matched the filter");
        return ExitCode::FAILURE;
    }
    // Read the baseline BEFORE writing any output: with the default
    // `--out BENCH.json`, writing first would overwrite the baseline and
    // turn the comparison into a vacuous self-diff.
    let baseline_json = match &args.compare {
        Some(baseline_path) => match std::fs::read_to_string(baseline_path) {
            Ok(json) => Some(json),
            Err(e) => {
                eprintln!("failed to read baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if let Some(path) = args.out {
        if let Err(e) = h.write_json(&path) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    if let (Some(baseline_path), Some(json)) = (args.compare, baseline_json) {
        let baseline = match parse_baseline(&json) {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!("malformed baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        if baseline.is_empty() {
            eprintln!(
                "baseline {} contains no benchmarks",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
        let tolerance = args.max_regress_pct / 100.0;
        let (matched, regressions, missing) =
            compare_against_baseline(h.results(), &baseline, tolerance);
        println!("{}", comparison_report(&matched, tolerance));
        if !missing.is_empty() {
            eprintln!(
                "{} benchmark(s) not in baseline {} (refresh it to track them): {}",
                missing.len(),
                baseline_path.display(),
                missing.join(", ")
            );
        }
        if !regressions.is_empty() {
            eprintln!(
                "{} benchmark(s) regressed more than {:.0}% vs {}",
                regressions.len(),
                args.max_regress_pct,
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "no benchmark regressed more than {:.0}% vs {}",
            args.max_regress_pct,
            baseline_path.display()
        );
    }
    ExitCode::SUCCESS
}
