//! One Criterion benchmark per paper table/figure.
//!
//! Each benchmark runs the corresponding `bfc_experiments::figures::figNN`
//! experiment at quick scale (small topology, short trace). The goal is a
//! regenerable, timed version of the whole evaluation: `cargo bench -p
//! bfc-bench -- fig05` re-runs the headline comparison, and the printed
//! experiment output can be compared against EXPERIMENTS.md. Paper-scale runs
//! use the `figNN_*` binaries with `--full` instead.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use bfc_experiments::figures::{
    self, fig02, fig03, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12, fig13, fig14,
};

fn scale() -> figures::Scale {
    figures::Scale::quick()
}

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("paper-figures");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group
}

fn bench_figures(c: &mut Criterion) {
    let mut group = configure(c);
    group.bench_function("fig01_hw_trends", |b| b.iter(figures::fig01::run));
    group.bench_function("fig02_buffer_vs_speed", |b| b.iter(|| fig02::run(&scale())));
    group.bench_function("fig03_buffer_ratio", |b| b.iter(|| fig03::run(&scale())));
    group.bench_function("fig04_workload_cdf", |b| b.iter(figures::fig04::run));
    group.bench_function("fig05a_google_incast", |b| {
        b.iter(|| fig05::run_google_incast(&scale()))
    });
    group.bench_function("fig05b_hadoop_incast", |b| {
        b.iter(|| fig05::run_hadoop_incast(&scale()))
    });
    group.bench_function("fig05c_google_no_incast", |b| {
        b.iter(|| fig05::run_google_no_incast(&scale()))
    });
    group.bench_function("fig06_buffer_pfc", |b| b.iter(|| fig06::run(&scale())));
    group.bench_function("fig07_queue_assignment", |b| b.iter(|| fig07::run(&scale())));
    group.bench_function("fig08_incast_fanin", |b| b.iter(|| fig08::run(&scale())));
    group.bench_function("fig09_cross_dc", |b| b.iter(|| fig09::run(&scale())));
    group.bench_function("fig10_buffer_opt", |b| b.iter(|| fig10::run(&scale())));
    group.bench_function("fig11_high_priority", |b| b.iter(|| fig11::run(&scale())));
    group.bench_function("fig12_num_queues", |b| b.iter(|| fig12::run(&scale())));
    group.bench_function("fig13_num_vfids", |b| b.iter(|| fig13::run(&scale())));
    group.bench_function("fig14_bloom_size", |b| b.iter(|| fig14::run(&scale())));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
