//! Microbenchmarks of the simulator's hot paths: the event queue, the BFC
//! data structures (bloom filters, flow table), switch forwarding, and one
//! complete small experiment. These quantify that the substrate is fast
//! enough for the paper-scale runs (tens of millions of events).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bfc_core::{BfcConfig, BfcPolicy, CountingBloom, FlowKey, FlowTable};
use bfc_experiments::{run_experiment, ExperimentConfig, Scheme};
use bfc_net::packet::{Packet, PauseFrame};
use bfc_net::policy::{FifoPolicy, SwitchPolicy};
use bfc_net::routing::RoutingTables;
use bfc_net::switch::Switch;
use bfc_net::topology::{fat_tree, FatTreeParams};
use bfc_net::types::{FlowId, NodeId};
use bfc_net::{NetEvent, SwitchConfig};
use bfc_sim::{EventQueue, SimDuration, SimTime};
use bfc_workloads::{synthesize, TraceParams, Workload};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        })
    });
}

fn bench_bloom(c: &mut Criterion) {
    c.bench_function("pause_frame_insert_contains", |b| {
        b.iter(|| {
            let mut f = PauseFrame::new(128, 4);
            for v in 0..32u32 {
                f.insert(v * 97);
            }
            let mut hits = 0;
            for v in 0..1_000u32 {
                if f.contains(v) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    c.bench_function("counting_bloom_cycle", |b| {
        b.iter(|| {
            let mut cb = CountingBloom::new(128, 4);
            for v in 0..64u32 {
                cb.insert(v);
            }
            let snap = cb.snapshot();
            for v in 0..64u32 {
                cb.remove(v);
            }
            black_box((snap.popcount(), cb.is_empty()))
        })
    });
}

fn bench_flow_table(c: &mut Criterion) {
    c.bench_function("flow_table_insert_lookup_remove_1k", |b| {
        b.iter(|| {
            let mut t = FlowTable::new(16_384, 4, 100);
            for v in 0..1_000u32 {
                let key = FlowKey {
                    vfid: v * 13 % 16_384,
                    ingress: v % 24,
                    egress: (v * 7) % 24,
                };
                let _ = t.lookup_or_insert(key);
            }
            black_box(t.len())
        })
    });
}

fn bench_switch_forwarding(c: &mut Criterion) {
    let topo = fat_tree(FatTreeParams::t2());
    let routes = RoutingTables::compute(&topo);
    let tor = topo.switches()[0];
    c.bench_function("switch_forward_1k_packets_fifo", |b| {
        b.iter(|| {
            let mut sw = Switch::new(
                tor,
                SwitchConfig::default(),
                topo.ports(tor),
                Box::new(FifoPolicy::new()),
                1,
            );
            let mut events: EventQueue<NetEvent> = EventQueue::new();
            for i in 0..1_000u64 {
                let pkt = Packet::data(
                    FlowId((i % 64) as u32),
                    NodeId(0),
                    NodeId((1 + i % 15) as u32),
                    i,
                    1_000,
                    (i % 64) as u32,
                    false,
                );
                sw.handle_packet(SimTime::from_nanos(i * 10), 0, pkt, &routes, &mut events);
                while let Some((t, ev)) = events.pop() {
                    if let NetEvent::TxComplete { port, .. } = ev {
                        sw.handle_tx_complete(t, port, &mut events);
                    }
                }
            }
            black_box(sw.counters().rx_packets)
        })
    });
    c.bench_function("bfc_policy_enqueue_dequeue_1k", |b| {
        let port = bfc_net::Port::new(bfc_net::Link::datacenter_default(), Some((NodeId(9), 0)), 32, 1000);
        b.iter(|| {
            let mut policy = BfcPolicy::new(BfcConfig::default(), 3);
            let ctx = bfc_net::policy::EnqueueCtx {
                now: SimTime::ZERO,
                switch: NodeId(0),
                ingress: 0,
                egress: 1,
                port: &port,
            };
            for i in 0..1_000u32 {
                let pkt = Packet::data(FlowId(i % 50), NodeId(0), NodeId(1), 0, 1_000, i % 50, false);
                black_box(policy.on_enqueue(&ctx, &pkt));
            }
            black_box(policy.tracked_flows())
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end-to-end");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = synthesize(
        &topo.hosts(),
        &TraceParams::background_only(Workload::Google, 0.4, SimDuration::from_micros(200), 5),
    );
    group.bench_function("bfc_small_fabric_200us", |b| {
        b.iter(|| {
            let config = ExperimentConfig::new(Scheme::bfc(), SimDuration::from_micros(200));
            black_box(run_experiment(&topo, &trace, &config).completed_flows)
        })
    });
    group.bench_function("dcqcn_small_fabric_200us", |b| {
        b.iter(|| {
            let config = ExperimentConfig::new(
                Scheme::Dcqcn {
                    window: true,
                    sfq: false,
                },
                SimDuration::from_micros(200),
            );
            black_box(run_experiment(&topo, &trace, &config).completed_flows)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_bloom,
    bench_flow_table,
    bench_switch_forwarding,
    bench_end_to_end
);
criterion_main!(benches);
