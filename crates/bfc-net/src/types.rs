//! Shared identifier types.
//!
//! Nodes (hosts and switches), ports and flows are identified by small
//! newtype indices. Using newtypes rather than bare `usize` keeps the switch
//! and host code from accidentally mixing up the three ID spaces.

use std::fmt;

/// Identifies a node (host or switch) in the topology.
///
/// Node IDs are dense indices assigned by the [`crate::topology::TopologyBuilder`];
/// hosts and switches share one ID space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies a (full-duplex) port on a specific node. Port indices are local
/// to the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u32);

/// Identifies a flow. Flow IDs are dense indices into the experiment's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PortId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FlowId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for FlowId {
    fn from(v: u32) -> Self {
        FlowId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{}", PortId(1)), "p1");
        assert_eq!(format!("{}", FlowId(9)), "f9");
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(FlowId::from(2u32), FlowId(2));
    }
}
