//! The switch queue-assignment / flow-control policy interface.
//!
//! A [`SwitchPolicy`] decides, per data packet, which egress queue the packet
//! joins, and optionally generates per-flow pause frames toward upstream
//! nodes. The baseline policies (single FIFO and stochastic fair queueing)
//! live here; the BFC policy — the paper's contribution — implements this
//! trait in the `bfc-core` crate.

use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};
use bfc_sim::{FastHashMap, SimTime};

use crate::packet::{Packet, PauseFrame};
use crate::port::Port;
use crate::types::{FlowId, NodeId};

/// Which queue of an egress port a packet is placed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueTarget {
    /// Strict-priority control queue (ACKs, CNPs). Chosen by the switch, not
    /// by policies.
    Control,
    /// The BFC high-priority queue for first packets of flows (§3.7).
    HighPriority,
    /// Physical FIFO queue `i`.
    Phys(usize),
    /// The per-egress overflow queue used when the flow table cannot track a
    /// flow (§3.8).
    Overflow,
}

/// Context handed to the policy when a data packet is enqueued.
pub struct EnqueueCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The switch making the decision.
    pub switch: NodeId,
    /// Local ingress port the packet arrived on.
    pub ingress: u32,
    /// Local egress port the packet will leave from.
    pub egress: u32,
    /// Read-only view of the egress port (queue occupancy, pause state, link).
    pub port: &'a Port,
}

/// Context handed to the policy when a data packet is dequeued for
/// transmission.
pub struct DequeueCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The switch transmitting the packet.
    pub switch: NodeId,
    /// Local ingress port the packet originally arrived on.
    pub ingress: u32,
    /// Local egress port transmitting the packet.
    pub egress: u32,
    /// Read-only view of the egress port *after* the packet was removed.
    pub port: &'a Port,
    /// The queue the packet was scheduled from.
    pub queue: QueueTarget,
}

/// The policy's verdict for an arriving data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnqueueDecision {
    /// Queue to place the packet in.
    pub target: QueueTarget,
    /// True if the switch must ensure a pause-frame timer chain is running
    /// for the packet's ingress port (the policy has pending pause state to
    /// communicate upstream).
    pub start_pause_timer: bool,
}

impl EnqueueDecision {
    /// Places the packet in `target` with no pause-frame side effects.
    pub fn queue(target: QueueTarget) -> Self {
        EnqueueDecision {
            target,
            start_pause_timer: false,
        }
    }
}

/// Result of a periodic pause-frame tick for one ingress port.
#[derive(Debug, Clone)]
pub struct PauseTick {
    /// Pause frame to send upstream (None = nothing to send this interval).
    pub frame: Option<PauseFrame>,
    /// True if the switch should schedule another tick one interval later.
    pub reschedule: bool,
}

impl PauseTick {
    /// A tick that sends nothing and stops the timer chain.
    pub fn idle() -> Self {
        PauseTick {
            frame: None,
            reschedule: false,
        }
    }
}

/// Counters every policy exposes for the evaluation figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Number of distinct flow arrivals that required a queue assignment.
    pub flow_assignments: u64,
    /// Assignments that landed in a queue already occupied by another flow
    /// (the "collisions" of Figs. 7 and 12).
    pub collisions: u64,
    /// Packets that had to use the overflow queue because the flow table was
    /// full (Fig. 13).
    pub table_overflows: u64,
    /// Per-flow pause events generated (BFC only).
    pub pauses: u64,
    /// Per-flow resume events generated (BFC only).
    pub resumes: u64,
}

impl PolicyStats {
    /// Fraction of flow assignments that collided with another flow.
    pub fn collision_fraction(&self) -> f64 {
        if self.flow_assignments == 0 {
            0.0
        } else {
            self.collisions as f64 / self.flow_assignments as f64
        }
    }

    /// Fraction of flow assignments that overflowed the flow table.
    pub fn overflow_fraction(&self) -> f64 {
        if self.flow_assignments == 0 {
            0.0
        } else {
            self.table_overflows as f64 / self.flow_assignments as f64
        }
    }

    /// Accumulates another policy's counters (used to aggregate per-switch
    /// stats into fabric-wide totals).
    pub fn merge(&mut self, other: &PolicyStats) {
        self.flow_assignments += other.flow_assignments;
        self.collisions += other.collisions;
        self.table_overflows += other.table_overflows;
        self.pauses += other.pauses;
        self.resumes += other.resumes;
    }

    /// Serializes the counters for snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.flow_assignments);
        w.put_u64(self.collisions);
        w.put_u64(self.table_overflows);
        w.put_u64(self.pauses);
        w.put_u64(self.resumes);
    }

    /// Rebuilds counters from [`PolicyStats::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(PolicyStats {
            flow_assignments: r.get_u64()?,
            collisions: r.get_u64()?,
            table_overflows: r.get_u64()?,
            pauses: r.get_u64()?,
            resumes: r.get_u64()?,
        })
    }
}

/// Flow-table probing counters a policy may expose for the observability
/// registry. Kept separate from [`PolicyStats`] — which experiment results
/// compare bit-for-bit — so new instrumentation never perturbs the
/// evaluation figures. Schemes without a flow table report all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Flow-table lookups performed.
    pub lookups: u64,
    /// Total probe steps across all lookups (1 per lookup when every key
    /// sits in its home slot).
    pub probe_steps: u64,
    /// Longest single probe sequence observed.
    pub max_probe: u64,
}

/// Serializes a per-flow residency map in sorted key order. The map is only
/// ever probed by key, so sorted order is canonical and restore-equivalent.
fn save_residency(w: &mut SnapWriter, map: &FastHashMap<FlowId, usize>) {
    let mut entries: Vec<(u32, usize)> = map.iter().map(|(f, &c)| (f.0, c)).collect();
    entries.sort_unstable();
    w.put_usize(entries.len());
    for (flow, count) in entries {
        w.put_u32(flow);
        w.put_usize(count);
    }
}

fn restore_residency(r: &mut SnapReader<'_>) -> Result<FastHashMap<FlowId, usize>, SnapError> {
    let n = r.get_count(12)?;
    let mut map = FastHashMap::default();
    for _ in 0..n {
        let flow = FlowId(r.get_u32()?);
        let count = r.get_usize()?;
        map.insert(flow, count);
    }
    Ok(map)
}

/// A queue-assignment / flow-control policy for one switch.
///
/// Policies must be `Send` so a whole switch — and therefore a whole
/// experiment — can be handed to a worker thread by the parallel experiment
/// driver in `bfc-experiments`.
pub trait SwitchPolicy: Send {
    /// Chooses a queue for an arriving data packet.
    fn on_enqueue(&mut self, ctx: &EnqueueCtx<'_>, pkt: &Packet) -> EnqueueDecision;

    /// Observes a data packet leaving the switch (used to update flow state,
    /// reclaim queues and schedule resumes).
    fn on_dequeue(&mut self, ctx: &DequeueCtx<'_>, pkt: &Packet);

    /// Periodic pause-frame opportunity for one ingress port.
    fn pause_frame_tick(&mut self, _now: SimTime, _ingress: u32) -> PauseTick {
        PauseTick::idle()
    }

    /// Aggregated counters.
    fn stats(&self) -> PolicyStats;

    /// Flow-table probing counters for the observability registry. The
    /// default covers schemes without a flow table.
    fn probe_stats(&self) -> ProbeStats {
        ProbeStats::default()
    }

    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// Serializes the policy's *mutable* state (flow residency, counters,
    /// pause bookkeeping) for snapshot/restore. Configuration is not
    /// captured: restore overlays onto a freshly constructed policy of the
    /// same scheme.
    fn save_state(&self, w: &mut SnapWriter);

    /// Restores state captured by [`SwitchPolicy::save_state`] into this
    /// (freshly constructed, same-configuration) policy.
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// Single-FIFO policy: every data packet goes to physical queue 0. This is
/// the switch model used by DCQCN, DCQCN+Win and HPCC in the paper.
#[derive(Debug, Default)]
pub struct FifoPolicy {
    stats: PolicyStats,
    /// Flows currently occupying queue 0, indexed by egress port (ports are
    /// dense small integers; the vector grows on demand). The inner per-flow
    /// counts use the deterministic fast hasher — these maps are probed on
    /// every packet.
    resident: Vec<FastHashMap<FlowId, usize>>,
}


impl FifoPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        FifoPolicy::default()
    }
}

impl SwitchPolicy for FifoPolicy {
    fn on_enqueue(&mut self, ctx: &EnqueueCtx<'_>, pkt: &Packet) -> EnqueueDecision {
        let stats = &mut self.stats;
        let resident = {
            let idx = ctx.egress as usize;
            if idx >= self.resident.len() {
                self.resident.resize_with(idx + 1, FastHashMap::default);
            }
            &mut self.resident[idx]
        };
        if !resident.contains_key(&pkt.flow) {
            stats.flow_assignments += 1;
            if !resident.is_empty() {
                stats.collisions += 1;
            }
        }
        *resident.entry(pkt.flow).or_insert(0) += 1;
        EnqueueDecision::queue(QueueTarget::Phys(0))
    }

    fn on_dequeue(&mut self, ctx: &DequeueCtx<'_>, pkt: &Packet) {
        if let Some(resident) = self.resident.get_mut(ctx.egress as usize) {
            if let Some(count) = resident.get_mut(&pkt.flow) {
                *count -= 1;
                if *count == 0 {
                    resident.remove(&pkt.flow);
                }
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "fifo"
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.stats.save_state(w);
        w.put_usize(self.resident.len());
        for map in &self.resident {
            save_residency(w, map);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.stats = PolicyStats::restore_state(r)?;
        let n = r.get_count(8)?;
        self.resident = (0..n)
            .map(|_| restore_residency(r))
            .collect::<Result<_, _>>()?;
        Ok(())
    }
}

/// Stochastic fair queueing: a flow is statically hashed to one of the
/// physical queues (the straw-man assignment of §3.2, and the scheduling used
/// by DCQCN+Win+SFQ and Ideal-FQ).
#[derive(Debug)]
pub struct SfqPolicy {
    stats: PolicyStats,
    /// Flows resident per egress port (outer vector, grown on demand) and
    /// queue index (inner vector, sized on first touch of the port).
    resident: Vec<Vec<FastHashMap<FlowId, usize>>>,
    use_high_priority_for_first: bool,
}

impl SfqPolicy {
    /// Creates the policy. When `use_high_priority_for_first` is set, packets
    /// marked `first_of_flow` ride the high-priority queue (used by the
    /// BFC-VFID ablation which keeps the high-priority optimisation).
    pub fn new(use_high_priority_for_first: bool) -> Self {
        SfqPolicy {
            stats: PolicyStats::default(),
            resident: Vec::new(),
            use_high_priority_for_first,
        }
    }

    /// The static queue a VFID hashes to.
    pub fn queue_for(vfid: u32, num_queues: usize) -> usize {
        (bfc_sim::rng::mix64(vfid as u64) % num_queues as u64) as usize
    }
}

impl SwitchPolicy for SfqPolicy {
    fn on_enqueue(&mut self, ctx: &EnqueueCtx<'_>, pkt: &Packet) -> EnqueueDecision {
        if self.use_high_priority_for_first && pkt.first_of_flow {
            return EnqueueDecision::queue(QueueTarget::HighPriority);
        }
        let q = Self::queue_for(pkt.vfid, ctx.port.num_queues());
        let egress = ctx.egress as usize;
        if egress >= self.resident.len() {
            self.resident.resize_with(egress + 1, Vec::new);
        }
        let port_resident = &mut self.resident[egress];
        if port_resident.is_empty() {
            port_resident.resize_with(ctx.port.num_queues(), FastHashMap::default);
        }
        let resident = &mut port_resident[q];
        if !resident.contains_key(&pkt.flow) {
            self.stats.flow_assignments += 1;
            if !resident.is_empty() {
                self.stats.collisions += 1;
            }
        }
        *resident.entry(pkt.flow).or_insert(0) += 1;
        EnqueueDecision::queue(QueueTarget::Phys(q))
    }

    fn on_dequeue(&mut self, ctx: &DequeueCtx<'_>, pkt: &Packet) {
        let q = match ctx.queue {
            QueueTarget::Phys(q) => q,
            _ => return,
        };
        if let Some(resident) = self
            .resident
            .get_mut(ctx.egress as usize)
            .and_then(|port| port.get_mut(q))
        {
            if let Some(count) = resident.get_mut(&pkt.flow) {
                *count -= 1;
                if *count == 0 {
                    resident.remove(&pkt.flow);
                }
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "sfq"
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.stats.save_state(w);
        w.put_usize(self.resident.len());
        for port in &self.resident {
            w.put_usize(port.len());
            for map in port {
                save_residency(w, map);
            }
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.stats = PolicyStats::restore_state(r)?;
        let ports = r.get_count(8)?;
        self.resident = Vec::with_capacity(ports);
        for _ in 0..ports {
            let queues = r.get_count(8)?;
            let port = (0..queues)
                .map(|_| restore_residency(r))
                .collect::<Result<_, _>>()?;
            self.resident.push(port);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;

    fn ctx<'a>(port: &'a Port, egress: u32) -> EnqueueCtx<'a> {
        EnqueueCtx {
            now: SimTime::ZERO,
            switch: NodeId(0),
            ingress: 0,
            egress,
            port,
        }
    }

    fn data(flow: u32, vfid: u32) -> Packet {
        Packet::data(FlowId(flow), NodeId(0), NodeId(1), 0, 1000, vfid, false)
    }

    #[test]
    fn fifo_always_uses_queue_zero_and_counts_collisions() {
        let port = Port::new(Link::datacenter_default(), None, 8, 1000);
        let mut p = FifoPolicy::new();
        let d1 = p.on_enqueue(&ctx(&port, 0), &data(1, 10));
        assert_eq!(d1.target, QueueTarget::Phys(0));
        let _ = p.on_enqueue(&ctx(&port, 0), &data(2, 20));
        let s = p.stats();
        assert_eq!(s.flow_assignments, 2);
        assert_eq!(s.collisions, 1);
        assert!((s.collision_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sfq_assignment_is_static_per_vfid() {
        let port = Port::new(Link::datacenter_default(), None, 32, 1000);
        let mut p = SfqPolicy::new(false);
        let d1 = p.on_enqueue(&ctx(&port, 0), &data(1, 77));
        let d2 = p.on_enqueue(&ctx(&port, 0), &data(1, 77));
        assert_eq!(d1.target, d2.target);
        assert!(matches!(d1.target, QueueTarget::Phys(_)));
    }

    #[test]
    fn sfq_high_priority_option_routes_first_packets() {
        let port = Port::new(Link::datacenter_default(), None, 32, 1000);
        let mut p = SfqPolicy::new(true);
        let mut first = data(1, 5);
        first.first_of_flow = true;
        assert_eq!(
            p.on_enqueue(&ctx(&port, 0), &first).target,
            QueueTarget::HighPriority
        );
        let mut without = SfqPolicy::new(false);
        assert!(matches!(
            without.on_enqueue(&ctx(&port, 0), &first).target,
            QueueTarget::Phys(_)
        ));
    }

    #[test]
    fn sfq_collisions_require_same_queue() {
        let port = Port::new(Link::datacenter_default(), None, 32, 1000);
        let mut p = SfqPolicy::new(false);
        // Two flows with the same VFID necessarily share a queue.
        let _ = p.on_enqueue(&ctx(&port, 0), &data(1, 9));
        let _ = p.on_enqueue(&ctx(&port, 0), &data(2, 9));
        assert_eq!(p.stats().collisions, 1);
    }

    #[test]
    fn dequeue_releases_residency() {
        let port = Port::new(Link::datacenter_default(), None, 8, 1000);
        let mut p = FifoPolicy::new();
        let _ = p.on_enqueue(&ctx(&port, 0), &data(1, 10));
        let dctx = DequeueCtx {
            now: SimTime::ZERO,
            switch: NodeId(0),
            ingress: 0,
            egress: 0,
            port: &port,
            queue: QueueTarget::Phys(0),
        };
        p.on_dequeue(&dctx, &data(1, 10));
        // A later flow should no longer count as a collision.
        let _ = p.on_enqueue(&ctx(&port, 0), &data(2, 20));
        assert_eq!(p.stats().collisions, 0);
    }

    #[test]
    fn default_pause_tick_is_idle() {
        let mut p = FifoPolicy::new();
        let tick = p.pause_frame_tick(SimTime::ZERO, 0);
        assert!(tick.frame.is_none());
        assert!(!tick.reschedule);
    }

    #[test]
    fn stats_merge_adds_counters() {
        let a = PolicyStats {
            flow_assignments: 10,
            collisions: 2,
            table_overflows: 1,
            pauses: 5,
            resumes: 4,
        };
        let mut b = PolicyStats::default();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.flow_assignments, 20);
        assert_eq!(b.collisions, 4);
        assert_eq!(b.pauses, 10);
        assert!((a.overflow_fraction() - 0.1).abs() < 1e-9);
    }
}
