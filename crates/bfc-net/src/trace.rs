//! Flight-recorder tracing: structured sim events behind the [`NetSink`]
//! seam.
//!
//! Every interesting thing a switch does — enqueue, dequeue, drop, pause —
//! already happens with a [`NetSink`] in hand, so tracing rides the same
//! seam: [`NetSink::trace`] is a default no-op that only the [`Recording`]
//! wrapper overrides. When tracing is off the emission sites compile down to
//! nothing (the default impl ignores its arguments and is inlined away);
//! when it is on, each event lands in a bounded [`FlightRecorder`] ring that
//! keeps the last N records and counts what it sheds.
//!
//! # Canonical order
//!
//! A record is keyed by `(time, rank, seq)` exactly like the engine's
//! scheduled events: the rank is derived from the event's *content*
//! ([`TraceEvent::canon_rank`]), so per-shard record streams merge into one
//! canonical order that does not depend on how the run was sharded. Two
//! records with equal `(time, rank)` necessarily describe the same node,
//! which exactly one shard owns — so a stable sort over the concatenated
//! per-shard streams reproduces the serial engine's relative order
//! ([`FlightTrace::merge`]).
//!
//! # Container
//!
//! [`write_trace`] / [`read_trace`] serialize a trace to a binary container
//! reusing [`bfc_sim::snapshot`]'s framing (magic, version, length prefix,
//! FNV-1a-64 checksum), with its own magic so snapshot and trace files can
//! never be confused for one another.

use std::collections::VecDeque;

use bfc_sim::snapshot::{finalize, open, SnapError, SnapReader, SnapWriter};
use bfc_sim::{SimDuration, SimTime};

use crate::event::NetSink;
use crate::types::NodeId;

/// Magic bytes of the flight-recorder trace container.
pub const TRACE_MAGIC: &[u8; 8] = b"BFCTRACE";
/// Container format version checked by [`read_trace`].
pub const TRACE_VERSION: u32 = 1;

/// Queue index used for the strict-priority control queue in trace records.
pub const QUEUE_CONTROL: u32 = u32::MAX;
/// Queue index used for the BFC high-priority queue in trace records.
pub const QUEUE_HIGH_PRIORITY: u32 = u32::MAX - 1;
/// Queue index used for the untracked-flow overflow queue in trace records.
pub const QUEUE_OVERFLOW: u32 = u32::MAX - 2;

/// Number of distinct [`TraceEvent`] kinds.
pub const KIND_COUNT: usize = 13;

/// Kind names indexed by [`TraceEvent::kind_index`].
pub const KIND_NAMES: [&str; KIND_COUNT] = [
    "enqueue",
    "dequeue",
    "drop",
    "blackhole",
    "pfc-sent",
    "pfc-delivered",
    "flow-pause",
    "queue-active",
    "queue-idle",
    "link-down",
    "link-up",
    "link-rate",
    "reroute",
];

/// Looks up a kind index by its [`KIND_NAMES`] name.
pub fn kind_index_of(name: &str) -> Option<usize> {
    KIND_NAMES.iter().position(|&k| k == name)
}

/// Formats a trace-record queue index, naming the special queues.
pub fn queue_name(queue: u32) -> String {
    match queue {
        QUEUE_CONTROL => "ctrl".to_string(),
        QUEUE_HIGH_PRIORITY => "hi".to_string(),
        QUEUE_OVERFLOW => "ovfl".to_string(),
        q => q.to_string(),
    }
}

/// One structured observability event. `Copy` and small on purpose: the
/// recorder's ring shuffles these by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A data packet joined queue `queue` of egress `port` at `node`.
    Enqueue {
        /// Switch making the decision.
        node: NodeId,
        /// Local egress port.
        port: u32,
        /// Queue index (see the `QUEUE_*` constants for special queues).
        queue: u32,
        /// Flow the packet belongs to.
        flow: u32,
        /// Packet size in bytes.
        bytes: u32,
    },
    /// A data packet left queue `queue` of egress `port` at `node`.
    Dequeue {
        /// Switch transmitting the packet.
        node: NodeId,
        /// Local egress port.
        port: u32,
        /// Queue the packet was scheduled from.
        queue: u32,
        /// Flow the packet belongs to.
        flow: u32,
        /// Packet size in bytes.
        bytes: u32,
    },
    /// A data packet was dropped at admission (shared buffer full).
    Drop {
        /// Switch dropping the packet.
        node: NodeId,
        /// Local egress port the packet was headed for.
        port: u32,
        /// Flow the packet belonged to.
        flow: u32,
        /// Packet size in bytes.
        bytes: u32,
    },
    /// A packet was blackholed (no route to its destination).
    Blackhole {
        /// Switch at which routing failed.
        node: NodeId,
        /// Flow the packet belonged to.
        flow: u32,
        /// Packet size in bytes.
        bytes: u32,
    },
    /// `node` sent a port-level PFC frame out of ingress `port` toward its
    /// upstream neighbor (`pause` = XOFF, `!pause` = XON).
    PfcSent {
        /// Switch sending the frame.
        node: NodeId,
        /// Local ingress port whose buffer usage triggered the frame.
        port: u32,
        /// True for pause (XOFF), false for resume (XON).
        pause: bool,
    },
    /// A PFC frame from `src` arrived at `node`: `node`'s egress toward
    /// `src` pauses (or resumes). These are exactly the wait-for edges the
    /// safety tracker analyses.
    PfcDelivered {
        /// Switch whose egress is paused/resumed.
        node: NodeId,
        /// Neighbor that sent the frame.
        src: NodeId,
        /// True for pause (XOFF), false for resume (XON).
        pause: bool,
    },
    /// `node` sent a per-flow (BFC) pause-frame bloom filter upstream out of
    /// ingress `port`.
    FlowPause {
        /// Switch sending the frame.
        node: NodeId,
        /// Local ingress port the paused flows arrive on.
        port: u32,
        /// Bloom-filter bits set in the frame (0 = every VFID resumed).
        bits: u32,
        /// True if the frame pauses at least one VFID.
        pause: bool,
    },
    /// Queue `queue` of egress `port` went empty → non-empty.
    QueueActive {
        /// The switch.
        node: NodeId,
        /// Local egress port.
        port: u32,
        /// Queue index.
        queue: u32,
    },
    /// Queue `queue` of egress `port` went non-empty → empty.
    QueueIdle {
        /// The switch.
        node: NodeId,
        /// Local egress port.
        port: u32,
        /// Queue index.
        queue: u32,
    },
    /// The cable `a <-> b` went down.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The cable `a <-> b` came back up.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The cable `a <-> b` changed rate (degrade/restore).
    LinkRate {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Routing was recomputed after a fault event.
    Reroute {
        /// Index of the dynamics event that triggered the recompute.
        index: u32,
    },
}

impl TraceEvent {
    /// The switch a record describes (`a` for link events, `None` for
    /// reroutes, which are fabric-wide).
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            TraceEvent::Enqueue { node, .. }
            | TraceEvent::Dequeue { node, .. }
            | TraceEvent::Drop { node, .. }
            | TraceEvent::Blackhole { node, .. }
            | TraceEvent::PfcSent { node, .. }
            | TraceEvent::PfcDelivered { node, .. }
            | TraceEvent::FlowPause { node, .. }
            | TraceEvent::QueueActive { node, .. }
            | TraceEvent::QueueIdle { node, .. } => Some(node),
            TraceEvent::LinkDown { a, .. }
            | TraceEvent::LinkUp { a, .. }
            | TraceEvent::LinkRate { a, .. } => Some(a),
            TraceEvent::Reroute { .. } => None,
        }
    }

    /// Short kind name used by the CLI's filter and summaries.
    pub fn kind(&self) -> &'static str {
        KIND_NAMES[self.kind_index()]
    }

    /// Dense index of the event kind, `0..KIND_COUNT` (the serialization
    /// tag). Backs the record-time [`TraceFilter`] bitmask.
    #[inline]
    pub fn kind_index(&self) -> usize {
        match self {
            TraceEvent::Enqueue { .. } => 0,
            TraceEvent::Dequeue { .. } => 1,
            TraceEvent::Drop { .. } => 2,
            TraceEvent::Blackhole { .. } => 3,
            TraceEvent::PfcSent { .. } => 4,
            TraceEvent::PfcDelivered { .. } => 5,
            TraceEvent::FlowPause { .. } => 6,
            TraceEvent::QueueActive { .. } => 7,
            TraceEvent::QueueIdle { .. } => 8,
            TraceEvent::LinkDown { .. } => 9,
            TraceEvent::LinkUp { .. } => 10,
            TraceEvent::LinkRate { .. } => 11,
            TraceEvent::Reroute { .. } => 12,
        }
    }

    /// The local port an event concerns (`src` for PFC deliveries, the
    /// peer for link events, `None` for blackholes and reroutes). Used by
    /// the diff's per-(node, port) divergence summary.
    pub fn port(&self) -> Option<u32> {
        match *self {
            TraceEvent::Enqueue { port, .. }
            | TraceEvent::Dequeue { port, .. }
            | TraceEvent::Drop { port, .. }
            | TraceEvent::PfcSent { port, .. }
            | TraceEvent::FlowPause { port, .. }
            | TraceEvent::QueueActive { port, .. }
            | TraceEvent::QueueIdle { port, .. } => Some(port),
            TraceEvent::PfcDelivered { src, .. } => Some(src.0),
            TraceEvent::LinkDown { b, .. }
            | TraceEvent::LinkUp { b, .. }
            | TraceEvent::LinkRate { b, .. } => Some(b.0),
            TraceEvent::Blackhole { .. } | TraceEvent::Reroute { .. } => None,
        }
    }

    /// Content-derived rank ordering simultaneous records canonically,
    /// mirroring [`crate::event::NetEvent::canon_rank`]: kind tag in the
    /// high bits, then the node, then the port (or peer). Records with
    /// equal `(time, rank)` necessarily describe the same node, which is
    /// what makes the per-shard merge exact.
    pub fn canon_rank(&self) -> u64 {
        fn key(tag: u64, node: NodeId, sub: u32) -> u64 {
            (tag << 52) | (u64::from(node.0) << 20) | u64::from(sub)
        }
        match *self {
            TraceEvent::Enqueue { node, port, .. } => key(0, node, port),
            TraceEvent::Dequeue { node, port, .. } => key(1, node, port),
            TraceEvent::Drop { node, port, .. } => key(2, node, port),
            TraceEvent::Blackhole { node, .. } => key(3, node, 0),
            TraceEvent::PfcSent { node, port, .. } => key(4, node, port),
            TraceEvent::PfcDelivered { node, src, .. } => key(5, node, src.0),
            TraceEvent::FlowPause { node, port, .. } => key(6, node, port),
            TraceEvent::QueueActive { node, port, .. } => key(7, node, port),
            TraceEvent::QueueIdle { node, port, .. } => key(8, node, port),
            TraceEvent::LinkDown { a, b } => key(9, a, b.0),
            TraceEvent::LinkUp { a, b } => key(10, a, b.0),
            TraceEvent::LinkRate { a, b } => key(11, a, b.0),
            TraceEvent::Reroute { index } => key(12, NodeId(0), index),
        }
    }

    /// One-line human rendering used by `trace-tool trace inspect`.
    pub fn render(&self) -> String {
        match *self {
            TraceEvent::Enqueue {
                node,
                port,
                queue,
                flow,
                bytes,
            } => format!(
                "enqueue       sw{} port {} q {} flow {} ({} B)",
                node.0,
                port,
                queue_name(queue),
                flow,
                bytes
            ),
            TraceEvent::Dequeue {
                node,
                port,
                queue,
                flow,
                bytes,
            } => format!(
                "dequeue       sw{} port {} q {} flow {} ({} B)",
                node.0,
                port,
                queue_name(queue),
                flow,
                bytes
            ),
            TraceEvent::Drop {
                node,
                port,
                flow,
                bytes,
            } => format!("drop          sw{node} port {port} flow {flow} ({bytes} B)", node = node.0),
            TraceEvent::Blackhole { node, flow, bytes } => {
                format!("blackhole     sw{} flow {} ({} B)", node.0, flow, bytes)
            }
            TraceEvent::PfcSent { node, port, pause } => format!(
                "pfc-sent      sw{} port {} {}",
                node.0,
                port,
                if pause { "XOFF" } else { "XON" }
            ),
            TraceEvent::PfcDelivered { node, src, pause } => format!(
                "pfc-delivered sw{} {} by sw{}",
                node.0,
                if pause { "paused" } else { "resumed" },
                src.0
            ),
            TraceEvent::FlowPause {
                node,
                port,
                bits,
                pause,
            } => format!(
                "flow-pause    sw{} port {} {} ({} bloom bits)",
                node.0,
                port,
                if pause { "pause" } else { "resume" },
                bits
            ),
            TraceEvent::QueueActive { node, port, queue } => format!(
                "queue-active  sw{} port {} q {}",
                node.0,
                port,
                queue_name(queue)
            ),
            TraceEvent::QueueIdle { node, port, queue } => format!(
                "queue-idle    sw{} port {} q {}",
                node.0,
                port,
                queue_name(queue)
            ),
            TraceEvent::LinkDown { a, b } => format!("link-down     {} <-> {}", a.0, b.0),
            TraceEvent::LinkUp { a, b } => format!("link-up       {} <-> {}", a.0, b.0),
            TraceEvent::LinkRate { a, b } => format!("link-rate     {} <-> {}", a.0, b.0),
            TraceEvent::Reroute { index } => format!("reroute       (dynamics event {index})"),
        }
    }

    fn save(&self, w: &mut SnapWriter) {
        match *self {
            TraceEvent::Enqueue {
                node,
                port,
                queue,
                flow,
                bytes,
            } => {
                w.put_u8(0);
                w.put_u32(node.0);
                w.put_u32(port);
                w.put_u32(queue);
                w.put_u32(flow);
                w.put_u32(bytes);
            }
            TraceEvent::Dequeue {
                node,
                port,
                queue,
                flow,
                bytes,
            } => {
                w.put_u8(1);
                w.put_u32(node.0);
                w.put_u32(port);
                w.put_u32(queue);
                w.put_u32(flow);
                w.put_u32(bytes);
            }
            TraceEvent::Drop {
                node,
                port,
                flow,
                bytes,
            } => {
                w.put_u8(2);
                w.put_u32(node.0);
                w.put_u32(port);
                w.put_u32(flow);
                w.put_u32(bytes);
            }
            TraceEvent::Blackhole { node, flow, bytes } => {
                w.put_u8(3);
                w.put_u32(node.0);
                w.put_u32(flow);
                w.put_u32(bytes);
            }
            TraceEvent::PfcSent { node, port, pause } => {
                w.put_u8(4);
                w.put_u32(node.0);
                w.put_u32(port);
                w.put_bool(pause);
            }
            TraceEvent::PfcDelivered { node, src, pause } => {
                w.put_u8(5);
                w.put_u32(node.0);
                w.put_u32(src.0);
                w.put_bool(pause);
            }
            TraceEvent::FlowPause {
                node,
                port,
                bits,
                pause,
            } => {
                w.put_u8(6);
                w.put_u32(node.0);
                w.put_u32(port);
                w.put_u32(bits);
                w.put_bool(pause);
            }
            TraceEvent::QueueActive { node, port, queue } => {
                w.put_u8(7);
                w.put_u32(node.0);
                w.put_u32(port);
                w.put_u32(queue);
            }
            TraceEvent::QueueIdle { node, port, queue } => {
                w.put_u8(8);
                w.put_u32(node.0);
                w.put_u32(port);
                w.put_u32(queue);
            }
            TraceEvent::LinkDown { a, b } => {
                w.put_u8(9);
                w.put_u32(a.0);
                w.put_u32(b.0);
            }
            TraceEvent::LinkUp { a, b } => {
                w.put_u8(10);
                w.put_u32(a.0);
                w.put_u32(b.0);
            }
            TraceEvent::LinkRate { a, b } => {
                w.put_u8(11);
                w.put_u32(a.0);
                w.put_u32(b.0);
            }
            TraceEvent::Reroute { index } => {
                w.put_u8(12);
                w.put_u32(index);
            }
        }
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.get_u8()? {
            0 => TraceEvent::Enqueue {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                queue: r.get_u32()?,
                flow: r.get_u32()?,
                bytes: r.get_u32()?,
            },
            1 => TraceEvent::Dequeue {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                queue: r.get_u32()?,
                flow: r.get_u32()?,
                bytes: r.get_u32()?,
            },
            2 => TraceEvent::Drop {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                flow: r.get_u32()?,
                bytes: r.get_u32()?,
            },
            3 => TraceEvent::Blackhole {
                node: NodeId(r.get_u32()?),
                flow: r.get_u32()?,
                bytes: r.get_u32()?,
            },
            4 => TraceEvent::PfcSent {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                pause: r.get_bool()?,
            },
            5 => TraceEvent::PfcDelivered {
                node: NodeId(r.get_u32()?),
                src: NodeId(r.get_u32()?),
                pause: r.get_bool()?,
            },
            6 => TraceEvent::FlowPause {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                bits: r.get_u32()?,
                pause: r.get_bool()?,
            },
            7 => TraceEvent::QueueActive {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                queue: r.get_u32()?,
            },
            8 => TraceEvent::QueueIdle {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                queue: r.get_u32()?,
            },
            9 => TraceEvent::LinkDown {
                a: NodeId(r.get_u32()?),
                b: NodeId(r.get_u32()?),
            },
            10 => TraceEvent::LinkUp {
                a: NodeId(r.get_u32()?),
                b: NodeId(r.get_u32()?),
            },
            11 => TraceEvent::LinkRate {
                a: NodeId(r.get_u32()?),
                b: NodeId(r.get_u32()?),
            },
            12 => TraceEvent::Reroute {
                index: r.get_u32()?,
            },
            _ => return Err(SnapError::Corrupt("unknown trace event tag")),
        })
    }
}

/// Minimum serialized bytes per record (time + rank + seq + tag + one u32),
/// used to validate the container's record count.
const RECORD_MIN_BYTES: usize = 8 + 8 + 8 + 1 + 4;

/// One recorded observation: the engine-style `(time, rank, seq)` key plus
/// the event. `seq` is the recorder-local emission index; after
/// [`FlightTrace::merge`] it is the index in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the observation.
    pub at: SimTime,
    /// Content-derived canonical rank ([`TraceEvent::canon_rank`]).
    pub rank: u64,
    /// Emission index (recorder-local before merge, canonical after).
    pub seq: u64,
    /// The observation.
    pub event: TraceEvent,
}

/// A record-time trace filter: an event-kind bitmask plus an optional
/// node set. Filtering at record time keeps a narrow ring (e.g. PFC-only)
/// covering the *whole* run cheap, instead of raising the ring capacity
/// and filtering after the fact; events a filter rejects are never stored
/// and never count as ring drops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFilter {
    /// Bit `i` set ⇔ the kind with [`TraceEvent::kind_index`] `i` passes.
    kind_mask: u16,
    /// If set, only events at these nodes pass (fabric-wide events with no
    /// node — reroutes — always pass).
    nodes: Option<std::collections::BTreeSet<u32>>,
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter::all()
    }
}

impl TraceFilter {
    /// A filter that admits everything.
    pub fn all() -> Self {
        TraceFilter {
            kind_mask: (1 << KIND_COUNT) - 1,
            nodes: None,
        }
    }

    /// Restricts to the given kind indices (see [`kind_index_of`]).
    pub fn with_kinds(mut self, kinds: impl IntoIterator<Item = usize>) -> Self {
        self.kind_mask = 0;
        for k in kinds {
            assert!(k < KIND_COUNT, "kind index out of range");
            self.kind_mask |= 1 << k;
        }
        self
    }

    /// Restricts to events at the given nodes (reroutes always pass).
    pub fn with_nodes(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.nodes = Some(nodes.into_iter().map(|n| n.0).collect());
        self
    }

    /// True if the filter admits every event.
    pub fn admits_all(&self) -> bool {
        self.kind_mask == (1 << KIND_COUNT) - 1 && self.nodes.is_none()
    }

    /// Whether `event` passes the filter.
    #[inline]
    pub fn admits(&self, event: &TraceEvent) -> bool {
        if self.kind_mask & (1 << event.kind_index()) == 0 {
            return false;
        }
        match (&self.nodes, event.node()) {
            (Some(nodes), Some(node)) => nodes.contains(&node.0),
            _ => true,
        }
    }
}

/// A bounded ring of the last N trace records. Records beyond the capacity
/// shed from the front (oldest first) and are counted in `dropped`; the
/// flight-recorder name is exact — what survives is the end of the story.
/// An optional [`TraceFilter`] rejects events before they reach the ring.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    seq: u64,
    dropped: u64,
    filter: Option<TraceFilter>,
}

impl FlightRecorder {
    /// Creates a recorder keeping at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            records: VecDeque::with_capacity(capacity.min(64 * 1024)),
            seq: 0,
            dropped: 0,
            filter: None,
        }
    }

    /// Creates a recorder that only stores events admitted by `filter`.
    /// A filter admitting everything is elided from the hot path.
    pub fn with_filter(capacity: usize, filter: TraceFilter) -> Self {
        let mut rec = FlightRecorder::new(capacity);
        if !filter.admits_all() {
            rec.filter = Some(filter);
        }
        rec
    }

    /// Records one event observed at `at`.
    #[inline]
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if let Some(filter) = &self.filter {
            if !filter.admits(&event) {
                return;
            }
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            at,
            rank: event.canon_rank(),
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been recorded (or everything has been shed).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Consumes the recorder into a [`FlightTrace`] (records in emission
    /// order; not yet canonicalized).
    pub fn finish(self) -> FlightTrace {
        FlightTrace {
            records: self.records.into(),
            dropped: self.dropped,
        }
    }
}

/// The completed trace of one run (or one shard of a run).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlightTrace {
    /// The surviving records.
    pub records: Vec<TraceRecord>,
    /// Records shed by the bounded ring before these.
    pub dropped: u64,
}

impl FlightTrace {
    /// Merges per-shard traces into canonical `(time, rank, seq-in-order)`
    /// order — the order one fabric-wide recorder would define. Also used
    /// with a single part to canonicalize a serial trace, so serial and
    /// merged sharded traces of the same run compare equal (given rings
    /// large enough that nothing was shed).
    pub fn merge(parts: Vec<FlightTrace>) -> FlightTrace {
        let mut records: Vec<TraceRecord> = Vec::with_capacity(parts.iter().map(|p| p.records.len()).sum());
        let mut dropped = 0;
        for part in parts {
            dropped += part.dropped;
            records.extend(part.records);
        }
        // Stable: records with equal (time, rank) describe the same node,
        // so their relative order is the owning shard's processing order —
        // identical to the serial engine's.
        records.sort_by_key(|r| (r.at, r.rank));
        for (i, r) in records.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        FlightTrace { records, dropped }
    }

    /// Total PFC-paused time per `(node, ingress port)` derived from
    /// `PfcSent` XOFF/XON pairs; open intervals close at `end`. Returned
    /// sorted by descending paused time (ties by node then port), ready for
    /// "top queues by pause-time".
    pub fn pause_time_by_port(&self, end: SimTime) -> Vec<((NodeId, u32), SimDuration)> {
        use std::collections::BTreeMap;
        let mut open: BTreeMap<(NodeId, u32), SimTime> = BTreeMap::new();
        let mut total: BTreeMap<(NodeId, u32), SimDuration> = BTreeMap::new();
        for r in &self.records {
            if let TraceEvent::PfcSent { node, port, pause } = r.event {
                let key = (node, port);
                if pause {
                    open.entry(key).or_insert(r.at);
                } else if let Some(start) = open.remove(&key) {
                    *total.entry(key).or_insert(SimDuration::ZERO) +=
                        r.at.saturating_since(start);
                }
            }
        }
        for (key, start) in open {
            *total.entry(key).or_insert(SimDuration::ZERO) += end.saturating_since(start);
        }
        let mut out: Vec<_> = total.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The PFC wait-for edges (`PfcDelivered` records) in trace order:
    /// `(at, from, to, pause)` with `from`'s egress toward `to` affected.
    pub fn pause_edges(&self) -> Vec<(SimTime, NodeId, NodeId, bool)> {
        self.records
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::PfcDelivered { node, src, pause } => {
                    Some((r.at, node, src, pause))
                }
                _ => None,
            })
            .collect()
    }

    /// Time of the last record, or zero for an empty trace. The diff uses
    /// this to close open pause intervals.
    pub fn end_time(&self) -> SimTime {
        self.records.last().map(|r| r.at).unwrap_or(SimTime::ZERO)
    }

    /// Compares two canonical traces record-by-record. Returns `None` when
    /// they are identical, otherwise the first diverging index plus
    /// summaries of everything downstream of it. Both traces must already
    /// be in canonical order ([`FlightTrace::merge`] output or a recorded
    /// serial trace, which is canonical by construction).
    pub fn diff(&self, other: &FlightTrace) -> Option<TraceDiff> {
        use std::collections::BTreeMap;
        let shared = self.records.len().min(other.records.len());
        let index = (0..shared)
            .find(|&i| {
                let (a, b) = (&self.records[i], &other.records[i]);
                (a.at, a.rank, a.event) != (b.at, b.rank, b.event)
            })
            .unwrap_or(shared);
        if index == self.records.len() && index == other.records.len() {
            return None;
        }

        // Downstream tails: everything at and after the divergence point.
        let tail_a = &self.records[index.min(self.records.len())..];
        let tail_b = &other.records[index.min(other.records.len())..];

        let mut kinds: BTreeMap<usize, KindDivergence> = BTreeMap::new();
        let mut ports: BTreeMap<(NodeId, u32), PortDivergence> = BTreeMap::new();
        let mut tally = |records: &[TraceRecord], second: bool| {
            for r in records {
                let k = kinds.entry(r.event.kind_index()).or_insert_with(|| {
                    KindDivergence {
                        kind: KIND_NAMES[r.event.kind_index()],
                        ..KindDivergence::default()
                    }
                });
                let (count, first) = if second {
                    (&mut k.count_b, &mut k.first_b)
                } else {
                    (&mut k.count_a, &mut k.first_a)
                };
                *count += 1;
                first.get_or_insert(r.at);
                if let (Some(node), Some(port)) = (r.event.node(), r.event.port()) {
                    let p = ports
                        .entry((node, port))
                        .or_insert_with(|| PortDivergence::new(node, port));
                    if second {
                        p.count_b += 1;
                    } else {
                        p.count_a += 1;
                    }
                }
            }
        };
        tally(tail_a, false);
        tally(tail_b, true);

        // Pause-time delta per (node, ingress port), computed over the
        // full traces (pause state is cumulative — a tail alone cannot
        // close intervals opened upstream of the divergence).
        let pause_a: BTreeMap<_, _> = self.pause_time_by_port(self.end_time()).into_iter().collect();
        let pause_b: BTreeMap<_, _> = other.pause_time_by_port(other.end_time()).into_iter().collect();
        for &key in pause_a.keys().chain(pause_b.keys()) {
            ports
                .entry(key)
                .or_insert_with(|| PortDivergence::new(key.0, key.1));
        }
        for p in ports.values_mut() {
            p.pause_a = pause_a.get(&(p.node, p.port)).copied().unwrap_or(SimDuration::ZERO);
            p.pause_b = pause_b.get(&(p.node, p.port)).copied().unwrap_or(SimDuration::ZERO);
        }
        // Drop rows with nothing to say (equal zero counts, equal pause).
        let ports: Vec<PortDivergence> = ports
            .into_values()
            .filter(|p| p.count_a != p.count_b || p.pause_a != p.pause_b || p.count_a != 0)
            .collect();

        Some(TraceDiff {
            index,
            first_a: self.records.get(index).copied(),
            first_b: other.records.get(index).copied(),
            tail_a: tail_a.len(),
            tail_b: tail_b.len(),
            kinds: kinds.into_values().collect(),
            ports,
        })
    }
}

/// Per-event-kind divergence tallies downstream of the first diverging
/// record (side `a` = the first trace passed to [`FlightTrace::diff`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindDivergence {
    /// Kind name ([`KIND_NAMES`]).
    pub kind: &'static str,
    /// Records of this kind in `a`'s divergent tail.
    pub count_a: u64,
    /// Records of this kind in `b`'s divergent tail.
    pub count_b: u64,
    /// First time this kind appears in `a`'s tail.
    pub first_a: Option<SimTime>,
    /// First time this kind appears in `b`'s tail.
    pub first_b: Option<SimTime>,
}

/// Per-(node, port) divergence tallies plus the whole-run pause-time delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortDivergence {
    /// The switch.
    pub node: NodeId,
    /// The local port (see [`TraceEvent::port`]).
    pub port: u32,
    /// Tail records touching this port in `a`.
    pub count_a: u64,
    /// Tail records touching this port in `b`.
    pub count_b: u64,
    /// Total PFC pause time of the port over all of `a`.
    pub pause_a: SimDuration,
    /// Total PFC pause time of the port over all of `b`.
    pub pause_b: SimDuration,
}

impl PortDivergence {
    fn new(node: NodeId, port: u32) -> Self {
        PortDivergence {
            node,
            port,
            count_a: 0,
            count_b: 0,
            pause_a: SimDuration::ZERO,
            pause_b: SimDuration::ZERO,
        }
    }
}

/// The result of [`FlightTrace::diff`] on two traces that are not
/// identical: where they first diverge and what the divergent tails look
/// like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDiff {
    /// Canonical index of the first diverging record (equal to the length
    /// of the shorter trace when one is a strict prefix of the other).
    pub index: usize,
    /// The record at `index` in trace `a` (`None` if `a` ended there).
    pub first_a: Option<TraceRecord>,
    /// The record at `index` in trace `b` (`None` if `b` ended there).
    pub first_b: Option<TraceRecord>,
    /// Records at/after the divergence in `a`.
    pub tail_a: usize,
    /// Records at/after the divergence in `b`.
    pub tail_b: usize,
    /// Per-kind tallies of the divergent tails, sorted by kind index.
    pub kinds: Vec<KindDivergence>,
    /// Per-(node, port) tallies, sorted by `(node, port)`.
    pub ports: Vec<PortDivergence>,
}

/// Serializes a trace (plus a free-form label naming the run) into the
/// checksummed container. Deterministic: the same trace and label always
/// produce the same bytes.
pub fn write_trace(label: &str, trace: &FlightTrace) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_str(label);
    w.put_u64(trace.dropped);
    w.put_usize(trace.records.len());
    for r in &trace.records {
        w.put_u64(r.at.as_picos());
        w.put_u64(r.rank);
        w.put_u64(r.seq);
        r.event.save(&mut w);
    }
    finalize(TRACE_MAGIC, TRACE_VERSION, &w.into_bytes())
}

/// Opens a trace container, returning the label and the records. Rejects
/// foreign files, version mismatches, truncation and corruption exactly
/// like snapshot files do.
pub fn read_trace(bytes: &[u8]) -> Result<(String, FlightTrace), SnapError> {
    let payload = open(TRACE_MAGIC, TRACE_VERSION, bytes)?;
    let mut r = SnapReader::new(payload);
    let label = r.get_str()?.to_string();
    let dropped = r.get_u64()?;
    let n = r.get_count(RECORD_MIN_BYTES)?;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let at = SimTime::from_picos(r.get_u64()?);
        let rank = r.get_u64()?;
        let seq = r.get_u64()?;
        let event = TraceEvent::restore(&mut r)?;
        records.push(TraceRecord {
            at,
            rank,
            seq,
            event,
        });
    }
    r.expect_end()?;
    Ok((label, FlightTrace { records, dropped }))
}

/// Wraps a sink, recording [`NetSink::trace`] calls into a flight recorder
/// while forwarding scheduled events untouched. This is the only `trace`
/// override in the workspace: every other sink inherits the no-op default,
/// which is what makes tracing zero-cost when off.
pub struct Recording<'a, S: NetSink + ?Sized> {
    /// The sink real events flow through.
    pub inner: &'a mut S,
    /// The ring capturing trace events.
    pub recorder: &'a mut FlightRecorder,
}

impl<S: NetSink + ?Sized> NetSink for Recording<'_, S> {
    #[inline]
    fn send(&mut self, time: SimTime, event: crate::event::NetEvent) {
        self.inner.send(time, event);
    }

    #[inline]
    fn trace(&mut self, at: SimTime, event: TraceEvent) {
        self.recorder.record(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Enqueue {
                node: NodeId(3),
                port: 2,
                queue: 1,
                flow: 7,
                bytes: 1500,
            },
            TraceEvent::Dequeue {
                node: NodeId(3),
                port: 2,
                queue: 1,
                flow: 7,
                bytes: 1500,
            },
            TraceEvent::Drop {
                node: NodeId(4),
                port: 0,
                flow: 9,
                bytes: 1000,
            },
            TraceEvent::Blackhole {
                node: NodeId(5),
                flow: 2,
                bytes: 64,
            },
            TraceEvent::PfcSent {
                node: NodeId(1),
                port: 3,
                pause: true,
            },
            TraceEvent::PfcDelivered {
                node: NodeId(0),
                src: NodeId(1),
                pause: true,
            },
            TraceEvent::FlowPause {
                node: NodeId(2),
                port: 1,
                bits: 11,
                pause: false,
            },
            TraceEvent::QueueActive {
                node: NodeId(3),
                port: 2,
                queue: QUEUE_HIGH_PRIORITY,
            },
            TraceEvent::QueueIdle {
                node: NodeId(3),
                port: 2,
                queue: QUEUE_OVERFLOW,
            },
            TraceEvent::LinkDown {
                a: NodeId(1),
                b: NodeId(2),
            },
            TraceEvent::LinkUp {
                a: NodeId(1),
                b: NodeId(2),
            },
            TraceEvent::LinkRate {
                a: NodeId(0),
                b: NodeId(3),
            },
            TraceEvent::Reroute { index: 4 },
        ]
    }

    #[test]
    fn ring_keeps_the_last_n_and_counts_shed_records() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..10u64 {
            rec.record(
                SimTime::from_nanos(i),
                TraceEvent::Reroute { index: i as u32 },
            );
        }
        assert_eq!(rec.len(), 3);
        let trace = rec.finish();
        assert_eq!(trace.dropped, 7);
        let kept: Vec<u32> = trace
            .records
            .iter()
            .map(|r| match r.event {
                TraceEvent::Reroute { index } => index,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![7, 8, 9]);
        assert_eq!(trace.records[0].seq, 7, "seq numbers survive shedding");
    }

    #[test]
    fn container_round_trips_byte_stably() {
        let mut rec = FlightRecorder::new(1024);
        for (i, e) in sample_events().into_iter().enumerate() {
            rec.record(SimTime::from_nanos(i as u64 * 10), e);
        }
        let trace = rec.finish();
        let bytes = write_trace("unit-test seed=7", &trace);
        let (label, reread) = read_trace(&bytes).expect("container opens");
        assert_eq!(label, "unit-test seed=7");
        assert_eq!(reread, trace);
        // write -> read -> write is byte-stable.
        assert_eq!(write_trace(&label, &reread), bytes);
    }

    #[test]
    fn container_rejects_damage() {
        let mut rec = FlightRecorder::new(16);
        rec.record(
            SimTime::from_nanos(5),
            TraceEvent::PfcSent {
                node: NodeId(1),
                port: 0,
                pause: true,
            },
        );
        let bytes = write_trace("x", &rec.finish());
        // Foreign magic.
        assert_eq!(
            read_trace(b"not a trace").unwrap_err(),
            SnapError::BadMagic
        );
        // A snapshot-magic file is not a trace.
        let snapshot_like = finalize(b"BFCSNAP\0", TRACE_VERSION, b"payload");
        assert_eq!(read_trace(&snapshot_like).unwrap_err(), SnapError::BadMagic);
        // Wrong version.
        let other_version = finalize(TRACE_MAGIC, TRACE_VERSION + 1, b"payload");
        assert_eq!(
            read_trace(&other_version).unwrap_err(),
            SnapError::BadVersion(TRACE_VERSION + 1)
        );
        // Truncation at every prefix.
        for n in 0..bytes.len() {
            assert!(read_trace(&bytes[..n]).is_err(), "prefix {n} accepted");
        }
        // Any single-byte flip is rejected.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(read_trace(&bad).is_err(), "flip at {i} accepted");
        }
    }

    #[test]
    fn every_event_kind_round_trips() {
        let mut rec = FlightRecorder::new(64);
        for e in sample_events() {
            rec.record(SimTime::from_nanos(1), e);
        }
        let trace = rec.finish();
        let (_, reread) = read_trace(&write_trace("", &trace)).unwrap();
        assert_eq!(reread, trace);
        for r in &trace.records {
            assert!(!r.event.render().is_empty());
            assert!(!r.event.kind().is_empty());
        }
    }

    #[test]
    fn merge_reproduces_one_recorder_from_shard_parts() {
        // Interleave records for two "shards" through one recorder and
        // through two per-shard recorders; merging the parts must reproduce
        // the whole (canonicalized) trace.
        let mut whole = FlightRecorder::new(1024);
        let mut s0 = FlightRecorder::new(1024);
        let mut s1 = FlightRecorder::new(1024);
        let shard_of = |n: NodeId| n.0 % 2;
        let events = [
            (10u64, TraceEvent::QueueActive { node: NodeId(0), port: 1, queue: 0 }),
            (10, TraceEvent::Enqueue { node: NodeId(1), port: 0, queue: 0, flow: 1, bytes: 100 }),
            (10, TraceEvent::Enqueue { node: NodeId(0), port: 1, queue: 0, flow: 2, bytes: 100 }),
            (10, TraceEvent::Enqueue { node: NodeId(0), port: 1, queue: 0, flow: 3, bytes: 200 }),
            (20, TraceEvent::Dequeue { node: NodeId(0), port: 1, queue: 0, flow: 2, bytes: 100 }),
            (20, TraceEvent::PfcSent { node: NodeId(1), port: 0, pause: true }),
        ];
        for (t, e) in events {
            whole.record(SimTime::from_nanos(t), e);
            let shard = if shard_of(e.node().unwrap()) == 0 { &mut s0 } else { &mut s1 };
            shard.record(SimTime::from_nanos(t), e);
        }
        let canonical_whole = FlightTrace::merge(vec![whole.finish()]);
        let merged = FlightTrace::merge(vec![s0.finish(), s1.finish()]);
        assert_eq!(merged, canonical_whole);
    }

    #[test]
    fn pause_time_ranks_ports_by_paused_duration() {
        let mut rec = FlightRecorder::new(64);
        let xoff = |node, port| TraceEvent::PfcSent { node: NodeId(node), port, pause: true };
        let xon = |node, port| TraceEvent::PfcSent { node: NodeId(node), port, pause: false };
        rec.record(SimTime::from_nanos(100), xoff(1, 0));
        rec.record(SimTime::from_nanos(300), xon(1, 0)); // 200 ns
        rec.record(SimTime::from_nanos(100), xoff(2, 3)); // open until end
        let trace = rec.finish();
        let top = trace.pause_time_by_port(SimTime::from_nanos(600));
        assert_eq!(top[0].0, (NodeId(2), 3));
        assert_eq!(top[0].1, SimDuration::from_nanos(500));
        assert_eq!(top[1].0, (NodeId(1), 0));
        assert_eq!(top[1].1, SimDuration::from_nanos(200));
    }

    #[test]
    fn filters_reject_at_record_time_without_counting_drops() {
        let filter = TraceFilter::all()
            .with_kinds([kind_index_of("pfc-sent").unwrap()])
            .with_nodes([NodeId(1)]);
        let mut rec = FlightRecorder::with_filter(2, filter.clone());
        for e in sample_events() {
            rec.record(SimTime::from_nanos(1), e);
        }
        // Wrong node, right kind: rejected.
        rec.record(
            SimTime::from_nanos(2),
            TraceEvent::PfcSent { node: NodeId(9), port: 0, pause: true },
        );
        let trace = rec.finish();
        assert_eq!(trace.records.len(), 1);
        assert_eq!(trace.dropped, 0, "filtered events are not ring drops");
        assert!(matches!(
            trace.records[0].event,
            TraceEvent::PfcSent { node: NodeId(1), .. }
        ));
        // Fabric-wide events pass a node filter.
        assert!(filter
            .clone()
            .with_kinds([kind_index_of("reroute").unwrap()])
            .admits(&TraceEvent::Reroute { index: 0 }));
        // The all-filter is elided entirely.
        assert!(TraceFilter::all().admits_all());
        let rec = FlightRecorder::with_filter(4, TraceFilter::all());
        assert!(rec.filter.is_none());
    }

    #[test]
    fn kind_names_round_trip_through_indices() {
        for e in sample_events() {
            assert_eq!(kind_index_of(e.kind()), Some(e.kind_index()));
        }
        assert_eq!(kind_index_of("no-such-kind"), None);
    }

    #[test]
    fn identical_traces_diff_empty() {
        let mut rec = FlightRecorder::new(64);
        for (i, e) in sample_events().into_iter().enumerate() {
            rec.record(SimTime::from_nanos(i as u64), e);
        }
        let a = FlightTrace::merge(vec![rec.finish()]);
        assert_eq!(a.diff(&a.clone()), None);
        assert_eq!(FlightTrace::default().diff(&FlightTrace::default()), None);
    }

    #[test]
    fn diff_reports_first_divergence_and_tail_summaries() {
        let enq = |flow| TraceEvent::Enqueue { node: NodeId(0), port: 1, queue: 0, flow, bytes: 100 };
        let mut a = FlightRecorder::new(64);
        let mut b = FlightRecorder::new(64);
        // Shared prefix.
        a.record(SimTime::from_nanos(10), enq(1));
        b.record(SimTime::from_nanos(10), enq(1));
        // Divergence at index 1: different flows enqueue.
        a.record(SimTime::from_nanos(20), enq(2));
        b.record(SimTime::from_nanos(20), enq(3));
        // Only `b` then pauses.
        b.record(
            SimTime::from_nanos(30),
            TraceEvent::PfcSent { node: NodeId(0), port: 1, pause: true },
        );
        let (a, b) = (
            FlightTrace::merge(vec![a.finish()]),
            FlightTrace::merge(vec![b.finish()]),
        );
        let diff = a.diff(&b).expect("diverges");
        assert_eq!(diff.index, 1);
        assert_eq!(diff.first_a.unwrap().event, enq(2));
        assert_eq!(diff.first_b.unwrap().event, enq(3));
        assert_eq!((diff.tail_a, diff.tail_b), (1, 2));
        let enq_row = diff.kinds.iter().find(|k| k.kind == "enqueue").unwrap();
        assert_eq!((enq_row.count_a, enq_row.count_b), (1, 1));
        assert_eq!(enq_row.first_a, Some(SimTime::from_nanos(20)));
        let pfc_row = diff.kinds.iter().find(|k| k.kind == "pfc-sent").unwrap();
        assert_eq!((pfc_row.count_a, pfc_row.count_b), (0, 1));
        assert_eq!(pfc_row.first_b, Some(SimTime::from_nanos(30)));
        let port_row = diff
            .ports
            .iter()
            .find(|p| (p.node, p.port) == (NodeId(0), 1))
            .unwrap();
        assert_eq!(port_row.pause_a, SimDuration::ZERO);
        // b's pause opens at 30 and closes at b's end time (also 30).
        assert_eq!(port_row.pause_b, SimDuration::ZERO);
        // A strict prefix diverges at the shorter length.
        let prefix = FlightTrace {
            records: a.records[..1].to_vec(),
            dropped: 0,
        };
        let diff = prefix.diff(&a).expect("prefix diverges");
        assert_eq!(diff.index, 1);
        assert!(diff.first_a.is_none());
        assert!(diff.first_b.is_some());
    }

    #[test]
    fn pause_edges_surface_pfc_deliveries() {
        let mut rec = FlightRecorder::new(64);
        rec.record(
            SimTime::from_nanos(50),
            TraceEvent::PfcDelivered { node: NodeId(4), src: NodeId(6), pause: true },
        );
        rec.record(
            SimTime::from_nanos(70),
            TraceEvent::PfcDelivered { node: NodeId(4), src: NodeId(6), pause: false },
        );
        let edges = rec.finish().pause_edges();
        assert_eq!(
            edges,
            vec![
                (SimTime::from_nanos(50), NodeId(4), NodeId(6), true),
                (SimTime::from_nanos(70), NodeId(4), NodeId(6), false),
            ]
        );
    }
}
